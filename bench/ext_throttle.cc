/**
 * @file
 * Closed-loop experiment: instruction throttling driven by the
 * online AVF estimate (the Soundararajan-style adaptation the paper
 * says *requires* real-time estimation). Three runs per benchmark on
 * identical workloads:
 *
 *   baseline   — no throttling;
 *   always     — statically throttled (worst-case provisioning);
 *   adaptive   — the ThrottleController engages only when the
 *                predicted IQ AVF crosses its threshold, deciding
 *                from the published metrics series (ControlFeed),
 *                never from the estimator's private history.
 *
 * Reported: mean IQ AVF (from the independent SoftArch reference,
 * so the controller cannot grade its own homework) and IPC. The
 * throttle genuinely lowers AVF in this simulator because fewer
 * in-flight instructions mean lower ACE occupancy — the effect
 * emerges from the microarchitecture, it is not scripted.
 */

#include <cstdio>

#include "control/throttle_controller.hh"
#include "core/online_estimator.hh"
#include "cpu/pipeline.hh"
#include "obs/control_feed.hh"
#include "softarch/ace_analyzer.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "harness/config_loader.hh"

namespace
{

using namespace avf;
using core::Structure;

enum class Mode { Baseline, AlwaysThrottled, Adaptive };

struct Outcome
{
    double iqAvf = 0.0;
    double ipc = 0.0;
    double throttledShare = 0.0;
};

Outcome
runMode(const std::string &bench, Mode mode, int intervals)
{
    trace::SyntheticTraceGenerator gen(trace::specProfile(bench));
    cpu::Pipeline pipe(cpu::CpuConfig{}, gen);

    core::OnlineConfig online; // M = N = 1000
    core::OnlineAvfEstimator est(pipe, Structure::IQ, online);
    pipe.addObserver(&est);

    softarch::SoftArchConfig sa;
    softarch::AceAnalyzer reference(pipe, sa);
    pipe.addObserver(&reference);

    // The controller's only input: the published per-interval series.
    obs::ControlFeed feed;
    feed.attachAvf(Structure::IQ, est);
    control::ThrottleConfig policy;
    control::ThrottleController controller(pipe, feed, policy);
    if (mode == Mode::Adaptive) {
        pipe.addObserver(&feed);
        pipe.addObserver(&controller);
    } else if (mode == Mode::AlwaysThrottled) {
        pipe.setDispatchThrottle(policy.throttledWidth);
    }

    const Cycle interval_len = online.m * online.n;
    pipe.run(interval_len * static_cast<Cycle>(intervals) +
             sa.lookahead + online.m);
    reference.finalizeAll(static_cast<std::size_t>(intervals - 1));

    Outcome out;
    stats::RunningStats avf;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(intervals) &&
         k < reference.results().size();
         ++k)
        avf.add(reference.results()[k][Structure::IQ]);
    out.iqAvf = avf.mean();
    out.ipc = pipe.stats().ipc();
    if (mode == Mode::Adaptive && controller.intervals() > 0)
        out.throttledShare =
            static_cast<double>(controller.throttledIntervals()) /
            static_cast<double>(controller.intervals());
    else if (mode == Mode::AlwaysThrottled)
        out.throttledShare = 1.0;
    return out;
}

} // namespace

int
main()
{
    using stats::TablePrinter;
    const int intervals =
        harness::loadRunOptions().fastMode ? 4 : 15;

    TablePrinter table("Closed-loop instruction throttling from "
                       "online AVF (IQ AVF from SoftArch; lower is "
                       "safer)");
    table.setHeader({"app", "mode", "IQ AVF", "IPC", "throttled"});

    for (const char *bench : {"mesa", "bzip2", "sixtrack", "art"}) {
        std::fprintf(stderr, "running %s...\n", bench);
        auto base = runMode(bench, Mode::Baseline, intervals);
        auto always = runMode(bench, Mode::AlwaysThrottled, intervals);
        auto adaptive = runMode(bench, Mode::Adaptive, intervals);

        table.addRow({bench, "baseline",
                      TablePrinter::num(base.iqAvf),
                      TablePrinter::num(base.ipc, 2),
                      TablePrinter::pct(0.0, 0)});
        table.addRow({bench, "always-throttle",
                      TablePrinter::num(always.iqAvf),
                      TablePrinter::num(always.ipc, 2),
                      TablePrinter::pct(always.throttledShare * 100,
                                        0)});
        table.addRow({bench, "adaptive",
                      TablePrinter::num(adaptive.iqAvf),
                      TablePrinter::num(adaptive.ipc, 2),
                      TablePrinter::pct(
                          adaptive.throttledShare * 100, 0)});
    }
    table.print();
    std::printf("\nReading: throttling measurably lowers IQ AVF (an "
                "emergent microarchitectural effect: fewer ACE "
                "instruction-cycles in the queue) at an IPC cost; the "
                "adaptive controller pays that cost only in the "
                "vulnerable phases the online estimator flags.\n");
    return 0;
}
