/**
 * @file
 * Baseline shoot-out across estimator families the paper discusses:
 *
 *  - the online error-bit estimator (this paper),
 *  - utilization counting for logic structures (Section 4's simple
 *    alternative),
 *  - occupancy counting for the issue queue (the Soundararajan-style
 *    approach of Section 2, which estimates storage-structure AVF
 *    from entry counts).
 *
 * Both counters are blind to dead values and un-ACE instructions, so
 * they systematically overestimate; the error-bit method does not.
 * All three families now report through the common core::AvfEstimator
 * interface inside runExperiment, so this bench is a plain engine
 * campaign over the eleven benchmarks.
 */

#include <cstdio>
#include <vector>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

int
main()
{
    using namespace avf;
    using namespace avf::harness;
    using core::Structure;
    using stats::TablePrinter;

    auto options = loadRunOptions();
    const int intervals = options.fastMode ? 4 : 20;

    TablePrinter table("Baselines: mean AVF per method (SoftArch = "
                       "ground truth; counters overestimate)");
    table.setHeader({"app", "structure", "softarch", "online",
                     "counter", "counter type"});

    ExperimentEngine engine(options);
    engine.onTaskDone([](const std::string &name, double wall_ms,
                         const RunSummary &) {
        std::fprintf(stderr, "finished %s in %.0f ms\n", name.c_str(),
                     wall_ms);
    });
    for (const auto &name : trace::specBenchmarkNames()) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(name);
        conf.numIntervals = intervals;
        engine.submit(name, conf);
    }

    auto mean = [](const std::vector<double> &v) {
        stats::RunningStats s;
        for (double x : v)
            s.add(x);
        return s.mean();
    };

    auto tasks = engine.collect();
    exportCampaignMetrics("ablation_baselines", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        const auto &result = task.result;
        table.addRow({task.name, "iq",
                      TablePrinter::num(
                          mean(result.softarchSeries(Structure::IQ))),
                      TablePrinter::num(
                          mean(result.onlineSeries(Structure::IQ))),
                      TablePrinter::num(mean(result.occupancySeries())),
                      "occupancy"});
        table.addRow({task.name, "fxu",
                      TablePrinter::num(
                          mean(result.softarchSeries(Structure::FXU))),
                      TablePrinter::num(
                          mean(result.onlineSeries(Structure::FXU))),
                      TablePrinter::num(mean(
                          result.utilizationSeries(Structure::FXU))),
                      "utilization"});
    }
    table.print();
    std::printf("\nReading: occupancy bounds IQ AVF from above the "
                "same way utilization bounds FXU AVF — both include "
                "dead/un-ACE work the error-bit method correctly "
                "discounts.\n");
    return 0;
}
