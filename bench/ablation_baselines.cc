/**
 * @file
 * Baseline shoot-out across estimator families the paper discusses:
 *
 *  - the online error-bit estimator (this paper),
 *  - utilization counting for logic structures (Section 4's simple
 *    alternative),
 *  - occupancy counting for the issue queue (the Soundararajan-style
 *    approach of Section 2, which estimates storage-structure AVF
 *    from entry counts).
 *
 * Both counters are blind to dead values and un-ACE instructions, so
 * they systematically overestimate; the error-bit method does not.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/occupancy_estimator.hh"
#include "core/online_estimator.hh"
#include "core/utilization_estimator.hh"
#include "cpu/pipeline.hh"
#include "softarch/ace_analyzer.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "util/env.hh"

int
main()
{
    using namespace avf;
    using core::Structure;
    using stats::TablePrinter;

    const int intervals = envFlag("AVF_FAST") ? 4 : 20;
    const Cycle interval_len = 1'000'000;

    TablePrinter table("Baselines: mean AVF per method (SoftArch = "
                       "ground truth; counters overestimate)");
    table.setHeader({"app", "structure", "softarch", "online",
                     "counter", "counter type"});

    for (const auto &name : trace::specBenchmarkNames()) {
        std::fprintf(stderr, "running %s...\n", name.c_str());
        trace::SyntheticTraceGenerator gen(trace::specProfile(name));
        cpu::Pipeline pipe(cpu::CpuConfig{}, gen);

        core::OnlineConfig online_conf; // M = N = 1000
        std::vector<std::unique_ptr<core::OnlineAvfEstimator>> ests;
        for (Structure s : {Structure::IQ, Structure::FXU}) {
            ests.push_back(std::make_unique<core::OnlineAvfEstimator>(
                pipe, s, online_conf));
            pipe.addObserver(ests.back().get());
        }
        softarch::SoftArchConfig sa_conf;
        sa_conf.intervalCycles = interval_len;
        softarch::AceAnalyzer reference(pipe, sa_conf);
        pipe.addObserver(&reference);
        core::UtilizationEstimator util(pipe, cpu::FuClass::Fxu,
                                        interval_len);
        core::OccupancyEstimator occupancy(pipe, interval_len);
        pipe.addObserver(&util);
        pipe.addObserver(&occupancy);

        pipe.run(interval_len * static_cast<Cycle>(intervals) +
                 sa_conf.lookahead + 1000);
        reference.finalizeAll(static_cast<std::size_t>(intervals - 1));

        auto mean = [](const std::vector<double> &v, std::size_t k) {
            stats::RunningStats s;
            for (std::size_t i = 0; i < k && i < v.size(); ++i)
                s.add(v[i]);
            return s.mean();
        };
        auto sa_mean = [&](Structure s) {
            stats::RunningStats acc;
            for (std::size_t k = 0;
                 k < static_cast<std::size_t>(intervals) &&
                 k < reference.results().size();
                 ++k)
                acc.add(reference.results()[k].avf[
                    static_cast<std::size_t>(s)]);
            return acc.mean();
        };

        auto k = static_cast<std::size_t>(intervals);
        table.addRow({name, "iq",
                      TablePrinter::num(sa_mean(Structure::IQ)),
                      TablePrinter::num(mean(ests[0]->estimates(), k)),
                      TablePrinter::num(mean(occupancy.estimates(),
                                             k)),
                      "occupancy"});
        table.addRow({name, "fxu",
                      TablePrinter::num(sa_mean(Structure::FXU)),
                      TablePrinter::num(mean(ests[1]->estimates(), k)),
                      TablePrinter::num(mean(util.estimates(), k)),
                      "utilization"});
    }
    table.print();
    std::printf("\nReading: occupancy bounds IQ AVF from above the "
                "same way utilization bounds FXU AVF — both include "
                "dead/un-ACE work the error-bit method correctly "
                "discounts.\n");
    return 0;
}
