/**
 * @file
 * Reproduces Figure 3: the accuracy of the online estimator (O) and
 * the utilization-based baseline (U) against the SoftArch reference,
 * for all four structures across the eleven benchmarks. For every
 * (application, structure) pair the paper reports the mean, standard
 * deviation, and top-4-excluded maximum of the per-interval absolute
 * error (left charts) and relative error (right charts).
 *
 * Interval count defaults to the paper's 100 per application;
 * override with AVF_INTERVALS or AVF_FAST=1. AVF_LIFECYCLE=1 traces
 * every injection's lifecycle: per-task outcome digests go to stderr
 * and the retained records land in fig3_<app>_lifecycle.jsonl; the
 * stdout tables are byte-identical either way (tracing is passive).
 * The eleven applications are independent tasks fanned out over the
 * ExperimentEngine's worker pool; output is byte-identical at any
 * thread count.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/error_metrics.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

namespace
{

using namespace avf;
using namespace avf::harness;
using core::Structure;
using stats::TablePrinter;

struct AppResult
{
    std::string name;
    ExperimentResult result;
};

void
printStructure(const std::vector<AppResult> &apps, Structure s,
               const char *label, bool with_utilization)
{
    TablePrinter abs_table(std::string("Figure 3: ") + label +
                           " — absolute error of AVF vs SoftArch");
    TablePrinter rel_table(std::string("Figure 3: ") + label +
                           " — relative error of AVF vs SoftArch");
    if (with_utilization) {
        abs_table.setHeader({"app", "O mean", "O stddev", "O max",
                             "U mean", "U stddev", "U max"});
        rel_table.setHeader({"app", "O mean", "O stddev", "O max",
                             "U mean", "U stddev", "U max"});
    } else {
        abs_table.setHeader({"app", "O mean", "O stddev", "O max"});
        rel_table.setHeader({"app", "O mean", "O stddev", "O max"});
    }

    for (const auto &app : apps) {
        auto reference = app.result.softarchSeries(s);
        auto online = app.result.onlineSeries(s);
        auto abs_o = stats::summarizeErrors(
            stats::absoluteErrors(online, reference));
        auto rel_o = stats::summarizeErrors(
            stats::relativeErrors(online, reference, 0.01));

        std::vector<std::string> abs_row = {
            app.name, TablePrinter::num(abs_o.mean),
            TablePrinter::num(abs_o.stddev),
            TablePrinter::num(abs_o.maxExcl)};
        std::vector<std::string> rel_row = {
            app.name, TablePrinter::pct(rel_o.mean),
            TablePrinter::pct(rel_o.stddev),
            TablePrinter::pct(rel_o.maxExcl)};

        if (with_utilization) {
            auto util = app.result.utilizationSeries(s);
            auto abs_u = stats::summarizeErrors(
                stats::absoluteErrors(util, reference));
            auto rel_u = stats::summarizeErrors(
                stats::relativeErrors(util, reference, 0.01));
            abs_row.push_back(TablePrinter::num(abs_u.mean));
            abs_row.push_back(TablePrinter::num(abs_u.stddev));
            abs_row.push_back(TablePrinter::num(abs_u.maxExcl));
            rel_row.push_back(TablePrinter::pct(rel_u.mean));
            rel_row.push_back(TablePrinter::pct(rel_u.stddev));
            rel_row.push_back(TablePrinter::pct(rel_u.maxExcl));
        }
        abs_table.addRow(abs_row);
        rel_table.addRow(rel_row);
    }
    abs_table.print();
    rel_table.print();
}

} // namespace

int
main()
{
    auto options = loadRunOptions(100);
    std::printf("Figure 3 reproduction: M = N = 1000, %d estimation "
                "intervals of 1M cycles per application\n",
                options.intervals);

    ExperimentEngine engine(options);
    engine.onTaskDone([&options](const std::string &name,
                                 double wall_ms,
                                 const RunSummary &summary) {
        std::fprintf(stderr, "finished %s in %.0f ms (%.2f IPC)\n",
                     name.c_str(), wall_ms, summary.ipc);
        if (options.lifecycle) {
            std::fprintf(
                stderr,
                "  lifecycle: %llu injections, %llu failures, "
                "%llu killed, %llu expired\n",
                static_cast<unsigned long long>(
                    summary.lifecycleRecords),
                static_cast<unsigned long long>(
                    summary.lifecycleFailures),
                static_cast<unsigned long long>(
                    summary.lifecycleKilled),
                static_cast<unsigned long long>(
                    summary.lifecycleExpired));
        }
    });
    for (const auto &name : trace::specBenchmarkNames()) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(name);
        conf.numIntervals = options.intervals;
        conf.lifecycle.enabled = options.lifecycle;
        engine.submit(name, conf);
    }

    std::vector<AppResult> apps;
    auto tasks = engine.collect();
    exportCampaignMetrics("fig3_accuracy", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        if (options.lifecycle) {
            std::string out = "fig3_" + task.name + "_lifecycle.jsonl";
            writeLifecycleJsonl(task.result, out);
            std::fprintf(stderr, "wrote %s\n", out.c_str());
        }
        apps.push_back({task.name, std::move(task.result)});
    }

    printStructure(apps, Structure::IQ, "(a) instruction queue",
                   false);
    printStructure(apps, Structure::REG, "(b) register file", false);
    printStructure(apps, Structure::FXU, "(c) FXU", true);
    printStructure(apps, Structure::FPU, "(d) FPU", true);

    // Headline claims from the abstract, checked against this run.
    double worst_mean = 0.0, worst_max = 0.0;
    for (const auto &app : apps) {
        for (int s = 0; s < core::numPaperStructures; ++s) {
            auto structure = static_cast<Structure>(s);
            auto summary = stats::summarizeErrors(
                stats::absoluteErrors(
                    app.result.onlineSeries(structure),
                    app.result.softarchSeries(structure)));
            worst_mean = std::max(worst_mean, summary.mean);
            worst_max = std::max(worst_max, summary.maxExcl);
        }
    }
    std::printf("\nHeadline check (paper: mean abs err < 0.05 for "
                "every app/structure; max rarely exceeds 0.08):\n");
    std::printf("  worst mean abs error  = %.4f\n", worst_mean);
    std::printf("  worst max (excl top4) = %.4f\n", worst_max);
    return 0;
}
