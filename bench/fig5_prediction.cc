/**
 * @file
 * Reproduces Figure 5: feed the online AVF estimates to the simple
 * last-value predictor ("next interval's AVF = this interval's") and
 * report, per application and structure, the average absolute
 * prediction error against the real (SoftArch) AVF next to the
 * average real AVF itself — exactly the two stacks of the paper's
 * bar chart.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

int
main()
{
    using namespace avf;
    using namespace avf::harness;
    using core::Structure;
    using stats::TablePrinter;

    auto options = loadRunOptions(60);
    std::printf("Figure 5 reproduction: last-value predictor over %d "
                "intervals per application\n", options.intervals);

    TablePrinter table("Figure 5: absolute prediction error of the "
                       "simple (last-value) predictor vs average "
                       "real AVF");
    table.setHeader({"app", "structure", "avg_prediction_error",
                     "avg_real_AVF", "rel_error"});

    ExperimentEngine engine(options);
    engine.onTaskDone([](const std::string &name, double wall_ms,
                         const RunSummary &) {
        std::fprintf(stderr, "finished %s in %.0f ms\n", name.c_str(),
                     wall_ms);
    });
    for (const auto &name : trace::specBenchmarkNames()) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(name);
        conf.numIntervals = options.intervals;
        engine.submit(name, conf);
    }

    double worst = 0.0;
    int above_005 = 0, cells = 0;
    auto tasks = engine.collect();
    exportCampaignMetrics("fig5_prediction", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        const auto &name = task.name;
        const auto &result = task.result;

        for (int s = 0; s < core::numPaperStructures; ++s) {
            auto structure = static_cast<Structure>(s);
            core::LastValuePredictor predictor;
            auto errors = core::predictionErrors(
                predictor, result.onlineSeries(structure),
                result.softarchSeries(structure));

            stats::RunningStats err_stats, avf_stats;
            for (double e : errors)
                err_stats.add(e);
            for (double v : result.softarchSeries(structure))
                avf_stats.add(v);

            double rel = avf_stats.mean() > 1e-6
                ? err_stats.mean() / avf_stats.mean() * 100.0
                : 0.0;
            table.addRow({name,
                          std::string(core::structureName(structure)),
                          TablePrinter::num(err_stats.mean()),
                          TablePrinter::num(avf_stats.mean()),
                          TablePrinter::pct(rel)});
            worst = std::max(worst, err_stats.mean());
            ++cells;
            if (err_stats.mean() > 0.05)
                ++above_005;
        }
    }
    table.print();

    std::printf("\nHeadline check (paper: prediction error < 0.05 "
                "with two exceptions):\n");
    std::printf("  worst average prediction error = %.4f\n", worst);
    std::printf("  cells above 0.05: %d of %d\n", above_005, cells);
    return 0;
}
