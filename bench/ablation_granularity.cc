/**
 * @file
 * Ablation implementing Section 3.6's proposed extension: "This
 * could be addressed by supporting multiple error bits per value,
 * allowing errors to be injected at a finer granularity." We
 * estimate the issue queue's AVF at whole-entry granularity (the
 * paper's mode: one bit, any corruption counts) and at field
 * granularity (opcode + three operand fields; corrupting an
 * unpopulated field is masked). Finer granularity removes the
 * conservatism of treating sparse entries as fully vulnerable, so
 * the field-granular AVF is systematically lower; both modes are
 * validated against their matching SoftArch reference.
 */

#include <cstdio>

#include "core/online_estimator.hh"
#include "cpu/pipeline.hh"
#include "softarch/ace_analyzer.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "util/env.hh"

namespace
{

using namespace avf;
using core::Structure;

struct ModeResult
{
    double online = 0.0;
    double reference = 0.0;
};

ModeResult
runMode(const std::string &bench, bool field_granular, int intervals)
{
    trace::SyntheticTraceGenerator gen(trace::specProfile(bench));
    cpu::Pipeline pipe(cpu::CpuConfig{}, gen);

    core::OnlineConfig online;
    online.fieldGranularIq = field_granular;
    core::OnlineAvfEstimator est(pipe, Structure::IQ, online);
    pipe.addObserver(&est);

    softarch::SoftArchConfig sa;
    sa.fieldGranularIq = field_granular;
    softarch::AceAnalyzer reference(pipe, sa);
    pipe.addObserver(&reference);

    const Cycle interval_len = online.m * online.n;
    pipe.run(interval_len * static_cast<Cycle>(intervals) +
             sa.lookahead + online.m);
    reference.finalizeAll(static_cast<std::size_t>(intervals - 1));

    stats::RunningStats online_stats, ref_stats;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(intervals) &&
         k < est.estimates().size();
         ++k)
        online_stats.add(est.estimates()[k]);
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(intervals) &&
         k < reference.results().size();
         ++k)
        ref_stats.add(reference.results()[k][Structure::IQ]);
    return {online_stats.mean(), ref_stats.mean()};
}

} // namespace

int
main()
{
    using stats::TablePrinter;
    const int intervals = envFlag("AVF_FAST") ? 3 : 10;

    TablePrinter table("IQ AVF: whole-entry vs field-granular error "
                       "bits (online estimate / SoftArch reference)");
    table.setHeader({"app", "entry online", "entry ref",
                     "field online", "field ref", "ratio"});

    for (const char *bench : {"bzip2", "mesa", "swim", "perlbmk"}) {
        std::fprintf(stderr, "running %s...\n", bench);
        auto whole = runMode(bench, false, intervals);
        auto field = runMode(bench, true, intervals);
        table.addRow({bench, TablePrinter::num(whole.online),
                      TablePrinter::num(whole.reference),
                      TablePrinter::num(field.online),
                      TablePrinter::num(field.reference),
                      TablePrinter::num(
                          whole.reference > 0
                              ? field.reference / whole.reference
                              : 0.0,
                          2)});
    }
    table.print();
    std::printf("\nReading: field-granular injection tracks its own "
                "exact reference just as well as whole-entry mode, "
                "and shows the paper's single-bit scheme "
                "overestimates IQ vulnerability by the fraction of "
                "unpopulated entry fields (the 'ratio' column).\n");
    return 0;
}
