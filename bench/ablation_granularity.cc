/**
 * @file
 * Ablation implementing Section 3.6's proposed extension: "This
 * could be addressed by supporting multiple error bits per value,
 * allowing errors to be injected at a finer granularity." We
 * estimate the issue queue's AVF at whole-entry granularity (the
 * paper's mode: one bit, any corruption counts) and at field
 * granularity (opcode + three operand fields; corrupting an
 * unpopulated field is masked). Finer granularity removes the
 * conservatism of treating sparse entries as fully vulnerable, so
 * the field-granular AVF is systematically lower; both modes are
 * validated against their matching SoftArch reference.
 *
 * Each benchmark contributes two engine tasks, one per granularity
 * mode; runExperiment forwards config.online.fieldGranularIq to the
 * SoftArch reference so both sides of a task agree on the model.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

int
main()
{
    using namespace avf;
    using namespace avf::harness;
    using core::Structure;
    using stats::TablePrinter;

    auto options = loadRunOptions();
    const int intervals = options.fastMode ? 3 : 10;
    const std::vector<std::string> benches = {"bzip2", "mesa", "swim",
                                              "perlbmk"};

    TablePrinter table("IQ AVF: whole-entry vs field-granular error "
                       "bits (online estimate / SoftArch reference)");
    table.setHeader({"app", "entry online", "entry ref",
                     "field online", "field ref", "ratio"});

    // Tasks 2k are whole-entry granularity, tasks 2k+1 field-granular.
    ExperimentEngine engine(options);
    for (const auto &bench : benches) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(bench);
        conf.numIntervals = intervals;
        engine.submit(bench + ":entry", conf);
        conf.online.fieldGranularIq = true;
        engine.submit(bench + ":field", conf);
    }

    auto tasks = engine.collect();
    exportCampaignMetrics("ablation_granularity", engine, tasks);
    for (const auto &task : tasks)
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());

    auto mean = [](const std::vector<double> &v) {
        stats::RunningStats s;
        for (double x : v)
            s.add(x);
        return s.mean();
    };

    for (std::size_t pair = 0; pair < benches.size(); ++pair) {
        const auto &whole = tasks[2 * pair].result;
        const auto &field = tasks[2 * pair + 1].result;
        double whole_ref = mean(whole.softarchSeries(Structure::IQ));
        double field_ref = mean(field.softarchSeries(Structure::IQ));
        table.addRow({benches[pair],
                      TablePrinter::num(
                          mean(whole.onlineSeries(Structure::IQ))),
                      TablePrinter::num(whole_ref),
                      TablePrinter::num(
                          mean(field.onlineSeries(Structure::IQ))),
                      TablePrinter::num(field_ref),
                      TablePrinter::num(
                          whole_ref > 0 ? field_ref / whole_ref : 0.0,
                          2)});
    }
    table.print();
    std::printf("\nReading: field-granular injection tracks its own "
                "exact reference just as well as whole-entry mode, "
                "and shows the paper's single-bit scheme "
                "overestimates IQ vulnerability by the fraction of "
                "unpopulated entry fields (the 'ratio' column).\n");
    return 0;
}
