/**
 * @file
 * Reproduces Figure 4: per-interval AVF time series for mesa (100
 * intervals) and ammp (200 intervals) across the four structures,
 * showing the SoftArch ("real") AVF, our online estimate, and — for
 * the logic structures — the utilization-based estimate. The paper's
 * observation: AVF moves substantially across intervals and the
 * online method tracks it closely, while utilization tracks the
 * *shape* but sits visibly off the real value.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

namespace
{

using namespace avf;
using namespace avf::harness;
using core::Structure;

void
printApp(const std::string &name, const ExperimentResult &result)
{
    std::vector<double> xs;
    for (std::size_t k = 0; k < result.intervals.size(); ++k)
        xs.push_back(static_cast<double>(k));

    for (int s = 0; s < core::numPaperStructures; ++s) {
        auto structure = static_cast<Structure>(s);
        std::vector<std::string> names = {"Real_AVF", "Estimated_AVF"};
        std::vector<std::vector<double>> series = {
            result.softarchSeries(structure),
            result.onlineSeries(structure),
        };
        if (structure == Structure::FXU ||
            structure == Structure::FPU) {
            names.push_back("Utilization_based_AVF");
            series.push_back(result.utilizationSeries(structure));
        }
        std::string title = "Figure 4: " +
            std::string(core::structureName(structure)) + " AVF for " +
            name;
        stats::printSeries(title, "interval", xs, names, series);
    }
}

} // namespace

int
main()
{
    // mesa uses the paper's 100 intervals, ammp its 200; both runs
    // proceed in parallel on the engine.
    ExperimentEngine engine(loadRunOptions(100));
    engine.onTaskDone([](const std::string &name, double wall_ms,
                         const RunSummary &) {
        std::fprintf(stderr, "finished %s in %.0f ms\n", name.c_str(),
                     wall_ms);
    });
    for (const auto &[name, paper_intervals] :
         {std::pair<std::string, int>{"mesa", 100},
          std::pair<std::string, int>{"ammp", 200}}) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(name);
        conf.numIntervals = loadRunOptions(paper_intervals).intervals;
        engine.submit(name, conf);
    }
    auto tasks = engine.collect();
    exportCampaignMetrics("fig4_traces", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        printApp(task.name, task.result);
    }
    return 0;
}
