/**
 * @file
 * Reproduces Figure 4: per-interval AVF time series for mesa (100
 * intervals) and ammp (200 intervals) across the four structures,
 * showing the SoftArch ("real") AVF, our online estimate, and — for
 * the logic structures — the utilization-based estimate. The paper's
 * observation: AVF moves substantially across intervals and the
 * online method tracks it closely, while utilization tracks the
 * *shape* but sits visibly off the real value.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/env.hh"

namespace
{

using namespace avf;
using namespace avf::harness;
using core::Structure;

void
printApp(const std::string &name, int paper_intervals)
{
    int intervals = envFlag("AVF_FAST")
        ? 12
        : static_cast<int>(envInt("AVF_INTERVALS", paper_intervals));

    ExperimentConfig conf;
    conf.profile = trace::specProfile(name);
    conf.numIntervals = intervals;
    std::fprintf(stderr, "running %s (%d intervals)...\n",
                 name.c_str(), intervals);
    auto result = runExperiment(conf);

    std::vector<double> xs;
    for (std::size_t k = 0; k < result.intervals.size(); ++k)
        xs.push_back(static_cast<double>(k));

    for (int s = 0; s < core::numPaperStructures; ++s) {
        auto structure = static_cast<Structure>(s);
        std::vector<std::string> names = {"Real_AVF", "Estimated_AVF"};
        std::vector<std::vector<double>> series = {
            result.softarchSeries(structure),
            result.onlineSeries(structure),
        };
        if (structure == Structure::FXU ||
            structure == Structure::FPU) {
            names.push_back("Utilization_based_AVF");
            series.push_back(result.utilizationSeries(structure));
        }
        std::string title = "Figure 4: " +
            std::string(core::structureName(structure)) + " AVF for " +
            name;
        stats::printSeries(title, "interval", xs, names, series);
    }
}

} // namespace

int
main()
{
    printApp("mesa", 100);
    printApp("ammp", 200);
    return 0;
}
