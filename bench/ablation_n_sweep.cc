/**
 * @file
 * Ablation for Section 3.3's choice of N: sweep the number of
 * injections per estimate and show that the estimator's standard
 * deviation around the SoftArch reference tracks the analytic bound
 * sigma <= 0.5 / sqrt(N) (and the tighter sqrt(AVF(1-AVF)/N)).
 * N = 1000 is where the paper lands: ~0.016 worst-case standard
 * error at one estimate per million cycles.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/running_stats.hh"
#include "stats/sample_size.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

int
main()
{
    using namespace avf;
    using namespace avf::harness;
    using core::Structure;
    using stats::TablePrinter;

    auto options = loadRunOptions();
    // Keep total simulated cycles roughly constant per configuration
    // so every N gets a fair sample budget.
    const std::uint64_t budget = options.fastMode ? 12'000'000ull
                                                  : 48'000'000ull;
    const std::vector<std::uint32_t> ns = {100, 250, 500, 1000, 2000,
                                           4000};

    TablePrinter table("Ablation: estimate deviation vs sample count "
                       "N (bzip2, instruction queue, M = 1000)");
    table.setHeader({"N", "intervals", "mean online AVF",
                     "measured sd(err)", "bound 0.5/sqrt(N)",
                     "predicted sd at this AVF"});

    ExperimentEngine engine(options);
    for (auto n : ns) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile("bzip2");
        conf.online.n = n;
        conf.numIntervals = static_cast<int>(
            budget / (conf.online.m * static_cast<std::uint64_t>(n)));
        if (conf.numIntervals < 3)
            conf.numIntervals = 3;
        engine.submit("N=" + std::to_string(n), conf);
    }

    auto tasks = engine.collect();
    exportCampaignMetrics("ablation_n_sweep", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        std::uint32_t n = ns[task.index];
        const auto &result = task.result;

        stats::RunningStats err, avf;
        auto online = result.onlineSeries(Structure::IQ);
        auto reference = result.softarchSeries(Structure::IQ);
        for (std::size_t k = 0; k < online.size(); ++k) {
            err.add(online[k] - reference[k]);
            avf.add(reference[k]);
        }

        table.addRow({TablePrinter::intNum(n),
                      TablePrinter::intNum(static_cast<long long>(
                          online.size())),
                      TablePrinter::num(avf.mean()),
                      TablePrinter::num(err.stddev(), 4),
                      TablePrinter::num(
                          0.5 / std::sqrt(static_cast<double>(n)), 4),
                      TablePrinter::num(
                          stats::predictedSigma(
                              avf.mean(), static_cast<double>(n)),
                          4)});
    }
    table.print();
    std::printf("\nReading: measured deviation shrinks ~1/sqrt(N); at "
                "very small N the fixed-interval/round-robin "
                "approximation of random sampling (Sec. 3.3) shows up "
                "as mild excess correlation. N = 1000 buys sigma "
                "~0.016 at a 1M-cycle estimation interval.\n");
    return 0;
}
