/**
 * @file
 * Scenario bench: budget-exceeded storm. A two-phase workload
 * alternates calm stretches (heavy dead-value masking, shallow
 * dependency chains → low AVF) with vulnerability storms (live
 * long-lived values → high AVF). A baseline run measures the two
 * regimes' SOFR failure rates; the MTTF budget is then pinned between
 * them, so the calm phases sit inside the budget and every storm
 * drives the chip over it. The controlled run shows the BudgetArbiter
 * tripping on the storms, naming the highest-FIT structure first, and
 * the throttle shaving the storm AVF at an IPC cost.
 *
 * With AVF_METRICS set, the controlled task's full decision trail
 * lands in <prefix>_METRICS.json — render it with
 * `avf-report budget <prefix>_METRICS.json --task controlled`.
 */

#include <algorithm>
#include <cstdio>

#include "core/structures.hh"
#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "reliability/fit_model.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "util/logging.hh"

namespace
{

using namespace avf;
using namespace avf::harness;

/** Calm/storm alternation; each phase spans several intervals. */
trace::WorkloadProfile
stormProfile()
{
    trace::WorkloadProfile profile;
    profile.name = "budget_storm";

    trace::PhaseParams calm;
    calm.deadFrac = 0.35;
    calm.depRecency = 0.15;

    trace::PhaseParams storm;
    storm.deadFrac = 0.02;
    storm.depRecency = 0.65;
    storm.fpFrac = 0.25;
    storm.footprint = 2 * 1024 * 1024;

    profile.base = calm;
    profile.phases.push_back({calm, 400'000});
    profile.phases.push_back({storm, 400'000});
    return profile;
}

/** Mean SoftArch IQ AVF over a run (independent of the controller). */
double
meanIqAvf(const ExperimentResult &result)
{
    stats::RunningStats avf;
    for (const auto &row : result.intervals)
        avf.add(row.softarch[static_cast<std::size_t>(
            core::Structure::IQ)]);
    return avf.mean();
}

} // namespace

int
main()
{
    using stats::TablePrinter;

    auto options = loadRunOptions(24);
    ExperimentConfig conf;
    conf.profile = stormProfile();
    conf.numIntervals = options.intervals;

    ExperimentEngine engine(options);

    // Pass 1: measure the uncontrolled failure-rate range.
    engine.submit("baseline", conf);
    auto baseTasks = engine.collect();
    auto &base = baseTasks.front();
    if (!base.ok())
        fatal("baseline failed: %s", base.errorText.c_str());

    reliability::FitModel model(
        reliability::defaultFitModel(conf.cpu));
    double fitLo = 0.0, fitHi = 0.0;
    bool first = true;
    for (const auto &row : base.result.intervals) {
        double fit = model.fit(row.softarch);
        fitLo = first ? fit : std::min(fitLo, fit);
        fitHi = first ? fit : std::max(fitHi, fit);
        first = false;
    }
    // Pin the budget between the calm and storm regimes: calm phases
    // comply, storms exceed. Degenerate (flat) runs fall back to a
    // budget below the observed rate so the loop still has work.
    double budgetFit = (fitLo + fitHi) / 2.0;
    if (budgetFit <= 0.0)
        budgetFit = 1.0;
    const double budgetHours = 1e9 / budgetFit;

    std::printf("Scenario: budget-exceeded storms (uncontrolled FIT "
                "%.3f..%.3f; budget %.3f FIT = %.4g h MTTF)\n\n",
                fitLo, fitHi, budgetFit, budgetHours);

    // Pass 2: same workload under the closed loop.
    ExperimentConfig controlled = conf;
    controlled.control.enabled = true;
    controlled.control.mttfBudgetHours = budgetHours;
    engine.submit("controlled", controlled);
    auto ctlTasks = engine.collect();
    auto &ctl = ctlTasks.front();
    if (!ctl.ok())
        fatal("controlled failed: %s", ctl.errorText.c_str());

    // Baseline stats before the merge below: push_back may
    // reallocate baseTasks and invalidate the `base` reference.
    const double baseIqAvf = meanIqAvf(base.result);
    const double baseIpc = base.result.summary.ipc;

    // One METRICS.json carrying both runs, decision trail included.
    baseTasks.push_back(std::move(ctlTasks.front()));
    exportCampaignMetrics("scenario_budget_storm", engine, baseTasks);
    const auto &result = baseTasks.back().result;

    TablePrinter table("Budget storms: uncontrolled vs closed loop");
    table.setHeader({"mode", "IQ AVF", "IPC", "over budget",
                     "throttled", "first target"});
    table.addRow({"baseline", TablePrinter::num(baseIqAvf),
                  TablePrinter::num(baseIpc, 2), "0",
                  TablePrinter::pct(0.0, 0), "-"});
    const auto &cs = result.control;
    double throttledShare = cs.intervals
        ? static_cast<double>(cs.throttledIntervals) /
              static_cast<double>(cs.intervals)
        : 0.0;
    std::string target = cs.firstTarget >= 0
        ? std::string(core::structureName(
              static_cast<core::Structure>(cs.firstTarget)))
        : "-";
    table.addRow({"controlled", TablePrinter::num(meanIqAvf(result)),
                  TablePrinter::num(result.summary.ipc, 2),
                  std::to_string(cs.budgetExceededIntervals),
                  TablePrinter::pct(throttledShare * 100, 0),
                  target});
    table.print();

    std::printf("\ncontrolled run: %llu intervals, %llu engagements, "
                "%llu actuations, %llu protect actions, projected "
                "MTTF %.4g h\n",
                static_cast<unsigned long long>(cs.intervals),
                static_cast<unsigned long long>(cs.engagements),
                static_cast<unsigned long long>(cs.actuations),
                static_cast<unsigned long long>(cs.protectActions),
                cs.projectedMttfHours);
    std::printf("\nReading: the arbiter trips exactly in the storm "
                "phases (over-budget intervals ~ the storms' share of "
                "the run), throttles the structure contributing the "
                "most FIT first, and releases in the calm phases — "
                "the decision trail is in `avf-report budget`.\n");
    return 0;
}
