/**
 * @file
 * Ablation for Section 3.3's sampling discussion: the paper injects
 * at fixed M-cycle boundaries because a hardware random-number
 * generator is expensive, arguing workload jitter supplies enough
 * randomization. This bench compares fixed-interval injection with
 * true uniform-random injection timing inside each window, per
 * structure, across three contrasting benchmarks.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/error_metrics.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

int
main()
{
    using namespace avf;
    using namespace avf::harness;
    using core::Structure;
    using stats::TablePrinter;

    auto options = loadRunOptions();
    const int intervals = options.fastMode ? 4 : 15;
    const std::vector<std::string> benches = {"bzip2", "swim", "mesa"};

    TablePrinter table("Ablation: fixed-interval vs randomized "
                       "injection timing (mean abs error vs SoftArch)");
    table.setHeader({"app", "structure", "fixed", "randomized",
                     "difference"});

    // Both sampling modes of every benchmark run concurrently: tasks
    // 2k are fixed-timing, tasks 2k+1 randomized.
    ExperimentEngine engine(options);
    for (const auto &name : benches) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(name);
        conf.numIntervals = intervals;
        engine.submit(name + ":fixed", conf);
        conf.online.randomizeInjectionTiming = true;
        engine.submit(name + ":randomized", conf);
    }

    auto tasks = engine.collect();
    exportCampaignMetrics("ablation_sampling", engine, tasks);
    for (const auto &task : tasks)
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());

    for (std::size_t pair = 0; pair < benches.size(); ++pair) {
        const auto &name = benches[pair];
        const auto &fixed = tasks[2 * pair].result;
        const auto &randomized = tasks[2 * pair + 1].result;

        for (int s = 0; s < core::numStructures; ++s) {
            auto structure = static_cast<Structure>(s);
            auto fixed_err = stats::summarizeErrors(
                stats::absoluteErrors(
                    fixed.onlineSeries(structure),
                    fixed.softarchSeries(structure)));
            auto rand_err = stats::summarizeErrors(
                stats::absoluteErrors(
                    randomized.onlineSeries(structure),
                    randomized.softarchSeries(structure)));
            table.addRow({name,
                          std::string(
                              core::structureName(structure)),
                          TablePrinter::num(fixed_err.mean, 4),
                          TablePrinter::num(rand_err.mean, 4),
                          TablePrinter::num(
                              fixed_err.mean - rand_err.mean, 4)});
        }
    }
    table.print();
    std::printf("\nReading: fixed-interval injection loses nothing "
                "against randomized timing — workload jitter already "
                "decorrelates the samples, as the paper argues. "
                "Randomized timing is in fact slightly *worse* here: "
                "an injection firing late in its window gets a "
                "shortened wait before the boundary clear, adding "
                "truncation error — a practical argument for the "
                "paper's fixed schedule.\n");
    return 0;
}
