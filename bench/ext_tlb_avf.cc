/**
 * @file
 * Extension experiment for the paper's footnote 1: "We were not able
 * to collect data for TLBs since a reasonable M value required for
 * effectively exercising them is close to 1 million cycles."
 *
 * We demonstrate exactly that. The dTLB carries per-entry error bits;
 * Algorithm 1 injects into its 128 slots and waits M cycles. A TLB
 * entry's error surfaces only when the entry translates *another*
 * access — and inter-use gaps for TLB entries run to the hundreds of
 * thousands of cycles. Sweeping M shows the online estimate rising
 * toward the exact ACE reference (computed by the TLB itself from
 * inter-use spans) only as M approaches 10^5..10^6 cycles.
 */

#include <cstdio>
#include <vector>

#include "core/tlb_estimator.hh"
#include "cpu/pipeline.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "harness/config_loader.hh"

int
main()
{
    using namespace avf;
    using stats::TablePrinter;

    const bool fast = harness::loadRunOptions().fastMode;
    // Per-M sample budget: enough injections for a stable estimate
    // (sigma <= 0.5/sqrt(800) ~ 0.018) while keeping the largest-M
    // rows affordable.
    const std::uint32_t n = fast ? 400 : 800;

    std::printf("Extension: online dTLB AVF estimation (equake), "
                "sweeping the wait window M\n");

    TablePrinter table("dTLB AVF estimate vs wait window M "
                       "(reference = exact inter-use ACE analysis)");
    table.setHeader({"M (cycles)", "injections", "online AVF",
                     "reference AVF", "coverage"});

    const std::vector<Cycle> ms = {1'000, 10'000, 50'000, 100'000,
                                   250'000};
    for (Cycle m : ms) {
        trace::SyntheticTraceGenerator gen(
            trace::specProfile("equake"));
        cpu::Pipeline pipe(cpu::CpuConfig{}, gen);
        core::TlbEstimatorConfig conf;
        conf.m = m;
        conf.n = n;
        core::TlbAvfEstimator est(pipe, conf);
        pipe.addObserver(&est);

        pipe.run(m * static_cast<Cycle>(n) + m);

        double online = est.estimates().empty() ? est.partialAvf()
                                                : est.meanEstimate();
        double reference = pipe.memory().dtlb().referenceAvf(
            pipe.now());
        table.addRow({TablePrinter::intNum(static_cast<long long>(m)),
                      TablePrinter::intNum(static_cast<long long>(
                          est.totalInjections())),
                      TablePrinter::num(online, 4),
                      TablePrinter::num(reference, 4),
                      TablePrinter::pct(reference > 0
                                            ? online / reference * 100
                                            : 0)});
    }
    table.print();

    std::printf("\nReading: with the paper's M = 1000 the dTLB "
                "estimate misses half or more of the vulnerability, "
                "because a TLB entry's error only surfaces at its "
                "*next* use and inter-use gaps are huge. The window "
                "must grow by one to two orders of magnitude before "
                "the estimate converges, making each N-injection "
                "estimate cost N x M = tens to hundreds of millions "
                "of cycles — precisely why the paper excluded TLBs "
                "(footnote 1). Synthetic page reuse is tighter than "
                "real SPEC's, so real hardware would need the full "
                "~10^6-cycle windows the footnote quotes.\n");
    return 0;
}
