/**
 * @file
 * Ablation for Section 3.4's choice of M: sweep the wait window and
 * show the truncation bias (errors that would eventually surface but
 * have not propagated to a failure point within M cycles) vanishing
 * as M grows past the propagation-time distribution of Figure 2.
 * The online estimate is biased LOW for small M and converges to the
 * SoftArch reference around the paper's M = 1000.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

int
main()
{
    using namespace avf;
    using namespace avf::harness;
    using core::Structure;
    using stats::TablePrinter;

    const std::vector<Cycle> ms = {50, 100, 250, 500, 1000, 2000,
                                   4000};
    auto options = loadRunOptions();
    const int intervals = options.fastMode ? 3 : 8;

    TablePrinter table("Ablation: truncation bias vs wait window M "
                       "(bzip2, N = 1000)");
    table.setHeader({"M", "IQ online", "IQ real", "IQ bias",
                     "REG online", "REG real", "REG bias"});

    // One engine task per M value; the sweep points are independent.
    ExperimentEngine engine(options);
    std::vector<Cycle> task_m;
    for (auto m : ms) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile("bzip2");
        conf.online.m = m;
        conf.numIntervals = intervals;
        engine.submit("M=" + std::to_string(m), conf);
        task_m.push_back(m);
    }

    auto tasks = engine.collect();
    exportCampaignMetrics("ablation_m_sweep", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        Cycle m = task_m[task.index];
        const auto &result = task.result;

        auto mean = [](const std::vector<double> &v) {
            stats::RunningStats s;
            for (double x : v)
                s.add(x);
            return s.mean();
        };
        double iq_on = mean(result.onlineSeries(Structure::IQ));
        double iq_sa = mean(result.softarchSeries(Structure::IQ));
        double reg_on = mean(result.onlineSeries(Structure::REG));
        double reg_sa = mean(result.softarchSeries(Structure::REG));

        table.addRow({TablePrinter::intNum(static_cast<long long>(m)),
                      TablePrinter::num(iq_on),
                      TablePrinter::num(iq_sa),
                      TablePrinter::num(iq_on - iq_sa),
                      TablePrinter::num(reg_on),
                      TablePrinter::num(reg_sa),
                      TablePrinter::num(reg_on - reg_sa)});
    }
    table.print();
    std::printf("\nReading: small M truncates slow-propagating errors "
                "(negative bias, strongest for the register file); by "
                "M = 1000 the bias is inside the statistical noise, "
                "matching the paper's choice.\n");
    return 0;
}
