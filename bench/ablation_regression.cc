/**
 * @file
 * Head-to-head with the Walcott-style regression estimator (Section
 * 2's other related-work approach): fit a ridge regression from
 * hardware-countable microarchitectural variables to AVF on a set of
 * TRAINING benchmarks (using the SoftArch reference as the offline
 * target), then apply it — as its proponents would online — to
 * HELD-OUT benchmarks. The paper's criticism is that "it is not
 * clear that the parameters calibrated for one set of workloads will
 * give accurate estimation for another set"; this bench measures
 * exactly that, with the paper's error-bit method as the yardstick
 * (it needs no calibration at all).
 *
 * All eleven data-collection runs fan out over the engine; the
 * per-interval feature vectors come back on ExperimentResult, so no
 * custom pipeline wiring is needed here.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/regression_estimator.hh"
#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/error_metrics.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

namespace
{

using namespace avf;
using namespace avf::harness;
using core::FeatureVector;
using core::Structure;

struct AppData
{
    std::vector<FeatureVector> features;
    std::vector<double> reference; // SoftArch IQ AVF
    std::vector<double> online;    // error-bit estimate
};

} // namespace

int
main()
{
    using stats::TablePrinter;

    auto options = loadRunOptions();
    const int intervals = options.fastMode ? 4 : 12;

    const std::vector<std::string> train_set = {
        "ammp", "bzip2", "equake", "lucas", "perlbmk", "swim"};
    const std::vector<std::string> test_set = {
        "art", "facerec", "mesa", "sixtrack", "wupwise"};

    ExperimentEngine engine(options);
    engine.onTaskDone([](const std::string &name, double wall_ms,
                         const RunSummary &) {
        std::fprintf(stderr, "finished %s in %.0f ms\n", name.c_str(),
                     wall_ms);
    });
    for (const auto &set : {train_set, test_set}) {
        for (const auto &bench : set) {
            ExperimentConfig conf;
            conf.profile = trace::specProfile(bench);
            conf.numIntervals = intervals;
            engine.submit(bench, conf);
        }
    }

    std::map<std::string, AppData> data;
    auto tasks = engine.collect();
    exportCampaignMetrics("ablation_regression", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        AppData d;
        d.features = task.result.features;
        d.reference = task.result.softarchSeries(Structure::IQ);
        d.online = task.result.onlineSeries(Structure::IQ);
        data[task.name] = std::move(d);
    }

    std::vector<FeatureVector> train_x;
    std::vector<double> train_y;
    for (const auto &bench : train_set) {
        const auto &d = data[bench];
        train_x.insert(train_x.end(), d.features.begin(),
                       d.features.end());
        train_y.insert(train_y.end(), d.reference.begin(),
                       d.reference.end());
    }

    core::LinearAvfModel model;
    model.fit(train_x, train_y);

    TablePrinter table("Regression (Walcott-style) vs error-bit "
                       "online estimation — IQ AVF mean abs error "
                       "vs SoftArch");
    table.setHeader({"app", "set", "regression", "online error-bit"});

    auto mean_err = [](const std::vector<double> &est,
                       const std::vector<double> &ref) {
        return stats::summarizeErrors(stats::absoluteErrors(est, ref))
            .mean;
    };

    double train_reg = 0, test_reg = 0, train_on = 0, test_on = 0;
    for (const auto &bench : train_set) {
        const auto &d = data[bench];
        double reg = mean_err(model.predictSeries(d.features),
                              d.reference);
        double online = mean_err(d.online, d.reference);
        train_reg += reg;
        train_on += online;
        table.addRow({bench, "train", TablePrinter::num(reg, 4),
                      TablePrinter::num(online, 4)});
    }
    for (const auto &bench : test_set) {
        const auto &d = data[bench];
        double reg = mean_err(model.predictSeries(d.features),
                              d.reference);
        double online = mean_err(d.online, d.reference);
        test_reg += reg;
        test_on += online;
        table.addRow({bench, "HELD-OUT", TablePrinter::num(reg, 4),
                      TablePrinter::num(online, 4)});
    }
    table.print();

    std::printf("\naverages: regression train %.4f -> held-out %.4f; "
                "error-bit %.4f -> %.4f\n",
                train_reg / train_set.size(),
                test_reg / test_set.size(),
                train_on / train_set.size(),
                test_on / test_set.size());
    std::printf("\nReading: the regression fits its training "
                "workloads but degrades on held-out ones (the "
                "calibration-transfer problem the paper calls out), "
                "while the error-bit method needs no calibration and "
                "is uniformly accurate.\n");
    return 0;
}
