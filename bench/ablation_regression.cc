/**
 * @file
 * Head-to-head with the Walcott-style regression estimator (Section
 * 2's other related-work approach): fit a ridge regression from
 * hardware-countable microarchitectural variables to AVF on a set of
 * TRAINING benchmarks (using the SoftArch reference as the offline
 * target), then apply it — as its proponents would online — to
 * HELD-OUT benchmarks. The paper's criticism is that "it is not
 * clear that the parameters calibrated for one set of workloads will
 * give accurate estimation for another set"; this bench measures
 * exactly that, with the paper's error-bit method as the yardstick
 * (it needs no calibration at all).
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/online_estimator.hh"
#include "core/regression_estimator.hh"
#include "cpu/pipeline.hh"
#include "softarch/ace_analyzer.hh"
#include "stats/error_metrics.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "util/env.hh"

namespace
{

using namespace avf;
using core::FeatureVector;
using core::Structure;

struct AppData
{
    std::vector<FeatureVector> features;
    std::vector<double> reference; // SoftArch IQ AVF
    std::vector<double> online;    // error-bit estimate
};

AppData
collect(const std::string &bench, int intervals)
{
    trace::SyntheticTraceGenerator gen(trace::specProfile(bench));
    cpu::Pipeline pipe(cpu::CpuConfig{}, gen);

    core::OnlineConfig online_conf; // M = N = 1000
    core::OnlineAvfEstimator online(pipe, Structure::IQ, online_conf);
    softarch::SoftArchConfig sa;
    softarch::AceAnalyzer reference(pipe, sa);
    const Cycle interval_len = online_conf.m * online_conf.n;
    core::FeatureCollector features(pipe, interval_len);
    pipe.addObserver(&online);
    pipe.addObserver(&reference);
    pipe.addObserver(&features);

    pipe.run(interval_len * static_cast<Cycle>(intervals) +
             sa.lookahead + online_conf.m);
    reference.finalizeAll(static_cast<std::size_t>(intervals - 1));

    AppData data;
    auto n = std::min<std::size_t>(
        {static_cast<std::size_t>(intervals),
         features.features().size(), reference.results().size(),
         online.estimates().size()});
    for (std::size_t k = 0; k < n; ++k) {
        data.features.push_back(features.features()[k]);
        data.reference.push_back(
            reference.results()[k][Structure::IQ]);
        data.online.push_back(online.estimates()[k]);
    }
    return data;
}

} // namespace

int
main()
{
    using stats::TablePrinter;
    const int intervals = envFlag("AVF_FAST") ? 4 : 12;

    const std::vector<std::string> train_set = {
        "ammp", "bzip2", "equake", "lucas", "perlbmk", "swim"};
    const std::vector<std::string> test_set = {
        "art", "facerec", "mesa", "sixtrack", "wupwise"};

    std::map<std::string, AppData> data;
    std::vector<FeatureVector> train_x;
    std::vector<double> train_y;
    for (const auto &bench : train_set) {
        std::fprintf(stderr, "training data: %s...\n", bench.c_str());
        data[bench] = collect(bench, intervals);
        const auto &d = data[bench];
        train_x.insert(train_x.end(), d.features.begin(),
                       d.features.end());
        train_y.insert(train_y.end(), d.reference.begin(),
                       d.reference.end());
    }
    for (const auto &bench : test_set) {
        std::fprintf(stderr, "held-out data: %s...\n", bench.c_str());
        data[bench] = collect(bench, intervals);
    }

    core::LinearAvfModel model;
    model.fit(train_x, train_y);

    TablePrinter table("Regression (Walcott-style) vs error-bit "
                       "online estimation — IQ AVF mean abs error "
                       "vs SoftArch");
    table.setHeader({"app", "set", "regression", "online error-bit"});

    auto mean_err = [](const std::vector<double> &est,
                       const std::vector<double> &ref) {
        return stats::summarizeErrors(stats::absoluteErrors(est, ref))
            .mean;
    };

    double train_reg = 0, test_reg = 0, train_on = 0, test_on = 0;
    for (const auto &bench : train_set) {
        const auto &d = data[bench];
        double reg = mean_err(model.predictSeries(d.features),
                              d.reference);
        double online = mean_err(d.online, d.reference);
        train_reg += reg;
        train_on += online;
        table.addRow({bench, "train", TablePrinter::num(reg, 4),
                      TablePrinter::num(online, 4)});
    }
    for (const auto &bench : test_set) {
        const auto &d = data[bench];
        double reg = mean_err(model.predictSeries(d.features),
                              d.reference);
        double online = mean_err(d.online, d.reference);
        test_reg += reg;
        test_on += online;
        table.addRow({bench, "HELD-OUT", TablePrinter::num(reg, 4),
                      TablePrinter::num(online, 4)});
    }
    table.print();

    std::printf("\naverages: regression train %.4f -> held-out %.4f; "
                "error-bit %.4f -> %.4f\n",
                train_reg / train_set.size(),
                test_reg / test_set.size(),
                train_on / train_set.size(),
                test_on / test_set.size());
    std::printf("\nReading: the regression fits its training "
                "workloads but degrades on held-out ones (the "
                "calibration-transfer problem the paper calls out), "
                "while the error-bit method needs no calibration and "
                "is uniformly accurate.\n");
    return 0;
}
