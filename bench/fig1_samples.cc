/**
 * @file
 * Reproduces Figure 1: the number of samples N needed as a function
 * of the true AVF for estimator standard deviations 0.01, 0.02, and
 * 0.05 (Equation 1), plus the conservative worst-case bounds quoted
 * in Section 3.3 (2500 samples for sigma 0.01, 625 for 0.02).
 */

#include <cstdio>
#include <vector>

#include "stats/sample_size.hh"
#include "stats/table_printer.hh"

int
main()
{
    using namespace avf::stats;

    const std::vector<double> sigmas = {0.01, 0.02, 0.05};

    std::vector<double> xs;
    std::vector<std::vector<double>> series(sigmas.size());
    std::vector<std::string> names;
    for (double sigma : sigmas) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "N(sigma=%.2f)", sigma);
        names.push_back(buf);
    }

    for (int step = 0; step <= 20; ++step) {
        double avf = static_cast<double>(step) / 20.0;
        xs.push_back(avf);
        for (std::size_t i = 0; i < sigmas.size(); ++i)
            series[i].push_back(samplesNeeded(avf, sigmas[i]));
    }

    printSeries("Figure 1: samples N needed vs AVF", "AVF", xs, names,
                series);

    std::printf("\nConservative bounds (AVF = 0.5 worst case):\n");
    for (double sigma : sigmas)
        std::printf("  sigma_Xbar <= %.2f  ->  N = %.0f\n", sigma,
                    samplesNeededConservative(sigma));
    std::printf("\nPaper's check: sigma 0.01 -> 2500 samples, "
                "sigma 0.02 -> 625 samples.\n");
    std::printf("With the paper's choice N = 1000, worst-case "
                "sigma_Xbar = %.4f.\n",
                predictedSigma(0.5, 1000.0));
    return 0;
}
