/**
 * @file
 * Reproduces Table 1: prints the simulated-processor parameters and
 * verifies each field of the default configuration matches the paper,
 * then runs a short sanity simulation to show the machine is alive.
 */

#include <atomic>
#include <cstdio>

#include "cpu/pipeline.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

namespace
{

using avf::cpu::CpuConfig;
using avf::stats::TablePrinter;

std::atomic<int> failures{0};

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "MISMATCH: %s\n", what);
        ++failures;
    }
}

} // namespace

int
main()
{
    CpuConfig conf;

    TablePrinter table("Table 1: Parameters for the simulated "
                       "processor");
    table.setHeader({"parameter", "value", "paper"});
    auto row = [&](const char *name, long long value,
                   long long paper) {
        table.addRow({name, TablePrinter::intNum(value),
                      TablePrinter::intNum(paper)});
        check(value == paper, name);
    };

    row("fetch rate (per cycle)", conf.fetchWidth, 8);
    row("retirement rate (group size)", conf.retireWidth, 5);
    row("integer units", conf.numFxu, 2);
    row("floating-point units", conf.numFpu, 2);
    row("load-store units", conf.numLsu, 2);
    row("branch units", conf.numBru, 1);
    row("FPU issue-queue entries", conf.fpIqEntries, 20);
    row("load/store/integer issue-queue entries",
        conf.intLsIqEntries, 36);
    row("branch issue-queue entries", conf.brIqEntries, 12);
    row("integer FU latency add", conf.intAluLatency, 1);
    row("integer FU latency multiply", conf.intMulLatency, 4);
    row("integer FU latency divide", conf.intDivLatency, 35);
    row("FP FU latency default", conf.fpAluLatency, 5);
    row("FP FU latency divide", conf.fpDivLatency, 28);
    row("integer register file", conf.intPhysRegs, 80);
    row("FP register file", conf.fpPhysRegs, 72);
    row("iTLB entries", conf.mem.itlb.entries, 128);
    row("dTLB entries", conf.mem.dtlb.entries, 128);
    row("instruction buffer entries", conf.fetchBufferEntries, 64);
    row("L1 D-cache bytes", static_cast<long long>(
        conf.mem.l1d.sizeBytes), 32 * 1024);
    row("L1 D-cache ways", conf.mem.l1d.ways, 2);
    row("L1 D-cache line bytes", conf.mem.l1d.lineBytes, 128);
    row("L1 I-cache bytes", static_cast<long long>(
        conf.mem.l1i.sizeBytes), 64 * 1024);
    row("L1 I-cache ways", conf.mem.l1i.ways, 1);
    row("L2 bytes", static_cast<long long>(conf.mem.l2.sizeBytes),
        1024 * 1024);
    row("L2 ways", conf.mem.l2.ways, 4);
    row("L1 latency (cycles)", conf.mem.l1Latency, 1);
    row("L2 latency (cycles)", conf.mem.l2Latency, 20);
    row("memory latency (cycles)", conf.mem.memLatency, 165);
    table.print();

    // Liveness: a short run on each of two contrasting workloads.
    std::printf("\nSanity runs (100k cycles each):\n");
    for (const char *bench : {"bzip2", "swim"}) {
        avf::trace::SyntheticTraceGenerator gen(
            avf::trace::specProfile(bench));
        avf::cpu::Pipeline pipe(conf, gen);
        pipe.run(100'000);
        std::printf("  %-8s IPC %.2f  branch-acc %.1f%%  "
                    "L1D miss %.1f%%  L2 miss %.1f%%\n",
                    bench, pipe.stats().ipc(),
                    pipe.branchPredictor().stats().accuracy() * 100.0,
                    pipe.memory().l1d().stats().missRate() * 100.0,
                    pipe.memory().l2().stats().missRate() * 100.0);
    }

    if (failures.load()) {
        std::fprintf(stderr, "\n%d parameter(s) differ from Table 1\n",
                     failures.load());
        return 1;
    }
    std::printf("\nAll parameters match Table 1.\n");
    return 0;
}
