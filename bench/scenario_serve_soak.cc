/**
 * @file
 * Serve-mode soak: drives the service layer the way the daemon does
 * — same campaign fanned out over 1/2/4 worker processes, then a
 * crash-resume sweep that rebuilds the exact on-disk state a SIGKILL
 * would leave after every checkpoint boundary (mid-campaign
 * checkpoint + torn trailing feed line) and resumes it.
 *
 * stdout is deterministic (byte-comparable across runs and worker
 * counts): the per-shard-count identity verdicts and the kill-point
 * sweep verdicts. Wall-clock throughput is a side channel and goes
 * to stderr, per the timing.hh contract.
 *
 * Usage: scenario_serve_soak [STATE_ROOT]   (default /tmp/avf_serve_soak)
 */

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>

#include "obs/feed_writer.hh"
#include "serve/campaign.hh"
#include "serve/checkpoint.hh"
#include "serve/protocol.hh"
#include "serve/sharder.hh"
#include "util/logging.hh"
#include "util/timing.hh"

namespace
{

using namespace avf;

serve::CampaignSpec
soakSpec()
{
    serve::CampaignSpec spec;
    spec.name = "soak";
    spec.benchmark = "bzip2";
    spec.intervals = 12;
    spec.sliceIntervals = 2;
    spec.m = 2000;
    spec.n = 120;
    spec.seedSalt = 11;
    spec.checkpointEverySlices = 1;
    return spec;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
ensureDir(const std::string &path)
{
    return ::mkdir(path.c_str(), 0775) == 0 || errno == EEXIST;
}

/**
 * Rebuild the on-disk state a daemon killed right after slice
 * @p killAfter's checkpoint would leave, then resume it.
 * @return true when the resumed feed equals @p referenceFeed.
 */
bool
killPointSurvives(const serve::CampaignSpec &spec,
                  const serve::StatePaths &paths,
                  std::uint64_t killAfter,
                  const std::string &referenceFeed)
{
    std::string error;
    obs::FeedWriter feed;
    if (!feed.create(paths.feedPath(spec.name), error) ||
        !feed.appendLine(serve::feedHeaderLine(spec), error))
        return false;

    serve::Checkpoint checkpoint;
    checkpoint.campaign = spec;
    bool ok = serve::runShardedSlices(
        spec, 0, killAfter, 1,
        [&](const harness::TaskResult &task, std::string &out) {
            auto slice = static_cast<std::uint64_t>(task.index);
            std::uint64_t base =
                slice * static_cast<std::uint64_t>(
                            spec.sliceIntervals);
            for (std::size_t k = 0;
                 k < task.result.intervals.size(); ++k) {
                if (!feed.appendLine(
                        serve::feedIntervalLine(
                            base + k, slice,
                            task.result.intervals[k]),
                        out))
                    return false;
            }
            serve::foldSliceIntoRollup(checkpoint.rollup, task);
            checkpoint.lastStates = task.result.estimatorStates;
            return true;
        },
        error);
    if (!ok || !feed.flushSync(error)) {
        warn("soak: kill-point setup failed: %s", error.c_str());
        return false;
    }
    checkpoint.slicesDone = killAfter;
    checkpoint.feedBytes = feed.bytesWritten();
    if (!serve::saveCheckpoint(checkpoint,
                               paths.checkpointPath(spec.name),
                               error) ||
        !feed.appendLine("{\"interval\":99,\"torn", error)) {
        warn("soak: kill-point setup failed: %s", error.c_str());
        return false;
    }
    feed.close();

    if (!serve::resumeCampaign(spec.name, paths, 2, error)) {
        warn("soak: resume failed: %s", error.c_str());
        return false;
    }
    return slurp(paths.feedPath(spec.name)) == referenceFeed;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string root =
        argc > 1 ? argv[1] : "/tmp/avf_serve_soak";
    if (!ensureDir(root))
        fatal("cannot create state root %s", root.c_str());

    const serve::CampaignSpec spec = soakSpec();
    timing::Stopwatch watch;

    // Phase 1: same campaign at 1/2/4 worker processes.
    std::string referenceFeed;
    std::printf("# serve soak: %s, %d intervals, %llu slices\n",
                spec.benchmark.c_str(), spec.intervals,
                static_cast<unsigned long long>(spec.numSlices()));
    std::printf("%-6s %-10s %s\n", "procs", "feed_bytes",
                "identical");
    for (int procs : {1, 2, 4}) {
        serve::StatePaths paths(root + "/procs" +
                                std::to_string(procs));
        if (!ensureDir(paths.dir))
            fatal("cannot create %s", paths.dir.c_str());
        std::string error;
        watch.start();
        if (!serve::runCampaignFresh(spec, paths, procs, error))
            fatal("campaign at %d procs failed: %s", procs,
                  error.c_str());
        const double ns = watch.stop();
        const std::string feedBytes =
            slurp(paths.feedPath(spec.name));
        if (procs == 1)
            referenceFeed = feedBytes;
        std::printf("%-6d %-10zu %s\n", procs, feedBytes.size(),
                    feedBytes == referenceFeed ? "yes" : "NO");
        std::fprintf(stderr,
                     "soak: %d procs: %.3f s (%.1f slices/s)\n",
                     procs, ns * 1e-9,
                     static_cast<double>(spec.numSlices()) * 1e9 /
                         ns);
    }

    // Phase 2: resume from every checkpoint boundary.
    std::printf("\n# crash-resume sweep (kill after slice K's "
                "checkpoint, torn tail, resume)\n");
    std::printf("%-6s %s\n", "K", "feed_identical");
    bool allSurvived = true;
    serve::StatePaths killPaths(root + "/killpoints");
    if (!ensureDir(killPaths.dir))
        fatal("cannot create %s", killPaths.dir.c_str());
    for (std::uint64_t k = 0; k < spec.numSlices(); ++k) {
        watch.start();
        const bool survived =
            killPointSurvives(spec, killPaths, k, referenceFeed);
        const double ns = watch.stop();
        allSurvived = allSurvived && survived;
        std::printf("%-6llu %s\n",
                    static_cast<unsigned long long>(k),
                    survived ? "yes" : "NO");
        std::fprintf(stderr, "soak: kill point %llu: %.3f s\n",
                     static_cast<unsigned long long>(k),
                     ns * 1e-9);
    }

    std::printf("\nresult: %s\n",
                allSurvived ? "all kill points byte-identical"
                            : "IDENTITY VIOLATION");
    return allSurvived ? 0 : 1;
}
