/**
 * @file
 * Scenario bench: phase-change transients. A workload that flips
 * between low- and high-vulnerability phases stresses the threshold
 * controller's predictor: a slow EMA (small alpha) smooths over the
 * phase boundary and reacts late (or not at all), a fast EMA tracks
 * the flip almost as last-value prediction does. The bench derives
 * the engage threshold from the uncontrolled run's AVF range, then
 * sweeps the predictor's alpha and reports how the controller's
 * transition behaviour and the achieved AVF/IPC trade change.
 */

#include <cstdio>

#include "core/structures.hh"
#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "util/logging.hh"

namespace
{

using namespace avf;
using namespace avf::harness;

/** Alternating low/high vulnerability phases. */
trace::WorkloadProfile
phasedProfile()
{
    trace::WorkloadProfile profile;
    profile.name = "phase_change";

    trace::PhaseParams low;
    low.deadFrac = 0.30;
    low.depRecency = 0.18;

    trace::PhaseParams high;
    high.deadFrac = 0.03;
    high.depRecency = 0.60;

    profile.base = low;
    profile.phases.push_back({low, 300'000});
    profile.phases.push_back({high, 300'000});
    return profile;
}

double
meanIqAvf(const ExperimentResult &result)
{
    stats::RunningStats avf;
    for (const auto &row : result.intervals)
        avf.add(row.softarch[static_cast<std::size_t>(
            core::Structure::IQ)]);
    return avf.mean();
}

} // namespace

int
main()
{
    using stats::TablePrinter;

    auto options = loadRunOptions(24);
    ExperimentConfig conf;
    conf.profile = phasedProfile();
    conf.numIntervals = options.intervals;

    ExperimentEngine engine(options);
    engine.submit("baseline", conf);
    auto baseTasks = engine.collect();
    auto &base = baseTasks.front();
    if (!base.ok())
        fatal("baseline failed: %s", base.errorText.c_str());

    // Engage halfway between the phases' online IQ AVF extremes, so
    // the controller must follow every phase flip.
    double avfLo = 1.0, avfHi = 0.0;
    for (const auto &row : base.result.intervals) {
        double avf = row.online[static_cast<std::size_t>(
            core::Structure::IQ)];
        avfLo = std::min(avfLo, avf);
        avfHi = std::max(avfHi, avf);
    }
    const double engage = (avfLo + avfHi) / 2.0;
    const double release = engage * 0.9 - 0.01;

    std::printf("Scenario: phase-change transients (online IQ AVF "
                "%.3f..%.3f; engage %.3f, release %.3f)\n\n",
                avfLo, avfHi, engage, release);

    TablePrinter table("Predictor smoothing vs transient response");
    table.setHeader({"alpha", "IQ AVF", "IPC", "engagements",
                     "actuations", "throttled"});
    table.addRow({"(none)",
                  TablePrinter::num(meanIqAvf(base.result)),
                  TablePrinter::num(base.result.summary.ipc, 2), "0",
                  "0", TablePrinter::pct(0.0, 0)});

    for (double alpha : {0.2, 0.5, 0.9, 1.0}) {
        ExperimentConfig swept = conf;
        swept.control.enabled = true;
        swept.control.throttle.engageThreshold = engage;
        swept.control.throttle.releaseThreshold = release;
        swept.control.throttle.predictorAlpha = alpha;
        char name[32];
        std::snprintf(name, sizeof(name), "alpha_%.1f", alpha);
        engine.submit(name, swept);
    }
    auto tasks = engine.collect();
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        const auto &cs = task.result.control;
        double share = cs.intervals
            ? static_cast<double>(cs.throttledIntervals) /
                  static_cast<double>(cs.intervals)
            : 0.0;
        table.addRow({task.name.substr(6),
                      TablePrinter::num(meanIqAvf(task.result)),
                      TablePrinter::num(task.result.summary.ipc, 2),
                      std::to_string(cs.engagements),
                      std::to_string(cs.actuations),
                      TablePrinter::pct(share * 100, 0)});
    }
    table.print();
    for (auto &task : tasks)
        baseTasks.push_back(std::move(task));
    exportCampaignMetrics("scenario_phase_change", engine, baseTasks);

    std::printf("\nReading: alpha = 1.0 is last-value prediction — "
                "the controller transitions at (nearly) every phase "
                "flip; small alpha smooths the flips away, reacting "
                "late into each vulnerable phase or never engaging. "
                "Actuations stay equal to transitions: steady "
                "decisions never re-issue the throttle.\n");
    return 0;
}
