/**
 * @file
 * Extension experiment: the paper evaluates the *integer* register
 * file only; its REG treatment applies to the FP register file
 * unchanged. This bench validates the FREG channel the same way
 * Figure 3 validates REG: per-application absolute error of the
 * online estimate against the SoftArch reference, next to the mean
 * AVF of both register files for context. FP-heavy codes carry real
 * FREG vulnerability; integer codes are near zero.
 */

#include <cstdio>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/error_metrics.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

int
main()
{
    using namespace avf;
    using namespace avf::harness;
    using core::Structure;
    using stats::TablePrinter;

    auto options = loadRunOptions(40);
    std::printf("Extension: FP register file AVF (M = N = 1000, %d "
                "intervals per application)\n", options.intervals);

    TablePrinter table("FREG extension: online vs SoftArch, with "
                       "integer REG for comparison");
    table.setHeader({"app", "freg real", "freg online", "abs err mean",
                     "abs err max", "reg real"});

    ExperimentEngine engine(options);
    engine.onTaskDone([](const std::string &name, double wall_ms,
                         const RunSummary &) {
        std::fprintf(stderr, "finished %s in %.0f ms\n", name.c_str(),
                     wall_ms);
    });
    for (const auto &name : trace::specBenchmarkNames()) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(name);
        conf.numIntervals = options.intervals;
        engine.submit(name, conf);
    }

    auto tasks = engine.collect();
    exportCampaignMetrics("ext_fpreg", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        const auto &name = task.name;
        const auto &result = task.result;

        auto mean = [](const std::vector<double> &v) {
            stats::RunningStats s;
            for (double x : v)
                s.add(x);
            return s.mean();
        };
        auto reference = result.softarchSeries(Structure::FREG);
        auto online = result.onlineSeries(Structure::FREG);
        auto err = stats::summarizeErrors(
            stats::absoluteErrors(online, reference));

        table.addRow({name, TablePrinter::num(mean(reference)),
                      TablePrinter::num(mean(online)),
                      TablePrinter::num(err.mean),
                      TablePrinter::num(err.maxExcl),
                      TablePrinter::num(mean(
                          result.softarchSeries(Structure::REG)))});
    }
    table.print();
    std::printf("\nReading: on FP codes the same error-bit machinery "
                "estimates the FP register file with Figure 3-class "
                "accuracy. On the two integer codes (bzip2, perlbmk) "
                "it *under*estimates: their few live FP values are "
                "long-lived constants re-read thousands of cycles "
                "apart, so errors injected into them out-wait the "
                "M = 1000 window — the same rare-touch truncation as "
                "the TLB experiment (ext_tlb_avf), emerging here "
                "naturally. Section 3.4's caveat that 'other "
                "structures may require larger values of M' applies "
                "per structure AND per workload.\n");
    return 0;
}
