/**
 * @file
 * google-benchmark microbenchmarks: simulator throughput with and
 * without the estimation machinery attached (the paper argues the
 * hardware overhead is negligible; here we show the *simulation*
 * overhead of the error-bit plane and the observers), plus component
 * throughputs (trace generation, cache access, ACE analysis) and the
 * campaign engine's fan-out throughput at several worker counts.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/online_estimator.hh"
#include "cpu/pipeline.hh"
#include "harness/engine.hh"
#include "mem/hierarchy.hh"
#include "obs/lifecycle.hh"
#include "softarch/ace_analyzer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace avf;

void
BM_SyntheticGenerator(benchmark::State &state)
{
    trace::SyntheticTraceGenerator gen(trace::specProfile("mesa"));
    trace::TraceInstruction in;
    for (auto _ : state) {
        gen.next(in);
        benchmark::DoNotOptimize(in);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticGenerator);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::MemoryHierarchy hier;
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hier.dataAccess(addr));
        addr = (addr + 64) & 0x3FFFFF;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_PipelineBare(benchmark::State &state)
{
    trace::SyntheticTraceGenerator gen(trace::specProfile("mesa"));
    cpu::Pipeline pipe(cpu::CpuConfig{}, gen);
    for (auto _ : state)
        pipe.step();
    state.SetItemsProcessed(state.iterations());
    state.counters["ipc"] = pipe.stats().ipc();
}
BENCHMARK(BM_PipelineBare)->Unit(benchmark::kMicrosecond);

void
BM_PipelineWithEstimators(benchmark::State &state)
{
    trace::SyntheticTraceGenerator gen(trace::specProfile("mesa"));
    cpu::Pipeline pipe(cpu::CpuConfig{}, gen);
    std::vector<std::unique_ptr<core::OnlineAvfEstimator>> ests;
    for (int s = 0; s < core::numStructures; ++s) {
        ests.push_back(std::make_unique<core::OnlineAvfEstimator>(
            pipe, static_cast<core::Structure>(s)));
        pipe.addObserver(ests.back().get());
    }
    for (auto _ : state)
        pipe.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineWithEstimators)->Unit(benchmark::kMicrosecond);

void
BM_PipelineWithLifecycle(benchmark::State &state)
{
    // Estimator configuration identical to BM_PipelineWithEstimators,
    // plus the lifecycle tracker and hop events: the delta between
    // the two is the full cost of injection-lifecycle tracing. With
    // -DAVF_LIFECYCLE_HOOKS=OFF the hop sites compile out and this
    // converges to BM_PipelineWithEstimators.
    trace::SyntheticTraceGenerator gen(trace::specProfile("mesa"));
    cpu::Pipeline pipe(cpu::CpuConfig{}, gen);
    obs::LifecycleConfig lc_conf;
    lc_conf.enabled = true;
    obs::LifecycleTracker tracker(lc_conf);
    pipe.addObserver(&tracker);
    pipe.setHopSink(&tracker);
    std::vector<std::unique_ptr<core::OnlineAvfEstimator>> ests;
    for (int s = 0; s < core::numStructures; ++s) {
        ests.push_back(std::make_unique<core::OnlineAvfEstimator>(
            pipe, static_cast<core::Structure>(s)));
        ests.back()->setLifecycleSink(&tracker);
        pipe.addObserver(ests.back().get());
    }
    for (auto _ : state)
        pipe.step();
    state.SetItemsProcessed(state.iterations());
    state.counters["records"] = static_cast<double>(
        tracker.summary().totalClosed());
}
BENCHMARK(BM_PipelineWithLifecycle)->Unit(benchmark::kMicrosecond);

void
BM_PipelineFullHarness(benchmark::State &state)
{
    trace::SyntheticTraceGenerator gen(trace::specProfile("mesa"));
    cpu::Pipeline pipe(cpu::CpuConfig{}, gen);
    std::vector<std::unique_ptr<core::OnlineAvfEstimator>> ests;
    for (int s = 0; s < core::numStructures; ++s) {
        ests.push_back(std::make_unique<core::OnlineAvfEstimator>(
            pipe, static_cast<core::Structure>(s)));
        pipe.addObserver(ests.back().get());
    }
    softarch::AceAnalyzer analyzer(pipe);
    pipe.addObserver(&analyzer);
    for (auto _ : state)
        pipe.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineFullHarness)->Unit(benchmark::kMicrosecond);

void
BM_ErrorChannelClear(benchmark::State &state)
{
    trace::SyntheticTraceGenerator gen(trace::specProfile("mesa"));
    cpu::Pipeline pipe(cpu::CpuConfig{}, gen);
    pipe.run(10'000);
    for (auto _ : state) {
        // Benchmarks the raw primitive itself, not campaign logic.
        pipe.injectRegError(5, 1); // avflint: allow(injection-port-discipline)
        pipe.clearErrorChannels(1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ErrorChannelClear);

void
BM_EngineCampaign(benchmark::State &state)
{
    // Four small experiments per batch; the per-task wall time
    // reported through onTaskDone is aggregated into a counter so
    // scheduling overhead (total - sum of task times) is visible.
    using namespace avf::harness;
    RunOptions options;
    options.threads = static_cast<unsigned>(state.range(0));
    double task_ms_total = 0.0;
    for (auto _ : state) {
        ExperimentEngine engine(options);
        engine.onTaskDone([&](const std::string &, double wall_ms,
                              const RunSummary &) {
            task_ms_total += wall_ms;
        });
        for (const char *name : {"mesa", "bzip2", "swim", "ammp"}) {
            ExperimentConfig conf;
            conf.profile = trace::specProfile(name);
            conf.numIntervals = 1;
            conf.online.m = 100;
            conf.online.n = 100;
            conf.lookahead = 4096;
            engine.submit(name, conf);
        }
        benchmark::DoNotOptimize(engine.collect());
    }
    state.SetItemsProcessed(state.iterations() * 4);
    state.counters["task_ms"] = task_ms_total /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_EngineCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
