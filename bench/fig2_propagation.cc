/**
 * @file
 * Reproduces Figure 2: the cumulative distribution of the time an
 * injected error takes to propagate to a failure point, for the
 * register file (a) and the FXU (b), on bzip2. This distribution is
 * what justifies the paper's choice of M = 1000: the wait window must
 * cover (nearly) the whole CDF or unmasked errors get truncated.
 */

#include <cstdio>
#include <vector>

#include "core/propagation_probe.hh"
#include "cpu/pipeline.hh"
#include "stats/histogram.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "harness/config_loader.hh"

namespace
{

using namespace avf;
using core::PropagationProbe;
using core::Structure;

void
report(const char *name, PropagationProbe &probe)
{
    stats::EmpiricalCdf cdf;
    for (double d : probe.delays())
        cdf.add(d);

    std::printf("\n== Figure 2(%s): error propagation time CDF "
                "(bzip2, %s) ==\n",
                name == std::string("register file") ? "a" : "b",
                name);
    std::printf("# failing injections: %zu, masked: %llu, total: "
                "%llu\n",
                probe.delays().size(),
                static_cast<unsigned long long>(probe.maskedCount()),
                static_cast<unsigned long long>(
                    probe.injectionCount()));
    std::printf("%-14s %s\n", "cycles", "CDF(failures <= cycles)");
    for (double t : {10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 700.0,
                     1000.0, 2000.0, 5000.0, 10000.0, 20000.0})
        std::printf("%-14.0f %.4f\n", t, cdf.at(t));
    std::printf("coverage at the paper's M = 1000: %.1f%% of "
                "eventually-failing errors\n",
                cdf.at(1000.0) * 100.0);
    std::printf("p50 = %.0f cycles, p95 = %.0f, p99 = %.0f\n",
                cdf.quantile(0.5), cdf.quantile(0.95),
                cdf.quantile(0.99));
}

} // namespace

int
main()
{
    std::size_t target =
        harness::loadRunOptions().fastMode ? 300 : 1500;

    trace::SyntheticTraceGenerator gen(trace::specProfile("bzip2"));
    cpu::Pipeline pipe(cpu::CpuConfig{}, gen);

    core::ProbeConfig conf;
    conf.maxWait = 20'000;
    conf.targetSamples = target;

    PropagationProbe reg_probe(pipe, Structure::REG, conf);
    PropagationProbe fxu_probe(pipe, Structure::FXU, conf);
    pipe.addObserver(&reg_probe);
    pipe.addObserver(&fxu_probe);

    // Run until both probes are satisfied (bounded).
    const Cycle max_cycles = 400'000'000;
    while (pipe.now() < max_cycles &&
           !(reg_probe.finished() && fxu_probe.finished())) {
        pipe.run(1'000'000);
    }

    report("register file", reg_probe);
    report("FXU", fxu_probe);
    return 0;
}
