/**
 * @file
 * Scenario bench: root-cause attribution of a hot loop. The workload
 * alternates between a tight loop phase (few static branch sites,
 * long dependency chains, almost nothing dead) and a streaming scan
 * phase (many branch sites, heavy masking). The attribution tracker
 * charges every failed injection window to the retiring instruction
 * that carried the corrupted bit out of the machine, so the loop's
 * handful of back-branch PCs should dominate the failure budget —
 * the per-instruction accountability view the `avf-report
 * root-cause` verb renders from the exported ROOTCAUSE.json.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "obs/attribution.hh"
#include "stats/table_printer.hh"
#include "trace/instruction.hh"
#include "util/logging.hh"

namespace
{

using namespace avf;
using namespace avf::harness;

/** Branch PCs sit at 0x10000 + 4 * site (trace/synthetic.cc). */
constexpr Addr branchPcBase = 0x10000;
constexpr int hotLoopSites = 4;

/** Tight hot loop alternating with a well-masked streaming scan. */
trace::WorkloadProfile
hotLoopProfile()
{
    trace::WorkloadProfile profile;
    profile.name = "root_cause";

    trace::PhaseParams loop;
    loop.branchFrac = 0.30;
    loop.numBranchSites = hotLoopSites;
    loop.deadFrac = 0.02;
    loop.depRecency = 0.65;
    loop.streamFrac = 0.0;

    trace::PhaseParams scan;
    scan.branchFrac = 0.05;
    scan.numBranchSites = 64;
    scan.deadFrac = 0.45;
    scan.depRecency = 0.15;
    scan.streamFrac = 0.9;

    profile.base = loop;
    profile.phases.push_back({loop, 300'000});
    profile.phases.push_back({scan, 300'000});
    return profile;
}

std::string
hex(Addr pc)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "0x%llx",
                  static_cast<unsigned long long>(pc));
    return buffer;
}

} // namespace

int
main()
{
    using stats::TablePrinter;

    auto options = loadRunOptions(24);
    ExperimentConfig conf;
    conf.profile = hotLoopProfile();
    conf.numIntervals = options.intervals;
    conf.attribution.enabled = true;

    ExperimentEngine engine(options);
    engine.submit("hot_loop", conf);
    auto tasks = engine.collect();
    auto &task = tasks.front();
    if (!task.ok())
        fatal("hot_loop failed: %s", task.errorText.c_str());

    const obs::AttributionSnapshot &attr = task.result.attribution;
    const std::uint64_t failures = attr.totalFailures();
    const std::uint64_t windows = attr.totalWindows();
    std::printf("Scenario: root-cause attribution (%llu failures "
                "over %llu injection windows, %zu blame sites)\n\n",
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(windows),
                attr.rows.size());
    if (failures == 0)
        fatal("no failures to attribute; the loop phase should "
              "produce plenty");

    // Fold the table to per-instruction identity (pc, op), summing
    // over units and phases — the `root-cause` verb's default view.
    std::map<std::pair<Addr, int>, std::uint64_t> perInstr;
    std::uint64_t loopFailures = 0;
    for (const obs::AttributionRow &row : attr.rows) {
        if (row.pc == 0)
            continue;
        perInstr[{row.pc, row.op}] += row.failures;
        if (row.pc >= branchPcBase &&
            row.pc < branchPcBase + 4 * hotLoopSites)
            loopFailures += row.failures;
    }
    std::vector<std::pair<std::pair<Addr, int>, std::uint64_t>>
        ranked(perInstr.begin(), perInstr.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });

    TablePrinter top("Top blamed instructions");
    top.setHeader({"pc", "op", "failures", "share"});
    const std::size_t shown = std::min<std::size_t>(ranked.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
        const auto &[key, count] = ranked[i];
        top.addRow({hex(key.first),
                    std::string(trace::opClassName(
                        static_cast<trace::OpClass>(key.second))),
                    std::to_string(count),
                    TablePrinter::pct(
                        100.0 * static_cast<double>(count) /
                            static_cast<double>(failures))});
    }
    top.print();

    TablePrinter units("Failure accountability by unit");
    units.setHeader({"unit", "windows", "live", "failures", "rate"});
    for (std::size_t u = 0; u < attr.units.size(); ++u) {
        std::uint64_t uWindows = 0, uLive = 0, uFailures = 0;
        for (const obs::AttributionRow &row : attr.rows) {
            if (row.unit != u)
                continue;
            uWindows += row.windows;
            uLive += row.live;
            uFailures += row.failures;
        }
        double rate = uWindows
            ? static_cast<double>(uFailures) /
                  static_cast<double>(uWindows)
            : 0.0;
        units.addRow({attr.units[u], std::to_string(uWindows),
                      std::to_string(uLive),
                      std::to_string(uFailures),
                      TablePrinter::num(rate, 4)});
    }
    units.print();

    const double loopShare = 100.0 *
        static_cast<double>(loopFailures) /
        static_cast<double>(failures);
    std::printf("\nHot-loop back-branches (%d sites at %s+) carry "
                "%.1f%% of all attributed failures.\n",
                hotLoopSites, hex(branchPcBase).c_str(), loopShare);

    exportCampaignRootCause("scenario_root_cause", engine, tasks);

    std::printf("\nReading: the loop phase's few static branches "
                "retire most of the corrupted bits, so a handful of "
                "PCs own the failure budget while the scan phase's "
                "masked mass (dead values, streaming stores) shows "
                "up as windows without blame. Run `avf-report "
                "root-cause` on the exported ROOTCAUSE.json (set "
                "AVF_METRICS) for the --by structure/opcode/phase "
                "views of the same table.\n");
    return 0;
}
