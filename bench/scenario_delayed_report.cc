/**
 * @file
 * Scenario bench: the delayed-error-reporting regime (after Jaulmes
 * et al., "Memory Vulnerability: A Case for Delaying Error
 * Reporting"): a configurable latency separates an estimation window
 * closing from the moment the controller may see its value. The bench
 * runs the budget-mode control loop on a storm workload while
 * sweeping that latency in multiples of the estimation interval, and
 * reports how late visibility erodes the loop's effect: the later
 * the controller learns of a storm, the longer the machine runs
 * unthrottled through it.
 */

#include <algorithm>
#include <cstdio>

#include "core/structures.hh"
#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "reliability/fit_model.hh"
#include "stats/running_stats.hh"
#include "stats/table_printer.hh"
#include "util/logging.hh"

namespace
{

using namespace avf;
using namespace avf::harness;

/** Calm/storm alternation (same regime as scenario_budget_storm). */
trace::WorkloadProfile
stormProfile()
{
    trace::WorkloadProfile profile;
    profile.name = "delayed_report";

    trace::PhaseParams calm;
    calm.deadFrac = 0.35;
    calm.depRecency = 0.15;

    trace::PhaseParams storm;
    storm.deadFrac = 0.02;
    storm.depRecency = 0.65;
    storm.fpFrac = 0.25;

    profile.base = calm;
    profile.phases.push_back({calm, 400'000});
    profile.phases.push_back({storm, 400'000});
    return profile;
}

double
meanIqAvf(const ExperimentResult &result)
{
    stats::RunningStats avf;
    for (const auto &row : result.intervals)
        avf.add(row.softarch[static_cast<std::size_t>(
            core::Structure::IQ)]);
    return avf.mean();
}

} // namespace

int
main()
{
    using stats::TablePrinter;

    auto options = loadRunOptions(24);
    ExperimentConfig conf;
    conf.profile = stormProfile();
    conf.numIntervals = options.intervals;

    // One estimation interval in cycles, mirroring the harness's
    // lane-compression arithmetic (ceil(N / per-estimator lanes)
    // window boundaries of M cycles each).
    core::OnlineConfig online = conf.online;
    const int perEst = std::max(
        1, std::min(options.lanes, 64 / core::numStructures));
    const Cycle intervalLen = online.m *
        ((online.n + static_cast<std::uint32_t>(perEst) - 1) /
         static_cast<std::uint32_t>(perEst));

    ExperimentEngine engine(options);
    engine.submit("baseline", conf);
    auto baseTasks = engine.collect();
    auto &base = baseTasks.front();
    if (!base.ok())
        fatal("baseline failed: %s", base.errorText.c_str());

    reliability::FitModel model(
        reliability::defaultFitModel(conf.cpu));
    double fitLo = 0.0, fitHi = 0.0;
    bool first = true;
    for (const auto &row : base.result.intervals) {
        double fit = model.fit(row.softarch);
        fitLo = first ? fit : std::min(fitLo, fit);
        fitHi = first ? fit : std::max(fitHi, fit);
        first = false;
    }
    double budgetFit = (fitLo + fitHi) / 2.0;
    if (budgetFit <= 0.0)
        budgetFit = 1.0;
    const double budgetHours = 1e9 / budgetFit;

    std::printf("Scenario: delayed error reporting (budget %.3f FIT; "
                "interval %llu cycles)\n\n", budgetFit,
                static_cast<unsigned long long>(intervalLen));

    TablePrinter table("Reporting latency vs control effectiveness");
    table.setHeader({"latency", "IQ AVF", "IPC", "over budget",
                     "throttled"});
    table.addRow({"(none)",
                  TablePrinter::num(meanIqAvf(base.result)),
                  TablePrinter::num(base.result.summary.ipc, 2), "0",
                  TablePrinter::pct(0.0, 0)});

    for (int mult : {0, 1, 4, 16}) {
        ExperimentConfig delayed = conf;
        delayed.control.enabled = true;
        delayed.control.mttfBudgetHours = budgetHours;
        delayed.control.reportLatencyCycles =
            intervalLen * static_cast<Cycle>(mult);
        char name[32];
        std::snprintf(name, sizeof(name), "latency_%dx", mult);
        engine.submit(name, delayed);
    }
    auto tasks = engine.collect();
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        const auto &cs = task.result.control;
        double share = cs.intervals
            ? static_cast<double>(cs.throttledIntervals) /
                  static_cast<double>(cs.intervals)
            : 0.0;
        table.addRow({task.name.substr(8),
                      TablePrinter::num(meanIqAvf(task.result)),
                      TablePrinter::num(task.result.summary.ipc, 2),
                      std::to_string(cs.budgetExceededIntervals),
                      TablePrinter::pct(share * 100, 0)});
    }
    table.print();
    for (auto &task : tasks)
        baseTasks.push_back(std::move(task));
    exportCampaignMetrics("scenario_delayed_report", engine,
                          baseTasks);

    std::printf("\nReading: at zero latency the loop throttles the "
                "storms as they happen; each added interval of "
                "reporting latency delays every decision by the same "
                "amount, so the machine rides further into each storm "
                "unprotected — vulnerability bought back by faster "
                "error reporting, the Jaulmes et al. trade.\n");
    return 0;
}
