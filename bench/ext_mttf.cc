/**
 * @file
 * Extension experiment: the design argument of the paper's
 * introduction, quantified. An AVF-oblivious design must provision
 * protection for the worst case (every bit ACE); an AVF-aware design
 * can provision against the measured vulnerability. Using the SOFR
 * failure-rate model on the Table 1 machine, we compute, per
 * benchmark: the worst-case FIT, the real (SoftArch) FIT, the FIT
 * inferred from the *online* estimates, and the protection coverage
 * each implies for a fixed MTTF goal — showing how much overhead
 * AVF knowledge saves and that online estimates are good enough to
 * provision from.
 */

#include <cstdio>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "reliability/fit_model.hh"
#include "reliability/mttf_tracker.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

int
main()
{
    using namespace avf;
    using namespace avf::harness;
    using namespace avf::reliability;
    using stats::TablePrinter;

    auto options = loadRunOptions(20);
    // Reliability goal expressed as this core's allocation of the
    // chip-level FIT budget (the usual way architects budget SER).
    const double fit_budget = 5.0;
    const double goal_hours = 1e9 / fit_budget;

    FitModel base_model(defaultFitModel(cpu::CpuConfig{}));
    std::printf("Extension: AVF-aware MTTF provisioning (SOFR, raw "
                "%.0e FIT/bit, budget %.1f FIT for these "
                "structures)\n",
                base_model.config().rawFitPerBit, fit_budget);
    std::printf("worst-case (AVF = 1) chip FIT: %.2f\n\n",
                base_model.worstCaseFit());

    TablePrinter table("Per-benchmark failure rates and required "
                       "protection coverage");
    table.setHeader({"app", "FIT real", "FIT online", "FIT worst",
                     "cov needed (real)", "cov needed (online)",
                     "cov needed (worst)"});

    ExperimentEngine engine(options);
    engine.onTaskDone([](const std::string &name, double wall_ms,
                         const RunSummary &) {
        std::fprintf(stderr, "finished %s in %.0f ms\n", name.c_str(),
                     wall_ms);
    });
    for (const auto &name : trace::specBenchmarkNames()) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(name);
        conf.numIntervals = options.intervals;
        engine.submit(name, conf);
    }

    auto tasks = engine.collect();
    exportCampaignMetrics("ext_mttf", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        const auto &name = task.name;
        const auto &result = task.result;

        MttfTracker real_tracker(base_model, goal_hours);
        MttfTracker online_tracker(base_model, goal_hours);
        for (const auto &row : result.intervals) {
            real_tracker.observe(row.softarch);
            online_tracker.observe(row.online);
        }

        // Coverage needed assuming worst-case AVF everywhere.
        MttfTracker worst_tracker(base_model, goal_hours);
        std::array<double, core::numStructures> worst{};
        worst.fill(1.0);
        worst_tracker.observe(worst);

        table.addRow({name,
                      TablePrinter::num(real_tracker.averageFit(), 2),
                      TablePrinter::num(online_tracker.averageFit(),
                                        2),
                      TablePrinter::num(worst_tracker.averageFit(), 2),
                      TablePrinter::pct(
                          real_tracker.requiredCoverage() * 100, 1),
                      TablePrinter::pct(
                          online_tracker.requiredCoverage() * 100, 1),
                      TablePrinter::pct(
                          worst_tracker.requiredCoverage() * 100,
                          1)});
    }
    table.print();

    std::printf("\nReading: provisioning from the online estimates "
                "matches ground truth within a few percent of "
                "coverage (slightly low at high AVF, the M-window "
                "truncation), while worst-case provisioning demands "
                "far more protection than the workloads ever need — "
                "the paper's motivation, in MTTF terms.\n");
    return 0;
}
