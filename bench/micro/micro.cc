#include "micro.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "util/logging.hh"

namespace avf::micro
{

namespace
{

struct Registered
{
    std::string name;
    BenchFn fn;
};

/** Meyers singleton so registration works across TUs regardless of
 * static-init order. */
std::vector<Registered> &
registry()
{
    static std::vector<Registered> benches;
    return benches;
}

/** One timed repeat: @return ns per iteration and the items/iter. */
double
timeRepeat(BenchFn fn, std::uint64_t iters, std::uint64_t &itemsOut)
{
    Bench b;
    b.arm(iters);
    fn(b);
    itemsOut = b.itemsPerIter();
    avf_assert(b.nextCalls() == b.iterations() + 1,
               "benchmark body must drain the next() loop "
               "(%llu of %llu iterations)",
               static_cast<unsigned long long>(b.nextCalls()),
               static_cast<unsigned long long>(b.iterations()));
    return static_cast<double>(b.elapsedRawNs()) /
           static_cast<double>(iters ? iters : 1);
}

/**
 * Double the iteration count until one repeat takes at least
 * @p minTimeNs. Capped so a pathologically fast clock cannot spin
 * forever.
 */
std::uint64_t
calibrate(BenchFn fn, double minTimeNs)
{
    std::uint64_t iters = 1;
    for (int step = 0; step < 40; ++step) {
        Bench b;
        b.arm(iters);
        fn(b);
        if (static_cast<double>(b.elapsedRawNs()) >= minTimeNs)
            break;
        // Aim directly at the target once a measurable time exists,
        // else keep doubling.
        if (b.elapsedRawNs() > 1000) {
            double scale = minTimeNs /
                static_cast<double>(b.elapsedRawNs());
            auto next = static_cast<std::uint64_t>(
                static_cast<double>(iters) * scale * 1.2);
            iters = std::max(iters * 2, next);
        } else {
            iters *= 8;
        }
    }
    return iters;
}

Result
runOne(const Registered &bench, const Options &opts)
{
    const double min_time_ns = opts.minTimeMs * 1e6;
    const std::uint64_t iters = calibrate(bench.fn, min_time_ns);

    std::uint64_t items = 1;
    for (int w = 0; w < opts.warmupRepeats; ++w)
        timeRepeat(bench.fn, iters, items);

    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(opts.repeats));
    for (int r = 0; r < opts.repeats; ++r)
        samples.push_back(timeRepeat(bench.fn, iters, items));
    std::sort(samples.begin(), samples.end());

    Result res;
    res.name = bench.name;
    res.iterations = iters;
    res.repeats = opts.repeats;
    res.minNs = samples.front();
    res.maxNs = samples.back();
    std::size_t n = samples.size();
    res.medianNs = n % 2 ? samples[n / 2]
                         : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);

    // Trimmed mean: drop the top and bottom 20% (floor), keeping at
    // least one sample.
    std::size_t trim = n / 5;
    if (2 * trim >= n)
        trim = (n - 1) / 2;
    double total = 0.0;
    for (std::size_t i = trim; i < n - trim; ++i)
        total += samples[i];
    res.trimmedMeanNs = total / static_cast<double>(n - 2 * trim);

    double mean_all = 0.0;
    for (double s : samples)
        mean_all += s;
    mean_all /= static_cast<double>(n);
    double var = 0.0;
    for (double s : samples)
        var += (s - mean_all) * (s - mean_all);
    res.stddevNs = n > 1
        ? std::sqrt(var / static_cast<double>(n - 1))
        : 0.0;

    res.itemsPerSec = timing::ratePerSec(items, res.trimmedMeanNs);
    return res;
}

/**
 * Pull (name, trimmed_mean_ns) pairs out of a previous JSON report.
 * Only understands this harness's own writer format — one benchmark
 * object per line — which is all --compare is for.
 */
std::vector<std::pair<std::string, double>>
readBaseline(const std::string &path)
{
    std::vector<std::pair<std::string, double>> out;
    std::ifstream in(path);
    if (!in) {
        warn("bench/micro: cannot read baseline %s", path.c_str());
        return out;
    }
    std::string line;
    while (std::getline(in, line)) {
        auto name_pos = line.find("\"name\": \"");
        auto mean_pos = line.find("\"trimmed_mean_ns\": ");
        if (name_pos == std::string::npos ||
            mean_pos == std::string::npos)
            continue;
        name_pos += std::strlen("\"name\": \"");
        auto name_end = line.find('"', name_pos);
        if (name_end == std::string::npos)
            continue;
        mean_pos += std::strlen("\"trimmed_mean_ns\": ");
        try {
            out.emplace_back(
                line.substr(name_pos, name_end - name_pos),
                std::stod(line.substr(mean_pos)));
        } catch (...) {
            warn("bench/micro: malformed baseline line in %s",
                 path.c_str());
        }
    }
    return out;
}

void
writeJson(const std::vector<Result> &results, const Options &opts)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\n  \"schema\": \"avf-micro-v1\",\n  \"mode\": \""
        << (opts.smoke ? "smoke" : "full")
        << "\",\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        out << "    {\"name\": \"" << r.name
            << "\", \"iterations\": " << r.iterations
            << ", \"repeats\": " << r.repeats
            << ", \"trimmed_mean_ns\": " << r.trimmedMeanNs
            << ", \"median_ns\": " << r.medianNs
            << ", \"min_ns\": " << r.minNs
            << ", \"max_ns\": " << r.maxNs
            << ", \"stddev_ns\": " << r.stddevNs
            << ", \"items_per_sec\": " << r.itemsPerSec;
        if (r.baselineNs > 0.0)
            out << ", \"baseline_trimmed_mean_ns\": " << r.baselineNs
                << ", \"speedup\": " << r.speedup;
        out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";

    std::ofstream file(opts.outPath, std::ios::trunc);
    file << out.str();
    if (!file.flush())
        fatal("bench/micro: cannot write %s", opts.outPath.c_str());
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--smoke] [--filter SUBSTR] [--out FILE]\n"
        "          [--compare FILE] [--repeats N] [--warmup N]\n"
        "          [--min-time-ms X] [--list]\n"
        "Runs the registered microbenchmarks and writes a JSON\n"
        "report (default BENCH_micro.json). --smoke shrinks the\n"
        "protocol for CI smoke jobs; --compare reads a previous\n"
        "report and adds baseline/speedup fields.\n",
        argv0);
    return 2;
}

} // namespace

bool
registerBench(const char *name, BenchFn fn)
{
    registry().push_back({name, fn});
    return true;
}

int
runMain(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("bench/micro: %s needs a value",
                      std::string(arg).c_str());
            return argv[++i];
        };
        if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--list") {
            opts.listOnly = true;
        } else if (arg == "--filter") {
            opts.filter = value();
        } else if (arg == "--out") {
            opts.outPath = value();
        } else if (arg == "--compare") {
            opts.comparePath = value();
        } else if (arg == "--repeats") {
            opts.repeats = std::atoi(value());
        } else if (arg == "--warmup") {
            opts.warmupRepeats = std::atoi(value());
        } else if (arg == "--min-time-ms") {
            opts.minTimeMs = std::atof(value());
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "bench/micro: unknown option '%s'\n",
                         std::string(arg).c_str());
            return usage(argv[0]);
        }
    }
    if (opts.smoke) {
        // Smoke protocol: enough to catch crashes and gross
        // regressions, small enough for a CI job (<60 s total).
        opts.warmupRepeats = 1;
        opts.repeats = 5;
        opts.minTimeMs = 2.0;
    }
    if (opts.repeats < 1 || opts.warmupRepeats < 0 ||
        opts.minTimeMs <= 0.0)
        fatal("bench/micro: invalid protocol parameters");

    auto benches = registry();
    std::sort(benches.begin(), benches.end(),
              [](const Registered &a, const Registered &b) {
                  return a.name < b.name;
              });

    if (opts.listOnly) {
        for (const auto &bench : benches)
            std::printf("%s\n", bench.name.c_str());
        return 0;
    }

    auto baseline = opts.comparePath.empty()
        ? std::vector<std::pair<std::string, double>>{}
        : readBaseline(opts.comparePath);

    std::vector<Result> results;
    for (const auto &bench : benches) {
        if (!opts.filter.empty() &&
            bench.name.find(opts.filter) == std::string::npos)
            continue;
        Result res = runOne(bench, opts);
        for (const auto &[name, ns] : baseline) {
            if (name == res.name && ns > 0.0) {
                res.baselineNs = ns;
                res.speedup = ns / res.trimmedMeanNs;
                break;
            }
        }
        char vs_baseline[48] = "";
        if (res.speedup > 0.0)
            std::snprintf(vs_baseline, sizeof vs_baseline,
                          "  %.2fx vs baseline", res.speedup);
        std::fprintf(stderr,
                     "%-34s %12.1f ns/iter  (median %.1f, "
                     "stddev %.1f, %llu iters x %d)%s\n",
                     res.name.c_str(), res.trimmedMeanNs,
                     res.medianNs, res.stddevNs,
                     static_cast<unsigned long long>(res.iterations),
                     res.repeats, vs_baseline);
        results.push_back(std::move(res));
    }

    if (results.empty()) {
        std::fprintf(stderr, "bench/micro: no benchmarks matched\n");
        return 1;
    }
    writeJson(results, opts);
    std::fprintf(stderr, "bench/micro: wrote %zu result%s to %s\n",
                 results.size(), results.size() == 1 ? "" : "s",
                 opts.outPath.c_str());
    return 0;
}

} // namespace avf::micro
