/**
 * @file
 * bench/micro entry point. The benchmarks self-register from the
 * bm_*.cc translation units; runMain() handles the CLI, protocol,
 * and the BENCH_micro.json report.
 */

#include "micro.hh"

int
main(int argc, char **argv)
{
    return avf::micro::runMain(argc, argv);
}
