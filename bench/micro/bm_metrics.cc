/**
 * @file
 * Hot paths of the obs/metrics registry: counter increments through a
 * pre-registered Id (the cost every instrumented site pays), histogram
 * observation, and the end-of-run snapshot + campaign merge +
 * serialization path that collect() executes once per task. The
 * acceptance bar for the observability layer is that recording stays
 * an array add — these numbers are the canary.
 */

#include "micro.hh"

#include <sstream>

#include "obs/metrics.hh"

namespace
{

using avf::obs::MetricsShard;
using avf::obs::MetricsSnapshot;

/** A shard shaped like collectRunMetrics() output: a realistic mix. */
MetricsShard
populatedShard()
{
    MetricsShard shard;
    auto cycles = shard.registerCounter("bm_cycles_total");
    auto retired = shard.registerCounter("bm_retired_total");
    auto ipc = shard.registerGauge("bm_ipc");
    auto hist = shard.registerHistogram("bm_avf_hist", 0.0, 1.0, 20);
    auto series = shard.registerSeries("bm_avf");
    for (int i = 0; i < 100; ++i) {
        shard.inc(cycles, 1000);
        shard.inc(retired, 800);
        shard.observe(hist, (i % 20) * 0.05);
        shard.push(series, (i % 20) * 0.05);
    }
    shard.set(ipc, 0.8);
    return shard;
}

} // namespace

AVF_MICROBENCH(metrics_counter_inc)
{
    MetricsShard shard;
    auto id = shard.registerCounter("bm_inc_total");
    b.setItems(64);
    while (b.next()) {
        for (int i = 0; i < 64; ++i)
            shard.inc(id);
        avf::micro::clobberMemory();
    }
    avf::micro::doNotOptimize(shard);
}

AVF_MICROBENCH(metrics_histogram_observe)
{
    MetricsShard shard;
    auto id = shard.registerHistogram("bm_obs_hist", 0.0, 1.0, 20);
    b.setItems(64);
    double x = 0.0;
    while (b.next()) {
        for (int i = 0; i < 64; ++i) {
            shard.observe(id, x);
            x += 0.0173;
            if (x >= 1.0)
                x -= 1.0;
        }
        avf::micro::clobberMemory();
    }
    avf::micro::doNotOptimize(shard);
}

AVF_MICROBENCH(metrics_snapshot_merge)
{
    MetricsShard shard = populatedShard();
    while (b.next()) {
        MetricsSnapshot totals = shard.snapshot();
        totals.mergeTotals(shard.snapshot());
        avf::micro::doNotOptimize(totals);
    }
}

AVF_MICROBENCH(metrics_write_json)
{
    MetricsSnapshot snap = populatedShard().snapshot();
    while (b.next()) {
        std::ostringstream out;
        snap.writeJson(out, 4);
        avf::micro::doNotOptimize(out);
    }
}
