/**
 * @file
 * BitVector primitives: popcount and clear as used by the error-bit
 * planes, plus the word-level merge/kill operators next to per-bit
 * reference loops so the JSON report shows the word-vs-bit gap
 * directly.
 */

#include "micro.hh"

#include "util/bitvector.hh"

namespace
{

using avf::BitVector;

constexpr std::size_t benchBits = 4096;

BitVector
patterned()
{
    BitVector bits(benchBits);
    for (std::size_t i = 0; i < benchBits; i += 7)
        bits.set(i);
    return bits;
}

} // namespace

AVF_MICROBENCH(bitvector_popcount)
{
    BitVector bits = patterned();
    b.setItems(benchBits);
    while (b.next())
        avf::micro::doNotOptimize(bits.count());
}

AVF_MICROBENCH(bitvector_clear_all)
{
    BitVector bits = patterned();
    b.setItems(benchBits);
    while (b.next()) {
        bits.clearAll();
        avf::micro::doNotOptimize(bits);
    }
}

AVF_MICROBENCH(bitvector_or_words)
{
    BitVector dst = patterned();
    BitVector src(benchBits);
    for (std::size_t i = 0; i < benchBits; i += 3)
        src.set(i);
    b.setItems(benchBits);
    while (b.next()) {
        dst.orWith(src);
        avf::micro::doNotOptimize(dst);
    }
}

AVF_MICROBENCH(bitvector_or_perbit)
{
    // Reference per-bit carry loop the word-level orWith replaces.
    BitVector dst = patterned();
    BitVector src(benchBits);
    for (std::size_t i = 0; i < benchBits; i += 3)
        src.set(i);
    b.setItems(benchBits);
    while (b.next()) {
        for (std::size_t i = 0; i < benchBits; ++i)
            if (src.test(i))
                dst.set(i);
        avf::micro::doNotOptimize(dst);
    }
}

AVF_MICROBENCH(bitvector_andnot_words)
{
    BitVector dst = patterned();
    BitVector kill(benchBits);
    for (std::size_t i = 0; i < benchBits; i += 5)
        kill.set(i);
    b.setItems(benchBits);
    while (b.next()) {
        dst.andNotWith(kill);
        avf::micro::doNotOptimize(dst);
    }
}

AVF_MICROBENCH(bitvector_andnot_perbit)
{
    // Reference per-bit kill loop the word-level andNotWith replaces.
    BitVector dst = patterned();
    BitVector kill(benchBits);
    for (std::size_t i = 0; i < benchBits; i += 5)
        kill.set(i);
    b.setItems(benchBits);
    while (b.next()) {
        for (std::size_t i = 0; i < benchBits; ++i)
            if (kill.test(i))
                dst.reset(i);
        avf::micro::doNotOptimize(dst);
    }
}
