/**
 * @file
 * Full ExperimentEngine campaigns at 1, 4, and 8 workers: four small
 * single-interval experiments per campaign, the engine's submit /
 * fan-out / submission-order collect cycle included. One iteration =
 * one campaign; items_per_sec is experiments/sec. On a single-core
 * host the worker counts measure scheduling overhead, not speedup —
 * the numbers are still the regression canary for engine dispatch.
 */

#include "micro.hh"

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"

namespace
{

using namespace avf;
using namespace avf::harness;

void
runCampaignOnce(unsigned threads)
{
    RunOptions options;
    options.threads = threads;
    // AVF_LANES picks the injection parallelism (default 64), so the
    // bench-smoke job can compare serial vs lane-parallel campaigns.
    options.lanes = lanesFromEnv();
    ExperimentEngine engine(options);
    for (const char *name : {"mesa", "bzip2", "swim", "ammp"}) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(name);
        conf.numIntervals = 1;
        conf.online.m = 100;
        conf.online.n = 100;
        conf.lookahead = 4096;
        engine.submit(name, conf);
    }
    auto results = engine.collect();
    for (const auto &task : results)
        if (!task.ok())
            panic("bench campaign task '%s' failed: %s",
                  task.name.c_str(), task.errorText.c_str());
    avf::micro::doNotOptimize(results);
}

} // namespace

AVF_MICROBENCH(engine_campaign_w1)
{
    b.setItems(4);
    while (b.next())
        runCampaignOnce(1);
}

AVF_MICROBENCH(engine_campaign_w4)
{
    b.setItems(4);
    while (b.next())
        runCampaignOnce(4);
}

AVF_MICROBENCH(engine_campaign_w8)
{
    b.setItems(4);
    while (b.next())
        runCampaignOnce(8);
}
