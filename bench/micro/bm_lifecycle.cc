/**
 * @file
 * Injection-lifecycle bookkeeping: the open / hop / close record
 * cycle the obs::LifecycleTracker performs for every estimator
 * injection. The hop mix (two read-carries, one OR-merge, one
 * overwrite-kill) mirrors a typical short-lived register error.
 */

#include "micro.hh"

#include "core/injection_port.hh"
#include "cpu/dyn_instr.hh"
#include "obs/lifecycle.hh"

namespace
{

using namespace avf;

obs::LifecycleConfig
benchConfig()
{
    obs::LifecycleConfig conf;
    conf.enabled = true;
    conf.maxRecordsPerStructure = 2048;
    conf.windowCycles = 1000;
    return conf;
}

} // namespace

AVF_MICROBENCH(lifecycle_record_append)
{
    static obs::LifecycleTracker tracker(benchConfig());
    static cpu::DynInstr instr; // hop events only read error fields
    // REG's channel bit (structures.hh: channelOf(REG) == 1).
    const auto reg_bit = static_cast<cpu::ErrorMask>(
        1u << core::channelOf(core::Structure::REG));
    Cycle now = 0;
    while (b.next()) {
        tracker.openRecord(core::Structure::REG,
                           core::channelOf(core::Structure::REG), 5,
                           -1, true, now);
        tracker.onErrorHop(instr, reg_bit, cpu::ErrorHop::ReadCarry);
        tracker.onErrorHop(instr, reg_bit, cpu::ErrorHop::ReadCarry);
        tracker.onErrorHop(instr, reg_bit, cpu::ErrorHop::OrMerge);
        tracker.onErrorHop(instr, reg_bit,
                           cpu::ErrorHop::OverwriteKill);
        tracker.closeRecord(core::Structure::REG,
                            core::channelOf(core::Structure::REG),
                            now + 40, core::Outcome{});
        now += 50;
    }
}
