/**
 * @file
 * ThreadPool dispatch overhead: the cost of pushing trivial jobs
 * through the engine's worker pool and waiting for the batch. One
 * iteration = one 64-job batch; items_per_sec is tasks/sec.
 */

#include "micro.hh"

#include <atomic>

#include "util/thread_pool.hh"

namespace
{

constexpr std::uint64_t tasksPerBatch = 64;

} // namespace

AVF_MICROBENCH(threadpool_dispatch_1)
{
    static avf::ThreadPool pool(1);
    static std::atomic<std::uint64_t> sink{0};
    b.setItems(tasksPerBatch);
    while (b.next()) {
        for (std::uint64_t t = 0; t < tasksPerBatch; ++t)
            pool.submit([] {
                sink.fetch_add(1, std::memory_order_relaxed);
            });
        pool.wait();
    }
    avf::micro::doNotOptimize(sink);
}

AVF_MICROBENCH(threadpool_dispatch_4)
{
    static avf::ThreadPool pool(4);
    static std::atomic<std::uint64_t> sink{0};
    b.setItems(tasksPerBatch);
    while (b.next()) {
        for (std::uint64_t t = 0; t < tasksPerBatch; ++t)
            pool.submit([] {
                sink.fetch_add(1, std::memory_order_relaxed);
            });
        pool.wait();
    }
    avf::micro::doNotOptimize(sink);
}
