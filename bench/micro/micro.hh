/**
 * @file
 * The bench/micro harness: a tiny, dependency-free microbenchmark
 * runner for single hot paths (google-benchmark stays available for
 * the coarse perf_microbench suite; this harness exists so CI and
 * scripts get machine-readable, schema-stable JSON without linking
 * an external framework into every probe).
 *
 * Protocol (see DESIGN.md §9):
 *   1. calibrate: double the per-repeat iteration count until one
 *      repeat runs at least --min-time-ms wall milliseconds;
 *   2. warm up: run W whole repeats and discard them;
 *   3. measure: run R repeats, recording ns/iteration for each;
 *   4. report: trimmed mean (drop the top and bottom 20% of repeats),
 *      median, min, max, stddev, and items/sec.
 *
 * Registration:
 *   AVF_MICROBENCH(bitvector_popcount)
 *   {
 *       avf::BitVector bits(4096);
 *       b.setItems(4096);            // per iteration, for items/sec
 *       while (b.next())
 *           avf::micro::doNotOptimize(bits.count());
 *   }
 *
 * The runner writes BENCH_micro.json (override with --out), sorted
 * by benchmark name so the file is diffable run to run. --smoke
 * shrinks warmup/repeats/min-time for CI smoke jobs; --compare FILE
 * reads a previous output and adds per-benchmark baseline and
 * speedup fields.
 */

#ifndef AVF_BENCH_MICRO_MICRO_HH
#define AVF_BENCH_MICRO_MICRO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/timing.hh"

namespace avf::micro
{

/** Iteration controller handed to every benchmark body. */
class Bench
{
  public:
    /**
     * Iteration gate: `while (b.next())` runs the calibrated number
     * of iterations, timing from the first call to the last.
     */
    bool
    next()
    {
        if (done == 0)
            startNs = timing::steadyNowNs();
        if (done++ < target)
            return true;
        elapsed = timing::steadyNowNs() - startNs;
        return false;
    }

    /**
     * Declare how many logical items one iteration processes (bits
     * swept, cycles stepped, tasks dispatched); feeds the JSON
     * items_per_sec field. Default 1.
     */
    void setItems(std::uint64_t perIteration) { items = perIteration; }

    /** Iterations this run will execute. */
    std::uint64_t iterations() const { return target; }

    // ---- runner internals (benchmark bodies never need these) ----

    /** Reset for a repeat of @p iters iterations. */
    void
    arm(std::uint64_t iters)
    {
        target = iters;
        done = 0;
        startNs = 0;
        elapsed = 0;
        items = 1;
    }

    /** Measured nanoseconds of the drained next() loop. */
    std::uint64_t elapsedRawNs() const { return elapsed; }

    /** Items one iteration processes, as declared by setItems(). */
    std::uint64_t itemsPerIter() const { return items; }

    /** next() calls made; target + 1 once the loop drained. */
    std::uint64_t nextCalls() const { return done; }

  private:
    std::uint64_t target = 0;
    std::uint64_t done = 0;
    std::uint64_t startNs = 0;
    std::uint64_t elapsed = 0;
    std::uint64_t items = 1;
};

/** Keep @p value alive without letting the optimizer fold the work. */
template <typename T>
inline void
doNotOptimize(T const &value)
{
    asm volatile("" : : "g"(&value) : "memory");
}

/** Force pending writes to be considered observable. */
inline void
clobberMemory()
{
    asm volatile("" : : : "memory");
}

using BenchFn = void (*)(Bench &);

/** Register a benchmark; invoked via the AVF_MICROBENCH macro. */
bool registerBench(const char *name, BenchFn fn);

/** Final statistics of one benchmark. */
struct Result
{
    std::string name;
    std::uint64_t iterations = 0; ///< per measured repeat
    int repeats = 0;
    double trimmedMeanNs = 0.0; ///< ns per iteration, headline stat
    double medianNs = 0.0;
    double minNs = 0.0;
    double maxNs = 0.0;
    double stddevNs = 0.0;
    double itemsPerSec = 0.0;
    /** From --compare; <= 0 when absent. */
    double baselineNs = 0.0;
    /** baselineNs / trimmedMeanNs; 0 when no baseline. */
    double speedup = 0.0;
};

/** Runner knobs (CLI defaults in parse()). */
struct Options
{
    bool smoke = false;
    bool listOnly = false;
    int warmupRepeats = 2;
    int repeats = 15;
    double minTimeMs = 20.0;
    std::string filter;  ///< substring; empty = all
    std::string outPath = "BENCH_micro.json";
    std::string comparePath;
};

/**
 * CLI entry point (bench/micro/main.cc is a one-liner over this).
 * Parses args, runs every registered benchmark matching the filter,
 * prints a human table to stderr, and writes the JSON report.
 * @return process exit code.
 */
int runMain(int argc, char **argv);

} // namespace avf::micro

#define AVF_MICROBENCH(name)                                          \
    static void avf_micro_##name(avf::micro::Bench &b);               \
    static const bool avf_micro_reg_##name =                          \
        avf::micro::registerBench(#name, &avf_micro_##name);          \
    static void avf_micro_##name(avf::micro::Bench &b)

#endif // AVF_BENCH_MICRO_MICRO_HH
