/**
 * @file
 * The per-cycle error-bit propagation hot path, measured at three
 * altitudes:
 *
 *   propagation_channel_clear  inject one register error, then the
 *                              window-boundary channel sweep
 *                              (Pipeline::clearErrorChannels) — the
 *                              primitive the word-level error-plane
 *                              work optimizes;
 *   propagation_window_close   the same sweep after the error has
 *                              propagated through issued
 *                              instructions for a few cycles (ROB /
 *                              store-queue planes dirty);
 *   propagation_step_estims    one full pipeline cycle with the five
 *                              online estimators attached —
 *                              items_per_sec is simulated
 *                              cycles/sec, the ROADMAP's end-to-end
 *                              number.
 *
 * Benchmark state is function-local static: the pipeline warms up
 * once (ROB, store queue, and caches populated) and the measured
 * loop then exercises a steady state, the way the estimator runs
 * online.
 */

#include "micro.hh"

#include <memory>
#include <vector>

#include "core/online_estimator.hh"
#include "cpu/pipeline.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace avf;

struct WarmPipeline
{
    trace::SyntheticTraceGenerator gen;
    cpu::Pipeline pipe;

    explicit WarmPipeline(Cycle warmCycles)
        : gen(trace::specProfile("mesa")), pipe(cpu::CpuConfig{}, gen)
    {
        pipe.run(warmCycles);
    }
};

struct EstimatorRig
{
    trace::SyntheticTraceGenerator gen;
    cpu::Pipeline pipe;
    std::vector<std::unique_ptr<core::OnlineAvfEstimator>> ests;

    EstimatorRig() : gen(trace::specProfile("mesa")),
                     pipe(cpu::CpuConfig{}, gen)
    {
        for (int s = 0; s < core::numStructures; ++s) {
            ests.push_back(std::make_unique<core::OnlineAvfEstimator>(
                pipe, static_cast<core::Structure>(s)));
            pipe.addObserver(ests.back().get());
        }
        pipe.run(10'000);
    }
};

} // namespace

AVF_MICROBENCH(propagation_channel_clear)
{
    static WarmPipeline warm(20'000);
    while (b.next()) {
        // Benchmarks the raw primitive itself, not campaign logic.
        warm.pipe.injectRegError(5, 1); // avflint: allow(injection-port-discipline)
        warm.pipe.clearErrorChannels(1);
        avf::micro::clobberMemory();
    }
}

AVF_MICROBENCH(propagation_window_close)
{
    static WarmPipeline warm(20'000);
    while (b.next()) {
        // One window's worth of life for a register error: inject,
        // let it ride the dataflow for a few cycles (reads carry it
        // into ROB entries and the store queue), then the boundary
        // sweep kills the channel everywhere.
        // avflint: allow(injection-port-discipline) -- raw-primitive bench
        warm.pipe.injectRegError(9, 2);
        for (int c = 0; c < 8; ++c)
            warm.pipe.step();
        warm.pipe.clearErrorChannels(2);
        avf::micro::clobberMemory();
    }
}

AVF_MICROBENCH(propagation_step_estimators)
{
    static EstimatorRig rig;
    b.setItems(1); // items/sec == simulated cycles/sec
    while (b.next()) {
        rig.pipe.step();
        avf::micro::clobberMemory();
    }
}
