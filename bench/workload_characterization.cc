/**
 * @file
 * Workload characterization table (the companion table evaluation
 * sections typically carry): per benchmark, the dynamic instruction
 * mix, branch-prediction accuracy, cache/TLB miss rates, IPC, and
 * the mean AVF of each structure — context for interpreting the
 * figure reproductions, and a quick check that the synthetic
 * stand-ins behave like the workload classes they model.
 */

#include <cstdio>

#include "cpu/pipeline.hh"
#include "softarch/ace_analyzer.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "util/env.hh"

int
main()
{
    using namespace avf;
    using core::Structure;
    using stats::TablePrinter;

    const Cycle cycles = envFlag("AVF_FAST") ? 2'000'000
                                             : 10'000'000;

    TablePrinter perf("Workload characterization: performance");
    perf.setHeader({"app", "IPC", "branch acc", "L1D miss",
                    "L2 miss", "dTLB miss", "mix int/fp/ld/st/br"});

    TablePrinter avf("Workload characterization: mean AVF "
                     "(SoftArch reference)");
    avf.setHeader({"app", "iq", "reg", "fxu", "fpu", "freg"});

    for (const auto &name : trace::specBenchmarkNames()) {
        std::fprintf(stderr, "running %s...\n", name.c_str());
        trace::SyntheticTraceGenerator gen(trace::specProfile(name));

        // Instruction-mix census on a generator clone.
        trace::SyntheticTraceGenerator census(
            trace::specProfile(name));
        std::uint64_t counts[16] = {};
        const int census_n = 300'000;
        trace::TraceInstruction in;
        for (int i = 0; i < census_n; ++i) {
            census.next(in);
            ++counts[static_cast<int>(in.op)];
        }
        using trace::OpClass;
        auto pct = [&](std::initializer_list<OpClass> ops) {
            std::uint64_t total = 0;
            for (auto op : ops)
                total += counts[static_cast<int>(op)];
            return 100.0 * static_cast<double>(total) / census_n;
        };
        char mix[64];
        std::snprintf(mix, sizeof(mix),
                      "%2.0f/%2.0f/%2.0f/%2.0f/%2.0f",
                      pct({OpClass::IntAlu, OpClass::IntMul,
                           OpClass::IntDiv}),
                      pct({OpClass::FpAlu, OpClass::FpDiv}),
                      pct({OpClass::Load}), pct({OpClass::Store}),
                      pct({OpClass::BranchCond,
                           OpClass::BranchUncond}));

        cpu::Pipeline pipe(cpu::CpuConfig{}, gen);
        softarch::SoftArchConfig sa;
        sa.intervalCycles = cycles / 4;
        softarch::AceAnalyzer analyzer(pipe, sa);
        pipe.addObserver(&analyzer);
        pipe.run(cycles + sa.lookahead + 100);
        analyzer.finalizeAll(2);

        const auto &dtlb = pipe.memory().dtlb().stats();
        perf.addRow(
            {name, TablePrinter::num(pipe.stats().ipc(), 2),
             TablePrinter::pct(
                 pipe.branchPredictor().stats().accuracy() * 100, 1),
             TablePrinter::pct(
                 pipe.memory().l1d().stats().missRate() * 100, 1),
             TablePrinter::pct(
                 pipe.memory().l2().stats().missRate() * 100, 1),
             TablePrinter::pct(
                 dtlb.accesses
                     ? 100.0 * static_cast<double>(dtlb.misses) /
                           static_cast<double>(dtlb.accesses)
                     : 0.0,
                 2),
             mix});

        double sums[core::numStructures] = {};
        std::size_t rows = analyzer.results().size();
        for (const auto &row : analyzer.results())
            for (int s = 0; s < core::numStructures; ++s)
                sums[s] += row.avf[static_cast<std::size_t>(s)];
        auto mean = [&](Structure s) {
            return rows ? sums[static_cast<int>(s)] /
                              static_cast<double>(rows)
                        : 0.0;
        };
        avf.addRow({name, TablePrinter::num(mean(Structure::IQ)),
                    TablePrinter::num(mean(Structure::REG)),
                    TablePrinter::num(mean(Structure::FXU)),
                    TablePrinter::num(mean(Structure::FPU)),
                    TablePrinter::num(mean(Structure::FREG))});
    }
    perf.print();
    avf.print();
    return 0;
}
