/**
 * @file
 * Workload characterization table (the companion table evaluation
 * sections typically carry): per benchmark, the dynamic instruction
 * mix, branch-prediction accuracy, cache/TLB miss rates, IPC, and
 * the mean AVF of each structure — context for interpreting the
 * figure reproductions, and a quick check that the synthetic
 * stand-ins behave like the workload classes they model.
 *
 * The simulations fan out over the engine; the cheap instruction-mix
 * census (a generator clone, no pipeline) stays on the main thread.
 */

#include <cstdio>
#include <map>
#include <string>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/table_printer.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

int
main()
{
    using namespace avf;
    using namespace avf::harness;
    using core::Structure;
    using stats::TablePrinter;

    auto options = loadRunOptions();
    const int intervals = options.fastMode ? 2 : 10;

    TablePrinter perf("Workload characterization: performance");
    perf.setHeader({"app", "IPC", "branch acc", "L1D miss",
                    "L2 miss", "dTLB miss", "mix int/fp/ld/st/br"});

    TablePrinter avf("Workload characterization: mean AVF "
                     "(SoftArch reference)");
    avf.setHeader({"app", "iq", "reg", "fxu", "fpu", "freg"});

    ExperimentEngine engine(options);
    for (const auto &name : trace::specBenchmarkNames()) {
        ExperimentConfig conf;
        conf.profile = trace::specProfile(name);
        conf.numIntervals = intervals;
        engine.submit(name, conf);
    }

    // Instruction-mix census on a generator clone, while the workers
    // churn through the simulations.
    std::map<std::string, std::string> mixes;
    for (const auto &name : trace::specBenchmarkNames()) {
        trace::SyntheticTraceGenerator census(
            trace::specProfile(name));
        std::uint64_t counts[16] = {};
        const int census_n = 300'000;
        trace::TraceInstruction in;
        for (int i = 0; i < census_n; ++i) {
            census.next(in);
            ++counts[static_cast<int>(in.op)];
        }
        using trace::OpClass;
        auto pct = [&](std::initializer_list<OpClass> ops) {
            std::uint64_t total = 0;
            for (auto op : ops)
                total += counts[static_cast<int>(op)];
            return 100.0 * static_cast<double>(total) / census_n;
        };
        char mix[64];
        std::snprintf(mix, sizeof(mix),
                      "%2.0f/%2.0f/%2.0f/%2.0f/%2.0f",
                      pct({OpClass::IntAlu, OpClass::IntMul,
                           OpClass::IntDiv}),
                      pct({OpClass::FpAlu, OpClass::FpDiv}),
                      pct({OpClass::Load}), pct({OpClass::Store}),
                      pct({OpClass::BranchCond,
                           OpClass::BranchUncond}));
        mixes[name] = mix;
    }

    auto tasks = engine.collect();
    exportCampaignMetrics("workload_characterization", engine, tasks);
    for (auto &task : tasks) {
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
        const auto &name = task.name;
        const auto &summary = task.result.summary;

        perf.addRow(
            {name, TablePrinter::num(summary.ipc, 2),
             TablePrinter::pct(summary.branchAccuracy * 100, 1),
             TablePrinter::pct(summary.l1dMissRate * 100, 1),
             TablePrinter::pct(summary.l2MissRate * 100, 1),
             TablePrinter::pct(summary.dtlbMissRate * 100, 2),
             mixes[name]});

        auto mean = [&](Structure s) {
            const auto series = task.result.softarchSeries(s);
            double sum = 0.0;
            for (double v : series)
                sum += v;
            return series.empty()
                ? 0.0
                : sum / static_cast<double>(series.size());
        };
        avf.addRow({name, TablePrinter::num(mean(Structure::IQ)),
                    TablePrinter::num(mean(Structure::REG)),
                    TablePrinter::num(mean(Structure::FXU)),
                    TablePrinter::num(mean(Structure::FPU)),
                    TablePrinter::num(mean(Structure::FREG))});
    }
    perf.print();
    avf.print();
    return 0;
}
