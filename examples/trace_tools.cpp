/**
 * @file
 * Trace-file workflow, the role the Aria/MET trace repository plays
 * in the paper: capture a synthetic workload to a binary .avftrace
 * file, inspect it, and replay it through the simulator with the
 * online estimator attached.
 *
 *   trace_tools gen <benchmark> <path> <instruction-count>
 *   trace_tools info <path>
 *   trace_tools run <path> [intervals]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "core/online_estimator.hh"
#include "cpu/pipeline.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

namespace
{

using namespace avf;

int
cmdGen(const std::string &bench, const std::string &path,
       std::uint64_t count)
{
    trace::SyntheticTraceGenerator gen(trace::specProfile(bench));
    trace::TraceFileWriter writer(path);
    trace::TraceInstruction in;
    for (std::uint64_t i = 0; i < count; ++i) {
        gen.next(in);
        writer.append(in);
    }
    writer.close();
    std::printf("wrote %llu instructions of '%s' to %s\n",
                static_cast<unsigned long long>(count), bench.c_str(),
                path.c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    trace::TraceFileReader reader(path);
    std::printf("%s: %llu instructions\n", path.c_str(),
                static_cast<unsigned long long>(reader.count()));

    std::map<trace::OpClass, std::uint64_t> mix;
    std::uint64_t taken = 0, branches = 0;
    trace::TraceInstruction in;
    while (reader.next(in)) {
        ++mix[in.op];
        if (trace::isBranch(in.op)) {
            ++branches;
            taken += in.taken ? 1 : 0;
        }
    }
    std::printf("instruction mix:\n");
    for (const auto &[op, count] : mix)
        std::printf("  %-12s %8llu  (%.1f%%)\n",
                    std::string(trace::opClassName(op)).c_str(),
                    static_cast<unsigned long long>(count),
                    100.0 * static_cast<double>(count) /
                        static_cast<double>(reader.count()));
    if (branches)
        std::printf("branch taken rate: %.1f%%\n",
                    100.0 * static_cast<double>(taken) /
                        static_cast<double>(branches));
    return 0;
}

int
cmdRun(const std::string &path, int intervals)
{
    trace::TraceFileReader reader(path, /*loop=*/true);
    cpu::Pipeline pipe(cpu::CpuConfig{}, reader);

    core::OnlineConfig online;
    std::vector<std::unique_ptr<core::OnlineAvfEstimator>> ests;
    for (int s = 0; s < core::numPaperStructures; ++s) {
        ests.push_back(std::make_unique<core::OnlineAvfEstimator>(
            pipe, static_cast<core::Structure>(s), online));
        pipe.addObserver(ests.back().get());
    }

    std::printf("interval      iq     reg     fxu     fpu\n");
    for (int k = 0; k < intervals; ++k) {
        // +1 cycle: the estimate is published on the first cycle of
        // the following interval.
        pipe.run(online.m * online.n + 1);
        std::printf("%8d ", k);
        for (auto &est : ests) {
            if (est->estimates().size() >
                static_cast<std::size_t>(k))
                std::printf(" %6.3f", est->estimates()[k]);
            else
                std::printf("      -");
        }
        std::printf("\n");
    }
    std::printf("IPC %.2f over %llu cycles\n", pipe.stats().ipc(),
                static_cast<unsigned long long>(pipe.stats().cycles));
    return 0;
}

void
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tools gen <benchmark> <path> <count>\n"
                 "  trace_tools info <path>\n"
                 "  trace_tools run <path> [intervals]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    if (cmd == "gen" && argc >= 5)
        return cmdGen(argv[2], argv[3],
                      std::strtoull(argv[4], nullptr, 10));
    if (cmd == "info")
        return cmdInfo(argv[2]);
    if (cmd == "run")
        return cmdRun(argv[2], argc > 3 ? std::atoi(argv[3]) : 3);
    usage();
    return 1;
}
