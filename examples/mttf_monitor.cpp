/**
 * @file
 * Live MTTF monitoring, the deployment scenario the paper's
 * introduction sketches: the online AVF estimates feed a SOFR
 * failure-rate model every estimation interval; the monitor reports
 * the running MTTF projection against a reliability goal and the
 * protection coverage that would close any gap. Also demonstrates
 * the CSV/JSON/gnuplot exporters.
 *
 *   Usage: mttf_monitor [benchmark] [intervals] [output-prefix]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hh"
#include "harness/export.hh"
#include "reliability/fit_model.hh"
#include "reliability/mttf_tracker.hh"
#include "trace/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace avf;
    using namespace avf::reliability;

    std::string bench = argc > 1 ? argv[1] : "mesa";
    int intervals = argc > 2 ? std::atoi(argv[2]) : 15;
    if (intervals <= 0)
        intervals = 15;
    std::string prefix = argc > 3 ? argv[3] : "";

    harness::ExperimentConfig conf;
    conf.profile = trace::specProfile(bench);
    conf.numIntervals = intervals;
    std::printf("MTTF monitor: %s, %d estimation intervals\n\n",
                bench.c_str(), intervals);
    auto result = harness::runExperiment(conf);

    const double fit_budget = 5.0; // this core's share of the chip SER budget
    const double goal_hours = 1e9 / fit_budget;
    FitModel model(defaultFitModel(conf.cpu));
    MttfTracker tracker(model, goal_hours);

    std::printf("interval  FIT(now)  FIT(avg)  MTTF proj (years)  "
                "goal met  coverage needed\n");
    for (const auto &row : result.intervals) {
        tracker.observe(row.online);
        double years = tracker.projectedMttfHours() /
                       (365.0 * 24.0);
        std::printf("%8zu  %8.2f  %8.2f  %17.0f  %-8s  %8.1f%%\n",
                    tracker.intervals() - 1, tracker.currentFit(),
                    tracker.averageFit(), years,
                    tracker.meetsGoal() ? "yes" : "NO",
                    tracker.requiredCoverage() * 100.0);
    }

    std::printf("\nworst-case design point: %.2f FIT (AVF-oblivious); "
                "this workload's average: %.2f FIT (%.1fx less)\n",
                model.worstCaseFit(), tracker.averageFit(),
                tracker.averageFit() > 0
                    ? model.worstCaseFit() / tracker.averageFit()
                    : 0.0);

    if (!prefix.empty()) {
        std::string csv = prefix + ".csv";
        std::string json = prefix + ".json";
        std::string plot = prefix + ".gnuplot";
        harness::writeCsv(result, csv);
        harness::writeJson(result, json);
        harness::writeGnuplotScript(csv, plot, bench);
        std::printf("\nwrote %s, %s, %s\n", csv.c_str(), json.c_str(),
                    plot.c_str());
    }
    return 0;
}
