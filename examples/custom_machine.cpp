/**
 * @file
 * AVF is a property of the machine as much as of the workload: run
 * the same benchmark on two machine configurations loaded from INI
 * files and compare the structures' vulnerability. Demonstrates the
 * config-file front end (configs/table1.ini, configs/lowpower.ini).
 *
 *   Usage: custom_machine <config-a.ini> <config-b.ini> [intervals]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "stats/running_stats.hh"
#include "util/logging.hh"

namespace
{

using namespace avf;
using core::Structure;

harness::ExperimentConfig
configFrom(const std::string &path, int intervals)
{
    auto conf = harness::loadExperimentConfig(path);
    if (intervals > 0)
        conf.numIntervals = intervals;
    std::printf("running %s on machine '%s' (%d intervals, "
                "dispatch %d-wide, IQ %d entries, ROB %d)\n",
                conf.profile.name.c_str(), path.c_str(),
                conf.numIntervals, conf.cpu.dispatchWidth,
                conf.cpu.totalIqEntries(), conf.cpu.robEntries);
    return conf;
}

double
meanAvf(const harness::ExperimentResult &result, Structure s)
{
    stats::RunningStats acc;
    for (double v : result.softarchSeries(s))
        acc.add(v);
    return acc.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: custom_machine <config-a.ini> "
                     "<config-b.ini> [intervals]\n");
        return 1;
    }
    int intervals = argc > 3 ? std::atoi(argv[3]) : 8;

    // Both machine configurations simulate concurrently on one
    // engine; results come back in submission order.
    harness::ExperimentEngine engine;
    engine.submit("machine A", configFrom(argv[1], intervals));
    engine.submit("machine B", configFrom(argv[2], intervals));
    auto tasks = engine.collect();
    for (const auto &task : tasks)
        if (!task.ok())
            fatal("%s failed: %s", task.name.c_str(),
                  task.errorText.c_str());
    const auto &a = tasks[0].result;
    const auto &b = tasks[1].result;

    std::printf("\n%-6s %14s %14s\n", "struct", "machine A",
                "machine B");
    for (int s = 0; s < core::numPaperStructures; ++s) {
        auto structure = static_cast<Structure>(s);
        std::printf("%-6s %14.3f %14.3f\n",
                    std::string(core::structureName(structure))
                        .c_str(),
                    meanAvf(a, structure), meanAvf(b, structure));
    }
    std::printf("\nIPC: %.2f vs %.2f\n", a.summary.ipc, b.summary.ipc);
    std::printf("\nSame program, different machine, different "
                "vulnerability profile — which is why AVF must be "
                "estimated on the machine that will rely on it.\n");
    return 0;
}
