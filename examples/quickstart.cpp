/**
 * @file
 * Quickstart: estimate the AVF of the four processor structures for
 * one workload, online, while the "program" runs — the minimal use of
 * the public API.
 *
 *   Usage: quickstart [benchmark] [intervals]
 *   e.g.   quickstart mesa 5
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/online_estimator.hh"
#include "cpu/pipeline.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

int
main(int argc, char **argv)
{
    using namespace avf;

    std::string bench = argc > 1 ? argv[1] : "mesa";
    int intervals = argc > 2 ? std::atoi(argv[2]) : 5;
    if (intervals <= 0)
        intervals = 5;

    // 1. A workload. Here a synthetic SPEC-like trace; any
    //    trace::TraceSource works (e.g. trace::TraceFileReader).
    trace::SyntheticTraceGenerator workload(
        trace::specProfile(bench));

    // 2. The machine: Table 1 of the paper by default.
    cpu::CpuConfig machine;
    cpu::Pipeline pipeline(machine, workload);

    // 3. One online estimator per structure of interest. M = N = 1000
    //    means an AVF estimate every million cycles.
    core::OnlineConfig online; // defaults: m = 1000, n = 1000
    std::vector<std::unique_ptr<core::OnlineAvfEstimator>> estimators;
    for (int s = 0; s < core::numPaperStructures; ++s) {
        estimators.push_back(
            std::make_unique<core::OnlineAvfEstimator>(
                pipeline, static_cast<core::Structure>(s), online));
        pipeline.addObserver(estimators.back().get());
    }

    // 4. Run. In hardware this would be production execution; here we
    //    just advance the simulator.
    const Cycle interval_cycles = online.m * online.n;
    std::printf("Estimating AVF for '%s' every %llu cycles "
                "(M = %llu, N = %u)\n\n",
                bench.c_str(),
                static_cast<unsigned long long>(interval_cycles),
                static_cast<unsigned long long>(online.m), online.n);
    std::printf("interval      iq     reg     fxu     fpu     ipc\n");

    std::uint64_t last_retired = 0;
    for (int k = 0; k < intervals; ++k) {
        // One extra cycle so the interval-closing bookkeeping (which
        // fires on the first cycle of the next interval) has run.
        pipeline.run(interval_cycles + 1);
        std::uint64_t retired = pipeline.stats().retired;
        double ipc = static_cast<double>(retired - last_retired) /
                     static_cast<double>(interval_cycles);
        last_retired = retired;
        std::printf("%8d ", k);
        for (auto &est : estimators) {
            const auto &series = est->estimates();
            if (series.size() > static_cast<std::size_t>(k))
                std::printf(" %6.3f", series[k]);
            else
                std::printf("      -");
        }
        std::printf("  %6.2f\n", ipc);
    }

    std::printf("\nDone: %llu instructions retired over %llu cycles "
                "(IPC %.2f).\n",
                static_cast<unsigned long long>(
                    pipeline.stats().retired),
                static_cast<unsigned long long>(
                    pipeline.stats().cycles),
                pipeline.stats().ipc());
    return 0;
}
