/**
 * @file
 * Explore AVF phase behaviour across the SPEC-like workloads: for a
 * chosen benchmark, print the per-interval AVF of every structure
 * (online vs reference), the phase-to-phase movement, and how well
 * the last-value and EMA predictors cope — the "AVF varies across
 * phases, so adapt online" argument of the paper's introduction,
 * made tangible.
 *
 *   Usage: phase_explorer [benchmark] [intervals]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "harness/experiment.hh"
#include "stats/running_stats.hh"
#include "trace/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace avf;
    using core::Structure;

    std::string bench = argc > 1 ? argv[1] : "mesa";
    int intervals = argc > 2 ? std::atoi(argv[2]) : 25;
    if (intervals <= 0)
        intervals = 25;

    harness::ExperimentConfig conf;
    conf.profile = trace::specProfile(bench);
    conf.numIntervals = intervals;
    std::printf("Phase explorer: %s, %d one-million-cycle "
                "intervals\n\n", bench.c_str(), intervals);
    auto result = harness::runExperiment(conf);

    std::printf("interval |   iq(real/est)   reg(real/est)   "
                "fxu(real/est)   fpu(real/est)\n");
    for (std::size_t k = 0; k < result.intervals.size(); ++k) {
        const auto &row = result.intervals[k];
        std::printf("%8zu |", k);
        for (int s = 0; s < core::numPaperStructures; ++s)
            std::printf("   %.3f/%.3f", row.softarch[s],
                        row.online[s]);
        std::printf("\n");
    }

    std::printf("\nper-structure phase movement and predictability:\n");
    std::printf("%-5s %9s %9s %9s %16s %16s\n", "struct", "meanAVF",
                "minAVF", "maxAVF", "lastval_err", "ema(0.5)_err");
    for (int s = 0; s < core::numPaperStructures; ++s) {
        auto structure = static_cast<Structure>(s);
        auto real = result.softarchSeries(structure);
        auto online = result.onlineSeries(structure);

        stats::RunningStats avf;
        for (double v : real)
            avf.add(v);

        core::LastValuePredictor last;
        core::EmaPredictor ema(0.5);
        auto last_errs = core::predictionErrors(last, online, real);
        auto ema_errs = core::predictionErrors(ema, online, real);
        stats::RunningStats last_stats, ema_stats;
        for (double e : last_errs)
            last_stats.add(e);
        for (double e : ema_errs)
            ema_stats.add(e);

        std::printf("%-5s %9.3f %9.3f %9.3f %16.4f %16.4f\n",
                    std::string(core::structureName(structure))
                        .c_str(),
                    avf.mean(), avf.min(), avf.max(),
                    last_stats.mean(), ema_stats.mean());
    }

    std::printf("\nrun summary: IPC %.2f, branch accuracy %.1f%%, "
                "L1D miss %.1f%%, L2 miss %.1f%%\n",
                result.summary.ipc,
                result.summary.branchAccuracy * 100.0,
                result.summary.l1dMissRate * 100.0,
                result.summary.l2MissRate * 100.0);
    return 0;
}
