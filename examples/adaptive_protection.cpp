/**
 * @file
 * The paper's motivating use case (cf. Soundararajan et al. [16]):
 * drive a dynamic protection controller from *predicted* AVF. Each
 * estimation interval the controller predicts the next interval's
 * AVF from the online estimate (last-value predictor) and picks a
 * protection level:
 *
 *   level 0  no protection        (no overhead)
 *   level 1  instruction throttle (small IPC cost, halves exposure)
 *   level 2  selective redundancy (larger cost, quarters exposure)
 *
 * We then score the policy against an oracle that sees the real
 * (SoftArch) AVF of the interval, reporting effective exposure
 * (AVF x exposure-factor, proportional to 1/MTTF contribution) and
 * overhead, versus always-off and always-max static policies.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "harness/experiment.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace avf;
using core::Structure;

struct ProtectionLevel
{
    const char *name;
    double exposureFactor; ///< fraction of raw AVF left unprotected
    double overhead;       ///< performance/energy cost in percent
};

constexpr ProtectionLevel levels[] = {
    {"off", 1.00, 0.0},
    {"throttle", 0.50, 3.0},
    {"redundant", 0.25, 9.0},
};

int
pickLevel(double predicted_avf)
{
    if (predicted_avf < 0.10)
        return 0;
    if (predicted_avf < 0.25)
        return 1;
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "mesa";
    int intervals = argc > 2 ? std::atoi(argv[2]) : 20;
    if (intervals <= 0)
        intervals = 20;

    std::printf("Adaptive protection driven by online AVF "
                "(benchmark %s, %d intervals)\n\n", bench.c_str(),
                intervals);

    harness::ExperimentConfig conf;
    conf.profile = trace::specProfile(bench);
    conf.numIntervals = intervals;
    auto result = harness::runExperiment(conf);

    // Protect the structure with the largest average AVF.
    auto pick_structure = [&]() {
        double best = -1.0;
        Structure which = Structure::IQ;
        for (int s = 0; s < core::numPaperStructures; ++s) {
            double sum = 0;
            for (const auto &row : result.intervals)
                sum += row.softarch[static_cast<std::size_t>(s)];
            if (sum > best) {
                best = sum;
                which = static_cast<Structure>(s);
            }
        }
        return which;
    };
    Structure target = pick_structure();
    std::printf("most vulnerable structure on this workload: %s\n\n",
                std::string(core::structureName(target)).c_str());

    auto online = result.onlineSeries(target);
    auto real = result.softarchSeries(target);

    core::LastValuePredictor predictor;
    double adaptive_exposure = 0, adaptive_overhead = 0;
    double off_exposure = 0;
    double max_exposure = 0, oracle_exposure = 0, oracle_overhead = 0;

    std::printf("interval  est_AVF  pred_AVF  real_AVF  level      "
                "exposure\n");
    for (std::size_t k = 0; k < online.size(); ++k) {
        double predicted = k == 0 ? 0.5 /* conservative cold start */
                                  : predictor.predict();
        int level = pickLevel(predicted);
        int oracle_level = pickLevel(real[k]);

        adaptive_exposure += real[k] * levels[level].exposureFactor;
        adaptive_overhead += levels[level].overhead;
        off_exposure += real[k];
        max_exposure += real[k] * levels[2].exposureFactor;
        oracle_exposure += real[k] *
            levels[oracle_level].exposureFactor;
        oracle_overhead += levels[oracle_level].overhead;

        std::printf("%8zu  %7.3f  %8.3f  %8.3f  %-9s  %8.3f\n", k,
                    online[k], predicted, real[k],
                    levels[level].name,
                    real[k] * levels[level].exposureFactor);
        predictor.observe(online[k]);
    }

    auto n = static_cast<double>(online.size());
    std::printf("\npolicy comparison (lower exposure = higher MTTF; "
                "overhead = avg %%cost):\n");
    std::printf("  %-12s exposure %.3f  overhead %4.1f%%\n",
                "always-off", off_exposure / n, 0.0);
    std::printf("  %-12s exposure %.3f  overhead %4.1f%%\n",
                "always-max", max_exposure / n, levels[2].overhead);
    std::printf("  %-12s exposure %.3f  overhead %4.1f%%\n",
                "adaptive", adaptive_exposure / n,
                adaptive_overhead / n);
    std::printf("  %-12s exposure %.3f  overhead %4.1f%% "
                "(knows real AVF)\n",
                "oracle", oracle_exposure / n, oracle_overhead / n);
    return 0;
}
