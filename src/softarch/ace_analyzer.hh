/**
 * @file
 * Offline ACE-analysis reference in the role SoftArch plays in the
 * paper: the "detailed, complex, offline" AVF model the online
 * estimator is validated against.
 *
 * The analyzer logs one record per retired dynamic instruction (the
 * simulator is trace-driven, so retirement order equals program
 * order and sequence numbers index the log directly). Periodically it
 * runs an exact *backward* dataflow pass over the log: an instruction
 * is ACE iff it retires through a failure point (load/store/branch,
 * the same conservative definition of Section 3.2 the online method
 * uses) or any reader of its destination value is ACE. From the ACE
 * marks and the logged stage timestamps it integrates, per
 * estimation interval:
 *
 *  - REG AVF: cycles each integer physical register holds an ACE
 *    value (writeback to last ACE read), over 80 registers;
 *  - IQ AVF: cycles each issue-queue entry holds an ACE instruction
 *    (dispatch to issue), over all 68 entries;
 *  - FXU/FPU AVF: unit-cycles occupied by ACE operations.
 *
 * Because ACE-ness depends on *future* reads, interval k is finalized
 * only after the simulation has advanced a lookahead L past the
 * interval's end; values whose last read falls more than L cycles
 * after production are (rarely) misclassified — L defaults to 32k
 * cycles, far beyond observed value lifetimes.
 */

#ifndef AVF_SOFTARCH_ACE_ANALYZER_HH
#define AVF_SOFTARCH_ACE_ANALYZER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/structures.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/types.hh"

namespace avf::softarch
{

/** Reference AVFs for one estimation interval. */
struct SoftArchAvf
{
    /** Indexed by core::Structure (IQ, REG, FXU, FPU, FREG). */
    std::array<double, core::numStructures> avf{};

    double &operator[](core::Structure s)
    {
        return avf[static_cast<std::size_t>(s)];
    }
    double operator[](core::Structure s) const
    {
        return avf[static_cast<std::size_t>(s)];
    }
};

/** Analyzer configuration. */
struct SoftArchConfig
{
    /** Estimation-interval length in cycles (M * N in the paper). */
    Cycle intervalCycles = 1'000'000;
    /** Cycles of lookahead before an interval is finalized. */
    Cycle lookahead = 32'768;
    /**
     * Compute the IQ AVF at field granularity (opcode + three
     * operand fields), matching the online estimator's
     * fieldGranularIq mode: an entry's residency counts weighted by
     * the fraction of its fields that are populated.
     */
    bool fieldGranularIq = false;
};

/** The offline reference model, attached as a pipeline observer. */
class AceAnalyzer : public cpu::PipelineObserver
{
  public:
    /**
     * @param pipe pipeline to watch (caller attaches).
     * @param config interval geometry.
     */
    AceAnalyzer(const cpu::Pipeline &pipe,
                SoftArchConfig config = SoftArchConfig{});

    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;
    void onCycle(Cycle now) override;

    /**
     * Flush every remaining interval (call once simulation stops;
     * the tail interval gets whatever lookahead was available).
     *
     * @param throughInterval finalize buckets up to and including
     *        this interval index.
     */
    void finalizeAll(std::size_t throughInterval);

    /** Per-interval reference AVFs finalized so far. */
    const std::vector<SoftArchAvf> &results() const { return output; }

    /** Records currently buffered (diagnostic). */
    std::size_t bufferedRecords() const { return records.size(); }

  private:
    /** Compact per-retired-instruction log entry. */
    struct Record
    {
        Cycle dispatchCycle;
        Cycle issueCycle;
        Cycle completeCycle;
        Cycle retireCycle;
        std::array<InstrSeq, 3> srcProducer;
        std::int16_t destPhys;
        std::uint8_t op;
        std::uint8_t numSrcs; ///< populated source-operand fields
        bool inIq;
        bool failurePoint;
        std::uint8_t fuClass; ///< cpu::FuClass, NumClasses when none
    };

    /** Accumulated ACE cycles per structure per interval bucket. */
    struct Bucket
    {
        std::array<double, core::numStructures> aceCycles{};
    };

    /** Run the backward ACE pass and attribute one interval. */
    void finalizeInterval();

    /** Add span [lo, hi) of structure @p s to buckets, scaled by
     *  @p weight entry-fractions. */
    void addSpan(core::Structure s, Cycle lo, Cycle hi,
                 double weight = 1.0);

    /** Emit the AVFs of bucket @p idx into `output`. */
    void emitBucket(std::size_t idx);

    const cpu::Pipeline &pipeline;
    SoftArchConfig conf;

    std::vector<Record> records;
    /** Sequence number of records[0]. */
    InstrSeq baseSeq = 0;
    /** Next interval index to *finalize* (attribute + drop). */
    std::size_t nextFinalize = 0;
    /** Next interval index to emit (lags finalize by one). */
    std::size_t nextEmit = 0;

    std::vector<Bucket> buckets;
    std::vector<SoftArchAvf> output;

    // scratch for the backward pass (reused across finalizations)
    std::vector<std::uint8_t> aceFlag;
    std::vector<Cycle> lastAceRead;
};

} // namespace avf::softarch

#endif // AVF_SOFTARCH_ACE_ANALYZER_HH
