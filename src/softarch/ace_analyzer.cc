#include "softarch/ace_analyzer.hh"

#include <algorithm>

#include "trace/instruction.hh"
#include "util/logging.hh"

namespace avf::softarch
{

using core::Structure;

AceAnalyzer::AceAnalyzer(const cpu::Pipeline &pipe,
                         SoftArchConfig config)
    : pipeline(pipe), conf(config)
{
    avf_assert(conf.intervalCycles > 0, "interval must be positive");
    avf_assert(conf.lookahead > 0, "lookahead must be positive");
}

void
AceAnalyzer::onRetire(const cpu::DynInstr &instr, const cpu::RetireInfo &)
{
    // Retirement is in program order in a trace-driven model, so the
    // sequence number indexes the log directly.
    avf_assert(instr.seq == baseSeq + records.size(),
               "retirement out of sequence order");

    Record rec;
    rec.dispatchCycle = instr.dispatchCycle;
    rec.issueCycle = instr.issueCycle;
    rec.completeCycle = instr.completeCycle;
    rec.retireCycle = instr.retireCycle;
    rec.srcProducer = instr.srcProducer;
    rec.destPhys = instr.destPhys;
    rec.op = static_cast<std::uint8_t>(instr.in.op);
    rec.numSrcs = static_cast<std::uint8_t>(instr.in.numSrcs());
    rec.inIq = instr.iqGlobalEntry >= 0;
    rec.failurePoint = instr.isFailurePoint();
    rec.fuClass = static_cast<std::uint8_t>(instr.fu);
    // Post-hoc ACE analysis buffers the retire window by design; the
    // front-erase in finalizeInterval() keeps capacity, so growth
    // stops after warm-up. avflint: allow(hot-path-alloc)
    records.push_back(rec);
}

void
AceAnalyzer::onCycle(Cycle now)
{
    while (now >= (static_cast<Cycle>(nextFinalize) + 1) *
                      conf.intervalCycles +
                      conf.lookahead) {
        finalizeInterval();
    }
}

void
AceAnalyzer::addSpan(Structure s, Cycle lo, Cycle hi, double weight)
{
    if (hi <= lo || weight <= 0.0)
        return;
    std::size_t first = static_cast<std::size_t>(
        lo / conf.intervalCycles);
    std::size_t last = static_cast<std::size_t>(
        (hi - 1) / conf.intervalCycles);
    if (last >= buckets.size())
        buckets.resize(last + 1);
    for (std::size_t b = first; b <= last; ++b) {
        Cycle bucket_lo = static_cast<Cycle>(b) * conf.intervalCycles;
        Cycle bucket_hi = bucket_lo + conf.intervalCycles;
        Cycle ov_lo = std::max(lo, bucket_lo);
        Cycle ov_hi = std::min(hi, bucket_hi);
        buckets[b].aceCycles[static_cast<std::size_t>(s)] +=
            static_cast<double>(ov_hi - ov_lo) * weight;
    }
}

void
AceAnalyzer::finalizeInterval()
{
    const Cycle end = (static_cast<Cycle>(nextFinalize) + 1) *
                      conf.intervalCycles;

    // ---- backward ACE dataflow pass over the whole buffer ----
    const std::size_t count = records.size();
    aceFlag.assign(count, 0);
    lastAceRead.assign(count, 0);

    for (std::size_t i = count; i-- > 0;) {
        const Record &rec = records[i];
        bool ace = rec.failurePoint || aceFlag[i];
        aceFlag[i] = ace ? 1 : 0;
        if (!ace)
            continue;
        for (InstrSeq producer : rec.srcProducer) {
            if (producer == invalidSeq || producer < baseSeq)
                continue;
            std::size_t idx =
                static_cast<std::size_t>(producer - baseSeq);
            avf_assert(idx < i, "producer does not precede consumer");
            aceFlag[idx] = 1;
            if (rec.issueCycle > lastAceRead[idx])
                lastAceRead[idx] = rec.issueCycle;
        }
    }

    // ---- attribute and drop the prefix that retired before `end` ----
    const int int_regs = pipeline.numIntPhysRegs();
    std::size_t drop = 0;
    while (drop < count && records[drop].retireCycle < end) {
        const Record &rec = records[drop];

        if (rec.inIq) {
            // An issue-queue entry is ACE while it holds an
            // instruction whose corruption would reach a failure
            // point: every load/store/branch (they retire as failure
            // points themselves) and any op with an ACE value. In
            // field-granular mode only the populated fields of the
            // entry are vulnerable.
            bool iq_ace = rec.failurePoint || aceFlag[drop];
            if (iq_ace) {
                double weight = 1.0;
                if (conf.fieldGranularIq) {
                    weight = (1.0 + static_cast<double>(rec.numSrcs)) /
                             static_cast<double>(
                                 cpu::Pipeline::iqFieldsPerEntry);
                }
                addSpan(Structure::IQ, rec.dispatchCycle,
                        rec.issueCycle, weight);
            }
        }

        if (rec.destPhys >= 0 &&
            lastAceRead[drop] > rec.completeCycle) {
            // The register holds an ACE value from writeback until
            // its last ACE read; integer and FP planes are separate
            // structures.
            addSpan(rec.destPhys < int_regs ? Structure::REG
                                            : Structure::FREG,
                    rec.completeCycle, lastAceRead[drop]);
        }

        if (aceFlag[drop] && !rec.failurePoint) {
            // Compute ops occupy their unit from issue to writeback;
            // unit-cycles holding ACE work are vulnerable.
            auto cls = static_cast<cpu::FuClass>(rec.fuClass);
            if (cls == cpu::FuClass::Fxu)
                addSpan(Structure::FXU, rec.issueCycle,
                        rec.completeCycle);
            else if (cls == cpu::FuClass::Fpu)
                addSpan(Structure::FPU, rec.issueCycle,
                        rec.completeCycle);
        }

        ++drop;
    }

    records.erase(records.begin(),
                  records.begin() + static_cast<std::ptrdiff_t>(drop));
    baseSeq += drop;

    // Bucket (nextFinalize - 1) can no longer receive spans: emit it.
    if (nextFinalize >= 1)
        emitBucket(nextFinalize - 1);
    ++nextFinalize;
}

void
AceAnalyzer::emitBucket(std::size_t idx)
{
    avf_assert(idx == output.size(),
               "buckets must be emitted in order (%zu vs %zu)",
               idx, output.size());
    if (idx >= buckets.size())
        buckets.resize(idx + 1);
    const Bucket &bucket = buckets[idx];

    auto interval = static_cast<double>(conf.intervalCycles);
    const auto &conf_cpu = pipeline.config();

    SoftArchAvf avf;
    avf[Structure::IQ] =
        bucket.aceCycles[static_cast<int>(Structure::IQ)] /
        (interval * static_cast<double>(conf_cpu.totalIqEntries()));
    avf[Structure::REG] =
        bucket.aceCycles[static_cast<int>(Structure::REG)] /
        (interval * static_cast<double>(pipeline.numIntPhysRegs()));
    avf[Structure::FXU] =
        bucket.aceCycles[static_cast<int>(Structure::FXU)] /
        (interval * static_cast<double>(conf_cpu.numFxu));
    avf[Structure::FPU] =
        bucket.aceCycles[static_cast<int>(Structure::FPU)] /
        (interval * static_cast<double>(conf_cpu.numFpu));
    avf[Structure::FREG] =
        bucket.aceCycles[static_cast<int>(Structure::FREG)] /
        (interval * static_cast<double>(conf_cpu.fpPhysRegs));
    // One row per finalized analysis interval.
    // avflint: allow(hot-path-alloc)
    output.push_back(avf);
}

void
AceAnalyzer::finalizeAll(std::size_t throughInterval)
{
    while (nextFinalize <= throughInterval + 1)
        finalizeInterval();
}

} // namespace avf::softarch
