#include "core/online_estimator.hh"

#include <stdexcept>

#include "util/logging.hh"

namespace avf::core
{

namespace
{

/** Validate before any member (the boundary ticker) consumes M. */
OnlineConfig
checked(OnlineConfig config)
{
    avf_assert(config.m > 0, "window length M must be positive");
    avf_assert(config.n > 0, "sample count N must be positive");
    avf_assert(config.lanes >= 0 &&
                   config.lanes <= numErrorChannels,
               "lane count %d outside 0..%d", config.lanes,
               numErrorChannels);
    return config;
}

} // namespace

OnlineAvfEstimator::OnlineAvfEstimator(cpu::Pipeline &pipe,
                                       Structure structure,
                                       OnlineConfig config,
                                       InjectionPort *sharedPort)
    : pipeline(pipe), target(structure), conf(checked(config)),
      rng(config.seed ^ static_cast<std::uint64_t>(
          channelOf(structure))),
      boundaryTick(config.m)
{
    const int lanes = conf.lanes > 0 ? conf.lanes : 1;
    std::vector<LaneId> reserved;
    if (sharedPort) {
        portPtr = sharedPort;
        reserved = portPtr->reserveLanes(lanes);
    } else {
        // Private port: pin the first lane to the legacy channel bit
        // so directly-constructed estimators of distinct structures
        // land on disjoint lanes, exactly as the per-channel design
        // did. (The private port is not on the observer list; this
        // estimator forwards its own onRetire to it.)
        ownedPort = std::make_unique<InjectionPort>(pipe);
        portPtr = ownedPort.get();
        portPtr->reserveLane(channelOf(structure));
        reserved.push_back(channelOf(structure));
        for (int i = 1; i < lanes; ++i)
            reserved.push_back(portPtr->reserveLane());
    }
    slots.resize(reserved.size());
    for (std::size_t i = 0; i < reserved.size(); ++i) {
        slots[i].lane = reserved[i];
        myLanes |= laneBit(reserved[i]);
    }
}

void
OnlineAvfEstimator::onRetire(const cpu::DynInstr &instr,
                             const cpu::RetireInfo &info)
{
    // A shared port sits on the pipeline's observer list itself; a
    // private one sees retirements only through its owner.
    if (ownedPort)
        ownedPort->onRetire(instr, info);
}

std::string
OnlineAvfEstimator::name() const
{
    return "online:" + std::string(structureName(target));
}

double
OnlineAvfEstimator::partialAvf() const
{
    return injections ? static_cast<double>(failures) /
                        static_cast<double>(injections)
                      : 0.0;
}

EstimatorState
OnlineAvfEstimator::snapshotState() const
{
    EstimatorState state;
    state.name = name();
    state.counters = {
        {"injections", injections},
        {"failures", failures},
        {"lifetime_injections", lifetimeInjections},
        {"lifetime_failures", lifetimeFailures},
        {"live_injections", liveInjections},
        {"windows_closed", windowsClosed},
        {"opened_this_interval", openedThisInterval},
        {"cursor", static_cast<std::uint64_t>(cursor)},
    };
    state.estimates = results;
    return state;
}

void
OnlineAvfEstimator::restoreState(const EstimatorState &state)
{
    if (state.name != name())
        throw std::invalid_argument(
            "estimator state for '" + state.name +
            "' cannot restore into '" + name() + "'");
    injections = static_cast<std::uint32_t>(
        state.counterValue("injections"));
    failures = static_cast<std::uint32_t>(
        state.counterValue("failures"));
    lifetimeInjections = state.counterValue("lifetime_injections");
    lifetimeFailures = state.counterValue("lifetime_failures");
    liveInjections = state.counterValue("live_injections");
    windowsClosed = state.counterValue("windows_closed");
    openedThisInterval = static_cast<std::uint32_t>(
        state.counterValue("opened_this_interval"));
    cursor = static_cast<int>(state.counterValue("cursor"));
    results = state.estimates;
}

Site
OnlineAvfEstimator::nextSite()
{
    Site site;
    site.structure = target;
    site.entry = cursor;

    switch (target) {
      case Structure::REG:
        cursor = (cursor + 1) % pipeline.numIntPhysRegs();
        break;
      case Structure::FREG:
        cursor = (cursor + 1) % pipeline.config().fpPhysRegs;
        break;
      case Structure::IQ:
        if (conf.fieldGranularIq) {
            int fields = cpu::Pipeline::iqFieldsPerEntry;
            int slot_count = pipeline.totalIqEntries() * fields;
            site.entry = cursor / fields;
            site.field = cursor % fields;
            cursor = (cursor + 1) % slot_count;
        } else {
            cursor = (cursor + 1) % pipeline.totalIqEntries();
        }
        break;
      case Structure::FXU:
        cursor = (cursor + 1) % pipeline.config().numFxu;
        break;
      case Structure::FPU:
        cursor = (cursor + 1) % pipeline.config().numFpu;
        break;
      default:
        panic("estimator bound to invalid structure");
    }
    return site;
}

void
OnlineAvfEstimator::openWindow(LaneSlot &slot, Cycle now)
{
    Site site = nextSite();
    slot.handle = portPtr->open(slot.lane, site, now);
    slot.open = true;
    ++lifetimeInjections;

    bool live = slot.handle.inject == InjectOutcome::Occupied;
    if (live)
        ++liveInjections;
    if (sink)
        sink->openRecord(target, slot.lane, site.entry, site.field,
                         live, now);
}

void
OnlineAvfEstimator::windowBoundary(Cycle now)
{
    // Close phase: every window opened at the previous boundary ends
    // here, in lane order. The Nth close finishes the interval.
    for (auto &slot : slots) {
        slot.scheduled = false;
        if (!slot.open)
            continue;
        Outcome outcome = portPtr->closed(slot.handle);
        slot.open = false;
        ++injections;
        ++windowsClosed;
        if (outcome.failed) {
            ++failures;
            ++lifetimeFailures;
        }
        if (sink)
            sink->closeRecord(target, slot.lane, now, outcome);
        if (injections == conf.n) {
            // One estimate per completed interval of n injections.
            // avflint: allow(hot-path-alloc)
            results.push_back(static_cast<double>(failures) /
                              static_cast<double>(conf.n));
            injections = 0;
            failures = 0;
            openedThisInterval = 0;
        }
    }
    scheduledCount = 0;

    // One error at a time per lane: one batched sweep retires every
    // lane's bits before the next windows open.
    portPtr->clearLanes(myLanes);

    // Open phase: saturate the lanes, capped so an interval closes on
    // exactly N windows (the cap only binds on the last boundary of
    // an interval when lanes does not divide N).
    auto want = static_cast<std::uint32_t>(slots.size());
    std::uint32_t room = conf.n - openedThisInterval;
    std::uint32_t opening = want < room ? want : room;
    for (std::uint32_t i = 0; i < opening; ++i) {
        LaneSlot &slot = slots[i];
        if (conf.randomizeInjectionTiming) {
            slot.scheduled = true;
            slot.injectAt = now + rng.below(conf.m);
            ++scheduledCount;
        } else {
            openWindow(slot, now);
        }
    }
    openedThisInterval += opening;
}

void
OnlineAvfEstimator::onCycle(Cycle now)
{
    if (boundaryTick.tick(now))
        windowBoundary(now);
    if (scheduledCount) {
        for (auto &slot : slots) {
            if (!slot.scheduled || now != slot.injectAt)
                continue;
            slot.scheduled = false;
            --scheduledCount;
            openWindow(slot, now);
        }
    }
}

} // namespace avf::core
