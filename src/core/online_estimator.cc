#include "core/online_estimator.hh"

#include "util/logging.hh"

namespace avf::core
{

namespace
{

/** Validate before any member (the boundary ticker) consumes M. */
OnlineConfig
checked(OnlineConfig config)
{
    avf_assert(config.m > 0, "window length M must be positive");
    avf_assert(config.n > 0, "sample count N must be positive");
    return config;
}

} // namespace

OnlineAvfEstimator::OnlineAvfEstimator(cpu::Pipeline &pipe,
                                       Structure structure,
                                       OnlineConfig config)
    : pipeline(pipe), target(structure), conf(checked(config)),
      channelBit(static_cast<cpu::ErrorMask>(
          1u << channelOf(structure))),
      rng(config.seed ^ static_cast<std::uint64_t>(
          channelOf(structure))),
      boundaryTick(config.m)
{
}

void
OnlineAvfEstimator::onRetire(const cpu::DynInstr &,
                             const cpu::RetireInfo &info)
{
    if ((info.failureMask & channelBit) && injectedThisWindow)
        failureSeen = true;
}

std::string
OnlineAvfEstimator::name() const
{
    return "online:" + std::string(structureName(target));
}

double
OnlineAvfEstimator::partialAvf() const
{
    return injections ? static_cast<double>(failures) /
                        static_cast<double>(injections)
                      : 0.0;
}

void
OnlineAvfEstimator::inject(Cycle now)
{
    injectedThisWindow = true;
    ++lifetimeInjections;

    // Lifecycle bookkeeping: where the injection landed and whether
    // the target was live (occupied/busy) at injection time.
    int entry = cursor;
    int field = -1;
    bool live = false;

    switch (target) {
      case Structure::REG: {
        int regs = pipeline.numIntPhysRegs();
        pipeline.injectRegError(cursor, channelBit);
        live = true; // liveness of a register is not observable
        ++liveInjections;
        cursor = (cursor + 1) % regs;
        break;
      }
      case Structure::FREG: {
        int base = pipeline.numIntPhysRegs();
        int regs = pipeline.config().fpPhysRegs;
        pipeline.injectRegError(base + cursor, channelBit);
        live = true;
        ++liveInjections;
        cursor = (cursor + 1) % regs;
        break;
      }
      case Structure::IQ: {
        if (conf.fieldGranularIq) {
            int fields = cpu::Pipeline::iqFieldsPerEntry;
            int slots = pipeline.totalIqEntries() * fields;
            entry = cursor / fields;
            field = cursor % fields;
            auto outcome = pipeline.injectIqFieldError(
                entry, field, channelBit);
            if (outcome ==
                cpu::Pipeline::IqFieldInjection::Corrupted) {
                live = true;
                ++liveInjections;
            }
            cursor = (cursor + 1) % slots;
        } else {
            int entries = pipeline.totalIqEntries();
            if (pipeline.injectIqEntryError(cursor, channelBit)) {
                live = true;
                ++liveInjections;
            }
            cursor = (cursor + 1) % entries;
        }
        break;
      }
      case Structure::FXU: {
        int num_units = pipeline.config().numFxu;
        if (pipeline.injectFuError(cpu::FuClass::Fxu, cursor,
                                   channelBit) > 0) {
            live = true;
            ++liveInjections;
        }
        cursor = (cursor + 1) % num_units;
        break;
      }
      case Structure::FPU: {
        int num_units = pipeline.config().numFpu;
        if (pipeline.injectFuError(cpu::FuClass::Fpu, cursor,
                                   channelBit) > 0) {
            live = true;
            ++liveInjections;
        }
        cursor = (cursor + 1) % num_units;
        break;
      }
      default:
        panic("estimator bound to invalid structure");
    }

    if (sink)
        sink->openRecord(target, entry, field, live, now);
}

void
OnlineAvfEstimator::windowBoundary(Cycle now)
{
    if (injectedThisWindow) {
        // Close the window that just ended.
        ++injections;
        ++windowsClosed;
        if (failureSeen) {
            ++failures;
            ++lifetimeFailures;
        }
        failureSeen = false;
        if (sink)
            sink->closeRecord(target, now);
        if (injections == conf.n) {
            results.push_back(static_cast<double>(failures) /
                              static_cast<double>(conf.n));
            injections = 0;
            failures = 0;
        }
    }

    // One error at a time: wipe the channel before re-injecting.
    pipeline.clearErrorChannels(channelBit);
    injectedThisWindow = false;
    windowStart = now;

    if (conf.randomizeInjectionTiming) {
        pendingInjectCycle = now + rng.below(conf.m);
    } else {
        pendingInjectCycle = now;
    }
}

void
OnlineAvfEstimator::onCycle(Cycle now)
{
    if (boundaryTick.tick(now))
        windowBoundary(now);
    if (!injectedThisWindow && now == pendingInjectCycle)
        inject(now);
}

} // namespace avf::core
