#include "core/occupancy_estimator.hh"

#include <stdexcept>

#include "util/logging.hh"

namespace avf::core
{

OccupancyEstimator::OccupancyEstimator(const cpu::Pipeline &pipe,
                                       Cycle intervalCycles)
    : pipeline(pipe), intervalLen(intervalCycles),
      boundaryTick(intervalCycles, intervalCycles - 1)
{
    avf_assert(intervalLen > 0, "interval length must be positive");
}

void
OccupancyEstimator::onCycle(Cycle now)
{
    // Interval k covers cycles [k * len, (k+1) * len); close it at
    // the end of its last cycle.
    if (!boundaryTick.tick(now))
        return;
    std::uint64_t sum = pipeline.stats().iqOccupancySum;
    std::uint64_t delta = sum - lastOccupancySum;
    lastOccupancySum = sum;
    auto capacity = static_cast<double>(
        pipeline.config().totalIqEntries());
    // One sample per estimation interval; unbounded by design.
    // avflint: allow(hot-path-alloc)
    results.push_back(static_cast<double>(delta) /
                      (static_cast<double>(intervalLen) * capacity));
}

std::string
OccupancyEstimator::name() const
{
    return "occupancy:iq";
}

double
OccupancyEstimator::partialAvf() const
{
    Cycle boundary = static_cast<Cycle>(results.size()) * intervalLen;
    Cycle elapsed = pipeline.now() + 1 - boundary;
    if (elapsed == 0 || pipeline.now() + 1 < boundary)
        return 0.0;
    std::uint64_t delta = pipeline.stats().iqOccupancySum -
                          lastOccupancySum;
    auto capacity = static_cast<double>(
        pipeline.config().totalIqEntries());
    return static_cast<double>(delta) /
           (static_cast<double>(elapsed) * capacity);
}

EstimatorState
OccupancyEstimator::snapshotState() const
{
    EstimatorState state;
    state.name = name();
    state.counters = {{"last_occupancy_sum", lastOccupancySum}};
    state.estimates = results;
    return state;
}

void
OccupancyEstimator::restoreState(const EstimatorState &state)
{
    if (state.name != name())
        throw std::invalid_argument(
            "estimator state for '" + state.name +
            "' cannot restore into '" + name() + "'");
    lastOccupancySum = state.counterValue("last_occupancy_sum");
    results = state.estimates;
}

} // namespace avf::core
