/**
 * @file
 * The other related-work estimator the paper discusses (Section 2):
 * Walcott et al. predict AVF from observable microarchitectural
 * variables via regression fitted offline on training workloads.
 * "It requires heavy offline simulation and calibration for
 * different workloads. It is not clear that the parameters
 * calibrated for one set of workloads will give accurate estimation
 * for another set." We implement it faithfully — per-interval
 * feature extraction, ridge-regularized least squares, online
 * application — so the cross-workload-generalization question can
 * be answered experimentally (bench/ablation_regression).
 */

#ifndef AVF_CORE_REGRESSION_ESTIMATOR_HH
#define AVF_CORE_REGRESSION_ESTIMATOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/avf_estimator.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/interval_ticker.hh"
#include "util/types.hh"

namespace avf::core
{

/** Number of regression features (including the intercept). */
inline constexpr int numRegressionFeatures = 9;

/** One interval's feature vector. */
using FeatureVector = std::array<double, numRegressionFeatures>;

/**
 * Collects the per-interval microarchitectural variables the
 * regression consumes: occupancies, unit utilizations, instruction
 * mix, and IPC — all hardware-countable, as in Walcott et al.
 */
class FeatureCollector : public cpu::PipelineObserver
{
  public:
    /**
     * @param pipe pipeline to watch (caller attaches).
     * @param intervalCycles estimation-interval length.
     */
    FeatureCollector(const cpu::Pipeline &pipe, Cycle intervalCycles);

    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;
    void onCycle(Cycle now) override;

    /** One feature vector per completed interval. */
    const std::vector<FeatureVector> &features() const
    {
        return rows;
    }

  private:
    const cpu::Pipeline &pipeline;
    Cycle intervalLen;
    /** Fires on interval-closing cycles ((now + 1) % len == 0). */
    IntervalTicker boundaryTick;

    // counter snapshots at the last interval boundary
    std::uint64_t lastIqOcc = 0;
    std::uint64_t lastRobOcc = 0;
    std::uint64_t lastBusy[4] = {0, 0, 0, 0};
    std::uint64_t lastRetired = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;

    std::vector<FeatureVector> rows;
};

/** Ridge-regularized linear model over the feature vector. */
class LinearAvfModel
{
  public:
    /**
     * Fit weights minimizing ||X w - y||^2 + ridge ||w||^2 by
     * solving the normal equations.
     *
     * @param features training rows.
     * @param targets reference AVFs, same length.
     * @param ridge regularizer (> 0 keeps the solve well-posed).
     */
    void fit(const std::vector<FeatureVector> &features,
             const std::vector<double> &targets,
             double ridge = 1e-6);

    /** Predicted AVF for one feature vector, clamped to [0, 1]. */
    double predict(const FeatureVector &row) const;

    /** Predictions for a whole series. */
    std::vector<double>
    predictSeries(const std::vector<FeatureVector> &rows) const;

    /** Fitted weights (intercept first). */
    const FeatureVector &weights() const { return coeff; }

    /**
     * Install weights directly (marks the model trained). The
     * restore path for serve checkpoints: a calibration fitted in
     * one process is reinstalled in another without refitting.
     */
    void setWeights(const FeatureVector &w)
    {
        coeff = w;
        isTrained = true;
    }

    /** True once fit() has run. */
    bool trained() const { return isTrained; }

  private:
    FeatureVector coeff{};
    bool isTrained = false;
};

/**
 * The Walcott-style estimator as a single AvfEstimator: a
 * FeatureCollector attached to the pipeline plus a LinearAvfModel
 * (typically fitted offline on training workloads). estimates()
 * yields one prediction per completed interval; until a trained
 * model is supplied it stays empty — the regression approach cannot
 * produce numbers without calibration, which is exactly the paper's
 * criticism of it.
 */
class RegressionEstimator : public AvfEstimator
{
  public:
    /**
     * @param pipe pipeline to watch (caller attaches).
     * @param intervalCycles estimation-interval length.
     * @param model prediction model; may be untrained and replaced
     *        later via setModel().
     */
    RegressionEstimator(const cpu::Pipeline &pipe,
                        Cycle intervalCycles,
                        LinearAvfModel model = LinearAvfModel{});

    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;
    void onCycle(Cycle now) override;

    /** "regression:iq" (the model is calibrated against IQ AVF). */
    std::string name() const override;

    /** Per-interval predictions; empty until the model is trained. */
    const std::vector<double> &estimates() const override;

    /** Latest completed-interval prediction (regression has no
     *  intra-interval visibility); 0 when none. */
    double partialAvf() const override;

    /** Install a (trained) model; predictions recompute lazily. */
    void setModel(LinearAvfModel model);

    /**
     * The calibration (model weights + trained flag), not the
     * feature history: predictions always recompute lazily from the
     * local collector, so a restored estimator reports exactly what
     * a same-calibration estimator over the same pipeline would. The
     * snapshot's estimates field is informational only.
     */
    EstimatorState snapshotState() const override;
    void restoreState(const EstimatorState &state) override;

    /** Raw per-interval feature rows (for offline fitting). */
    const std::vector<FeatureVector> &features() const
    {
        return collector.features();
    }

  private:
    FeatureCollector collector;
    LinearAvfModel model;
    /** Cache of model.predictSeries(features()), refreshed lazily. */
    mutable std::vector<double> cached;
};

} // namespace avf::core

#endif // AVF_CORE_REGRESSION_ESTIMATOR_HH
