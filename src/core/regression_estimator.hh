/**
 * @file
 * The other related-work estimator the paper discusses (Section 2):
 * Walcott et al. predict AVF from observable microarchitectural
 * variables via regression fitted offline on training workloads.
 * "It requires heavy offline simulation and calibration for
 * different workloads. It is not clear that the parameters
 * calibrated for one set of workloads will give accurate estimation
 * for another set." We implement it faithfully — per-interval
 * feature extraction, ridge-regularized least squares, online
 * application — so the cross-workload-generalization question can
 * be answered experimentally (bench/ablation_regression).
 */

#ifndef AVF_CORE_REGRESSION_ESTIMATOR_HH
#define AVF_CORE_REGRESSION_ESTIMATOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/types.hh"

namespace avf::core
{

/** Number of regression features (including the intercept). */
inline constexpr int numRegressionFeatures = 9;

/** One interval's feature vector. */
using FeatureVector = std::array<double, numRegressionFeatures>;

/**
 * Collects the per-interval microarchitectural variables the
 * regression consumes: occupancies, unit utilizations, instruction
 * mix, and IPC — all hardware-countable, as in Walcott et al.
 */
class FeatureCollector : public cpu::PipelineObserver
{
  public:
    /**
     * @param pipe pipeline to watch (caller attaches).
     * @param intervalCycles estimation-interval length.
     */
    FeatureCollector(const cpu::Pipeline &pipe, Cycle intervalCycles);

    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;
    void onCycle(Cycle now) override;

    /** One feature vector per completed interval. */
    const std::vector<FeatureVector> &features() const
    {
        return rows;
    }

  private:
    const cpu::Pipeline &pipeline;
    Cycle intervalLen;

    // counter snapshots at the last interval boundary
    std::uint64_t lastIqOcc = 0;
    std::uint64_t lastRobOcc = 0;
    std::uint64_t lastBusy[4] = {0, 0, 0, 0};
    std::uint64_t lastRetired = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;

    std::vector<FeatureVector> rows;
};

/** Ridge-regularized linear model over the feature vector. */
class LinearAvfModel
{
  public:
    /**
     * Fit weights minimizing ||X w - y||^2 + ridge ||w||^2 by
     * solving the normal equations.
     *
     * @param features training rows.
     * @param targets reference AVFs, same length.
     * @param ridge regularizer (> 0 keeps the solve well-posed).
     */
    void fit(const std::vector<FeatureVector> &features,
             const std::vector<double> &targets,
             double ridge = 1e-6);

    /** Predicted AVF for one feature vector, clamped to [0, 1]. */
    double predict(const FeatureVector &row) const;

    /** Predictions for a whole series. */
    std::vector<double>
    predictSeries(const std::vector<FeatureVector> &rows) const;

    /** Fitted weights (intercept first). */
    const FeatureVector &weights() const { return coeff; }

    /** True once fit() has run. */
    bool trained() const { return isTrained; }

  private:
    FeatureVector coeff{};
    bool isTrained = false;
};

} // namespace avf::core

#endif // AVF_CORE_REGRESSION_ESTIMATOR_HH
