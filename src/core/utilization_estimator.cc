#include "core/utilization_estimator.hh"

#include <cctype>
#include <stdexcept>

#include "util/logging.hh"

namespace avf::core
{

UtilizationEstimator::UtilizationEstimator(const cpu::Pipeline &pipe,
                                           cpu::FuClass cls,
                                           Cycle intervalCycles)
    : pipeline(pipe), fuClass(cls), intervalLen(intervalCycles),
      boundaryTick(intervalCycles, intervalCycles - 1)
{
    avf_assert(intervalLen > 0, "interval length must be positive");
}

void
UtilizationEstimator::onCycle(Cycle now)
{
    // Interval k covers cycles [k * len, (k+1) * len); close it at
    // the end of its last cycle.
    if (!boundaryTick.tick(now))
        return;
    std::uint64_t busy = pipeline.stats().busyUnitCycles[
        static_cast<int>(fuClass)];
    std::uint64_t delta = busy - lastBusy;
    lastBusy = busy;
    auto units = static_cast<double>(
        pipeline.config().unitsIn(fuClass));
    // One sample per estimation interval; unbounded by design.
    // avflint: allow(hot-path-alloc)
    results.push_back(static_cast<double>(delta) /
                      (static_cast<double>(intervalLen) * units));
}

std::string
UtilizationEstimator::name() const
{
    std::string cls = cpu::fuClassName(fuClass);
    for (char &c : cls)
        c = static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    return "utilization:" + cls;
}

double
UtilizationEstimator::partialAvf() const
{
    Cycle boundary = static_cast<Cycle>(results.size()) * intervalLen;
    Cycle elapsed = pipeline.now() + 1 - boundary;
    if (elapsed == 0 || pipeline.now() + 1 < boundary)
        return 0.0;
    std::uint64_t delta = pipeline.stats().busyUnitCycles[
        static_cast<int>(fuClass)] - lastBusy;
    auto units = static_cast<double>(
        pipeline.config().unitsIn(fuClass));
    return static_cast<double>(delta) /
           (static_cast<double>(elapsed) * units);
}

EstimatorState
UtilizationEstimator::snapshotState() const
{
    EstimatorState state;
    state.name = name();
    state.counters = {{"last_busy", lastBusy}};
    state.estimates = results;
    return state;
}

void
UtilizationEstimator::restoreState(const EstimatorState &state)
{
    if (state.name != name())
        throw std::invalid_argument(
            "estimator state for '" + state.name +
            "' cannot restore into '" + name() + "'");
    lastBusy = state.counterValue("last_busy");
    results = state.estimates;
}

} // namespace avf::core
