#include "core/utilization_estimator.hh"

#include "util/logging.hh"

namespace avf::core
{

UtilizationEstimator::UtilizationEstimator(const cpu::Pipeline &pipe,
                                           cpu::FuClass cls,
                                           Cycle intervalCycles)
    : pipeline(pipe), fuClass(cls), intervalLen(intervalCycles)
{
    avf_assert(intervalLen > 0, "interval length must be positive");
}

void
UtilizationEstimator::onCycle(Cycle now)
{
    // Interval k covers cycles [k * len, (k+1) * len); close it at
    // the end of its last cycle.
    if ((now + 1) % intervalLen != 0)
        return;
    std::uint64_t busy = pipeline.stats().busyUnitCycles[
        static_cast<int>(fuClass)];
    std::uint64_t delta = busy - lastBusy;
    lastBusy = busy;
    auto units = static_cast<double>(
        pipeline.config().unitsIn(fuClass));
    results.push_back(static_cast<double>(delta) /
                      (static_cast<double>(intervalLen) * units));
}

} // namespace avf::core
