#include "core/predictor.hh"

#include <cmath>

#include "util/logging.hh"

namespace avf::core
{

EmaPredictor::EmaPredictor(double alpha_) : alpha(alpha_)
{
    avf_assert(alpha > 0.0 && alpha <= 1.0, "EMA alpha out of (0,1]");
}

void
EmaPredictor::observe(double avf)
{
    if (!primed) {
        value = avf;
        primed = true;
    } else {
        value = alpha * avf + (1.0 - alpha) * value;
    }
}

std::vector<double>
predictionErrors(AvfPredictor &predictor,
                 const std::vector<double> &estimates,
                 const std::vector<double> &reference)
{
    avf_assert(estimates.size() == reference.size(),
               "estimate/reference length mismatch");
    std::vector<double> errors;
    if (estimates.empty())
        return errors;
    errors.reserve(estimates.size() - 1);
    predictor.reset();
    predictor.observe(estimates[0]);
    for (std::size_t i = 1; i < estimates.size(); ++i) {
        errors.push_back(std::fabs(predictor.predict() - reference[i]));
        predictor.observe(estimates[i]);
    }
    return errors;
}

} // namespace avf::core
