/**
 * @file
 * Common interface for every AVF estimator in core/: the paper's
 * online error-bit estimator, the utilization and occupancy counter
 * baselines, the Walcott-style regression estimator, and the TLB
 * extension all expose the same three observables, so the harness and
 * benches can iterate estimator sets generically instead of
 * hard-coding each class.
 */

#ifndef AVF_CORE_AVF_ESTIMATOR_HH
#define AVF_CORE_AVF_ESTIMATOR_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cpu/observer.hh"

namespace avf::core
{

/**
 * Plain-data snapshot of one estimator's accumulated reporting state:
 * the per-interval estimates plus the named counters and values a
 * resumed service needs to keep reporting where the original left
 * off. Snapshots are taken at quiesce points (interval boundaries or
 * end of run); in-flight microarchitectural window state is
 * deliberately NOT captured — the serve layer's crash-resume
 * recomputes an interrupted slice from its config, which is both
 * cheaper and exactly deterministic (see DESIGN.md §13).
 *
 * Entry order is fixed per family, so equal states serialize to equal
 * bytes through harness/task_codec.
 */
struct EstimatorState
{
    /** Producing estimator's name(); restore requires a match. */
    std::string name;
    /** Monotonic counters (injections, failures, cursors, ...). */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /** Real-valued state (model weights, boundary snapshots, ...). */
    std::vector<std::pair<std::string, double>> values;
    /** Completed per-interval estimates at snapshot time. */
    std::vector<double> estimates;

    /** Counter by name; 0 when absent. */
    std::uint64_t counterValue(std::string_view key) const
    {
        for (const auto &[name_, v] : counters)
            if (name_ == key)
                return v;
        return 0;
    }

    /** Value by name; 0.0 when absent. */
    double valueOf(std::string_view key) const
    {
        for (const auto &[name_, v] : values)
            if (name_ == key)
                return v;
        return 0.0;
    }
};

/**
 * An AVF estimator attached to the pipeline as an observer. Estimates
 * accumulate one value per completed estimation interval; partialAvf()
 * reads the still-open interval.
 */
class AvfEstimator : public cpu::PipelineObserver
{
  public:
    ~AvfEstimator() override = default;

    /** Stable display name, "method:target" (e.g. "online:iq"). */
    virtual std::string name() const = 0;

    /** Completed per-interval AVF estimates, oldest first. */
    virtual const std::vector<double> &estimates() const = 0;

    /** Best estimate over the current (incomplete) interval. */
    virtual double partialAvf() const = 0;

    /** Copy the accumulated reporting state (see EstimatorState). */
    virtual EstimatorState snapshotState() const = 0;

    /**
     * Restore a state produced by the same family's snapshotState().
     * Throws std::invalid_argument when @p state names a different
     * estimator — restore consumes wire/checkpoint data, so a
     * mismatch is an input error, not a programmer error. After a
     * successful restore the accessors report the snapshot's numbers
     * and new intervals accumulate on top.
     */
    virtual void restoreState(const EstimatorState &state) = 0;
};

} // namespace avf::core

#endif // AVF_CORE_AVF_ESTIMATOR_HH
