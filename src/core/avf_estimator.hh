/**
 * @file
 * Common interface for every AVF estimator in core/: the paper's
 * online error-bit estimator, the utilization and occupancy counter
 * baselines, the Walcott-style regression estimator, and the TLB
 * extension all expose the same three observables, so the harness and
 * benches can iterate estimator sets generically instead of
 * hard-coding each class.
 */

#ifndef AVF_CORE_AVF_ESTIMATOR_HH
#define AVF_CORE_AVF_ESTIMATOR_HH

#include <string>
#include <vector>

#include "cpu/observer.hh"

namespace avf::core
{

/**
 * An AVF estimator attached to the pipeline as an observer. Estimates
 * accumulate one value per completed estimation interval; partialAvf()
 * reads the still-open interval.
 */
class AvfEstimator : public cpu::PipelineObserver
{
  public:
    ~AvfEstimator() override = default;

    /** Stable display name, "method:target" (e.g. "online:iq"). */
    virtual std::string name() const = 0;

    /** Completed per-interval AVF estimates, oldest first. */
    virtual const std::vector<double> &estimates() const = 0;

    /** Best estimate over the current (incomplete) interval. */
    virtual double partialAvf() const = 0;
};

} // namespace avf::core

#endif // AVF_CORE_AVF_ESTIMATOR_HH
