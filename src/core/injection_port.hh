/**
 * @file
 * The one injection surface. Every estimator family used to grow its
 * own incompatible entry point (OnlineAvfEstimator::inject(Cycle),
 * TlbAvfEstimator::inject(), PropagationProbe::inject(Cycle),
 * Tlb::injectError returning a bare bool); the InjectionPort replaces
 * that scatter with a single tagged-window API over the word-level
 * ErrorPlane:
 *
 *     open(lane, site, cycle) -> WindowHandle   // fire one injection
 *     closed(handle)          -> Outcome        // end its window
 *
 * Each of the 64 bit lanes of the plane word carries one independent
 * tagged injection with its own window clock, so up to 64 campaigns
 * advance concurrently per propagation word-op.
 *
 * Contract (see DESIGN.md "The InjectionPort contract"):
 *
 *  - Lane independence: the port never mixes bits across lanes. The
 *    outcome of a window on lane k depends only on the injections
 *    opened on lane k — running other lanes concurrently cannot
 *    change it (pinned by the `lanes`-labeled equivalence tests).
 *  - Window lifecycle: a lane is free, then open (between open() and
 *    closed()), then free again. The port latches the first failure
 *    retirement that carries the lane's bit; closed() reports it.
 *    Handles are serial-numbered so a stale handle cannot close a
 *    later window.
 *  - Outcomes carry simulated-clock data only (openedAt/failCycle) —
 *    never wall-clock readings, which would differ run to run and
 *    break the byte-identical campaign exports.
 *  - Clearing is explicit and batched: closed() does not sweep the
 *    lane's bits out of the machine; callers close a batch of lanes
 *    and issue one clearLanes() for the union, which is what makes a
 *    64-lane boundary sweep cost one AND-NOT pass instead of 64.
 */

#ifndef AVF_CORE_INJECTION_PORT_HH
#define AVF_CORE_INJECTION_PORT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/structures.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/types.hh"

namespace avf::core
{

/**
 * Where an injection lands. Structure sites address the five pipeline
 * structures (entry = register / IQ entry / unit index, structure-
 * local); Dtlb sites address data-TLB entry slots. field >= 0 selects
 * field-granular IQ injection (Section 3.6). The extended-coverage
 * kinds (FetchBuf / RenameMap / BranchPred) address the structures
 * the pipeline models but the paper never estimates; they ignore the
 * structure member the same way Dtlb does.
 */
struct Site
{
    enum class Kind : int
    {
        Structure,  ///< one of the core::Structure targets
        Dtlb,       ///< a data-TLB entry slot
        FetchBuf,   ///< a fetch/instruction-buffer slot
        RenameMap,  ///< a rename-map slot (architectural register)
        BranchPred  ///< a branch-predictor counter slot
    };

    Kind kind = Kind::Structure;
    /** Target structure; ignored for Dtlb sites. */
    Structure structure = Structure::IQ;
    /** Entry index within the target (structure-local). */
    int entry = 0;
    /** IQ field index, -1 for whole-entry injections. */
    int field = -1;
};

/**
 * Ticket for one open injection window. The inject field reports how
 * the injection landed (Rejected / Opened / Occupied — see
 * util/types.hh:InjectOutcome); the serial number guards against a
 * stale handle closing a window it did not open.
 */
struct WindowHandle
{
    LaneId lane = -1;
    std::uint64_t serial = 0;
    InjectOutcome inject = InjectOutcome::Rejected;

    /** True when open() actually opened a window. */
    bool valid() const { return lane >= 0; }
};

/**
 * What a closed window observed. Simulated-clock data only: openedAt
 * and failCycle are pipeline cycles, deterministic functions of
 * (trace, seed, config).
 */
struct Outcome
{
    /** A failure point retired carrying the lane's bit. */
    bool failed = false;
    /** The injection landed on an occupied / busy target. */
    bool live = false;
    /** Lane the window ran on. */
    LaneId lane = -1;
    /** Cycle the window opened (injection fired). */
    Cycle openedAt = 0;
    /** Cycle of the first failure retirement (valid when failed). */
    Cycle failCycle = 0;
    /**
     * Blame identity of the failure: trace PC and opcode class of
     * the retiring instruction that carried the lane's bit out.
     * failOp holds the trace::OpClass as an int, -1 when the window
     * closed without a failure. This is what the attribution layer
     * keys root-cause tables on (obs/attribution.hh).
     */
    Addr failPc = 0;
    int failOp = -1;
    /** Where the injection landed. */
    Site site;
};

/**
 * The injection surface over one pipeline. Reserve lanes once, then
 * open/close tagged windows on them. The port watches retirements as
 * a PipelineObserver to latch per-lane failures; attach it to the
 * pipeline *before* the estimators that poll it (the harness does),
 * or — for a privately owned port — forward onRetire to it.
 *
 * The port is the only sanctioned writer of injected error bits
 * (avflint's injection-port-discipline check enforces this): every
 * open() tags exactly one lane, so no injection can enter the plane
 * untagged.
 */
class InjectionPort : public cpu::PipelineObserver
{
  public:
    /** @param pipe pipeline to inject into (must outlive the port). */
    explicit InjectionPort(cpu::Pipeline &pipe);

    // ---- lane reservation (setup time) ----

    /** Reserve the lowest free lane. Fatal when none remain. */
    LaneId reserveLane();

    /** Reserve a specific lane (legacy channel pinning). */
    void reserveLane(LaneId lane);

    /** Reserve @p count lowest free lanes, in ascending order. */
    std::vector<LaneId> reserveLanes(int count);

    /** Lanes still unreserved. */
    int freeLanes() const;

    // ---- the injection surface ----

    /**
     * Open an injection window on @p lane: fire one injection tagged
     * with the lane's bit at @p site. The lane must be reserved and
     * not already open. @return the window's handle; handle.inject
     * tells how the injection landed (a Rejected site opens the
     * window with nothing in flight — it closes as not-failed).
     */
    WindowHandle open(LaneId lane, const Site &site, Cycle now);

    /**
     * Close the window @p handle opened. The handle must be the one
     * returned by the matching open() (stale serials are fatal).
     * Does NOT clear the lane's bits — batch with clearLanes().
     */
    Outcome closed(const WindowHandle &handle);

    /**
     * Sweep the bits of @p mask lanes out of the whole machine (one
     * pipeline-wide AND-NOT pass). Callers batch: close every lane
     * of a boundary, then clear their union once.
     */
    void clearLanes(ErrorMask mask);

    /** True when @p handle's window has latched a failure so far. */
    bool failureSeen(const WindowHandle &handle) const;

    /** Union bit mask of this port's open lanes. */
    ErrorMask openMask() const { return openLanes; }

    /** Union bit mask of every reserved lane. */
    ErrorMask reservedMask() const { return reservedLanes; }

    // ---- cpu::PipelineObserver ----

    /** Latch failures: first failure retirement per open lane. */
    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;

  private:
    struct Lane
    {
        bool reserved = false;
        bool open = false;
        bool failed = false;
        bool live = false;
        std::uint64_t serial = 0;
        Cycle openedAt = 0;
        Cycle failCycle = 0;
        /** Blame identity of the latched failure (see Outcome). */
        Addr failPc = 0;
        int failOp = -1;
        Site site;
    };

    Lane &laneAt(LaneId lane);
    const Lane &laneAt(LaneId lane) const;
    /** Fire the physical injection for @p site; returns how it hit. */
    InjectOutcome fire(const Site &site, ErrorMask bit);

    cpu::Pipeline &pipeline;
    std::array<Lane, numErrorChannels> laneState{};
    ErrorMask reservedLanes = 0;
    ErrorMask openLanes = 0;
    ErrorMask failedLanes = 0;
};

} // namespace avf::core

#endif // AVF_CORE_INJECTION_PORT_HH
