/**
 * @file
 * Narrow interface through which the online estimator reports the
 * start and end of every injection's lifecycle. The estimator stays
 * free of any dependency on the observability machinery: src/obs
 * implements this interface (LifecycleTracker) and core only talks to
 * the abstraction. A null sink (the default) costs one pointer test
 * per injection.
 */

#ifndef AVF_CORE_LIFECYCLE_SINK_HH
#define AVF_CORE_LIFECYCLE_SINK_HH

#include "core/structures.hh"
#include "util/types.hh"

namespace avf::core
{

struct Outcome;

/** Receiver of injection-lifecycle open/close notifications. */
class LifecycleSink
{
  public:
    virtual ~LifecycleSink() = default;

    /**
     * An injection just fired.
     *
     * @param s structure injected into.
     * @param lane injection lane (error-plane bit) carrying the tag;
     *        lane-parallel estimators keep several windows of one
     *        structure open at once, distinguished only by this.
     * @param entry entry index (register, IQ entry, unit) targeted.
     * @param field field within the entry (field-granular IQ mode),
     *        -1 for whole-entry injections.
     * @param live true when the target was occupied/busy, i.e. the
     *        injection could matter (registers are always reported
     *        live: their liveness is not observable at inject time).
     * @param now injection cycle.
     */
    virtual void openRecord(Structure s, LaneId lane, int entry,
                            int field, bool live, Cycle now) = 0;

    /**
     * The window that the open injection on @p lane belonged to just
     * closed; the sink stamps the final outcome from what it observed
     * (failure retirement, overwrite kill, or expiry at @p now).
     *
     * @param outcome what the injection port observed for the
     *        window, including the blame identity of the failing
     *        retirement (Outcome::failPc / failOp) — the attribution
     *        layer keys on it, and the lifecycle tracker cross-checks
     *        it against its own observation of the same stream.
     */
    virtual void closeRecord(Structure s, LaneId lane, Cycle now,
                             const Outcome &outcome) = 0;
};

} // namespace avf::core

#endif // AVF_CORE_LIFECYCLE_SINK_HH
