#include "core/throttle_controller.hh"

#include "util/logging.hh"

namespace avf::core
{

ThrottleController::ThrottleController(
    cpu::Pipeline &pipe, const OnlineAvfEstimator &estimator,
    ThrottleConfig config)
    : pipeline(pipe), source(estimator), conf(config),
      predictor(config.predictorAlpha)
{
    avf_assert(conf.releaseThreshold <= conf.engageThreshold,
               "hysteresis thresholds inverted");
    avf_assert(conf.throttledWidth > 0,
               "throttled width must be positive");
}

void
ThrottleController::onCycle(Cycle)
{
    // Act whenever the estimator has produced a new estimate.
    if (source.estimates().size() == seenEstimates)
        return;
    seenEstimates = source.estimates().size();
    predictor.observe(source.estimates().back());
    double predicted = predictor.predict();

    if (!engaged && predicted >= conf.engageThreshold)
        engaged = true;
    else if (engaged && predicted < conf.releaseThreshold)
        engaged = false;

    pipeline.setDispatchThrottle(engaged ? conf.throttledWidth : 0);
    decisionLog.push_back(engaged);
    if (engaged)
        ++throttledCount;
}

} // namespace avf::core
