#include "core/injection_port.hh"

#include <bit>

#include "util/logging.hh"

namespace avf::core
{

InjectionPort::InjectionPort(cpu::Pipeline &pipe) : pipeline(pipe) {}

InjectionPort::Lane &
InjectionPort::laneAt(LaneId lane)
{
    avf_assert(lane >= 0 && lane < numErrorChannels,
               "lane %d outside the %d-lane error plane", lane,
               numErrorChannels);
    return laneState[static_cast<std::size_t>(lane)];
}

const InjectionPort::Lane &
InjectionPort::laneAt(LaneId lane) const
{
    avf_assert(lane >= 0 && lane < numErrorChannels,
               "lane %d outside the %d-lane error plane", lane,
               numErrorChannels);
    return laneState[static_cast<std::size_t>(lane)];
}

LaneId
InjectionPort::reserveLane()
{
    ErrorMask free = ~reservedLanes;
    if (!free)
        fatal("injection port: all %d lanes reserved",
              numErrorChannels);
    auto lane = static_cast<LaneId>(std::countr_zero(free));
    reserveLane(lane);
    return lane;
}

void
InjectionPort::reserveLane(LaneId lane)
{
    Lane &state = laneAt(lane);
    avf_assert(!state.reserved, "lane %d reserved twice", lane);
    state.reserved = true;
    reservedLanes |= laneBit(lane);
}

std::vector<LaneId>
InjectionPort::reserveLanes(int count)
{
    avf_assert(count > 0, "lane reservation count must be positive");
    std::vector<LaneId> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        out.push_back(reserveLane());
    return out;
}

int
InjectionPort::freeLanes() const
{
    return numErrorChannels - std::popcount(reservedLanes);
}

InjectOutcome
InjectionPort::fire(const Site &site, ErrorMask bit)
{
    if (site.kind == Site::Kind::Dtlb)
        return pipeline.injectDtlbError(site.entry, bit);
    if (site.kind == Site::Kind::FetchBuf)
        return pipeline.injectFetchBufError(site.entry, bit)
                   ? InjectOutcome::Occupied
                   : InjectOutcome::Opened;
    if (site.kind == Site::Kind::RenameMap)
        return pipeline.injectRenameMapError(site.entry, bit);
    if (site.kind == Site::Kind::BranchPred)
        return pipeline.injectBranchPredError(site.entry, bit);

    switch (site.structure) {
      case Structure::REG:
        pipeline.injectRegError(site.entry, bit);
        // Register liveness is not observable at inject time; the
        // paper's convention (and the legacy estimator's) is to count
        // every register injection as live.
        return InjectOutcome::Occupied;
      case Structure::FREG:
        pipeline.injectRegError(pipeline.numIntPhysRegs() + site.entry,
                                bit);
        return InjectOutcome::Occupied;
      case Structure::IQ:
        if (site.field >= 0) {
            auto hit = pipeline.injectIqFieldError(site.entry,
                                                   site.field, bit);
            return hit == cpu::Pipeline::IqFieldInjection::Corrupted
                       ? InjectOutcome::Occupied
                       : InjectOutcome::Opened;
        }
        return pipeline.injectIqEntryError(site.entry, bit)
                   ? InjectOutcome::Occupied
                   : InjectOutcome::Opened;
      case Structure::FXU:
        return pipeline.injectFuError(cpu::FuClass::Fxu, site.entry,
                                      bit) > 0
                   ? InjectOutcome::Occupied
                   : InjectOutcome::Opened;
      case Structure::FPU:
        return pipeline.injectFuError(cpu::FuClass::Fpu, site.entry,
                                      bit) > 0
                   ? InjectOutcome::Occupied
                   : InjectOutcome::Opened;
      default:
        panic("injection site bound to invalid structure");
    }
}

WindowHandle
InjectionPort::open(LaneId lane, const Site &site, Cycle now)
{
    Lane &state = laneAt(lane);
    avf_assert(state.reserved, "open() on unreserved lane %d", lane);
    avf_assert(!state.open,
               "lane %d opened twice (one window at a time per lane)",
               lane);

    state.open = true;
    state.failed = false;
    ++state.serial;
    state.openedAt = now;
    state.failCycle = 0;
    state.failPc = 0;
    state.failOp = -1;
    state.site = site;

    InjectOutcome inject = fire(site, laneBit(lane));
    state.live = inject == InjectOutcome::Occupied;

    openLanes |= laneBit(lane);
    failedLanes &= ~laneBit(lane);

    WindowHandle handle;
    handle.lane = lane;
    handle.serial = state.serial;
    handle.inject = inject;
    return handle;
}

Outcome
InjectionPort::closed(const WindowHandle &handle)
{
    Lane &state = laneAt(handle.lane);
    avf_assert(state.open, "closed() on lane %d with no open window",
               handle.lane);
    avf_assert(state.serial == handle.serial,
               "stale handle for lane %d (serial %llu vs %llu)",
               handle.lane,
               static_cast<unsigned long long>(handle.serial),
               static_cast<unsigned long long>(state.serial));

    state.open = false;
    openLanes &= ~laneBit(handle.lane);
    failedLanes &= ~laneBit(handle.lane);

    Outcome out;
    out.failed = state.failed;
    out.live = state.live;
    out.lane = handle.lane;
    out.openedAt = state.openedAt;
    out.failCycle = state.failCycle;
    out.failPc = state.failPc;
    out.failOp = state.failOp;
    out.site = state.site;
    return out;
}

void
InjectionPort::clearLanes(ErrorMask mask)
{
    pipeline.clearErrorChannels(mask);
}

bool
InjectionPort::failureSeen(const WindowHandle &handle) const
{
    const Lane &state = laneAt(handle.lane);
    return state.open && state.serial == handle.serial && state.failed;
}

void
InjectionPort::onRetire(const cpu::DynInstr &instr,
                        const cpu::RetireInfo &info)
{
    ErrorMask hit = info.failureMask & openLanes & ~failedLanes;
    while (hit) {
        auto lane = static_cast<LaneId>(std::countr_zero(hit));
        hit &= hit - 1;
        Lane &state = laneAt(lane);
        state.failed = true;
        state.failCycle = instr.retireCycle;
        // The blame trail: which trace instruction carried the bit
        // out. First failure wins, same rule as failCycle.
        state.failPc = instr.in.pc;
        state.failOp = static_cast<int>(instr.in.op);
        failedLanes |= laneBit(lane);
    }
}

} // namespace avf::core
