#include "core/regression_estimator.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/instruction.hh"
#include "util/logging.hh"

namespace avf::core
{

FeatureCollector::FeatureCollector(const cpu::Pipeline &pipe,
                                   Cycle intervalCycles)
    : pipeline(pipe), intervalLen(intervalCycles),
      boundaryTick(intervalCycles, intervalCycles - 1)
{
    avf_assert(intervalLen > 0, "interval length must be positive");
}

void
FeatureCollector::onRetire(const cpu::DynInstr &instr,
                           const cpu::RetireInfo &)
{
    using trace::OpClass;
    switch (instr.in.op) {
      case OpClass::Load: ++loads; break;
      case OpClass::Store: ++stores; break;
      case OpClass::BranchCond:
      case OpClass::BranchUncond: ++branches; break;
      default: break;
    }
}

void
FeatureCollector::onCycle(Cycle now)
{
    // Interval k covers cycles [k * len, (k+1) * len); close it at
    // the end of its last cycle.
    if (!boundaryTick.tick(now))
        return;

    const auto &stats = pipeline.stats();
    const auto &conf = pipeline.config();
    auto cycles = static_cast<double>(intervalLen);

    FeatureVector row{};
    row[0] = 1.0; // intercept
    row[1] = static_cast<double>(stats.iqOccupancySum - lastIqOcc) /
             (cycles * conf.totalIqEntries());
    row[2] = static_cast<double>(stats.robOccupancySum - lastRobOcc) /
             (cycles * conf.robEntries);
    auto busy = [&](cpu::FuClass cls) {
        int idx = static_cast<int>(cls);
        double delta = static_cast<double>(
            stats.busyUnitCycles[idx] - lastBusy[idx]);
        return delta / (cycles * conf.unitsIn(cls));
    };
    row[3] = busy(cpu::FuClass::Fxu);
    row[4] = busy(cpu::FuClass::Fpu);
    std::uint64_t retired = stats.retired - lastRetired;
    double instrs = std::max<double>(1.0,
                                     static_cast<double>(retired));
    row[5] = static_cast<double>(loads) / instrs;
    row[6] = static_cast<double>(stores) / instrs;
    row[7] = static_cast<double>(branches) / instrs;
    row[8] = static_cast<double>(retired) / cycles; // IPC
    // One feature row per estimation interval.
    // avflint: allow(hot-path-alloc)
    rows.push_back(row);

    lastIqOcc = stats.iqOccupancySum;
    lastRobOcc = stats.robOccupancySum;
    for (int c = 0; c < 4; ++c)
        lastBusy[c] = stats.busyUnitCycles[c];
    lastRetired = stats.retired;
    loads = stores = branches = 0;
}

void
LinearAvfModel::fit(const std::vector<FeatureVector> &features,
                    const std::vector<double> &targets, double ridge)
{
    avf_assert(features.size() == targets.size(),
               "feature/target count mismatch");
    avf_assert(!features.empty(), "cannot fit on zero samples");
    avf_assert(ridge > 0.0, "ridge must be positive");

    constexpr int n = numRegressionFeatures;
    double xtx[n][n] = {};
    double xty[n] = {};
    for (std::size_t r = 0; r < features.size(); ++r) {
        const auto &row = features[r];
        for (int i = 0; i < n; ++i) {
            xty[i] += row[static_cast<std::size_t>(i)] * targets[r];
            for (int j = 0; j < n; ++j)
                xtx[i][j] += row[static_cast<std::size_t>(i)] *
                             row[static_cast<std::size_t>(j)];
        }
    }
    for (int i = 0; i < n; ++i)
        xtx[i][i] += ridge;

    // Gaussian elimination with partial pivoting.
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        for (int r = col + 1; r < n; ++r)
            if (std::fabs(xtx[r][col]) > std::fabs(xtx[pivot][col]))
                pivot = r;
        if (pivot != col) {
            for (int c = 0; c < n; ++c)
                std::swap(xtx[col][c], xtx[pivot][c]);
            std::swap(xty[col], xty[pivot]);
        }
        avf_assert(std::fabs(xtx[col][col]) > 1e-15,
                   "singular normal equations despite ridge");
        for (int r = col + 1; r < n; ++r) {
            double factor = xtx[r][col] / xtx[col][col];
            for (int c = col; c < n; ++c)
                xtx[r][c] -= factor * xtx[col][c];
            xty[r] -= factor * xty[col];
        }
    }
    for (int row = n - 1; row >= 0; --row) {
        double acc = xty[row];
        for (int c = row + 1; c < n; ++c)
            acc -= xtx[row][c] * coeff[static_cast<std::size_t>(c)];
        coeff[static_cast<std::size_t>(row)] = acc / xtx[row][row];
    }
    isTrained = true;
}

double
LinearAvfModel::predict(const FeatureVector &row) const
{
    avf_assert(isTrained, "predict() before fit()");
    double acc = 0.0;
    for (int i = 0; i < numRegressionFeatures; ++i)
        acc += coeff[static_cast<std::size_t>(i)] *
               row[static_cast<std::size_t>(i)];
    return std::clamp(acc, 0.0, 1.0);
}

std::vector<double>
LinearAvfModel::predictSeries(
    const std::vector<FeatureVector> &rows) const
{
    // Runs once per estimation interval and reserves before filling.
    // avflint: allow(hot-path-alloc)
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto &row : rows)
        out.push_back(predict(row));
    return out;
}

RegressionEstimator::RegressionEstimator(const cpu::Pipeline &pipe,
                                         Cycle intervalCycles,
                                         LinearAvfModel model)
    : collector(pipe, intervalCycles), model(std::move(model))
{
}

void
RegressionEstimator::onRetire(const cpu::DynInstr &instr,
                              const cpu::RetireInfo &info)
{
    collector.onRetire(instr, info);
}

void
RegressionEstimator::onCycle(Cycle now)
{
    collector.onCycle(now);
}

std::string
RegressionEstimator::name() const
{
    return "regression:iq";
}

const std::vector<double> &
RegressionEstimator::estimates() const
{
    if (!model.trained()) {
        cached.clear();
        return cached;
    }
    if (cached.size() != collector.features().size())
        cached = model.predictSeries(collector.features());
    return cached;
}

double
RegressionEstimator::partialAvf() const
{
    const auto &series = estimates();
    return series.empty() ? 0.0 : series.back();
}

void
RegressionEstimator::setModel(LinearAvfModel newModel)
{
    model = std::move(newModel);
    cached.clear();
}

EstimatorState
RegressionEstimator::snapshotState() const
{
    EstimatorState state;
    state.name = name();
    state.counters = {{"trained", model.trained() ? 1u : 0u}};
    if (model.trained()) {
        const FeatureVector &w = model.weights();
        state.values.reserve(w.size());
        for (int i = 0; i < numRegressionFeatures; ++i)
            state.values.emplace_back(
                "w" + std::to_string(i),
                w[static_cast<std::size_t>(i)]);
    }
    state.estimates = estimates();
    return state;
}

void
RegressionEstimator::restoreState(const EstimatorState &state)
{
    if (state.name != name())
        throw std::invalid_argument(
            "estimator state for '" + state.name +
            "' cannot restore into '" + name() + "'");
    if (!state.counterValue("trained")) {
        model = LinearAvfModel{};
        cached.clear();
        return;
    }
    FeatureVector w{};
    for (int i = 0; i < numRegressionFeatures; ++i)
        w[static_cast<std::size_t>(i)] =
            state.valueOf("w" + std::to_string(i));
    LinearAvfModel restored;
    restored.setWeights(w);
    model = restored;
    cached.clear();
}

} // namespace avf::core
