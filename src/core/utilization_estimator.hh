/**
 * @file
 * The utilization-based baseline estimator (Section 4): the AVF of a
 * logic structure is approximated by its utilization — busy
 * unit-cycles over total unit-cycles. Implemented as a pipeline
 * observer sampling the busy counters at estimation-interval
 * boundaries. The paper (and our results) show this proxy misses
 * dead-value masking and therefore overestimates AVF, often badly.
 */

#ifndef AVF_CORE_UTILIZATION_ESTIMATOR_HH
#define AVF_CORE_UTILIZATION_ESTIMATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/avf_estimator.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/interval_ticker.hh"
#include "util/types.hh"

namespace avf::core
{

/** Per-interval utilization of one functional-unit class. */
class UtilizationEstimator : public AvfEstimator
{
  public:
    /**
     * @param pipe pipeline to watch (caller attaches).
     * @param cls unit class (FXU or FPU in the paper).
     * @param intervalCycles estimation-interval length (M * N).
     */
    UtilizationEstimator(const cpu::Pipeline &pipe, cpu::FuClass cls,
                         Cycle intervalCycles);

    void onCycle(Cycle now) override;

    /** "utilization:<unit class>", e.g. "utilization:fxu". */
    std::string name() const override;

    /** Per-interval utilization in [0, 1]. */
    const std::vector<double> &estimates() const override
    {
        return results;
    }

    /** Mean utilization over the open interval so far. */
    double partialAvf() const override;

    /** The busy-counter snapshot and the completed estimates. */
    EstimatorState snapshotState() const override;
    void restoreState(const EstimatorState &state) override;

  private:
    const cpu::Pipeline &pipeline;
    cpu::FuClass fuClass;
    Cycle intervalLen;
    /** Fires on interval-closing cycles ((now + 1) % len == 0). */
    IntervalTicker boundaryTick;
    std::uint64_t lastBusy = 0;
    std::vector<double> results;
};

} // namespace avf::core

#endif // AVF_CORE_UTILIZATION_ESTIMATOR_HH
