#include "core/tlb_estimator.hh"

#include "util/logging.hh"

namespace avf::core
{

namespace
{

/** Validate before any member (the boundary ticker) consumes M. */
TlbEstimatorConfig
checked(TlbEstimatorConfig config)
{
    avf_assert(config.m > 0 && config.n > 0,
               "TLB estimator needs positive M and N");
    avf_assert(config.channel >= 0 && config.channel < 8,
               "channel out of the 8-bit error plane");
    return config;
}

} // namespace

TlbAvfEstimator::TlbAvfEstimator(cpu::Pipeline &pipe,
                                 TlbEstimatorConfig config)
    : pipeline(pipe), conf(checked(config)),
      channelBit(static_cast<cpu::ErrorMask>(1u << conf.channel)),
      boundaryTick(config.m)
{
}

void
TlbAvfEstimator::onRetire(const cpu::DynInstr &,
                          const cpu::RetireInfo &info)
{
    if ((info.failureMask & channelBit) && injectedThisWindow)
        failureSeen = true;
}

void
TlbAvfEstimator::inject()
{
    injectedThisWindow = true;
    ++lifetimeInjections;
    pipeline.injectDtlbError(cursor, channelBit);
    cursor = (cursor + 1) % pipeline.numDtlbSlots();
}

void
TlbAvfEstimator::onCycle(Cycle now)
{
    if (!boundaryTick.tick(now))
        return;
    if (injectedThisWindow) {
        ++injections;
        if (failureSeen)
            ++failures;
        failureSeen = false;
        if (injections == conf.n) {
            results.push_back(static_cast<double>(failures) /
                              static_cast<double>(conf.n));
            injections = 0;
            failures = 0;
        }
    }
    pipeline.clearErrorChannels(channelBit);
    injectedThisWindow = false;
    inject();
}

std::string
TlbAvfEstimator::name() const
{
    return "online:dtlb";
}

double
TlbAvfEstimator::meanEstimate() const
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : results)
        sum += v;
    return sum / static_cast<double>(results.size());
}

double
TlbAvfEstimator::partialAvf() const
{
    return injections ? static_cast<double>(failures) /
                        static_cast<double>(injections)
                      : 0.0;
}

} // namespace avf::core
