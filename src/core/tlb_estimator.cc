#include "core/tlb_estimator.hh"

#include <stdexcept>

#include "util/logging.hh"

namespace avf::core
{

namespace
{

/** Validate before any member (the boundary ticker) consumes M. */
TlbEstimatorConfig
checked(TlbEstimatorConfig config)
{
    avf_assert(config.m > 0 && config.n > 0,
               "TLB estimator needs positive M and N");
    avf_assert(config.channel >= 0 &&
                   config.channel < numErrorChannels,
               "channel out of the %d-lane error plane",
               numErrorChannels);
    return config;
}

} // namespace

TlbAvfEstimator::TlbAvfEstimator(cpu::Pipeline &pipe,
                                 TlbEstimatorConfig config,
                                 InjectionPort *sharedPort)
    : pipeline(pipe), conf(checked(config)), boundaryTick(config.m)
{
    if (sharedPort) {
        portPtr = sharedPort;
        lane = portPtr->reserveLane();
    } else {
        ownedPort = std::make_unique<InjectionPort>(pipe);
        portPtr = ownedPort.get();
        portPtr->reserveLane(conf.channel);
        lane = conf.channel;
    }
}

void
TlbAvfEstimator::onRetire(const cpu::DynInstr &instr,
                          const cpu::RetireInfo &info)
{
    if (ownedPort)
        ownedPort->onRetire(instr, info);
}

void
TlbAvfEstimator::onCycle(Cycle now)
{
    if (!boundaryTick.tick(now))
        return;
    if (windowOpen) {
        Outcome outcome = portPtr->closed(handle);
        windowOpen = false;
        ++injections;
        if (outcome.failed)
            ++failures;
        if (injections == conf.n) {
            // One estimate per completed interval of n injections.
            // avflint: allow(hot-path-alloc)
            results.push_back(static_cast<double>(failures) /
                              static_cast<double>(conf.n));
            injections = 0;
            failures = 0;
        }
    }
    portPtr->clearLanes(laneBit(lane));

    Site site;
    site.kind = Site::Kind::Dtlb;
    site.entry = cursor;
    cursor = (cursor + 1) % pipeline.numDtlbSlots();
    handle = portPtr->open(lane, site, now);
    windowOpen = true;
    ++lifetimeInjections;
}

std::string
TlbAvfEstimator::name() const
{
    return "online:dtlb";
}

double
TlbAvfEstimator::meanEstimate() const
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : results)
        sum += v;
    return sum / static_cast<double>(results.size());
}

double
TlbAvfEstimator::partialAvf() const
{
    return injections ? static_cast<double>(failures) /
                        static_cast<double>(injections)
                      : 0.0;
}

EstimatorState
TlbAvfEstimator::snapshotState() const
{
    EstimatorState state;
    state.name = name();
    state.counters = {
        {"injections", injections},
        {"failures", failures},
        {"lifetime_injections", lifetimeInjections},
        {"cursor", static_cast<std::uint64_t>(cursor)},
    };
    state.estimates = results;
    return state;
}

void
TlbAvfEstimator::restoreState(const EstimatorState &state)
{
    if (state.name != name())
        throw std::invalid_argument(
            "estimator state for '" + state.name +
            "' cannot restore into '" + name() + "'");
    injections = static_cast<std::uint32_t>(
        state.counterValue("injections"));
    failures = static_cast<std::uint32_t>(
        state.counterValue("failures"));
    lifetimeInjections = state.counterValue("lifetime_injections");
    cursor = static_cast<int>(state.counterValue("cursor"));
    results = state.estimates;
}

} // namespace avf::core
