/**
 * @file
 * Measures the error-propagation-time distribution used to choose M
 * (Section 3.4, Figure 2): inject an error, record how many cycles it
 * takes to reach a failure point (or give up after a cap), clear, and
 * repeat. Unlike the estimator, the probe waits indefinitely (up to
 * the cap) rather than a fixed window, because its purpose is to
 * characterize the distribution that a good M must cover. Injections
 * go through the InjectionPort API on a single private lane pinned to
 * the structure's legacy channel bit.
 */

#ifndef AVF_CORE_PROPAGATION_PROBE_HH
#define AVF_CORE_PROPAGATION_PROBE_HH

#include <memory>
#include <vector>

#include "core/injection_port.hh"
#include "core/structures.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/types.hh"

namespace avf::core
{

/** Probe configuration. */
struct ProbeConfig
{
    /** Give up waiting for a failure after this many cycles. */
    Cycle maxWait = 100'000;
    /** Stop after this many *failing* injections have been timed. */
    std::size_t targetSamples = 2000;
};

/** Propagation-delay sampler for one structure. */
class PropagationProbe : public cpu::PipelineObserver
{
  public:
    /**
     * @param pipe pipeline to instrument (caller attaches).
     * @param structure structure to inject into.
     * @param config sampling bounds.
     */
    PropagationProbe(cpu::Pipeline &pipe, Structure structure,
                     ProbeConfig config = ProbeConfig{});

    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;
    void onCycle(Cycle now) override;

    /** Cycles from injection to failure, one entry per failure. */
    const std::vector<double> &delays() const { return samples; }

    /** Injections whose error never surfaced within maxWait. */
    std::uint64_t maskedCount() const { return masked; }

    /** Total injections fired. */
    std::uint64_t injectionCount() const { return injectionsFired; }

    /** True once targetSamples failures have been timed. */
    bool finished() const { return samples.size() >= conf.targetSamples; }

  private:
    Site nextSite();
    void inject(Cycle now);

    cpu::Pipeline &pipeline;
    Structure target;
    ProbeConfig conf;

    std::unique_ptr<InjectionPort> port;
    LaneId lane;
    WindowHandle handle;
    bool windowOpen = false;
    Cycle injectCycle = 0;
    int cursor = 0;
    std::uint64_t masked = 0;
    std::uint64_t injectionsFired = 0;
    std::vector<double> samples;
};

} // namespace avf::core

#endif // AVF_CORE_PROPAGATION_PROBE_HH
