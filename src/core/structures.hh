/**
 * @file
 * The four processor structures whose AVF the paper estimates, and
 * the mapping from structure to error-bit channel.
 */

#ifndef AVF_CORE_STRUCTURES_HH
#define AVF_CORE_STRUCTURES_HH

#include <string_view>

namespace avf::core
{

/**
 * Structures whose AVF can be estimated. The first four are the ones
 * the paper evaluates (Section 4); FREG is this repository's
 * extension of the same machinery to the floating-point register
 * file, which the paper's REG treatment applies to unchanged.
 */
enum class Structure : int
{
    IQ = 0,   ///< instruction (issue) queue entries
    REG = 1,  ///< integer register file
    FXU = 2,  ///< fixed-point (integer) functional units
    FPU = 3,  ///< floating-point functional units
    FREG = 4, ///< floating-point register file (extension)
    NumStructures
};

/** Number of structures evaluated in the paper itself. */
inline constexpr int numPaperStructures = 4;

/** Number of structures supported (paper set + extensions). */
inline constexpr int numStructures =
    static_cast<int>(Structure::NumStructures);

/** Short display name ("iq", "reg", "fxu", "fpu" as in Figure 5). */
std::string_view structureName(Structure s);

/** Default channel assignment: one error-bit channel per structure. */
constexpr int
channelOf(Structure s)
{
    return static_cast<int>(s);
}

} // namespace avf::core

#endif // AVF_CORE_STRUCTURES_HH
