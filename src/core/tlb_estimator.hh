/**
 * @file
 * Online AVF estimator for the data TLB — the experiment the paper
 * could not afford (footnote 1: a reasonable M for TLBs is close to
 * one million cycles, so one AVF estimate costs a billion cycles of
 * simulation; our simulator is fast enough to demonstrate the effect
 * directly). The machinery is Algorithm 1 verbatim: round-robin
 * injections into TLB entry slots, a wait window of M cycles, and
 * failure when a load or store retires having used the corrupted
 * translation. Injections go through the shared InjectionPort API
 * (Site::Kind::Dtlb sites) on a single reserved lane.
 */

#ifndef AVF_CORE_TLB_ESTIMATOR_HH
#define AVF_CORE_TLB_ESTIMATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/avf_estimator.hh"
#include "core/injection_port.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/interval_ticker.hh"
#include "util/types.hh"

namespace avf::core
{

/** Estimator parameters for the TLB experiment. */
struct TlbEstimatorConfig
{
    /** Wait window in cycles (TLBs need very large values). */
    Cycle m = 100'000;
    /** Injections per estimate. */
    std::uint32_t n = 100;
    /** Injection lane to reserve (keep clear of the four paper
     *  structures and FREG, which pin lanes 0..4). */
    int channel = 6;
};

/** Algorithm 1 pointed at the dTLB. */
class TlbAvfEstimator : public AvfEstimator
{
  public:
    /**
     * @param sharedPort port to reserve the injection lane from;
     *        nullptr makes the estimator own a private port (it then
     *        forwards its own onRetire to it).
     */
    TlbAvfEstimator(cpu::Pipeline &pipe,
                    TlbEstimatorConfig config = TlbEstimatorConfig{},
                    InjectionPort *sharedPort = nullptr);

    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;
    void onCycle(Cycle now) override;

    /** "online:dtlb". */
    std::string name() const override;

    /** Completed AVF estimates (one per N windows). */
    const std::vector<double> &estimates() const override
    {
        return results;
    }

    /** Mean of all completed estimates (0 when none). */
    double meanEstimate() const;

    /** Failures/injections of the still-open estimate. */
    double partialAvf() const override;

    /** Total injections fired. */
    std::uint64_t totalInjections() const { return lifetimeInjections; }

    /**
     * Counters, cursor, and completed estimates; the open window
     * itself is not captured (see EstimatorState).
     */
    EstimatorState snapshotState() const override;
    void restoreState(const EstimatorState &state) override;

  private:
    cpu::Pipeline &pipeline;
    TlbEstimatorConfig conf;
    IntervalTicker boundaryTick;

    InjectionPort *portPtr = nullptr;
    std::unique_ptr<InjectionPort> ownedPort;
    LaneId lane = -1;
    WindowHandle handle;
    bool windowOpen = false;
    std::uint32_t injections = 0;
    std::uint32_t failures = 0;
    std::uint64_t lifetimeInjections = 0;
    int cursor = 0;
    std::vector<double> results;
};

} // namespace avf::core

#endif // AVF_CORE_TLB_ESTIMATOR_HH
