#include "core/propagation_probe.hh"

#include "util/logging.hh"

namespace avf::core
{

PropagationProbe::PropagationProbe(cpu::Pipeline &pipe,
                                   Structure structure,
                                   ProbeConfig config)
    : pipeline(pipe), target(structure), conf(config),
      port(std::make_unique<InjectionPort>(pipe)),
      lane(channelOf(structure))
{
    avf_assert(conf.maxWait > 0, "probe maxWait must be positive");
    port->reserveLane(lane);
}

Site
PropagationProbe::nextSite()
{
    Site site;
    site.structure = target;
    site.entry = cursor;

    switch (target) {
      case Structure::REG:
        cursor = (cursor + 1) % pipeline.numIntPhysRegs();
        break;
      case Structure::FREG:
        cursor = (cursor + 1) % pipeline.config().fpPhysRegs;
        break;
      case Structure::IQ:
        cursor = (cursor + 1) % pipeline.totalIqEntries();
        break;
      case Structure::FXU:
        cursor = (cursor + 1) % pipeline.config().numFxu;
        break;
      case Structure::FPU:
        cursor = (cursor + 1) % pipeline.config().numFpu;
        break;
      default:
        panic("probe bound to invalid structure");
    }
    return site;
}

void
PropagationProbe::inject(Cycle now)
{
    port->clearLanes(laneBit(lane));
    handle = port->open(lane, nextSite(), now);
    windowOpen = true;
    injectCycle = now;
    ++injectionsFired;
}

void
PropagationProbe::onRetire(const cpu::DynInstr &instr,
                           const cpu::RetireInfo &info)
{
    // The private port is not on the observer list; it sees
    // retirements only through its owner.
    port->onRetire(instr, info);
    if (!windowOpen || !port->failureSeen(handle))
        return;
    Outcome outcome = port->closed(handle);
    windowOpen = false;
    // One latency sample per closed injection window, not per
    // retirement. avflint: allow(hot-path-alloc)
    samples.push_back(static_cast<double>(
        outcome.failCycle - outcome.openedAt));
    port->clearLanes(laneBit(lane));
}

void
PropagationProbe::onCycle(Cycle now)
{
    if (finished())
        return;
    if (windowOpen && now - injectCycle >= conf.maxWait) {
        // The injected error never surfaced: masked.
        ++masked;
        port->closed(handle);
        windowOpen = false;
        port->clearLanes(laneBit(lane));
    }
    if (!windowOpen)
        inject(now);
}

} // namespace avf::core
