#include "core/propagation_probe.hh"

#include "util/logging.hh"

namespace avf::core
{

PropagationProbe::PropagationProbe(cpu::Pipeline &pipe,
                                   Structure structure,
                                   ProbeConfig config)
    : pipeline(pipe), target(structure), conf(config),
      channelBit(static_cast<cpu::ErrorMask>(1u << channelOf(structure)))
{
    avf_assert(conf.maxWait > 0, "probe maxWait must be positive");
}

void
PropagationProbe::inject(Cycle now)
{
    pipeline.clearErrorChannels(channelBit);
    active = true;
    injectCycle = now;
    ++injectionsFired;

    switch (target) {
      case Structure::REG:
        pipeline.injectRegError(cursor, channelBit);
        cursor = (cursor + 1) % pipeline.numIntPhysRegs();
        break;
      case Structure::FREG:
        pipeline.injectRegError(pipeline.numIntPhysRegs() + cursor,
                                channelBit);
        cursor = (cursor + 1) % pipeline.config().fpPhysRegs;
        break;
      case Structure::IQ:
        pipeline.injectIqEntryError(cursor, channelBit);
        cursor = (cursor + 1) % pipeline.totalIqEntries();
        break;
      case Structure::FXU:
        pipeline.injectFuError(cpu::FuClass::Fxu, cursor, channelBit);
        cursor = (cursor + 1) % pipeline.config().numFxu;
        break;
      case Structure::FPU:
        pipeline.injectFuError(cpu::FuClass::Fpu, cursor, channelBit);
        cursor = (cursor + 1) % pipeline.config().numFpu;
        break;
      default:
        panic("probe bound to invalid structure");
    }
}

void
PropagationProbe::onRetire(const cpu::DynInstr &,
                           const cpu::RetireInfo &info)
{
    if (!active || !(info.failureMask & channelBit))
        return;
    samples.push_back(static_cast<double>(
        pipeline.now() - injectCycle));
    active = false;
    pipeline.clearErrorChannels(channelBit);
}

void
PropagationProbe::onCycle(Cycle now)
{
    if (finished())
        return;
    if (active && now - injectCycle >= conf.maxWait) {
        // The injected error never surfaced: masked.
        ++masked;
        active = false;
        pipeline.clearErrorChannels(channelBit);
    }
    if (!active)
        inject(now);
}

} // namespace avf::core
