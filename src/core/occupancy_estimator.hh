/**
 * @file
 * Occupancy-based AVF baseline for storage structures, in the spirit
 * of Soundararajan et al. [16] (Section 2 of the paper): estimate the
 * issue queue's AVF as its average occupancy divided by its capacity.
 * Like utilization for logic structures, occupancy is cheap to count
 * in hardware but blind to dead values and un-ACE instructions, so it
 * upper-bounds the real AVF. Included as the second baseline the
 * paper discusses.
 */

#ifndef AVF_CORE_OCCUPANCY_ESTIMATOR_HH
#define AVF_CORE_OCCUPANCY_ESTIMATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/avf_estimator.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/interval_ticker.hh"
#include "util/types.hh"

namespace avf::core
{

/** Per-interval issue-queue occupancy / capacity. */
class OccupancyEstimator : public AvfEstimator
{
  public:
    /**
     * @param pipe pipeline to watch (caller attaches).
     * @param intervalCycles estimation-interval length (M * N).
     */
    OccupancyEstimator(const cpu::Pipeline &pipe,
                       Cycle intervalCycles);

    void onCycle(Cycle now) override;

    /** "occupancy:iq". */
    std::string name() const override;

    /** Per-interval occupancy fraction in [0, 1]. */
    const std::vector<double> &estimates() const override
    {
        return results;
    }

    /** Mean occupancy fraction over the open interval so far. */
    double partialAvf() const override;

    /** The occupancy-sum snapshot and the completed estimates. */
    EstimatorState snapshotState() const override;
    void restoreState(const EstimatorState &state) override;

  private:
    const cpu::Pipeline &pipeline;
    Cycle intervalLen;
    /** Fires on interval-closing cycles ((now + 1) % len == 0). */
    IntervalTicker boundaryTick;
    std::uint64_t lastOccupancySum = 0;
    std::vector<double> results;
};

} // namespace avf::core

#endif // AVF_CORE_OCCUPANCY_ESTIMATOR_HH
