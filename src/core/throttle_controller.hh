/**
 * @file
 * Closed-loop vulnerability control: the use case the paper builds
 * toward (Section 1, citing Soundararajan et al.: "use the AVF input
 * to control instruction throttling ... a real-time online AVF
 * estimation is a must"). At the end of each estimation interval the
 * controller predicts the next interval's AVF from the online
 * estimate and sets the pipeline's dispatch throttle: fewer
 * instructions in flight lowers occupancy and therefore AVF, at an
 * IPC cost. Hysteresis prevents thrashing between levels.
 */

#ifndef AVF_CORE_THROTTLE_CONTROLLER_HH
#define AVF_CORE_THROTTLE_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "core/online_estimator.hh"
#include "core/predictor.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"

namespace avf::core
{

/** Controller policy. */
struct ThrottleConfig
{
    /** Predicted AVF at or above which throttling engages. */
    double engageThreshold = 0.30;
    /** Predicted AVF below which throttling releases. */
    double releaseThreshold = 0.25;
    /** Dispatch width while throttled. */
    int throttledWidth = 2;
    /** Smoothing factor of the internal EMA predictor. */
    double predictorAlpha = 0.7;
};

/**
 * Watches one online estimator and actuates the dispatch throttle at
 * estimation-interval boundaries.
 */
class ThrottleController : public cpu::PipelineObserver
{
  public:
    /**
     * @param pipe pipeline to actuate (caller attaches the
     *        controller AFTER the estimator so it sees fresh
     *        estimates).
     * @param estimator source of per-interval AVF estimates.
     * @param config policy.
     */
    ThrottleController(cpu::Pipeline &pipe,
                       const OnlineAvfEstimator &estimator,
                       ThrottleConfig config = ThrottleConfig{});

    void onCycle(Cycle now) override;

    /** True while the throttle is engaged. */
    bool throttled() const { return engaged; }

    /** Number of intervals spent throttled. */
    std::uint64_t throttledIntervals() const { return throttledCount; }

    /** Number of intervals observed. */
    std::uint64_t intervals() const { return seenEstimates; }

    /** Per-interval engaged/not decisions (after each estimate). */
    const std::vector<bool> &decisions() const { return decisionLog; }

  private:
    cpu::Pipeline &pipeline;
    const OnlineAvfEstimator &source;
    ThrottleConfig conf;
    EmaPredictor predictor;

    std::size_t seenEstimates = 0;
    bool engaged = false;
    std::uint64_t throttledCount = 0;
    std::vector<bool> decisionLog;
};

} // namespace avf::core

#endif // AVF_CORE_THROTTLE_CONTROLLER_HH
