/**
 * @file
 * The paper's contribution: Algorithm 1, the online AVF estimator —
 * lane-parallel over the InjectionPort.
 *
 * Every M cycles the estimator closes its open injection windows,
 * sweeps its lanes clean, picks the next injection targets in its
 * structure (round-robin across entries for storage structures,
 * across units for logic structures — the paper's hardware-friendly
 * approximation of random sampling), and opens up to `lanes` new
 * tagged windows through the port. Program execution propagates each
 * lane's bit independently; a window whose bit reaches a retiring
 * load, store, or branch before the boundary counts as a failure.
 * After N windows,
 *
 *     AVF ~= failureCount / N,
 *
 * and a new estimation interval begins. With one lane (the default
 * for directly-constructed estimators) the behavior is exactly the
 * paper's serial Algorithm 1: one injection per M-cycle window, one
 * estimate per M*N cycles. With L lanes, L windows run concurrently
 * per boundary and an estimate needs only ceil(N/L) boundaries —
 * the flips do not interact (FastFlip's composability argument), so
 * the estimate is the same statistic over the same failure test,
 * sampled at a compressed wall-clock cost.
 */

#ifndef AVF_CORE_ONLINE_ESTIMATOR_HH
#define AVF_CORE_ONLINE_ESTIMATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "core/avf_estimator.hh"
#include "core/injection_port.hh"
#include "core/lifecycle_sink.hh"
#include "core/structures.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/interval_ticker.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace avf::core
{

/** Estimator parameters (defaults = the paper's M = N = 1000). */
struct OnlineConfig
{
    /** Cycles between successive injections (the wait window M). */
    Cycle m = 1000;
    /** Injections per AVF estimate (the sample count N). */
    std::uint32_t n = 1000;
    /**
     * When true, the injection fires at a uniformly random cycle
     * within each M-cycle window instead of at the window start.
     * Used by the sampling ablation (Section 3.3 discusses the
     * fixed-interval approximation of random sampling).
     */
    bool randomizeInjectionTiming = false;
    /**
     * IQ structure only: inject at field granularity (opcode +
     * three operand fields per entry) instead of whole-entry
     * granularity — Section 3.6's multiple-error-bits extension.
     * Unpopulated fields mask their injections, so the estimated
     * AVF is lower (less conservative) than whole-entry AVF.
     */
    bool fieldGranularIq = false;
    /** Seed for the randomized-timing mode. */
    std::uint64_t seed = 12345;
    /**
     * Concurrent injection windows (error-plane bit lanes) this
     * estimator keeps saturated. 0 means "inherit": the engine fills
     * it from RunOptions::lanes (AVF_LANES); a directly-constructed
     * estimator treats it as 1, the paper's serial Algorithm 1.
     * lanes = 1 reproduces serial behavior exactly; lanes = L closes
     * an N-injection interval in ceil(N/L) boundaries.
     */
    int lanes = 0;
};

/**
 * Online AVF estimator for one structure, attached to the pipeline as
 * an observer. Multiple estimators (one per structure) may coexist;
 * each owns a distinct error-bit channel and individually obeys the
 * one-error-at-a-time rule within its channel.
 */
class OnlineAvfEstimator : public AvfEstimator
{
  public:
    /**
     * @param pipe pipeline to instrument (attach is the caller's job:
     *        pipe.addObserver(&estimator)).
     * @param structure which structure to estimate.
     * @param config M/N, lane count, and sampling options.
     * @param sharedPort injection port to draw lanes from. Several
     *        estimators on one pipeline share one port (the harness
     *        wires this; the port must be attached as an observer
     *        before the estimators). nullptr makes the estimator own
     *        a private port whose first lane is pinned to the legacy
     *        channel bit channelOf(structure) — so directly
     *        constructed estimators of distinct structures coexist
     *        exactly as the per-channel design did.
     */
    OnlineAvfEstimator(cpu::Pipeline &pipe, Structure structure,
                       OnlineConfig config = OnlineConfig{},
                       InjectionPort *sharedPort = nullptr);

    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;
    void onCycle(Cycle now) override;

    /** "online:<structure>", e.g. "online:iq". */
    std::string name() const override;

    /** Completed per-interval AVF estimates (one per N windows). */
    const std::vector<double> &estimates() const override
    {
        return results;
    }

    /** Structure being estimated. */
    Structure structure() const { return target; }

    /** Injections performed in the current (incomplete) interval. */
    std::uint32_t injectionsSoFar() const { return injections; }

    /** Failures observed in the current (incomplete) interval. */
    std::uint32_t failuresSoFar() const { return failures; }

    /** Total injections across all intervals. */
    std::uint64_t totalInjections() const { return lifetimeInjections; }

    /** Total failures across all closed windows (never reset). */
    std::uint64_t totalFailures() const { return lifetimeFailures; }

    /** Windows closed across all intervals (never reset). */
    std::uint64_t totalWindowsClosed() const { return windowsClosed; }

    /**
     * Attach a lifecycle sink (not owned; nullptr detaches): every
     * injection opens a record there and every window close stamps
     * it. Purely observational — estimates are unaffected.
     */
    void setLifecycleSink(LifecycleSink *s) { sink = s; }

    /**
     * Injections that landed on an occupied entry / busy unit (for
     * storage and logic structures respectively); the complement was
     * trivially masked. Diagnostic only.
     */
    std::uint64_t totalLiveInjections() const { return liveInjections; }

    /** AVF over the windows completed so far in the open interval. */
    double partialAvf() const override;

    /**
     * Accumulated reporting state: interval and lifetime counters,
     * the round-robin cursor, and the completed estimates. In-flight
     * lane windows are not captured (see EstimatorState).
     */
    EstimatorState snapshotState() const override;
    void restoreState(const EstimatorState &state) override;

    /** Resolved concurrent-window count (config.lanes, 0 -> 1). */
    int laneCount() const
    {
        return static_cast<int>(slots.size());
    }

    /** The port this estimator injects through. */
    const InjectionPort &port() const { return *portPtr; }

    /** Window boundaries needed to close one N-injection interval. */
    std::uint32_t
    boundariesPerEstimate() const
    {
        auto lanes = static_cast<std::uint32_t>(slots.size());
        return (conf.n + lanes - 1) / lanes;
    }

  private:
    /** One concurrent injection window. */
    struct LaneSlot
    {
        LaneId lane = -1;
        WindowHandle handle;
        bool open = false;
        /** Randomized timing: injection pending within the window. */
        bool scheduled = false;
        Cycle injectAt = 0;
    };

    /** Advance the round-robin cursor; the next injection target. */
    Site nextSite();

    /** Fire one injection through the port on slot @p slot. */
    void openWindow(LaneSlot &slot, Cycle now);

    /** Close every open window, sweep lanes, open the next batch. */
    void windowBoundary(Cycle now);

    cpu::Pipeline &pipeline;
    Structure target;
    OnlineConfig conf;
    Rng rng;
    /** Fires at window boundaries (now % M == 0) without the
     *  per-cycle division. */
    IntervalTicker boundaryTick;

    /** Port injected through; ownedPort when privately constructed. */
    InjectionPort *portPtr = nullptr;
    std::unique_ptr<InjectionPort> ownedPort;
    /** This estimator's windows, one per reserved lane, lane order. */
    std::vector<LaneSlot> slots;
    /** Union bit mask of the reserved lanes (boundary sweeps). */
    ErrorMask myLanes = 0;
    /** Slots with a pending randomized-timing injection. */
    int scheduledCount = 0;
    /** Windows opened since the current interval began. */
    std::uint32_t openedThisInterval = 0;

    std::uint32_t injections = 0;
    std::uint32_t failures = 0;
    std::uint64_t lifetimeInjections = 0;
    std::uint64_t lifetimeFailures = 0;
    std::uint64_t liveInjections = 0;
    std::uint64_t windowsClosed = 0;

    /** Lifecycle observer, nullptr when tracing is off. */
    LifecycleSink *sink = nullptr;

    /** Round-robin cursor over entries/units of the structure. */
    int cursor = 0;

    std::vector<double> results;
};

} // namespace avf::core

#endif // AVF_CORE_ONLINE_ESTIMATOR_HH
