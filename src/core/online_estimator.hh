/**
 * @file
 * The paper's contribution: Algorithm 1, the online AVF estimator.
 *
 * Every M cycles the estimator clears its error-bit channel, picks the
 * next injection target in its structure (round-robin across entries
 * for storage structures, across units for logic structures — the
 * paper's hardware-friendly approximation of random sampling), and
 * sets the target's error bit. Program execution propagates the bit;
 * if a retiring load, store, or branch carries it before the window
 * closes, the injection counts as a failure. After N windows,
 *
 *     AVF ~= failureCount / N,
 *
 * and a new estimation interval begins. With M = N = 1000 an estimate
 * is produced every one million cycles, matching the paper's setup.
 */

#ifndef AVF_CORE_ONLINE_ESTIMATOR_HH
#define AVF_CORE_ONLINE_ESTIMATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/avf_estimator.hh"
#include "core/lifecycle_sink.hh"
#include "core/structures.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "util/interval_ticker.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace avf::core
{

/** Estimator parameters (defaults = the paper's M = N = 1000). */
struct OnlineConfig
{
    /** Cycles between successive injections (the wait window M). */
    Cycle m = 1000;
    /** Injections per AVF estimate (the sample count N). */
    std::uint32_t n = 1000;
    /**
     * When true, the injection fires at a uniformly random cycle
     * within each M-cycle window instead of at the window start.
     * Used by the sampling ablation (Section 3.3 discusses the
     * fixed-interval approximation of random sampling).
     */
    bool randomizeInjectionTiming = false;
    /**
     * IQ structure only: inject at field granularity (opcode +
     * three operand fields per entry) instead of whole-entry
     * granularity — Section 3.6's multiple-error-bits extension.
     * Unpopulated fields mask their injections, so the estimated
     * AVF is lower (less conservative) than whole-entry AVF.
     */
    bool fieldGranularIq = false;
    /** Seed for the randomized-timing mode. */
    std::uint64_t seed = 12345;
};

/**
 * Online AVF estimator for one structure, attached to the pipeline as
 * an observer. Multiple estimators (one per structure) may coexist;
 * each owns a distinct error-bit channel and individually obeys the
 * one-error-at-a-time rule within its channel.
 */
class OnlineAvfEstimator : public AvfEstimator
{
  public:
    /**
     * @param pipe pipeline to instrument (attach is the caller's job:
     *        pipe.addObserver(&estimator)).
     * @param structure which structure to estimate.
     * @param config M/N and sampling options.
     */
    OnlineAvfEstimator(cpu::Pipeline &pipe, Structure structure,
                       OnlineConfig config = OnlineConfig{});

    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;
    void onCycle(Cycle now) override;

    /** "online:<structure>", e.g. "online:iq". */
    std::string name() const override;

    /** Completed per-interval AVF estimates (one per N windows). */
    const std::vector<double> &estimates() const override
    {
        return results;
    }

    /** Structure being estimated. */
    Structure structure() const { return target; }

    /** Injections performed in the current (incomplete) interval. */
    std::uint32_t injectionsSoFar() const { return injections; }

    /** Failures observed in the current (incomplete) interval. */
    std::uint32_t failuresSoFar() const { return failures; }

    /** Total injections across all intervals. */
    std::uint64_t totalInjections() const { return lifetimeInjections; }

    /** Total failures across all closed windows (never reset). */
    std::uint64_t totalFailures() const { return lifetimeFailures; }

    /** Windows closed across all intervals (never reset). */
    std::uint64_t totalWindowsClosed() const { return windowsClosed; }

    /**
     * Attach a lifecycle sink (not owned; nullptr detaches): every
     * injection opens a record there and every window close stamps
     * it. Purely observational — estimates are unaffected.
     */
    void setLifecycleSink(LifecycleSink *s) { sink = s; }

    /**
     * Injections that landed on an occupied entry / busy unit (for
     * storage and logic structures respectively); the complement was
     * trivially masked. Diagnostic only.
     */
    std::uint64_t totalLiveInjections() const { return liveInjections; }

    /** AVF over the windows completed so far in the open interval. */
    double partialAvf() const override;

  private:
    /** Clear the channel and fire the next injection. */
    void inject(Cycle now);

    /** Close the current window, then open the next one. */
    void windowBoundary(Cycle now);

    cpu::Pipeline &pipeline;
    Structure target;
    OnlineConfig conf;
    cpu::ErrorMask channelBit;
    Rng rng;
    /** Fires at window boundaries (now % M == 0) without the
     *  per-cycle division. */
    IntervalTicker boundaryTick;

    Cycle windowStart = 0;
    Cycle pendingInjectCycle = 0;
    bool injectedThisWindow = false;
    bool failureSeen = false;

    std::uint32_t injections = 0;
    std::uint32_t failures = 0;
    std::uint64_t lifetimeInjections = 0;
    std::uint64_t lifetimeFailures = 0;
    std::uint64_t liveInjections = 0;
    std::uint64_t windowsClosed = 0;

    /** Lifecycle observer, nullptr when tracing is off. */
    LifecycleSink *sink = nullptr;

    /** Round-robin cursor over entries/units of the structure. */
    int cursor = 0;

    std::vector<double> results;
};

} // namespace avf::core

#endif // AVF_CORE_ONLINE_ESTIMATOR_HH
