#include "core/structures.hh"

namespace avf::core
{

std::string_view
structureName(Structure s)
{
    switch (s) {
      case Structure::IQ: return "iq";
      case Structure::REG: return "reg";
      case Structure::FXU: return "fxu";
      case Structure::FPU: return "fpu";
      case Structure::FREG: return "freg";
      default: return "?";
    }
}

} // namespace avf::core
