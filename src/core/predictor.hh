/**
 * @file
 * AVF predictors for the next estimation interval (the paper's
 * Figure 5 uses the last-value predictor; the EMA variant is the
 * natural extension mentioned as future adaptation work).
 */

#ifndef AVF_CORE_PREDICTOR_HH
#define AVF_CORE_PREDICTOR_HH

#include <vector>

namespace avf::core
{

/** Interface: feed observed AVFs, ask for the next-interval value. */
class AvfPredictor
{
  public:
    virtual ~AvfPredictor() = default;

    /** Record the AVF measured for the interval that just ended. */
    virtual void observe(double avf) = 0;

    /** Predicted AVF of the next interval. */
    virtual double predict() const = 0;

    /** Forget all history. */
    virtual void reset() = 0;
};

/**
 * "Next = last": the simple predictor evaluated in the paper, which
 * assumes AVF is stable across consecutive intervals.
 */
class LastValuePredictor : public AvfPredictor
{
  public:
    void observe(double avf) override { last = avf; primed = true; }
    double predict() const override { return primed ? last : 0.0; }
    void reset() override { last = 0.0; primed = false; }

  private:
    double last = 0.0;
    bool primed = false;
};

/** Exponential moving average with configurable smoothing. */
class EmaPredictor : public AvfPredictor
{
  public:
    /** @param alpha weight of the newest observation, in (0, 1]. */
    explicit EmaPredictor(double alpha = 0.5);

    void observe(double avf) override;
    double predict() const override { return primed ? value : 0.0; }
    void reset() override { value = 0.0; primed = false; }

  private:
    double alpha;
    double value = 0.0;
    bool primed = false;
};

/**
 * Evaluate a predictor over an AVF series: for each interval i >= 1,
 * predict from intervals [0, i) and compare against the reference
 * value of interval i.
 *
 * @param estimates the online estimates fed to the predictor.
 * @param reference the true (SoftArch) AVFs compared against.
 * @return per-interval absolute prediction errors (length
 *         reference.size() - 1).
 */
std::vector<double> predictionErrors(AvfPredictor &predictor,
                                     const std::vector<double> &estimates,
                                     const std::vector<double> &reference);

} // namespace avf::core

#endif // AVF_CORE_PREDICTOR_HH
