#include "mem/tlb.hh"

#include <bit>

#include "util/logging.hh"

namespace avf::mem
{

Tlb::Tlb(TlbConfig config) : conf(std::move(config))
{
    if (!std::has_single_bit(conf.pageBytes))
        fatal("tlb '%s': page size must be a power of two",
              conf.name.c_str());
    if (conf.entries == 0)
        fatal("tlb '%s': entry count must be positive",
              conf.name.c_str());
    pageShift = static_cast<std::uint32_t>(
        std::countr_zero(conf.pageBytes));
    entries.resize(conf.entries);
    errors.resize(conf.entries);
    index.reserve(conf.entries * 2);
}

std::uint32_t
Tlb::access(Addr addr, Cycle now, ErrorMask *errorOut)
{
    ++statsData.accesses;
    ++tick;
    Addr page = addr >> pageShift;

    auto it = index.find(page);
    if (it != index.end()) {
        Entry &entry = entries[static_cast<std::size_t>(it->second)];
        entry.lruStamp = tick;
        if (errorOut)
            *errorOut = errors.get(static_cast<std::size_t>(it->second));
        // The span since the previous use was vulnerable: corrupting
        // the entry anywhere in it would have corrupted this use.
        if (now > entry.lastTouch) {
            statsData.aceCycles += now - entry.lastTouch;
            entry.lastTouch = now;
        }
        return 0;
    }

    ++statsData.misses;
    if (errorOut)
        *errorOut = 0; // fresh page walk: clean translation

    // Pick a victim: an invalid slot if any, else true LRU.
    int victim = 0;
    std::uint64_t oldest = UINT64_MAX;
    for (int s = 0; s < numSlots(); ++s) {
        const Entry &entry = entries[static_cast<std::size_t>(s)];
        if (!entry.valid) {
            victim = s;
            oldest = 0;
            break;
        }
        if (entry.lruStamp < oldest) {
            oldest = entry.lruStamp;
            victim = s;
        }
    }

    Entry &slot = entries[static_cast<std::size_t>(victim)];
    if (slot.valid)
        index.erase(slot.page);
    slot.page = page;
    slot.valid = true;
    slot.lruStamp = tick;
    slot.lastTouch = now;
    // Refill overwrites any injected error: this is the TLB's kill
    // discipline, analogous to pipeline.cc's destination-overwrite
    // kill.
    errors.setMask(static_cast<std::size_t>(victim), 0);
    index[page] = victim;
    return conf.missPenalty;
}

void
Tlb::flush()
{
    for (auto &entry : entries)
        entry.valid = false;
    index.clear();
}

InjectOutcome
Tlb::injectError(int slot, ErrorMask mask)
{
    if (slot < 0 || slot >= numSlots())
        return InjectOutcome::Rejected;
    Entry &entry = entries[static_cast<std::size_t>(slot)];
    if (!entry.valid)
        return InjectOutcome::Opened;
    // The TLB's injection (carry) helper — the sanctioned entry
    // point Pipeline::injectDtlbError routes to.
    errors.orMask(static_cast<std::size_t>(slot), mask);
    return InjectOutcome::Occupied;
}

void
Tlb::clearErrors(ErrorMask mask)
{
    errors.clearChannels(mask);
}

double
Tlb::referenceAvf(Cycle now) const
{
    if (now == 0)
        return 0.0;
    return static_cast<double>(statsData.aceCycles) /
           (static_cast<double>(now) *
            static_cast<double>(numSlots()));
}

} // namespace avf::mem
