/**
 * @file
 * Fully-associative LRU TLB (128 entries per Table 1). Misses add a
 * fixed page-walk penalty.
 *
 * Beyond timing, the TLB carries the error-bit machinery needed for
 * the paper's footnote 1 experiment (TLB AVF estimation needs M near
 * one million cycles): per-entry error bits that corrupt the next
 * translation that uses the entry, plus exact ACE accounting — an
 * entry is ACE between consecutive uses (corrupting it in that span
 * corrupts the later use), and un-ACE from its last use to eviction.
 */

#ifndef AVF_MEM_TLB_HH
#define AVF_MEM_TLB_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error_plane.hh"
#include "util/types.hh"

namespace avf::mem
{

/** TLB configuration. */
struct TlbConfig
{
    /** Name for stats. */
    std::string name = "tlb";
    /** Number of entries. */
    std::uint32_t entries = 128;
    /** Page size in bytes. */
    std::uint32_t pageBytes = 4096;
    /** Page-walk penalty charged on a miss, in cycles. */
    std::uint32_t missPenalty = 50;
};

/** Hit/miss counters. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Accumulated ACE cycles across all entries (see file doc). */
    std::uint64_t aceCycles = 0;
};

/** Fully-associative LRU translation buffer with error bits. */
class Tlb
{
  public:
    /** Build from @p config. */
    explicit Tlb(TlbConfig config);

    /**
     * Translate the page of @p addr.
     *
     * @param addr access address.
     * @param now current cycle (0 for callers that do not track
     *        time; ACE accounting is skipped then).
     * @param errorOut when non-null, receives the error bits riding
     *        on the translation used by this access.
     * @return extra latency in cycles (0 on hit).
     */
    std::uint32_t access(Addr addr, Cycle now = 0,
                         ErrorMask *errorOut = nullptr);

    /** Accumulated statistics. */
    const TlbStats &stats() const { return statsData; }

    /** Invalidate all entries. */
    void flush();

    /** Geometry in use. */
    const TlbConfig &config() const { return conf; }

    // ---- error-bit plane (extension experiment) ----

    /**
     * Inject error bits into entry slot @p slot.
     *
     * @return InjectOutcome::Rejected when @p slot is out of range
     *         (nothing written), Opened when the slot holds no valid
     *         translation (the injection is trivially masked),
     *         Occupied when the bits landed on a live translation.
     *         The old bool return conflated the first two.
     */
    InjectOutcome injectError(int slot, ErrorMask mask);

    /** Clear the given channels from every entry. */
    void clearErrors(ErrorMask mask);

    /** Number of entry slots (valid or not). */
    int numSlots() const { return static_cast<int>(entries.size()); }

    /**
     * Exact reference AVF over [0, now): the fraction of entry-cycles
     * that were ACE (an injected corruption then would have corrupted
     * a later translation).
     */
    double referenceAvf(Cycle now) const;

  private:
    struct Entry
    {
        Addr page = 0;
        std::uint64_t lruStamp = 0;
        Cycle lastTouch = 0;
        bool valid = false;
    };

    TlbConfig conf;
    std::uint32_t pageShift;
    std::vector<Entry> entries;
    /**
     * Per-slot error masks, parallel to `entries`. A separate
     * word-backed plane (rather than a mask in Entry) so the
     * channel-wide clearErrors() sweep runs one AND-NOT per slot
     * over a dense array instead of strided structs, and skips
     * entirely while no channel is live — the steady state between
     * TLB-AVF experiments.
     */
    ErrorPlane errors;
    /** page number -> slot, for O(1) hits. */
    std::unordered_map<Addr, int> index;
    std::uint64_t tick = 0;
    TlbStats statsData;
};

} // namespace avf::mem

#endif // AVF_MEM_TLB_HH
