#include "mem/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace avf::mem
{

Cache::Cache(CacheConfig config) : conf(std::move(config))
{
    if (conf.lineBytes == 0 || !std::has_single_bit(conf.lineBytes))
        fatal("cache '%s': line size must be a power of two",
              conf.name.c_str());
    if (conf.ways == 0)
        fatal("cache '%s': associativity must be positive",
              conf.name.c_str());
    std::uint64_t lines_total = conf.sizeBytes / conf.lineBytes;
    if (lines_total == 0 || lines_total % conf.ways != 0)
        fatal("cache '%s': size/line/ways geometry is inconsistent",
              conf.name.c_str());
    sets = static_cast<std::uint32_t>(lines_total / conf.ways);
    if (!std::has_single_bit(sets))
        fatal("cache '%s': set count %u must be a power of two",
              conf.name.c_str(), sets);
    lineShift = static_cast<std::uint32_t>(
        std::countr_zero(conf.lineBytes));
    tagShift = lineShift + static_cast<std::uint32_t>(
        std::countr_zero(sets));
    lines.assign(static_cast<std::size_t>(sets) * conf.ways, Line{});
    valid = BitVector(lines.size());
}

std::uint32_t
Cache::setOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> lineShift) & (sets - 1));
}

bool
Cache::access(Addr addr)
{
    ++statsData.accesses;
    ++tick;
    Addr tag = tagOf(addr);
    std::size_t base = static_cast<std::size_t>(setOf(addr)) * conf.ways;

    std::size_t victim = base;
    std::uint64_t oldest = UINT64_MAX;
    for (std::size_t w = 0; w < conf.ways; ++w) {
        Line &line = lines[base + w];
        if (valid.test(base + w) && line.tag == tag) {
            line.lruStamp = tick;
            return true;
        }
        if (!valid.test(base + w)) {
            victim = base + w;
            oldest = 0;
        } else if (line.lruStamp < oldest) {
            victim = base + w;
            oldest = line.lruStamp;
        }
    }

    ++statsData.misses;
    Line &line = lines[victim];
    line.tag = tag;
    valid.set(victim);
    line.lruStamp = tick;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    Addr tag = tagOf(addr);
    std::size_t base = static_cast<std::size_t>(setOf(addr)) * conf.ways;
    for (std::size_t w = 0; w < conf.ways; ++w) {
        if (valid.test(base + w) && lines[base + w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    valid.clearAll();
}

} // namespace avf::mem
