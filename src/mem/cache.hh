/**
 * @file
 * Timing-only set-associative cache with true-LRU replacement. The
 * simulator never stores data (it is trace-driven); caches exist to
 * produce the latency behaviour of Table 1, which in turn shapes
 * issue-queue occupancy and value lifetimes — the quantities AVF
 * depends on.
 */

#ifndef AVF_MEM_CACHE_HH
#define AVF_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvector.hh"
#include "util/types.hh"

namespace avf::mem
{

/** Configuration of one cache level. */
struct CacheConfig
{
    /** Human-readable name for stats. */
    std::string name = "cache";
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 32 * 1024;
    /** Associativity (1 = direct mapped). */
    std::uint32_t ways = 2;
    /** Line size in bytes (power of two). */
    std::uint32_t lineBytes = 128;
};

/** Hit/miss counters for one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    /** Miss ratio in [0,1]; 0 when idle. */
    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Set-associative, true-LRU, tag-only cache model. */
class Cache
{
  public:
    /** Build from @p config; fatal() on invalid geometry. */
    explicit Cache(CacheConfig config);

    /**
     * Look up @p addr, allocating the line on miss.
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Look up without allocating or touching LRU state. */
    bool probe(Addr addr) const;

    /** Invalidate everything. */
    void flush();

    /** Accumulated statistics. */
    const CacheStats &stats() const { return statsData; }

    /** Reset statistics (contents untouched). */
    void clearStats() { statsData = CacheStats{}; }

    /** Geometry actually in use. */
    const CacheConfig &config() const { return conf; }

    /** Number of sets. */
    std::uint32_t numSets() const { return sets; }

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    Addr tagOf(Addr addr) const { return addr >> tagShift; }
    std::uint32_t setOf(Addr addr) const;

    CacheConfig conf;
    std::uint32_t sets;
    std::uint32_t lineShift;
    std::uint32_t tagShift;
    std::vector<Line> lines; // sets * ways, row-major by set
    /** Valid bit per line, parallel to `lines`: one word covers 64
     *  lines, so flush() clears words instead of walking structs. */
    BitVector valid;
    std::uint64_t tick = 0;
    CacheStats statsData;
};

} // namespace avf::mem

#endif // AVF_MEM_CACHE_HH
