/**
 * @file
 * The full memory hierarchy of Table 1: split L1 (32KB 2-way D, 64KB
 * direct-mapped I, 128-byte lines), unified 1MB 4-way L2, and the
 * contentionless latencies 1 / 20 / 165 cycles, plus 128-entry
 * iTLB/dTLB.
 */

#ifndef AVF_MEM_HIERARCHY_HH
#define AVF_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "util/types.hh"

namespace avf::mem
{

/** Hierarchy-wide configuration (defaults = Table 1). */
struct MemConfig
{
    CacheConfig l1d{"L1D", 32 * 1024, 2, 128};
    CacheConfig l1i{"L1I", 64 * 1024, 1, 128};
    CacheConfig l2{"L2", 1024 * 1024, 4, 128};
    TlbConfig dtlb{"dTLB", 128, 4096, 50};
    TlbConfig itlb{"iTLB", 128, 4096, 50};
    /** L1 hit latency (cycles). */
    std::uint32_t l1Latency = 1;
    /** L2 hit latency (cycles). */
    std::uint32_t l2Latency = 20;
    /** Main-memory latency (cycles). */
    std::uint32_t memLatency = 165;
};

/** Per-side access counters beyond the cache-internal stats. */
struct HierarchyStats
{
    std::uint64_t dataAccesses = 0;
    std::uint64_t instrAccesses = 0;
};

/** Two-level hierarchy with TLBs; returns total access latency. */
class MemoryHierarchy
{
  public:
    /** Build from @p config (defaults reproduce Table 1). */
    explicit MemoryHierarchy(MemConfig config = MemConfig{});

    /**
     * Data-side access (load or store probe).
     *
     * @param addr access address.
     * @param now current cycle (for dTLB ACE accounting; 0 skips it).
     * @param tlbError when non-null, receives the error bits carried
     *        by the dTLB entry that translated this access.
     * @return total latency in cycles, including any TLB penalty.
     */
    std::uint32_t dataAccess(Addr addr, Cycle now = 0,
                             ErrorMask *tlbError = nullptr);

    /**
     * Instruction-side access (one fetch line).
     * @param now current cycle (for iTLB ACE accounting; 0 skips it).
     * @return total latency in cycles.
     */
    std::uint32_t instrAccess(Addr addr, Cycle now = 0);

    /** Mutable dTLB access for the error-injection extension. */
    Tlb &dtlbMutable() { return dataTlb; }

    const Cache &l1d() const { return l1dCache; }
    const Cache &l1i() const { return l1iCache; }
    const Cache &l2() const { return l2Cache; }
    const Tlb &dtlb() const { return dataTlb; }
    const Tlb &itlb() const { return instrTlb; }
    const HierarchyStats &stats() const { return statsData; }
    const MemConfig &config() const { return conf; }

    /** Drop all cached state (not statistics). */
    void flushAll();

  private:
    MemConfig conf;
    Cache l1dCache;
    Cache l1iCache;
    Cache l2Cache;
    Tlb dataTlb;
    Tlb instrTlb;
    HierarchyStats statsData;
};

} // namespace avf::mem

#endif // AVF_MEM_HIERARCHY_HH
