#include "mem/hierarchy.hh"

namespace avf::mem
{

MemoryHierarchy::MemoryHierarchy(MemConfig config)
    : conf(config), l1dCache(conf.l1d), l1iCache(conf.l1i),
      l2Cache(conf.l2), dataTlb(conf.dtlb), instrTlb(conf.itlb)
{}

std::uint32_t
MemoryHierarchy::dataAccess(Addr addr, Cycle now,
                            ErrorMask *tlbError)
{
    ++statsData.dataAccesses;
    std::uint32_t latency = dataTlb.access(addr, now, tlbError);
    if (l1dCache.access(addr))
        return latency + conf.l1Latency;
    if (l2Cache.access(addr))
        return latency + conf.l2Latency;
    return latency + conf.memLatency;
}

std::uint32_t
MemoryHierarchy::instrAccess(Addr addr, Cycle now)
{
    ++statsData.instrAccesses;
    std::uint32_t latency = instrTlb.access(addr, now);
    if (l1iCache.access(addr))
        return latency + conf.l1Latency;
    if (l2Cache.access(addr))
        return latency + conf.l2Latency;
    return latency + conf.memLatency;
}

void
MemoryHierarchy::flushAll()
{
    l1dCache.flush();
    l1iCache.flush();
    l2Cache.flush();
    dataTlb.flush();
    instrTlb.flush();
}

} // namespace avf::mem
