#include "serve/protocol.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "harness/export.hh"
#include "harness/task_codec.hh"
#include "trace/spec_profiles.hh"
#include "util/json.hh"

namespace avf::serve
{

namespace
{

using harness::codec::appendExactDouble;

void
appendUint(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += buf;
}

void
appendString(std::string &out, std::string_view text)
{
    out += '"';
    out += harness::jsonEscape(text);
    out += '"';
}

void
appendDoubles(std::string &out, const double *values,
              std::size_t count)
{
    out += '[';
    for (std::size_t i = 0; i < count; ++i) {
        if (i)
            out += ',';
        appendExactDouble(out, values[i]);
    }
    out += ']';
}

/** Campaign names become file stems; keep them path-safe. */
bool
validCampaignName(std::string_view name)
{
    if (name.empty() || name.size() > 64)
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

bool
fail(std::string &errorOut, const std::string &what)
{
    errorOut = "request: " + what;
    return false;
}

bool
readUint(const json::Value &object, const char *key,
         std::uint64_t &out, std::string &errorOut)
{
    const json::Value *value =
        object.find(key, json::Value::Kind::Uint);
    if (!value)
        return fail(errorOut, std::string("missing or non-integer '") +
                                  key + "'");
    out = value->uintValue;
    return true;
}

bool
parseCampaign(const json::Value &body, CampaignSpec &out,
              std::string &errorOut)
{
    const json::Value *name =
        body.find("name", json::Value::Kind::String);
    if (!name || !validCampaignName(name->text))
        return fail(errorOut,
                    "campaign name must be 1-64 chars of [a-z0-9_-]");
    out.name = name->text;

    const json::Value *benchmark =
        body.find("benchmark", json::Value::Kind::String);
    if (!benchmark)
        return fail(errorOut, "missing benchmark");
    const auto &known = trace::specBenchmarkNames();
    if (std::find(known.begin(), known.end(), benchmark->text) ==
        known.end())
        return fail(errorOut,
                    "unknown benchmark '" + benchmark->text + "'");
    out.benchmark = benchmark->text;

    std::uint64_t intervals = 0, slice = 0, m = 0, n = 0, lanes = 0,
                  every = 0;
    if (!readUint(body, "intervals", intervals, errorOut) ||
        !readUint(body, "slice_intervals", slice, errorOut) ||
        !readUint(body, "m", m, errorOut) ||
        !readUint(body, "n", n, errorOut) ||
        !readUint(body, "seed_salt", out.seedSalt, errorOut))
        return false;
    if (intervals == 0 || intervals > 1'000'000)
        return fail(errorOut, "intervals out of 1..1000000");
    if (slice == 0 || slice > intervals)
        return fail(errorOut,
                    "slice_intervals out of 1..intervals");
    if (m == 0 || m > 100'000'000)
        return fail(errorOut, "m out of 1..1e8");
    if (n == 0 || n > 1'000'000)
        return fail(errorOut, "n out of 1..1e6");
    if (out.seedSalt == 0)
        return fail(errorOut, "seed_salt must be nonzero");
    out.intervals = static_cast<int>(intervals);
    out.sliceIntervals = static_cast<int>(slice);
    out.m = m;
    out.n = static_cast<std::uint32_t>(n);

    if (body.find("lanes")) {
        if (!readUint(body, "lanes", lanes, errorOut))
            return false;
        if (lanes > 64)
            return fail(errorOut, "lanes out of 0..64");
        out.lanes = static_cast<int>(lanes);
    }
    if (body.find("checkpoint_every")) {
        if (!readUint(body, "checkpoint_every", every, errorOut))
            return false;
        if (every == 0 || every > 100'000)
            return fail(errorOut, "checkpoint_every out of 1..1e5");
        out.checkpointEverySlices = static_cast<int>(every);
    }
    if (const json::Value *metrics = body.find("metrics")) {
        if (!metrics->isBool())
            return fail(errorOut, "metrics must be a bool");
        out.metrics = metrics->boolean;
    }
    if (const json::Value *rc = body.find("root_cause")) {
        if (!rc->isBool())
            return fail(errorOut, "root_cause must be a bool");
        out.rootCause = rc->boolean;
    }
    return true;
}

} // namespace

bool
parseRequest(std::string_view line, Request &out,
             std::string &errorOut)
{
    json::Value doc;
    std::string parseError;
    if (!json::parse(line, doc, parseError))
        return fail(errorOut, parseError);
    if (!doc.isObject())
        return fail(errorOut, "top level not an object");
    const json::Value *version =
        doc.find("v", json::Value::Kind::String);
    if (!version || version->text != requestSchemaVersion)
        return fail(errorOut, "unknown protocol version");
    const json::Value *op = doc.find("op", json::Value::Kind::String);
    if (!op)
        return fail(errorOut, "missing op");

    out = Request{};
    if (op->text == "status") {
        out.op = Request::Op::Status;
        return true;
    }
    if (op->text == "shutdown") {
        out.op = Request::Op::Shutdown;
        return true;
    }
    if (op->text == "submit") {
        out.op = Request::Op::Submit;
        const json::Value *campaign = doc.find("campaign");
        if (!campaign || !campaign->isObject())
            return fail(errorOut, "submit needs a campaign object");
        return parseCampaign(*campaign, out.campaign, errorOut);
    }
    return fail(errorOut, "unknown op '" + op->text + "'");
}

std::string
encodeRequest(const Request &request)
{
    std::string out;
    out += "{\"v\":\"";
    out += requestSchemaVersion;
    out += "\",\"op\":\"";
    switch (request.op) {
      case Request::Op::Status: out += "status"; break;
      case Request::Op::Shutdown: out += "shutdown"; break;
      case Request::Op::Submit: out += "submit"; break;
    }
    out += '"';
    if (request.op == Request::Op::Submit) {
        const CampaignSpec &c = request.campaign;
        out += ",\"campaign\":{\"name\":";
        appendString(out, c.name);
        out += ",\"benchmark\":";
        appendString(out, c.benchmark);
        out += ",\"intervals\":";
        appendUint(out, static_cast<std::uint64_t>(c.intervals));
        out += ",\"slice_intervals\":";
        appendUint(out, static_cast<std::uint64_t>(c.sliceIntervals));
        out += ",\"m\":";
        appendUint(out, c.m);
        out += ",\"n\":";
        appendUint(out, c.n);
        out += ",\"lanes\":";
        appendUint(out, static_cast<std::uint64_t>(c.lanes));
        out += ",\"seed_salt\":";
        appendUint(out, c.seedSalt);
        out += ",\"checkpoint_every\":";
        appendUint(out, static_cast<std::uint64_t>(
                            c.checkpointEverySlices));
        out += ",\"metrics\":";
        out += c.metrics ? "true" : "false";
        out += ",\"root_cause\":";
        out += c.rootCause ? "true" : "false";
        out += '}';
    }
    out += '}';
    return out;
}

std::string
errorResponse(std::string_view message)
{
    std::string out = "{\"ok\":false,\"error\":";
    appendString(out, message);
    out += '}';
    return out;
}

std::string
feedHeaderLine(const CampaignSpec &spec)
{
    std::string out;
    out += "{\"v\":\"";
    out += feedSchemaVersion;
    out += "\",\"campaign\":";
    appendString(out, spec.name);
    out += ",\"benchmark\":";
    appendString(out, spec.benchmark);
    out += ",\"intervals\":";
    appendUint(out, static_cast<std::uint64_t>(spec.intervals));
    out += ",\"slice_intervals\":";
    appendUint(out, static_cast<std::uint64_t>(spec.sliceIntervals));
    out += ",\"m\":";
    appendUint(out, spec.m);
    out += ",\"n\":";
    appendUint(out, spec.n);
    out += ",\"lanes\":";
    appendUint(out, static_cast<std::uint64_t>(spec.lanes));
    out += ",\"seed_salt\":";
    appendUint(out, spec.seedSalt);
    out += '}';
    return out;
}

std::string
feedIntervalLine(std::uint64_t globalInterval, std::uint64_t slice,
                 const harness::IntervalResult &row)
{
    std::string out;
    out.reserve(256);
    out += "{\"interval\":";
    appendUint(out, globalInterval);
    out += ",\"slice\":";
    appendUint(out, slice);
    out += ",\"online\":";
    appendDoubles(out, row.online.data(), row.online.size());
    out += ",\"softarch\":";
    appendDoubles(out, row.softarch.data(), row.softarch.size());
    out += ",\"utilization\":";
    appendDoubles(out, row.utilization.data(),
                  row.utilization.size());
    out += ",\"occupancy\":";
    appendExactDouble(out, row.occupancy);
    out += '}';
    return out;
}

std::string
feedSummaryLine(const CampaignRollup &rollup)
{
    auto mean = [&](double sum) {
        return rollup.intervals
                   ? sum / static_cast<double>(rollup.intervals)
                   : 0.0;
    };
    std::array<double, core::numStructures> online{};
    std::array<double, core::numStructures> softarch{};
    std::array<double, 2> utilization{};
    for (std::size_t s = 0; s < online.size(); ++s) {
        online[s] = mean(rollup.onlineSum[s]);
        softarch[s] = mean(rollup.softarchSum[s]);
    }
    utilization[0] = mean(rollup.utilizationSum[0]);
    utilization[1] = mean(rollup.utilizationSum[1]);

    std::string out;
    out.reserve(256);
    out += "{\"summary\":true,\"intervals\":";
    appendUint(out, rollup.intervals);
    out += ",\"slices\":";
    appendUint(out, rollup.slices);
    out += ",\"online_mean\":";
    appendDoubles(out, online.data(), online.size());
    out += ",\"softarch_mean\":";
    appendDoubles(out, softarch.data(), softarch.size());
    out += ",\"utilization_mean\":";
    appendDoubles(out, utilization.data(), utilization.size());
    out += ",\"occupancy_mean\":";
    appendExactDouble(out, mean(rollup.occupancySum));
    out += ",\"cycles\":";
    appendUint(out, rollup.cycles);
    out += ",\"retired\":";
    appendUint(out, rollup.retired);
    out += ",\"injections\":";
    appendUint(out, rollup.injections);
    out += ",\"failures\":";
    appendUint(out, rollup.failures);
    out += '}';
    return out;
}

std::string
feedAttributionLine(const obs::AttributionSnapshot &attr)
{
    std::string out;
    out.reserve(256);
    out += "{\"attribution\":true,\"table\":";
    harness::codec::appendAttributionSnapshot(out, attr);
    out += '}';
    return out;
}

void
foldSliceIntoRollup(CampaignRollup &rollup,
                    const harness::TaskResult &task)
{
    for (const auto &row : task.result.intervals) {
        ++rollup.intervals;
        for (std::size_t s = 0; s < row.online.size(); ++s) {
            rollup.onlineSum[s] += row.online[s];
            rollup.softarchSum[s] += row.softarch[s];
        }
        rollup.utilizationSum[0] += row.utilization[0];
        rollup.utilizationSum[1] += row.utilization[1];
        rollup.occupancySum += row.occupancy;
    }
    ++rollup.slices;
    rollup.cycles += task.result.summary.cycles;
    rollup.retired += task.result.summary.retired;
    for (const auto &state : task.result.estimatorStates) {
        // Only the online family carries lifetime injection
        // counters; the baselines and the port entry report zero.
        rollup.injections +=
            state.counterValue("lifetime_injections");
        rollup.failures += state.counterValue("lifetime_failures");
    }
}

} // namespace avf::serve
