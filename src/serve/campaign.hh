/**
 * @file
 * The campaign runner: drives a CampaignSpec from its current
 * checkpoint to completion, streaming per-interval rows into the
 * JSONL feed and checkpointing every K slices. Both entry points of
 * the serve layer share it — the daemon after a socket submit, and
 * `avf-serve batch` for the uninterrupted reference run the CI stage
 * diffs against — so there is exactly one code path that produces
 * feed bytes.
 */

#ifndef AVF_SERVE_CAMPAIGN_HH
#define AVF_SERVE_CAMPAIGN_HH

#include <string>

#include "serve/checkpoint.hh"
#include "serve/protocol.hh"

namespace avf::serve
{

/** File layout inside one serve state directory. */
struct StatePaths
{
    std::string dir;

    explicit StatePaths(std::string stateDir)
        : dir(std::move(stateDir))
    {
    }

    /** The daemon's listening socket. */
    std::string socketPath() const { return dir + "/serve.sock"; }
    /** Campaign feed (append-only JSONL). */
    std::string feedPath(const std::string &name) const
    {
        return dir + "/" + name + ".feed.jsonl";
    }
    /** Campaign checkpoint (atomic JSON document). */
    std::string checkpointPath(const std::string &name) const
    {
        return dir + "/" + name + ".ckpt.json";
    }
};

/**
 * Make @p spec durable without running anything: create the feed with
 * its header row, sync it, and persist the initial checkpoint
 * (slicesDone = 0). Once this returns true the campaign survives a
 * SIGKILL at any later instant — which is why the daemon acknowledges
 * a submit only after this step. Overwrites any previous campaign of
 * the same name.
 */
bool prepareCampaign(const CampaignSpec &spec, const StatePaths &paths,
                     std::string &errorOut);

/**
 * Start @p spec fresh: prepareCampaign(), then run every slice over
 * @p workers processes (equivalent to prepare + resume).
 */
bool runCampaignFresh(const CampaignSpec &spec,
                      const StatePaths &paths, int workers,
                      std::string &errorOut);

/**
 * Resume the campaign named @p name from its checkpoint: truncate
 * the feed to the durable byte count (dropping any torn line a
 * SIGKILL left), then recompute the slices past slicesDone. A
 * complete campaign is a no-op success. The re-appended tail is
 * byte-identical to what an uninterrupted run would have written.
 */
bool resumeCampaign(const std::string &name, const StatePaths &paths,
                    int workers, std::string &errorOut);

} // namespace avf::serve

#endif // AVF_SERVE_CAMPAIGN_HH
