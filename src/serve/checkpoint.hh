/**
 * @file
 * Campaign checkpoints: the durable record that makes a SIGKILLed
 * daemon resumable with a byte-identical feed tail.
 *
 * A checkpoint does NOT capture mid-simulation state — it records
 * which slices are durably in the feed (slicesDone), the feed's
 * durable byte count at that point, the campaign rollup, and the
 * last slice's estimator states + merged metrics totals for
 * observability. Resume truncates the feed to feedBytes (dropping
 * any torn line), then recomputes the remaining slices from their
 * configs; slice determinism makes the re-appended bytes identical
 * to the ones a crash destroyed (DESIGN.md §13).
 *
 * Writes are atomic: serialize to <path>.tmp, fsync, rename. A crash
 * between those steps leaves either the old or the new checkpoint,
 * never a torn one.
 */

#ifndef AVF_SERVE_CHECKPOINT_HH
#define AVF_SERVE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/avf_estimator.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"
#include "serve/protocol.hh"

namespace avf::serve
{

/** Checkpoint schema tag. */
inline constexpr std::string_view checkpointSchemaVersion =
    "avf-serve-ckpt-v1";

/** One campaign's durable progress record. */
struct Checkpoint
{
    /** The campaign, verbatim; resume re-derives everything else. */
    CampaignSpec campaign;
    /** Slices whose feed rows are durable. */
    std::uint64_t slicesDone = 0;
    /** Durable feed size in bytes (the resume truncation point). */
    std::uint64_t feedBytes = 0;
    /** True once the summary row is durable — nothing left to do. */
    bool complete = false;
    /** Aggregates over the first slicesDone slices. */
    CampaignRollup rollup;
    /** The last completed slice's estimator states (incl. the
     *  synthetic port entry); empty before the first slice. */
    std::vector<core::EstimatorState> lastStates;
    /** Merged metrics totals (enabled only with campaign.metrics). */
    obs::MetricsSnapshot metricsTotals;
    /** Merged root-cause attribution table (enabled only with
     *  campaign.rootCause). Folded submission-order, so the bytes
     *  persisted here equal an uninterrupted run's at any worker
     *  count. */
    obs::AttributionSnapshot attributionTotals;
};

/** Serialize to one JSON document (fixed key order, %.17g). */
std::string encodeCheckpoint(const Checkpoint &checkpoint);

/** Parse a document produced by encodeCheckpoint(). */
bool decodeCheckpoint(std::string_view text, Checkpoint &out,
                      std::string &errorOut);

/** Atomic durable write: <path>.tmp + fsync + rename. */
bool saveCheckpoint(const Checkpoint &checkpoint,
                    const std::string &path, std::string &errorOut);

/** Read and decode @p path. */
bool loadCheckpoint(const std::string &path, Checkpoint &out,
                    std::string &errorOut);

} // namespace avf::serve

#endif // AVF_SERVE_CHECKPOINT_HH
