#include "serve/checkpoint.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "harness/export.hh"
#include "harness/task_codec.hh"
#include "util/json.hh"

namespace avf::serve
{

namespace
{

using harness::codec::appendExactDouble;

void
appendUint(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += buf;
}

void
appendString(std::string &out, std::string_view text)
{
    out += '"';
    out += harness::jsonEscape(text);
    out += '"';
}

void
appendDoubles(std::string &out, const double *values,
              std::size_t count)
{
    out += '[';
    for (std::size_t i = 0; i < count; ++i) {
        if (i)
            out += ',';
        appendExactDouble(out, values[i]);
    }
    out += ']';
}

bool
fail(std::string &errorOut, const std::string &what)
{
    errorOut = "checkpoint: " + what;
    return false;
}

bool
readUint(const json::Value &object, const char *key,
         std::uint64_t &out, std::string &errorOut)
{
    const json::Value *value = object.find(key);
    if (!value || !value->isNumber())
        return fail(errorOut, std::string("missing number '") + key +
                                  "'");
    out = value->asUint();
    return true;
}

bool
readFixedDoubles(const json::Value &object, const char *key,
                 double *out, std::size_t count,
                 std::string &errorOut)
{
    const json::Value *value = object.find(key);
    if (!value || !value->isArray() || value->items.size() != count)
        return fail(errorOut, std::string("bad array '") + key + "'");
    for (std::size_t i = 0; i < count; ++i) {
        if (!value->items[i].isNumber())
            return fail(errorOut,
                        std::string("non-number in '") + key + "'");
        out[i] = value->items[i].asDouble();
    }
    return true;
}

} // namespace

std::string
encodeCheckpoint(const Checkpoint &checkpoint)
{
    const CampaignSpec &c = checkpoint.campaign;
    std::string out;
    out.reserve(512);
    out += "{\"v\":\"";
    out += checkpointSchemaVersion;
    out += "\",\"campaign\":{\"name\":";
    appendString(out, c.name);
    out += ",\"benchmark\":";
    appendString(out, c.benchmark);
    out += ",\"intervals\":";
    appendUint(out, static_cast<std::uint64_t>(c.intervals));
    out += ",\"slice_intervals\":";
    appendUint(out, static_cast<std::uint64_t>(c.sliceIntervals));
    out += ",\"m\":";
    appendUint(out, c.m);
    out += ",\"n\":";
    appendUint(out, c.n);
    out += ",\"lanes\":";
    appendUint(out, static_cast<std::uint64_t>(c.lanes));
    out += ",\"seed_salt\":";
    appendUint(out, c.seedSalt);
    out += ",\"checkpoint_every\":";
    appendUint(out,
               static_cast<std::uint64_t>(c.checkpointEverySlices));
    out += ",\"metrics\":";
    out += c.metrics ? "true" : "false";
    out += ",\"root_cause\":";
    out += c.rootCause ? "true" : "false";
    out += "},\"slices_done\":";
    appendUint(out, checkpoint.slicesDone);
    out += ",\"feed_bytes\":";
    appendUint(out, checkpoint.feedBytes);
    out += ",\"complete\":";
    out += checkpoint.complete ? "true" : "false";

    const CampaignRollup &r = checkpoint.rollup;
    out += ",\"rollup\":{\"intervals\":";
    appendUint(out, r.intervals);
    out += ",\"slices\":";
    appendUint(out, r.slices);
    out += ",\"online_sum\":";
    appendDoubles(out, r.onlineSum.data(), r.onlineSum.size());
    out += ",\"softarch_sum\":";
    appendDoubles(out, r.softarchSum.data(), r.softarchSum.size());
    out += ",\"utilization_sum\":";
    appendDoubles(out, r.utilizationSum.data(),
                  r.utilizationSum.size());
    out += ",\"occupancy_sum\":";
    appendExactDouble(out, r.occupancySum);
    out += ",\"cycles\":";
    appendUint(out, r.cycles);
    out += ",\"retired\":";
    appendUint(out, r.retired);
    out += ",\"injections\":";
    appendUint(out, r.injections);
    out += ",\"failures\":";
    appendUint(out, r.failures);
    out += "},\"states\":[";
    for (std::size_t i = 0; i < checkpoint.lastStates.size(); ++i) {
        if (i)
            out += ',';
        harness::codec::appendEstimatorState(
            out, checkpoint.lastStates[i]);
    }
    out += ']';
    if (checkpoint.metricsTotals.enabled) {
        out += ",\"metrics\":";
        harness::codec::appendMetricsSnapshot(
            out, checkpoint.metricsTotals);
    }
    if (checkpoint.attributionTotals.enabled) {
        out += ",\"attribution\":";
        harness::codec::appendAttributionSnapshot(
            out, checkpoint.attributionTotals);
    }
    out += '}';
    return out;
}

bool
decodeCheckpoint(std::string_view text, Checkpoint &out,
                 std::string &errorOut)
{
    json::Value doc;
    std::string parseError;
    if (!json::parse(text, doc, parseError))
        return fail(errorOut, parseError);
    if (!doc.isObject())
        return fail(errorOut, "top level not an object");
    const json::Value *version =
        doc.find("v", json::Value::Kind::String);
    if (!version || version->text != checkpointSchemaVersion)
        return fail(errorOut, "unknown checkpoint version");

    out = Checkpoint{};
    const json::Value *campaign = doc.find("campaign");
    if (!campaign || !campaign->isObject())
        return fail(errorOut, "missing campaign");
    CampaignSpec &c = out.campaign;
    const json::Value *name =
        campaign->find("name", json::Value::Kind::String);
    const json::Value *benchmark =
        campaign->find("benchmark", json::Value::Kind::String);
    if (!name || !benchmark)
        return fail(errorOut, "campaign missing name or benchmark");
    c.name = name->text;
    c.benchmark = benchmark->text;
    std::uint64_t intervals = 0, slice = 0, n = 0, lanes = 0,
                  every = 0;
    if (!readUint(*campaign, "intervals", intervals, errorOut) ||
        !readUint(*campaign, "slice_intervals", slice, errorOut) ||
        !readUint(*campaign, "m", c.m, errorOut) ||
        !readUint(*campaign, "n", n, errorOut) ||
        !readUint(*campaign, "lanes", lanes, errorOut) ||
        !readUint(*campaign, "seed_salt", c.seedSalt, errorOut) ||
        !readUint(*campaign, "checkpoint_every", every, errorOut))
        return false;
    c.intervals = static_cast<int>(intervals);
    c.sliceIntervals = static_cast<int>(slice);
    c.n = static_cast<std::uint32_t>(n);
    c.lanes = static_cast<int>(lanes);
    c.checkpointEverySlices = static_cast<int>(every);
    if (const json::Value *metrics = campaign->find("metrics")) {
        if (!metrics->isBool())
            return fail(errorOut, "campaign metrics not a bool");
        c.metrics = metrics->boolean;
    }
    if (const json::Value *rc = campaign->find("root_cause")) {
        if (!rc->isBool())
            return fail(errorOut, "campaign root_cause not a bool");
        c.rootCause = rc->boolean;
    }

    if (!readUint(doc, "slices_done", out.slicesDone, errorOut) ||
        !readUint(doc, "feed_bytes", out.feedBytes, errorOut))
        return false;
    const json::Value *complete = doc.find("complete");
    if (!complete || !complete->isBool())
        return fail(errorOut, "missing complete flag");
    out.complete = complete->boolean;

    const json::Value *rollup = doc.find("rollup");
    if (!rollup || !rollup->isObject())
        return fail(errorOut, "missing rollup");
    CampaignRollup &r = out.rollup;
    const json::Value *occupancy = rollup->find("occupancy_sum");
    if (!readUint(*rollup, "intervals", r.intervals, errorOut) ||
        !readUint(*rollup, "slices", r.slices, errorOut) ||
        !readFixedDoubles(*rollup, "online_sum", r.onlineSum.data(),
                          r.onlineSum.size(), errorOut) ||
        !readFixedDoubles(*rollup, "softarch_sum",
                          r.softarchSum.data(), r.softarchSum.size(),
                          errorOut) ||
        !readFixedDoubles(*rollup, "utilization_sum",
                          r.utilizationSum.data(),
                          r.utilizationSum.size(), errorOut) ||
        !readUint(*rollup, "cycles", r.cycles, errorOut) ||
        !readUint(*rollup, "retired", r.retired, errorOut) ||
        !readUint(*rollup, "injections", r.injections, errorOut) ||
        !readUint(*rollup, "failures", r.failures, errorOut))
        return false;
    if (!occupancy || !occupancy->isNumber())
        return fail(errorOut, "rollup missing occupancy_sum");
    r.occupancySum = occupancy->asDouble();

    const json::Value *states = doc.find("states");
    if (!states || !states->isArray())
        return fail(errorOut, "missing states");
    out.lastStates.clear();
    out.lastStates.reserve(states->items.size());
    for (const auto &item : states->items) {
        core::EstimatorState state;
        if (!harness::codec::decodeEstimatorState(item, state,
                                                  errorOut))
            return false;
        out.lastStates.push_back(std::move(state));
    }
    if (const json::Value *metrics = doc.find("metrics")) {
        if (!harness::codec::decodeMetricsSnapshot(
                *metrics, out.metricsTotals, errorOut))
            return false;
    }
    if (const json::Value *attr = doc.find("attribution")) {
        if (!harness::codec::decodeAttributionSnapshot(
                *attr, out.attributionTotals, errorOut))
            return false;
    }
    return true;
}

bool
saveCheckpoint(const Checkpoint &checkpoint, const std::string &path,
               std::string &errorOut)
{
    const std::string text = encodeCheckpoint(checkpoint);
    const std::string tmp = path + ".tmp";
    std::FILE *stream = std::fopen(tmp.c_str(), "wb");
    if (!stream) {
        errorOut = "checkpoint '" + tmp +
                   "': open failed: " + std::strerror(errno);
        return false;
    }
    bool ok =
        std::fwrite(text.data(), 1, text.size(), stream) ==
            text.size() &&
        std::fputc('\n', stream) != EOF &&
        std::fflush(stream) == 0 &&
        ::fsync(::fileno(stream)) == 0;
    if (std::fclose(stream) != 0)
        ok = false;
    if (!ok) {
        errorOut = "checkpoint '" + tmp +
                   "': write failed: " + std::strerror(errno);
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        errorOut = "checkpoint '" + path +
                   "': rename failed: " + std::strerror(errno);
        return false;
    }
    return true;
}

bool
loadCheckpoint(const std::string &path, Checkpoint &out,
               std::string &errorOut)
{
    std::FILE *stream = std::fopen(path.c_str(), "rb");
    if (!stream) {
        errorOut = "checkpoint '" + path +
                   "': open failed: " + std::strerror(errno);
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, stream)) > 0)
        text.append(buf, got);
    bool readOk = std::ferror(stream) == 0;
    if (std::fclose(stream) != 0)
        readOk = false;
    if (!readOk) {
        errorOut = "checkpoint '" + path +
                   "': read failed: " + std::strerror(errno);
        return false;
    }
    return decodeCheckpoint(text, out, errorOut);
}

} // namespace avf::serve
