#include "serve/campaign.hh"

#include <algorithm>

#include "obs/feed_writer.hh"
#include "serve/sharder.hh"

namespace avf::serve
{

namespace
{

/**
 * Run @p checkpoint's campaign from slicesDone to completion against
 * an already-positioned feed writer, checkpointing every K slices
 * and finishing with the summary row.
 */
bool
runFromCheckpoint(Checkpoint &checkpoint, const StatePaths &paths,
                  obs::FeedWriter &feed, int workers,
                  std::string &errorOut)
{
    const CampaignSpec &spec = checkpoint.campaign;
    const std::string ckptPath = paths.checkpointPath(spec.name);
    const std::uint64_t slices = spec.numSlices();
    const auto every = static_cast<std::uint64_t>(
        spec.checkpointEverySlices);

    while (checkpoint.slicesDone < slices) {
        std::uint64_t batchEnd =
            std::min(slices, checkpoint.slicesDone + every);
        bool ok = runShardedSlices(
            spec, checkpoint.slicesDone, batchEnd, workers,
            [&](const harness::TaskResult &task,
                std::string &sliceError) {
                auto slice = static_cast<std::uint64_t>(task.index);
                std::uint64_t base =
                    slice *
                    static_cast<std::uint64_t>(spec.sliceIntervals);
                for (std::size_t k = 0;
                     k < task.result.intervals.size(); ++k) {
                    if (!feed.appendLine(
                            feedIntervalLine(
                                base + k, slice,
                                task.result.intervals[k]),
                            sliceError))
                        return false;
                }
                foldSliceIntoRollup(checkpoint.rollup, task);
                checkpoint.lastStates = task.result.estimatorStates;
                if (spec.metrics)
                    checkpoint.metricsTotals.mergeTotals(
                        task.result.metrics);
                if (spec.rootCause)
                    checkpoint.attributionTotals.mergeFrom(
                        task.result.attribution);
                return true;
            },
            errorOut);
        if (!ok)
            return false;
        // Durability order matters: the feed must be on disk before
        // the checkpoint that claims it is.
        if (!feed.flushSync(errorOut))
            return false;
        checkpoint.slicesDone = batchEnd;
        checkpoint.feedBytes = feed.bytesWritten();
        if (!saveCheckpoint(checkpoint, ckptPath, errorOut))
            return false;
    }

    // The attribution rollup precedes the summary row so a tail
    // reader sees the blame table before the campaign's last line.
    if (spec.rootCause &&
        !feed.appendLine(
            feedAttributionLine(checkpoint.attributionTotals),
            errorOut))
        return false;
    if (!feed.appendLine(feedSummaryLine(checkpoint.rollup),
                         errorOut) ||
        !feed.flushSync(errorOut))
        return false;
    checkpoint.feedBytes = feed.bytesWritten();
    checkpoint.complete = true;
    return saveCheckpoint(checkpoint, ckptPath, errorOut);
}

} // namespace

bool
prepareCampaign(const CampaignSpec &spec, const StatePaths &paths,
                std::string &errorOut)
{
    obs::FeedWriter feed;
    if (!feed.create(paths.feedPath(spec.name), errorOut))
        return false;
    if (!feed.appendLine(feedHeaderLine(spec), errorOut) ||
        !feed.flushSync(errorOut))
        return false;

    Checkpoint checkpoint;
    checkpoint.campaign = spec;
    checkpoint.slicesDone = 0;
    checkpoint.feedBytes = feed.bytesWritten();
    checkpoint.metricsTotals.enabled = spec.metrics;
    checkpoint.attributionTotals.enabled = spec.rootCause;
    return saveCheckpoint(checkpoint,
                          paths.checkpointPath(spec.name), errorOut);
}

bool
runCampaignFresh(const CampaignSpec &spec, const StatePaths &paths,
                 int workers, std::string &errorOut)
{
    if (!prepareCampaign(spec, paths, errorOut))
        return false;
    return resumeCampaign(spec.name, paths, workers, errorOut);
}

bool
resumeCampaign(const std::string &name, const StatePaths &paths,
               int workers, std::string &errorOut)
{
    Checkpoint checkpoint;
    if (!loadCheckpoint(paths.checkpointPath(name), checkpoint,
                        errorOut))
        return false;
    if (checkpoint.campaign.name != name) {
        errorOut = "checkpoint names campaign '" +
                   checkpoint.campaign.name + "', expected '" + name +
                   "'";
        return false;
    }
    if (checkpoint.complete)
        return true;
    obs::FeedWriter feed;
    if (!feed.resume(paths.feedPath(name), checkpoint.feedBytes,
                     errorOut))
        return false;
    return runFromCheckpoint(checkpoint, paths, feed, workers,
                             errorOut);
}

} // namespace avf::serve
