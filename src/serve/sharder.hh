/**
 * @file
 * Process-level sharding for serve campaigns: slices fan out over
 * forked worker *processes* (not engine threads), and results merge
 * back in slice order, so many-tenant daemons isolate campaign
 * failures and byte-identity survives any worker count.
 *
 * Topology: worker w of W owns slices first+w, first+w+W, ... (static
 * round-robin — assignment depends only on the slice index, never on
 * scheduling). Each worker runs its slices sequentially with
 * harness::detail::runExperimentDirect (no thread pool in children),
 * encodes every result through harness/task_codec, and streams the
 * lines over its pipe. The parent reads the pipes in global slice
 * order, so the consumer sees exactly the submission-order stream the
 * in-process engine would deliver; pipe backpressure bounds how far
 * ahead a fast worker can run without any polling.
 *
 * Fork safety: this file owns the repo's only fork() call (enforced
 * by avflint's fork-safety check), and callers must be
 * single-threaded when they invoke it — the serve daemon is, by
 * design. Children never touch the listening socket or the feed;
 * they write their pipe and _exit.
 */

#ifndef AVF_SERVE_SHARDER_HH
#define AVF_SERVE_SHARDER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "harness/engine.hh"
#include "serve/protocol.hh"

namespace avf::serve
{

/**
 * Build slice @p index's experiment config: the campaign's machine
 * and estimator parameters, the slice's interval count, seeds
 * derived from (seedSalt, index) via harness::deriveTaskSeeds, and
 * estimator-state snapshots enabled.
 */
harness::ExperimentConfig makeSliceConfig(const CampaignSpec &spec,
                                          std::uint64_t index);

/**
 * Slice-result consumer; called in slice order on the parent.
 * Return false (with @p errorOut set) to abort the fan-out.
 */
using SliceConsumer = std::function<bool(
    const harness::TaskResult &task, std::string &errorOut)>;

/**
 * Run slices [@p firstSlice, @p endSlice) of @p spec over
 * @p workers forked processes and hand each decoded result to
 * @p onSlice in slice order. The worker count is clamped to the
 * slice count (and to at least 1). Every result — even at one
 * worker — crosses the wire codec, so the consumer's view is
 * byte-identical at any shard count by construction.
 *
 * @return false with @p errorOut set when a worker dies, a wire
 *         line fails to decode, a slice reports an error, or the
 *         consumer aborts.
 */
bool runShardedSlices(const CampaignSpec &spec,
                      std::uint64_t firstSlice,
                      std::uint64_t endSlice, int workers,
                      const SliceConsumer &onSlice,
                      std::string &errorOut);

} // namespace avf::serve

#endif // AVF_SERVE_SHARDER_HH
