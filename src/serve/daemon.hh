/**
 * @file
 * The resident avf-serve daemon. Single-threaded by design: it
 * accepts one connection at a time, answers one line-delimited JSON
 * request per connection, and runs submitted campaigns inline
 * between accepts — parallelism comes from the process sharder, not
 * from threads, which keeps the fork() sites trivially safe and the
 * daemon state trivially race-free.
 *
 * Crash contract: a submit is acknowledged only after the campaign's
 * feed header and initial checkpoint are durable, so any accepted
 * campaign survives a SIGKILL at any later instant; restarting with
 * --resume finishes every incomplete campaign (byte-identical feed
 * tail) before the socket starts listening again.
 */

#ifndef AVF_SERVE_DAEMON_HH
#define AVF_SERVE_DAEMON_HH

#include <string>

#include "serve/campaign.hh"

namespace avf::serve
{

/** Daemon configuration (CLI flags only — no env knobs). */
struct DaemonOptions
{
    /** State directory: socket, feeds, checkpoints. Must exist. */
    std::string stateDir;
    /** Worker processes per campaign. */
    int workers = 1;
    /** Finish incomplete checkpointed campaigns before listening. */
    bool resume = false;
};

/**
 * Run the daemon until a shutdown request (or an unrecoverable
 * socket error). @return process exit code: 0 on clean shutdown,
 * 1 on error.
 */
int runDaemon(const DaemonOptions &options);

/**
 * Client side: connect to the daemon's socket under @p stateDir,
 * send one request line, and return the one-line response.
 * @return false with @p errorOut set on connect/transport failure.
 */
bool sendRequest(const std::string &stateDir,
                 const std::string &requestLine,
                 std::string &responseOut, std::string &errorOut);

} // namespace avf::serve

#endif // AVF_SERVE_DAEMON_HH
