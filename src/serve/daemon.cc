#include "serve/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/export.hh"
#include "serve/protocol.hh"
#include "util/logging.hh"

namespace avf::serve
{

namespace
{

/** Longest request line the daemon will buffer before rejecting. */
constexpr std::size_t maxRequestBytes = 1 << 16;

/** Checkpoint file suffix used to discover campaigns in stateDir. */
constexpr std::string_view checkpointSuffix = ".ckpt.json";

/**
 * Campaign names found in @p stateDir, by checkpoint file, sorted so
 * status and resume order are deterministic.
 */
std::vector<std::string>
listCampaigns(const std::string &stateDir)
{
    std::vector<std::string> names;
    DIR *dir = ::opendir(stateDir.c_str());
    if (!dir)
        return names;
    while (const dirent *entry = ::readdir(dir)) {
        std::string_view file = entry->d_name;
        if (file.size() <= checkpointSuffix.size() ||
            file.substr(file.size() - checkpointSuffix.size()) !=
                checkpointSuffix)
            continue;
        names.emplace_back(
            file.substr(0, file.size() - checkpointSuffix.size()));
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
}

/** {"ok":true,"campaigns":[...]} from every checkpoint on disk. */
std::string
statusResponse(const StatePaths &paths)
{
    std::string out = "{\"ok\":true,\"campaigns\":[";
    bool first = true;
    for (const std::string &name : listCampaigns(paths.dir)) {
        Checkpoint checkpoint;
        std::string error;
        if (!loadCheckpoint(paths.checkpointPath(name), checkpoint,
                            error))
            continue;
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":\"";
        out += harness::jsonEscape(checkpoint.campaign.name);
        out += "\",\"slices_done\":";
        out += std::to_string(checkpoint.slicesDone);
        out += ",\"slices\":";
        out += std::to_string(checkpoint.campaign.numSlices());
        out += ",\"complete\":";
        out += checkpoint.complete ? "true" : "false";
        out += ",\"feed_bytes\":";
        out += std::to_string(checkpoint.feedBytes);
        out += '}';
    }
    out += "]}";
    return out;
}

/**
 * Read one '\n'-terminated line from @p fd. Returns false on EOF,
 * transport error, or an oversized line (all of which end the
 * connection — a peer that cannot frame a line gets no response).
 */
bool
readRequestLine(int fd, std::string &lineOut)
{
    lineOut.clear();
    char c = 0;
    while (lineOut.size() < maxRequestBytes) {
        ssize_t got = ::recv(fd, &c, 1, 0);
        if (got <= 0)
            return false;
        if (c == '\n')
            return true;
        lineOut += c;
    }
    return false;
}

/**
 * Send @p line plus a newline. MSG_NOSIGNAL keeps a vanished peer
 * from raising SIGPIPE — the daemon installs no signal handlers.
 */
bool
writeResponseLine(int fd, std::string_view line)
{
    std::string framed(line);
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        ssize_t wrote = ::send(fd, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
        if (wrote <= 0)
            return false;
        sent += static_cast<std::size_t>(wrote);
    }
    return true;
}

/**
 * Resume every incomplete checkpointed campaign, in name order,
 * before the socket starts listening. Hard failure: a daemon that
 * cannot honour its crash contract should not accept new work.
 */
bool
resumeIncomplete(const StatePaths &paths, int workers)
{
    for (const std::string &name : listCampaigns(paths.dir)) {
        std::string error;
        Checkpoint checkpoint;
        if (!loadCheckpoint(paths.checkpointPath(name), checkpoint,
                            error)) {
            warn("avf-serve: cannot resume '%s': %s", name.c_str(),
                 error.c_str());
            return false;
        }
        if (checkpoint.complete)
            continue;
        inform("avf-serve: resuming campaign '%s' (%llu/%llu slices)",
               name.c_str(),
               static_cast<unsigned long long>(checkpoint.slicesDone),
               static_cast<unsigned long long>(
                   checkpoint.campaign.numSlices()));
        if (!resumeCampaign(name, paths, workers, error)) {
            warn("avf-serve: resume of '%s' failed: %s", name.c_str(),
                 error.c_str());
            return false;
        }
    }
    return true;
}

/** Bind and listen on the state directory's Unix socket. */
int
openListener(const std::string &socketPath)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(address.sun_path)) {
        warn("avf-serve: socket path too long: %s",
             socketPath.c_str());
        return -1;
    }
    std::memcpy(address.sun_path, socketPath.c_str(),
                socketPath.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("avf-serve: socket() failed: %s", std::strerror(errno));
        return -1;
    }
    // A previous daemon's socket file would make bind() fail; the
    // state directory is single-daemon by contract, so reclaim it.
    (void)::unlink(socketPath.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) != 0 ||
        ::listen(fd, 8) != 0) {
        warn("avf-serve: bind/listen on %s failed: %s",
             socketPath.c_str(), std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

int
runDaemon(const DaemonOptions &options)
{
    StatePaths paths(options.stateDir);
    if (options.resume && !resumeIncomplete(paths, options.workers))
        return 1;

    int listener = openListener(paths.socketPath());
    if (listener < 0)
        return 1;
    inform("avf-serve: listening on %s (%d worker process%s)",
           paths.socketPath().c_str(), options.workers,
           options.workers == 1 ? "" : "es");

    bool shutdown = false;
    while (!shutdown) {
        int client = ::accept(listener, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR)
                continue;
            warn("avf-serve: accept() failed: %s",
                 std::strerror(errno));
            ::close(listener);
            return 1;
        }

        std::string line;
        if (!readRequestLine(client, line)) {
            ::close(client);
            continue;
        }

        Request request;
        std::string error;
        if (!parseRequest(line, request, error)) {
            (void)writeResponseLine(client, errorResponse(error));
            ::close(client);
            continue;
        }

        switch (request.op) {
        case Request::Op::Status:
            (void)writeResponseLine(client, statusResponse(paths));
            ::close(client);
            break;
        case Request::Op::Shutdown:
            (void)writeResponseLine(client,
                                    "{\"ok\":true,\"shutdown\":true}");
            ::close(client);
            shutdown = true;
            break;
        case Request::Op::Submit: {
            // Acknowledge only once the feed header and the initial
            // checkpoint are durable: from that instant a SIGKILL at
            // ANY point is recoverable with --resume.
            if (!prepareCampaign(request.campaign, paths, error)) {
                (void)writeResponseLine(client, errorResponse(error));
                ::close(client);
                break;
            }
            std::string accepted = "{\"ok\":true,\"campaign\":\"";
            accepted += harness::jsonEscape(request.campaign.name);
            accepted += "\",\"slices\":";
            accepted +=
                std::to_string(request.campaign.numSlices());
            accepted += '}';
            (void)writeResponseLine(client, accepted);
            ::close(client);
            inform("avf-serve: running campaign '%s' (%d intervals)",
                   request.campaign.name.c_str(),
                   request.campaign.intervals);
            if (!resumeCampaign(request.campaign.name, paths,
                                options.workers, error)) {
                warn("avf-serve: campaign '%s' failed: %s",
                     request.campaign.name.c_str(), error.c_str());
            }
            break;
        }
        }
    }

    ::close(listener);
    (void)::unlink(paths.socketPath().c_str());
    inform("avf-serve: shut down cleanly");
    return 0;
}

bool
sendRequest(const std::string &stateDir,
            const std::string &requestLine, std::string &responseOut,
            std::string &errorOut)
{
    StatePaths paths(stateDir);
    const std::string socketPath = paths.socketPath();
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(address.sun_path)) {
        errorOut = "socket path too long: " + socketPath;
        return false;
    }
    std::memcpy(address.sun_path, socketPath.c_str(),
                socketPath.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        errorOut = std::string("socket() failed: ") +
                   std::strerror(errno);
        return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&address),
                  sizeof(address)) != 0) {
        errorOut = "cannot connect to " + socketPath + ": " +
                   std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (!writeResponseLine(fd, requestLine)) {
        errorOut = "send failed: " + std::string(std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (!readRequestLine(fd, responseOut)) {
        errorOut = "no response from daemon";
        ::close(fd);
        return false;
    }
    ::close(fd);
    return true;
}

} // namespace avf::serve
