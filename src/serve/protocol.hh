/**
 * @file
 * The avf-serve wire protocol: line-delimited JSON over a Unix-domain
 * socket, parsed by the strict util/json parser. One request per
 * line, one JSON response per line — a malformed line gets an error
 * response and never kills the daemon (specProfile() and friends
 * fatal() on bad input, so every field is validated here first).
 *
 * The same header also defines the campaign feed rows (the JSONL
 * stream `avf-report tail` follows) and the campaign rollup the
 * summary row and the checkpoint share. All doubles print as %.17g
 * (see harness/task_codec.hh), so a value that crossed the worker
 * pipe, the rollup, and a crash-resume cycle still renders to the
 * same bytes as one that never left the process.
 */

#ifndef AVF_SERVE_PROTOCOL_HH
#define AVF_SERVE_PROTOCOL_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/structures.hh"
#include "harness/engine.hh"
#include "obs/attribution.hh"
#include "util/types.hh"

namespace avf::serve
{

/** Request schema tag (the "v" member of every request line). */
inline constexpr std::string_view requestSchemaVersion =
    "avf-serve-v1";

/** Feed schema tag (the "v" member of the feed header row). */
inline constexpr std::string_view feedSchemaVersion = "avf-feed-v1";

/**
 * One campaign: a benchmark run for a total number of estimation
 * intervals, split into fixed-size slices. Each slice is an
 * independent ExperimentConfig whose seeds derive from
 * (seedSalt, slice index) via harness::deriveTaskSeeds — the unit of
 * process sharding AND of crash-resume recomputation, which is what
 * keeps the feed byte-identical at any worker count and across a
 * SIGKILL (see DESIGN.md §13).
 */
struct CampaignSpec
{
    /** Campaign name; becomes the feed/checkpoint file stem, so the
     *  charset is restricted to [a-z0-9_-]. */
    std::string name;
    /** Workload, one of trace::specBenchmarkNames(). */
    std::string benchmark;
    /** Total estimation intervals to stream. */
    int intervals = 12;
    /** Intervals per slice (the last slice takes the remainder). */
    int sliceIntervals = 3;
    /** Online-estimator window length M, in cycles. */
    Cycle m = 1000;
    /** Injections per estimate N. */
    std::uint32_t n = 100;
    /** Injection lanes per estimator (0 = the engine default). */
    int lanes = 0;
    /** Seed salt for per-slice seed derivation; must be nonzero. */
    std::uint64_t seedSalt = 1;
    /** Checkpoint cadence, in slices. */
    int checkpointEverySlices = 1;
    /** Collect and merge per-slice metrics snapshots. */
    bool metrics = false;
    /**
     * Collect and merge per-slice root-cause attribution tables
     * (obs/attribution.hh). Slices run with campaign-global phase
     * buckets (phaseBase = the slice's first global interval), so
     * the merged table — persisted in the checkpoint and streamed
     * as the feed's attribution row — is byte-identical at any
     * worker count and across crash/resume.
     */
    bool rootCause = false;

    /** Slice count: ceil(intervals / sliceIntervals). */
    std::uint64_t numSlices() const
    {
        return (static_cast<std::uint64_t>(intervals) +
                static_cast<std::uint64_t>(sliceIntervals) - 1) /
               static_cast<std::uint64_t>(sliceIntervals);
    }

    /** Intervals in slice @p index (the last takes the remainder). */
    int sliceLength(std::uint64_t index) const
    {
        auto first = static_cast<std::int64_t>(index) *
                     sliceIntervals;
        auto left = static_cast<std::int64_t>(intervals) - first;
        return static_cast<int>(
            left < sliceIntervals ? left : sliceIntervals);
    }
};

/** One parsed request line. */
struct Request
{
    enum class Op
    {
        /** Start a campaign (body in `campaign`). */
        Submit,
        /** Report every known campaign's progress. */
        Status,
        /** Finish the current connection, then exit the daemon. */
        Shutdown
    };

    Op op = Op::Status;
    CampaignSpec campaign;
};

/**
 * Parse and validate one request line. Every field is range- and
 * charset-checked here so a hostile line can produce at worst an
 * error response — never a fatal() inside the daemon.
 */
bool parseRequest(std::string_view line, Request &out,
                  std::string &errorOut);

/** Encode a request (the avf-serve client side). */
std::string encodeRequest(const Request &request);

/** {"ok":false,"error":...} — the uniform failure response. */
std::string errorResponse(std::string_view message);

// ------------------------------------------------------------------ //
// Feed rows                                                           //
// ------------------------------------------------------------------ //

/**
 * Campaign-wide aggregates, folded slice by slice in submission
 * order. The checkpoint persists it verbatim (%.17g), so a resumed
 * campaign's summary row equals the uninterrupted one's.
 */
struct CampaignRollup
{
    std::uint64_t intervals = 0;
    std::uint64_t slices = 0;
    std::array<double, core::numStructures> onlineSum{};
    std::array<double, core::numStructures> softarchSum{};
    std::array<double, 2> utilizationSum{};
    double occupancySum = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    /** Lifetime injections/failures summed over every slice's five
     *  online estimator states. */
    std::uint64_t injections = 0;
    std::uint64_t failures = 0;
};

/** First feed row: campaign identity and parameters. */
std::string feedHeaderLine(const CampaignSpec &spec);

/**
 * One per-interval row. @p globalInterval numbers intervals across
 * the whole campaign; @p slice is the producing slice.
 */
std::string feedIntervalLine(std::uint64_t globalInterval,
                             std::uint64_t slice,
                             const harness::IntervalResult &row);

/** Final feed row: means and totals from the rollup. */
std::string feedSummaryLine(const CampaignRollup &rollup);

/**
 * Attribution rollup row (written before the summary row when the
 * campaign ran with rootCause): the merged blame table, keyed by its
 * "attribution" member so feed readers can tell it from interval
 * rows.
 */
std::string feedAttributionLine(const obs::AttributionSnapshot &attr);

/**
 * Fold one finished slice into the rollup: interval sums, pipeline
 * totals, and the online estimators' lifetime injection counters
 * (read from the slice's estimator states).
 */
void foldSliceIntoRollup(CampaignRollup &rollup,
                         const harness::TaskResult &task);

} // namespace avf::serve

#endif // AVF_SERVE_PROTOCOL_HH
