#include "serve/sharder.hh"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "harness/experiment.hh"
#include "harness/task_codec.hh"
#include "trace/spec_profiles.hh"

namespace avf::serve
{

harness::ExperimentConfig
makeSliceConfig(const CampaignSpec &spec, std::uint64_t index)
{
    harness::ExperimentConfig config;
    config.profile = trace::specProfile(spec.benchmark);
    config.online.m = spec.m;
    config.online.n = spec.n;
    // lanes = 0 means "the campaign default", mirroring what
    // ExperimentEngine::submit would inherit from RunOptions.
    config.online.lanes = spec.lanes > 0
                              ? spec.lanes
                              : harness::RunOptions{}.lanes;
    config.numIntervals = spec.sliceLength(index);
    config.metrics = spec.metrics;
    if (spec.rootCause) {
        // Campaign-global phase buckets: the slice's windows land in
        // buckets offset by its first global interval, so merged
        // tables read the same at any slicing.
        config.attribution.enabled = true;
        config.attribution.phaseBase = static_cast<std::uint32_t>(
            index * static_cast<std::uint64_t>(spec.sliceIntervals));
        config.attribution.phaseCount = static_cast<std::uint32_t>(
            spec.sliceLength(index));
    }
    config.snapshotEstimators = true;
    harness::deriveTaskSeeds(config, spec.seedSalt, index);
    return config;
}

namespace
{

/**
 * Child body: run this worker's slices sequentially, stream each
 * encoded result over the pipe, then _exit without touching any
 * parent-owned state (no atexit handlers, no stdio flush of
 * inherited buffers, no engine thread pool).
 */
[[noreturn]] void
workerMain(const CampaignSpec &spec, std::uint64_t firstSlice,
           std::uint64_t endSlice, std::uint64_t worker,
           std::uint64_t workerCount, int pipeFd)
{
    std::FILE *out = ::fdopen(pipeFd, "w");
    if (!out) {
        // avflint: allow(exit-site) — forked worker; only _exit is
        // safe here (exit() would run the parent's atexit handlers
        // and flush inherited stdio buffers twice).
        ::_exit(2);
    }
    for (std::uint64_t i = firstSlice + worker; i < endSlice;
         i += workerCount) {
        harness::TaskResult task;
        task.index = static_cast<std::size_t>(i);
        task.name = spec.name + ":" + std::to_string(i);
        try {
            task.result = harness::detail::runExperimentDirect(
                makeSliceConfig(spec, i));
        } catch (const std::exception &e) {
            task.errorText = e.what();
        } catch (...) {
            task.errorText = "unknown exception";
        }
        std::string line = harness::codec::encodeTaskResult(task);
        line += '\n';
        if (std::fwrite(line.data(), 1, line.size(), out) !=
                line.size() ||
            std::fflush(out) != 0) {
            // avflint: allow(exit-site) — see above.
            ::_exit(3);
        }
    }
    if (std::fclose(out) != 0) {
        // avflint: allow(exit-site) — see above.
        ::_exit(3);
    }
    // avflint: allow(exit-site) — see above.
    ::_exit(0);
}

/** Read one '\n'-terminated line; false on EOF or error. */
bool
readLine(std::FILE *stream, std::string &lineOut)
{
    lineOut.clear();
    int c = 0;
    while ((c = std::fgetc(stream)) != EOF) {
        if (c == '\n')
            return true;
        lineOut += static_cast<char>(c);
    }
    return false;
}

/** Reap every child; true when all exited cleanly with status 0. */
bool
reapWorkers(const std::vector<pid_t> &pids, std::string &errorOut)
{
    bool ok = true;
    for (pid_t pid : pids) {
        int status = 0;
        if (::waitpid(pid, &status, 0) != pid) {
            ok = false;
            errorOut = "sharder: waitpid failed";
            continue;
        }
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            ok = false;
            errorOut = "sharder: worker exited abnormally (status " +
                       std::to_string(status) + ")";
        }
    }
    return ok;
}

} // namespace

bool
runShardedSlices(const CampaignSpec &spec, std::uint64_t firstSlice,
                 std::uint64_t endSlice, int workers,
                 const SliceConsumer &onSlice, std::string &errorOut)
{
    if (firstSlice >= endSlice)
        return true;
    std::uint64_t count = endSlice - firstSlice;
    auto workerCount = static_cast<std::uint64_t>(
        workers < 1 ? 1 : workers);
    if (workerCount > count)
        workerCount = count;

    std::vector<std::FILE *> streams;
    std::vector<pid_t> pids;
    streams.reserve(workerCount);
    pids.reserve(workerCount);

    for (std::uint64_t w = 0; w < workerCount; ++w) {
        int fds[2];
        if (::pipe(fds) != 0) {
            errorOut = "sharder: pipe() failed";
            break;
        }
        pid_t pid = ::fork();
        if (pid < 0) {
            errorOut = "sharder: fork() failed";
            ::close(fds[0]);
            ::close(fds[1]);
            break;
        }
        if (pid == 0) {
            // Child: drop every read end inherited so far (ours and
            // the earlier workers'), keep only our write end.
            ::close(fds[0]);
            for (std::FILE *stream : streams)
                (void)std::fclose(stream);
            workerMain(spec, firstSlice, endSlice, w, workerCount,
                       fds[1]);
        }
        ::close(fds[1]);
        std::FILE *stream = ::fdopen(fds[0], "r");
        if (!stream) {
            errorOut = "sharder: fdopen() failed";
            ::close(fds[0]);
            pids.push_back(pid);
            break;
        }
        streams.push_back(stream);
        pids.push_back(pid);
    }

    bool ok = streams.size() == workerCount;

    // Merge: visit slices in global order, reading each from its
    // owner's pipe. A worker that runs ahead blocks on pipe
    // backpressure; the parent never blocks writing, so the merge
    // cannot deadlock.
    std::string line;
    harness::TaskResult task;
    for (std::uint64_t i = firstSlice; ok && i < endSlice; ++i) {
        std::FILE *stream =
            streams[static_cast<std::size_t>((i - firstSlice) %
                                             workerCount)];
        if (!readLine(stream, line)) {
            errorOut = "sharder: worker pipe closed before slice " +
                       std::to_string(i);
            ok = false;
            break;
        }
        if (!harness::codec::decodeTaskResult(line, task, errorOut)) {
            ok = false;
            break;
        }
        if (task.index != i) {
            errorOut = "sharder: slice " + std::to_string(i) +
                       " arrived out of order";
            ok = false;
            break;
        }
        if (!task.ok()) {
            errorOut = "slice " + std::to_string(i) +
                       " failed: " + task.errorText;
            ok = false;
            break;
        }
        if (!onSlice(task, errorOut)) {
            ok = false;
            break;
        }
    }

    for (std::FILE *stream : streams)
        (void)std::fclose(stream);
    std::string reapError;
    if (!reapWorkers(pids, reapError) && ok) {
        errorOut = reapError;
        ok = false;
    }
    return ok;
}

} // namespace avf::serve
