/**
 * @file
 * The dynamic-instruction record consumed by the trace-driven CPU
 * model. This mirrors what an Aria/MET-style trace carries: opcode
 * class, architectural register operands, effective address, and
 * branch outcome. The simulator is execution-free (like Turandot):
 * values are never computed, only their timing and dataflow.
 */

#ifndef AVF_TRACE_INSTRUCTION_HH
#define AVF_TRACE_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "util/types.hh"

namespace avf::trace
{

/** Operation classes with distinct latency/unit bindings (Table 1). */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< 1-cycle integer op on the FXU
    IntMul,     ///< 4-cycle pipelined multiply on the FXU
    IntDiv,     ///< 35-cycle pipelined divide on the FXU
    FpAlu,      ///< 5-cycle pipelined FP op on the FPU
    FpDiv,      ///< 28-cycle pipelined FP divide on the FPU
    Load,       ///< LSU; latency from the memory hierarchy
    Store,      ///< LSU; commits at retirement
    BranchCond, ///< conditional branch on the BR unit
    BranchUncond, ///< unconditional branch on the BR unit
    Nop,        ///< consumes a pipeline slot only
    NumOpClasses
};

/** Number of architectural integer registers. */
inline constexpr int numArchIntRegs = 32;
/** Number of architectural floating-point registers. */
inline constexpr int numArchFpRegs = 32;
/** Total architectural registers (int block then fp block). */
inline constexpr int numArchRegs = numArchIntRegs + numArchFpRegs;

/** @return true if @p reg indexes the architectural FP block. */
constexpr bool
isFpReg(RegIndex reg)
{
    return reg >= numArchIntRegs && reg < numArchRegs;
}

/** Human-readable op-class name. */
std::string_view opClassName(OpClass op);

/** @return true for loads and stores. */
constexpr bool
isMemOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** @return true for either branch flavor. */
constexpr bool
isBranch(OpClass op)
{
    return op == OpClass::BranchCond || op == OpClass::BranchUncond;
}

/** @return true for ops executed by the floating-point units. */
constexpr bool
isFpOp(OpClass op)
{
    return op == OpClass::FpAlu || op == OpClass::FpDiv;
}

/** One dynamic instruction as read from a trace. */
struct TraceInstruction
{
    /** Instruction address (used by fetch and the branch predictor). */
    Addr pc = 0;
    /** Effective address for loads/stores; branch target for branches. */
    Addr effAddr = 0;
    /** Operation class. */
    OpClass op = OpClass::Nop;
    /** Source architectural registers; invalidReg when unused. */
    std::array<RegIndex, 3> src{invalidReg, invalidReg, invalidReg};
    /** Destination architectural register; invalidReg when none. */
    RegIndex dest = invalidReg;
    /** Access size in bytes for memory ops. */
    std::uint8_t memSize = 8;
    /** Branch outcome recorded in the trace. */
    bool taken = false;

    /** Count of valid source registers. */
    int
    numSrcs() const
    {
        int n = 0;
        for (auto r : src)
            if (r != invalidReg)
                ++n;
        return n;
    }

    /** True if this instruction writes a register. */
    bool hasDest() const { return dest != invalidReg; }
};

} // namespace avf::trace

#endif // AVF_TRACE_INSTRUCTION_HH
