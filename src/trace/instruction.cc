#include "trace/instruction.hh"

namespace avf::trace
{

std::string_view
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::FpAlu: return "FpAlu";
      case OpClass::FpDiv: return "FpDiv";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::BranchCond: return "BranchCond";
      case OpClass::BranchUncond: return "BranchUncond";
      case OpClass::Nop: return "Nop";
      default: return "Unknown";
    }
}

} // namespace avf::trace
