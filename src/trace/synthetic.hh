/**
 * @file
 * Synthetic dynamic-instruction generator. Stands in for the SPEC
 * CPU2000 Aria traces used by the paper: it produces an unbounded,
 * deterministic instruction stream whose dataflow (dependency
 * distances, dead-value fraction), control flow (branch bias/noise),
 * and memory behaviour (footprint, streaming) follow a WorkloadProfile
 * and its phase schedule.
 */

#ifndef AVF_TRACE_SYNTHETIC_HH
#define AVF_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <vector>

#include "trace/trace_source.hh"
#include "trace/workload_profile.hh"
#include "util/random.hh"

namespace avf::trace
{

/** Deterministic synthetic workload; an infinite TraceSource. */
class SyntheticTraceGenerator : public TraceSource
{
  public:
    /** Build a generator for @p profile. */
    explicit SyntheticTraceGenerator(WorkloadProfile profile);

    /** Always succeeds: the stream is infinite. */
    bool next(TraceInstruction &out) override;

    /** Dynamic instructions generated so far. */
    std::uint64_t generated() const { return instrCount; }

    /** Parameters currently in force (for tests and inspection). */
    const PhaseParams &currentParams() const { return active; }

    /** Index of the phase currently in force (0 if no phases). */
    std::size_t currentPhase() const { return phaseIndex; }

    /** The profile this generator was built from. */
    const WorkloadProfile &profile() const { return prof; }

  private:
    /** Advance the phase schedule if the current phase expired. */
    void updatePhase();

    /** Pick a source register of the given class with recency bias. */
    RegIndex pickSource(bool fp);

    /** Pick a destination register of the given class. */
    RegIndex pickDest(bool fp);

    /** Record that @p reg now holds a fresh value; handles deadness. */
    void produce(RegIndex reg, bool fp);

    /** Produce a data address according to the memory behaviour. */
    Addr dataAddress();

    /** Produce the next instruction PC (models code footprint). */
    Addr nextPc(bool branchTaken, Addr target);

    /** Generate a branch outcome for branch-site @p site. */
    bool branchOutcome(int site);

    WorkloadProfile prof;
    Rng rng;
    PhaseParams active;
    std::size_t phaseIndex = 0;
    std::uint64_t phaseRemaining = 0;
    std::uint64_t instrCount = 0;

    /** Readable values per class; most recent at the back. */
    std::vector<RegIndex> intPool;
    std::vector<RegIndex> fpPool;

    /** Per-branch-site taken bias in [0,1]. */
    std::vector<double> siteBias;
    /** Per-branch-site fixed target (loops jump to fixed places). */
    std::vector<Addr> siteTarget;

    /** Stream contexts for the address engine. */
    std::vector<Addr> streamPos;
    /**
     * Hot-region bases for the non-streaming accesses: irregular
     * access in real programs still clusters in pages; a working set
     * of bounded regions keeps dTLB behaviour realistic while still
     * stressing the caches.
     */
    std::vector<Addr> hotRegion;
    /** Bytes per hot region. */
    std::uint64_t regionBytes = 8192;

    Addr pc = 0x10000;
    Addr dataBase = 0x10000000;
};

} // namespace avf::trace

#endif // AVF_TRACE_SYNTHETIC_HH
