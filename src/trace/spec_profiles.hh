/**
 * @file
 * Synthetic stand-ins for the eleven SPEC CPU2000 benchmarks the paper
 * evaluates (ammp, art, bzip2, equake, facerec, lucas, mesa, perlbmk,
 * sixtrack, swim, wupwise). Each profile encodes the published
 * character of the benchmark — instruction mix, memory-boundedness,
 * branchiness, dead-value behaviour — plus a phase schedule that makes
 * the AVF move across estimation intervals the way Figure 4 shows.
 *
 * These are substitutions for the IBM Aria trace files (see DESIGN.md
 * section 2): the absolute SPEC numbers are not reproducible without
 * the traces, but the drivers of AVF (occupancy, deadness, ILP,
 * utilization) are modeled per benchmark.
 */

#ifndef AVF_TRACE_SPEC_PROFILES_HH
#define AVF_TRACE_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "trace/workload_profile.hh"

namespace avf::trace
{

/** The eleven benchmark names, in the paper's (alphabetical) order. */
const std::vector<std::string> &specBenchmarkNames();

/**
 * Profile for one benchmark.
 * @param name one of specBenchmarkNames(); fatal() otherwise.
 */
WorkloadProfile specProfile(const std::string &name);

/** All eleven profiles in order. */
std::vector<WorkloadProfile> allSpecProfiles();

} // namespace avf::trace

#endif // AVF_TRACE_SPEC_PROFILES_HH
