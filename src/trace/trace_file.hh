/**
 * @file
 * Binary trace-file format: a small fixed header followed by packed
 * instruction records. Lets users capture a synthetic workload once
 * and replay it exactly (the role SPEC trace files play in the paper).
 */

#ifndef AVF_TRACE_TRACE_FILE_HH
#define AVF_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/trace_source.hh"

namespace avf::trace
{

/** On-disk header of a .avftrace file. */
struct TraceFileHeader
{
    /** Magic constant "AVFT" + version. */
    std::uint32_t magic = 0x41564654; // 'AVFT'
    /** Format version. */
    std::uint32_t version = 1;
    /** Number of instruction records that follow. */
    std::uint64_t count = 0;
};

/** Packed on-disk instruction record (32 bytes). */
struct TraceFileRecord
{
    std::uint64_t pc;
    std::uint64_t effAddr;
    std::int16_t src0;
    std::int16_t src1;
    std::int16_t src2;
    std::int16_t dest;
    std::uint8_t op;
    std::uint8_t memSize;
    std::uint8_t taken;
    std::uint8_t pad[5];
};
static_assert(sizeof(TraceFileRecord) == 32, "record must stay packed");

/** Streams instructions into a trace file. */
class TraceFileWriter
{
  public:
    /**
     * Open @p path for writing; fatal() on failure.
     */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one instruction. */
    void append(const TraceInstruction &instr);

    /** Finalize the header and close; implicit in the destructor. */
    void close();

    /** Records written so far. */
    std::uint64_t count() const { return written; }

  private:
    std::FILE *file = nullptr;
    std::string path;
    std::uint64_t written = 0;
};

/** Replays a trace file as a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /**
     * Open @p path; fatal() on open or format errors.
     * @param loop rewind to the first record at end-of-trace.
     */
    explicit TraceFileReader(const std::string &path, bool loop = false);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    bool next(TraceInstruction &out) override;

    /** Total records in the file. */
    std::uint64_t count() const { return header.count; }

  private:
    std::FILE *file = nullptr;
    std::string path;
    TraceFileHeader header;
    std::uint64_t position = 0;
    bool looping;
};

} // namespace avf::trace

#endif // AVF_TRACE_TRACE_FILE_HH
