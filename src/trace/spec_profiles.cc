#include "trace/spec_profiles.hh"

#include "util/logging.hh"

namespace avf::trace
{

namespace
{

/** Convenience: clone base params and apply a mutation lambda. */
template <typename Fn>
PhaseParams
vary(const PhaseParams &base, Fn &&mutate)
{
    PhaseParams p = base;
    mutate(p);
    return p;
}

WorkloadProfile
makeAmmp()
{
    // ammp: FP molecular dynamics; long, slowly-drifting phases;
    // moderate cache pressure; fairly tight FP dependency chains.
    WorkloadProfile w;
    w.name = "ammp";
    PhaseParams &b = w.base;
    b.fpFrac = 0.55;
    b.fpLoadFrac = 0.55;
    b.loadFrac = 0.27;
    b.storeFrac = 0.09;
    b.branchFrac = 0.08;
    b.deadFrac = 0.14;
    b.depRecency = 0.45;
    b.footprint = 2 * 1024 * 1024;
    b.streamFrac = 0.6;
    b.branchNoise = 0.04;
    w.phases = {
        {b, 28'000'000},
        {vary(b, [](PhaseParams &p) {
            p.fpFrac = 0.35; p.deadFrac = 0.22; p.loadFrac = 0.33;
            p.streamFrac = 0.35;
        }), 18'000'000},
        {vary(b, [](PhaseParams &p) {
            p.fpFrac = 0.62; p.depRecency = 0.6; p.deadFrac = 0.08;
        }), 22'000'000},
    };
    return w;
}

WorkloadProfile
makeArt()
{
    // art: FP neural-net simulation; notoriously memory-bound (large
    // footprint, poor locality); low IPC, long value lifetimes in the
    // IQ while loads miss.
    WorkloadProfile w;
    w.name = "art";
    PhaseParams &b = w.base;
    b.fpFrac = 0.50;
    b.fpLoadFrac = 0.60;
    b.loadFrac = 0.32;
    b.storeFrac = 0.06;
    b.branchFrac = 0.09;
    b.deadFrac = 0.10;
    b.depRecency = 0.35;
    b.footprint = 6 * 1024 * 1024;
    b.streamFrac = 0.35;
    b.branchNoise = 0.02;
    w.phases = {
        {b, 24'000'000},
        {vary(b, [](PhaseParams &p) {
            p.streamFrac = 0.75; p.footprint = 512 * 1024;
            p.deadFrac = 0.18;
        }), 14'000'000},
    };
    return w;
}

WorkloadProfile
makeBzip2()
{
    // bzip2: integer compression; branchy, table-driven, alternating
    // compress/decompress phases with different mixes.
    WorkloadProfile w;
    w.name = "bzip2";
    PhaseParams &b = w.base;
    b.fpFrac = 0.02;
    b.fpLoadFrac = 0.01;
    b.loadFrac = 0.26;
    b.storeFrac = 0.11;
    b.branchFrac = 0.15;
    b.deadFrac = 0.16;
    b.depRecency = 0.40;
    b.footprint = 1 * 1024 * 1024;
    b.streamFrac = 0.5;
    b.branchNoise = 0.04;
    b.numBranchSites = 128;
    w.phases = {
        {b, 20'000'000},
        {vary(b, [](PhaseParams &p) {
            p.branchFrac = 0.10; p.streamFrac = 0.8;
            p.deadFrac = 0.10; p.depRecency = 0.55;
        }), 16'000'000},
        {vary(b, [](PhaseParams &p) {
            p.deadFrac = 0.25; p.loadFrac = 0.31;
        }), 12'000'000},
    };
    return w;
}

WorkloadProfile
makeEquake()
{
    // equake: FP earthquake simulation; sparse-matrix memory bound
    // with irregular access, low FXU utilization but the FXU work that
    // exists is mostly address arithmetic feeding loads (ACE).
    WorkloadProfile w;
    w.name = "equake";
    PhaseParams &b = w.base;
    b.fpFrac = 0.45;
    b.fpLoadFrac = 0.55;
    b.loadFrac = 0.33;
    b.storeFrac = 0.07;
    b.branchFrac = 0.08;
    b.deadFrac = 0.12;
    b.depRecency = 0.40;
    b.footprint = 8 * 1024 * 1024;
    b.streamFrac = 0.45;
    b.branchNoise = 0.03;
    w.phases = {
        {b, 26'000'000},
        {vary(b, [](PhaseParams &p) {
            p.fpFrac = 0.2; p.deadFrac = 0.2; p.footprint = 256 * 1024;
            p.streamFrac = 0.85;
        }), 10'000'000},
    };
    return w;
}

WorkloadProfile
makeFacerec()
{
    // facerec: FP image processing with pronounced phase behaviour
    // (FFT-like passes alternating with correlation passes).
    WorkloadProfile w;
    w.name = "facerec";
    PhaseParams &b = w.base;
    b.fpFrac = 0.50;
    b.fpLoadFrac = 0.50;
    b.loadFrac = 0.28;
    b.storeFrac = 0.08;
    b.branchFrac = 0.07;
    b.deadFrac = 0.12;
    b.depRecency = 0.50;
    b.footprint = 1 * 1024 * 1024;
    b.streamFrac = 0.8;
    b.branchNoise = 0.02;
    w.phases = {
        {b, 14'000'000},
        {vary(b, [](PhaseParams &p) {
            p.fpFrac = 0.65; p.deadFrac = 0.06; p.depRecency = 0.6;
        }), 12'000'000},
        {vary(b, [](PhaseParams &p) {
            p.fpFrac = 0.15; p.deadFrac = 0.3; p.loadFrac = 0.35;
        }), 10'000'000},
    };
    return w;
}

WorkloadProfile
makeLucas()
{
    // lucas: FP number theory (Lucas-Lehmer); highly regular,
    // streaming FFT-style access, high FPU utilization, few branches.
    WorkloadProfile w;
    w.name = "lucas";
    PhaseParams &b = w.base;
    b.fpFrac = 0.62;
    b.fpLoadFrac = 0.70;
    b.loadFrac = 0.26;
    b.storeFrac = 0.10;
    b.branchFrac = 0.04;
    b.deadFrac = 0.08;
    b.depRecency = 0.55;
    b.footprint = 8 * 1024 * 1024;
    b.streamFrac = 0.9;
    b.streamStride = 16;
    b.branchNoise = 0.01;
    w.phases = {
        {b, 32'000'000},
        {vary(b, [](PhaseParams &p) {
            p.footprint = 512 * 1024; p.fpFrac = 0.55;
            p.deadFrac = 0.13;
        }), 16'000'000},
    };
    return w;
}

WorkloadProfile
makeMesa()
{
    // mesa: software 3D rendering; mixed int/FP with strong phase
    // swings (geometry vs rasterization) — the left column of
    // Figure 4, where AVF oscillates substantially.
    WorkloadProfile w;
    w.name = "mesa";
    PhaseParams &b = w.base;
    b.fpFrac = 0.35;
    b.fpLoadFrac = 0.35;
    b.loadFrac = 0.25;
    b.storeFrac = 0.12;
    b.branchFrac = 0.11;
    b.deadFrac = 0.18;
    b.depRecency = 0.42;
    b.footprint = 512 * 1024;
    b.streamFrac = 0.65;
    b.branchNoise = 0.05;
    w.phases = {
        {b, 11'000'000},
        {vary(b, [](PhaseParams &p) {
            p.fpFrac = 0.55; p.deadFrac = 0.07; p.depRecency = 0.6;
            p.branchFrac = 0.06;
        }), 9'000'000},
        {vary(b, [](PhaseParams &p) {
            p.fpFrac = 0.08; p.deadFrac = 0.32; p.branchFrac = 0.16;
            p.loadFrac = 0.3;
        }), 8'000'000},
        {vary(b, [](PhaseParams &p) {
            p.fpFrac = 0.45; p.deadFrac = 0.12; p.footprint = 3 * 1024 * 1024;
            p.streamFrac = 0.3;
        }), 9'000'000},
    };
    return w;
}

WorkloadProfile
makePerlbmk()
{
    // perlbmk: perl interpreter; very branchy integer code with many
    // speculatively-computed and quickly-dead values — the benchmark
    // where the paper's utilization-based FXU estimate errs by > 0.16
    // because busy != ACE.
    WorkloadProfile w;
    w.name = "perlbmk";
    PhaseParams &b = w.base;
    b.fpFrac = 0.01;
    b.fpLoadFrac = 0.01;
    b.loadFrac = 0.27;
    b.storeFrac = 0.13;
    b.branchFrac = 0.18;
    b.deadFrac = 0.38;
    b.depRecency = 0.30;
    b.footprint = 768 * 1024;
    b.streamFrac = 0.3;
    b.branchNoise = 0.05;
    b.numBranchSites = 256;
    w.phases = {
        {b, 18'000'000},
        {vary(b, [](PhaseParams &p) {
            p.deadFrac = 0.25; p.branchFrac = 0.13;
            p.depRecency = 0.45;
        }), 12'000'000},
    };
    return w;
}

WorkloadProfile
makeSixtrack()
{
    // sixtrack: particle-accelerator tracking; dense FP compute,
    // small working set, high IPC, almost everything ACE.
    WorkloadProfile w;
    w.name = "sixtrack";
    PhaseParams &b = w.base;
    b.fpFrac = 0.65;
    b.fpLoadFrac = 0.70;
    b.loadFrac = 0.22;
    b.storeFrac = 0.08;
    b.branchFrac = 0.05;
    b.deadFrac = 0.05;
    b.depRecency = 0.55;
    b.footprint = 128 * 1024;
    b.streamFrac = 0.85;
    b.branchNoise = 0.01;
    w.phases = {
        {b, 36'000'000},
        {vary(b, [](PhaseParams &p) {
            p.fpFrac = 0.45; p.deadFrac = 0.12;
        }), 12'000'000},
    };
    return w;
}

WorkloadProfile
makeSwim()
{
    // swim: shallow-water modeling; classic streaming FP kernel,
    // memory bandwidth bound, long stretches of identical behaviour.
    WorkloadProfile w;
    w.name = "swim";
    PhaseParams &b = w.base;
    b.fpFrac = 0.58;
    b.fpLoadFrac = 0.75;
    b.loadFrac = 0.30;
    b.storeFrac = 0.12;
    b.branchFrac = 0.03;
    b.deadFrac = 0.07;
    b.depRecency = 0.50;
    b.footprint = 16 * 1024 * 1024;
    b.streamFrac = 0.95;
    b.streamStride = 8;
    b.numStreams = 6;
    b.branchNoise = 0.01;
    w.phases = {
        {b, 28'000'000},
        {vary(b, [](PhaseParams &p) {
            p.storeFrac = 0.2; p.loadFrac = 0.22; p.fpFrac = 0.5;
        }), 14'000'000},
    };
    return w;
}

WorkloadProfile
makeWupwise()
{
    // wupwise: lattice-QCD; FP dominated with moderate deadness from
    // complex-arithmetic temporaries (utilization overestimates AVF
    // by ~0.1 in the paper).
    WorkloadProfile w;
    w.name = "wupwise";
    PhaseParams &b = w.base;
    b.fpFrac = 0.55;
    b.fpLoadFrac = 0.60;
    b.loadFrac = 0.26;
    b.storeFrac = 0.09;
    b.branchFrac = 0.06;
    b.deadFrac = 0.24;
    b.depRecency = 0.45;
    b.footprint = 4 * 1024 * 1024;
    b.streamFrac = 0.7;
    b.branchNoise = 0.02;
    w.phases = {
        {b, 22'000'000},
        {vary(b, [](PhaseParams &p) {
            p.deadFrac = 0.12; p.fpFrac = 0.65; p.streamFrac = 0.85;
        }), 16'000'000},
    };
    return w;
}

} // namespace

const std::vector<std::string> &
specBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "ammp", "art", "bzip2", "equake", "facerec", "lucas",
        "mesa", "perlbmk", "sixtrack", "swim", "wupwise",
    };
    return names;
}

WorkloadProfile
specProfile(const std::string &name)
{
    if (name == "ammp") return makeAmmp();
    if (name == "art") return makeArt();
    if (name == "bzip2") return makeBzip2();
    if (name == "equake") return makeEquake();
    if (name == "facerec") return makeFacerec();
    if (name == "lucas") return makeLucas();
    if (name == "mesa") return makeMesa();
    if (name == "perlbmk") return makePerlbmk();
    if (name == "sixtrack") return makeSixtrack();
    if (name == "swim") return makeSwim();
    if (name == "wupwise") return makeWupwise();
    fatal("unknown SPEC profile '%s'", name.c_str());
}

std::vector<WorkloadProfile>
allSpecProfiles()
{
    std::vector<WorkloadProfile> out;
    for (const auto &name : specBenchmarkNames())
        out.push_back(specProfile(name));
    return out;
}

} // namespace avf::trace
