#include "trace/synthetic.hh"

#include <algorithm>

#include "util/logging.hh"

namespace avf::trace
{

namespace
{

/** Pool entries older than this are dropped (values long dead). */
constexpr std::size_t maxPoolDepth = 48;

} // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(WorkloadProfile profile)
    : prof(std::move(profile)),
      rng(prof.seed ? prof.seed : hashString(prof.name)),
      active(prof.base)
{
    if (!prof.phases.empty()) {
        active = prof.phases[0].params;
        phaseRemaining = prof.phases[0].lengthInstrs;
    }
    siteBias.resize(std::max(active.numBranchSites, 1));
    for (auto &bias : siteBias) {
        // Mixture of strongly-biased and wavering branch sites
        // (most static branches in real code are heavily biased).
        if (rng.chance(0.85))
            bias = rng.chance(0.55) ? 0.96 : 0.04;
        else
            bias = 0.3 + 0.4 * rng.uniform();
    }
    std::uint64_t code = std::max<std::uint64_t>(
        active.codeFootprint, 256);
    siteTarget.resize(siteBias.size());
    for (auto &target : siteTarget)
        target = 0x10000 + (rng.below(code) & ~Addr(3));

    streamPos.resize(std::max(active.numStreams, 1));
    for (std::size_t i = 0; i < streamPos.size(); ++i)
        streamPos[i] = dataBase + i * (active.footprint /
                                       streamPos.size());

    // Hot regions for the irregular accesses: bounded-size regions
    // spread over the footprint, relocated slowly.
    regionBytes = std::clamp<std::uint64_t>(active.footprint / 64,
                                            4096, 16384);
    std::uint64_t region_span = std::max<std::uint64_t>(
        active.footprint > regionBytes ? active.footprint - regionBytes
                                       : 1,
        1);
    hotRegion.resize(24);
    for (auto &base : hotRegion)
        base = dataBase + rng.below(region_span);
    // Seed the pools so the first instructions have sources to read:
    // low registers model long-lived pointers/loop counters. Each
    // pool is trimmed to maxPoolDepth, so reserving one extra slot
    // keeps produce() off the allocator for good.
    intPool.reserve(maxPoolDepth + 1);
    fpPool.reserve(maxPoolDepth + 1);
    for (RegIndex r = 0; r < 6; ++r)
        intPool.push_back(r);
    for (RegIndex r = numArchIntRegs; r < numArchIntRegs + 6; ++r)
        fpPool.push_back(r);
}

void
SyntheticTraceGenerator::updatePhase()
{
    if (prof.phases.empty())
        return;
    if (phaseRemaining > 0) {
        --phaseRemaining;
        return;
    }
    phaseIndex = (phaseIndex + 1) % prof.phases.size();
    active = prof.phases[phaseIndex].params;
    phaseRemaining = prof.phases[phaseIndex].lengthInstrs;
    if (phaseRemaining > 0)
        --phaseRemaining;
}

RegIndex
SyntheticTraceGenerator::pickSource(bool fp)
{
    RegIndex base = fp ? static_cast<RegIndex>(numArchIntRegs)
                       : static_cast<RegIndex>(0);
    // Real code constantly re-reads long-lived pointers and loop
    // counters; model that with a fixed share of reads hitting the
    // low registers of each class.
    if (rng.chance(0.10))
        return base + static_cast<RegIndex>(rng.below(4));
    auto &pool = fp ? fpPool : intPool;
    if (pool.empty())
        return base; // nothing readable: fall back to a stable reg
    std::uint64_t depth = rng.geometric(active.depRecency,
                                        pool.size() - 1);
    return pool[pool.size() - 1 - depth];
}

RegIndex
SyntheticTraceGenerator::pickDest(bool fp)
{
    // Registers 0..3 of each class are long-lived (pointers, loop
    // counters) and are rarely overwritten; the rest are picked
    // uniformly, which yields geometric value lifetimes.
    bool longLived = rng.chance(0.02);
    RegIndex base = fp ? numArchIntRegs : 0;
    if (longLived)
        return base + static_cast<RegIndex>(rng.below(4));
    return base + 4 + static_cast<RegIndex>(
        rng.below(numArchIntRegs - 4));
}

void
SyntheticTraceGenerator::produce(RegIndex reg, bool fp)
{
    auto &pool = fp ? fpPool : intPool;
    // The old value in this register is gone either way.
    pool.erase(std::remove(pool.begin(), pool.end(), reg), pool.end());
    // Dead values never enter the readable pool: no later instruction
    // will source them, so they are pure architectural masking.
    // `pool` aliases intPool/fpPool, both reserved to maxPoolDepth+1
    // in the constructor.
    if (!rng.chance(active.deadFrac))
        pool.push_back(reg); // avflint: allow(hot-path-alloc)
    if (pool.size() > maxPoolDepth)
        pool.erase(pool.begin(),
                   pool.begin() + static_cast<std::ptrdiff_t>(
                       pool.size() - maxPoolDepth));
}

Addr
SyntheticTraceGenerator::dataAddress()
{
    std::uint64_t footprint = std::max<std::uint64_t>(
        active.footprint, 128);
    if (rng.chance(active.streamFrac)) {
        std::size_t which = rng.below(streamPos.size());
        Addr addr = streamPos[which];
        streamPos[which] += active.streamStride;
        if (streamPos[which] >= dataBase + footprint)
            streamPos[which] = dataBase + rng.below(footprint / 2);
        return addr & ~Addr(7);
    }
    // Irregular access clusters in a slowly-drifting working set of
    // hot regions (page-local, like real pointer-chasing code).
    std::size_t which = rng.below(hotRegion.size());
    if (rng.chance(0.0005)) {
        std::uint64_t region_span = footprint > regionBytes
            ? footprint - regionBytes
            : 1;
        hotRegion[which] = dataBase + rng.below(region_span);
    }
    return (hotRegion[which] + rng.below(regionBytes)) & ~Addr(7);
}

Addr
SyntheticTraceGenerator::nextPc(bool branchTaken, Addr target)
{
    if (branchTaken)
        pc = target;
    else
        pc += 4;
    return pc;
}

bool
SyntheticTraceGenerator::branchOutcome(int site)
{
    double bias = siteBias[static_cast<std::size_t>(site) %
                           siteBias.size()];
    bool outcome = rng.chance(bias);
    if (rng.chance(active.branchNoise))
        outcome = !outcome;
    return outcome;
}

bool
SyntheticTraceGenerator::next(TraceInstruction &out)
{
    updatePhase();
    ++instrCount;

    out = TraceInstruction{};
    out.pc = pc;

    double draw = rng.uniform();
    double acc = active.loadFrac;
    bool advance_taken = false;
    Addr advance_target = 0;

    if (draw < acc) {
        // ---- load ----
        bool fp_dest = rng.chance(active.fpLoadFrac);
        out.op = OpClass::Load;
        out.src[0] = pickSource(false); // address base register
        out.effAddr = dataAddress();
        out.dest = pickDest(fp_dest);
        produce(out.dest, fp_dest);
    } else if (draw < (acc += active.storeFrac)) {
        // ---- store ----
        out.op = OpClass::Store;
        bool fp_data = rng.chance(active.fpFrac);
        out.src[0] = pickSource(fp_data); // data
        out.src[1] = pickSource(false);   // address base
        out.effAddr = dataAddress();
    } else if (draw < (acc += active.branchFrac)) {
        // ---- branch ----
        int site = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(std::max(
                active.numBranchSites, 1))));
        bool uncond = rng.chance(active.uncondFrac);
        out.op = uncond ? OpClass::BranchUncond : OpClass::BranchCond;
        // Branch PC is the site address so the predictor sees stable
        // static branches.
        out.pc = 0x10000 + static_cast<Addr>(site) * 4;
        if (!uncond) {
            out.src[0] = pickSource(false);
            out.taken = branchOutcome(site);
        } else {
            out.taken = true;
        }
        // Branches jump to their site's fixed target (loops and
        // calls return to the same places), which keeps the I-cache
        // behaviour realistic.
        out.effAddr = siteTarget[static_cast<std::size_t>(site) %
                                 siteTarget.size()];
        advance_taken = out.taken;
        advance_target = out.effAddr;
    } else if (draw < (acc += active.nopFrac)) {
        out.op = OpClass::Nop;
    } else {
        // ---- compute ----
        bool fp = rng.chance(active.fpFrac);
        if (fp) {
            out.op = rng.chance(active.fpDivFrac) ? OpClass::FpDiv
                                                  : OpClass::FpAlu;
            out.src[0] = pickSource(true);
            out.src[1] = pickSource(true);
        } else {
            double sub = rng.uniform();
            if (sub < active.intDivFrac)
                out.op = OpClass::IntDiv;
            else if (sub < active.intDivFrac + active.intMulFrac)
                out.op = OpClass::IntMul;
            else
                out.op = OpClass::IntAlu;
            out.src[0] = pickSource(false);
            out.src[1] = pickSource(false);
        }
        out.dest = pickDest(fp);
        produce(out.dest, fp);
    }

    nextPc(advance_taken, advance_target);
    return true;
}

} // namespace avf::trace
