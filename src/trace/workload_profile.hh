/**
 * @file
 * Parameter set describing a synthetic workload. Each of the paper's
 * eleven SPEC CPU2000 benchmarks is modeled as a profile: an
 * instruction mix, a dependency/deadness structure, branch behaviour,
 * a memory footprint, and a schedule of phases that modulate those
 * parameters over time (this is what makes AVF vary across intervals,
 * as in Figure 4 of the paper).
 */

#ifndef AVF_TRACE_WORKLOAD_PROFILE_HH
#define AVF_TRACE_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace avf::trace
{

/** Tunable workload parameters; one set is active at a time. */
struct PhaseParams
{
    // --- instruction mix (fractions of all instructions; the
    //     remainder after load/store/branch/nop is compute) ---
    /** Fraction of instructions that are loads. */
    double loadFrac = 0.25;
    /** Fraction of instructions that are stores. */
    double storeFrac = 0.10;
    /** Fraction of instructions that are branches. */
    double branchFrac = 0.12;
    /** Fraction of instructions that are nops. */
    double nopFrac = 0.02;
    /** Of compute instructions, fraction executed on the FPU. */
    double fpFrac = 0.10;
    /** Of integer compute, fraction that are multiplies. */
    double intMulFrac = 0.06;
    /** Of integer compute, fraction that are divides. */
    double intDivFrac = 0.01;
    /** Of FP compute, fraction that are divides. */
    double fpDivFrac = 0.03;
    /** Of loads, fraction whose destination is an FP register. */
    double fpLoadFrac = 0.10;

    // --- dataflow structure ---
    /**
     * Probability that a produced value is dead (never read before
     * being overwritten). Dead values are architecture-level masking:
     * a fault in them cannot matter. Primary driver of the
     * utilization-vs-AVF gap for FXU/FPU.
     */
    double deadFrac = 0.15;
    /**
     * Recency parameter of the geometric draw used to pick source
     * values: higher means tighter dependency chains (less ILP, longer
     * register lifetimes, higher REG AVF).
     */
    double depRecency = 0.35;

    // --- control flow ---
    /** Base probability a conditional branch is taken. */
    double takenBias = 0.6;
    /**
     * Probability that a branch outcome deviates from its per-PC bias;
     * drives the achievable branch-prediction accuracy.
     */
    double branchNoise = 0.05;
    /** Number of distinct static branch sites. */
    int numBranchSites = 64;
    /** Fraction of branches that are unconditional. */
    double uncondFrac = 0.15;

    // --- memory behaviour ---
    /** Data footprint in bytes (controls cache miss rates). */
    std::uint64_t footprint = 256 * 1024;
    /** Fraction of memory accesses that follow streaming strides. */
    double streamFrac = 0.7;
    /** Stride in bytes for the streaming accesses. */
    std::uint32_t streamStride = 8;
    /** Number of concurrent stream contexts. */
    int numStreams = 4;
    /** Number of distinct instruction-fetch regions (I-cache reach). */
    std::uint64_t codeFootprint = 16 * 1024;
};

/** One phase: a parameter set active for a stretch of instructions. */
struct WorkloadPhase
{
    /** Parameters in force during this phase. */
    PhaseParams params;
    /** Phase length in dynamic instructions. */
    std::uint64_t lengthInstrs = 20'000'000;
};

/**
 * A complete synthetic workload: named, seeded, and phased. When the
 * phase list is empty the base parameters run forever; otherwise the
 * schedule cycles through the phases.
 */
struct WorkloadProfile
{
    /** Benchmark name (also the default seed source). */
    std::string name = "generic";
    /** PRNG seed; 0 means "derive from the name". */
    std::uint64_t seed = 0;
    /** Parameters used when no phase is active / list is empty. */
    PhaseParams base;
    /** Cyclic phase schedule. */
    std::vector<WorkloadPhase> phases;
};

} // namespace avf::trace

#endif // AVF_TRACE_WORKLOAD_PROFILE_HH
