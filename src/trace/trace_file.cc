#include "trace/trace_file.hh"

#include <cstring>

#include "util/logging.hh"

namespace avf::trace
{

TraceFileWriter::TraceFileWriter(const std::string &path)
    : path(path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    // Reserve header space; rewritten with the true count on close().
    TraceFileHeader header;
    if (std::fwrite(&header, sizeof(header), 1, file) != 1)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::append(const TraceInstruction &instr)
{
    avf_assert(file != nullptr, "append() after close()");
    TraceFileRecord rec{};
    rec.pc = instr.pc;
    rec.effAddr = instr.effAddr;
    rec.src0 = instr.src[0];
    rec.src1 = instr.src[1];
    rec.src2 = instr.src[2];
    rec.dest = instr.dest;
    rec.op = static_cast<std::uint8_t>(instr.op);
    rec.memSize = instr.memSize;
    rec.taken = instr.taken ? 1 : 0;
    if (std::fwrite(&rec, sizeof(rec), 1, file) != 1)
        fatal("short write while appending trace record to '%s'",
              path.c_str());
    ++written;
}

void
TraceFileWriter::close()
{
    if (!file)
        return;
    // Every step checked: a silently failed seek would splice the
    // header into the record stream, a failed close would leave the
    // count unflushed — either way readers see a corrupt trace, so
    // die here, where the path is known.
    TraceFileHeader header;
    header.count = written;
    if (std::fseek(file, 0, SEEK_SET) != 0)
        fatal("cannot seek to trace header in '%s'", path.c_str());
    if (std::fwrite(&header, sizeof(header), 1, file) != 1)
        fatal("cannot finalize trace header in '%s'", path.c_str());
    if (std::fclose(file) != 0) {
        file = nullptr;
        fatal("error closing trace file '%s'", path.c_str());
    }
    file = nullptr;
}

TraceFileReader::TraceFileReader(const std::string &path, bool loop)
    : path(path), looping(loop)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());
    if (std::fread(&header, sizeof(header), 1, file) != 1)
        fatal("cannot read trace header from '%s'", path.c_str());
    if (header.magic != TraceFileHeader().magic)
        fatal("'%s' is not an AVF trace file", path.c_str());
    if (header.version != TraceFileHeader().version)
        fatal("unsupported trace version %u in '%s'",
              header.version, path.c_str());
}

TraceFileReader::~TraceFileReader()
{
    // Read-only stream: close failure cannot lose data, and a
    // destructor must not throw or fatal().
    if (file)
        (void)std::fclose(file);
}

bool
TraceFileReader::next(TraceInstruction &out)
{
    if (position >= header.count) {
        if (!looping || header.count == 0)
            return false;
        if (std::fseek(file, sizeof(TraceFileHeader), SEEK_SET) != 0)
            fatal("cannot rewind trace file '%s'", path.c_str());
        position = 0;
    }
    TraceFileRecord rec;
    if (std::fread(&rec, sizeof(rec), 1, file) != 1)
        fatal("truncated trace file '%s' (record %llu of %llu)",
              path.c_str(),
              static_cast<unsigned long long>(position),
              static_cast<unsigned long long>(header.count));
    ++position;
    out.pc = rec.pc;
    out.effAddr = rec.effAddr;
    out.src = {rec.src0, rec.src1, rec.src2};
    out.dest = rec.dest;
    out.op = static_cast<OpClass>(rec.op);
    out.memSize = rec.memSize;
    out.taken = rec.taken != 0;
    return true;
}

} // namespace avf::trace
