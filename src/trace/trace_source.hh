/**
 * @file
 * Abstract supplier of dynamic instructions to the CPU model, plus the
 * trivial in-memory implementation used heavily by the tests.
 */

#ifndef AVF_TRACE_TRACE_SOURCE_HH
#define AVF_TRACE_TRACE_SOURCE_HH

#include <cstddef>
#include <vector>

#include "trace/instruction.hh"

namespace avf::trace
{

/**
 * A stream of dynamic instructions. Sources may be finite (trace
 * files, test vectors) or effectively infinite (synthetic generators).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction.
     *
     * @param out filled with the next instruction on success.
     * @return false when the stream is exhausted.
     */
    virtual bool next(TraceInstruction &out) = 0;
};

/** Replays a fixed vector of instructions, optionally in a loop. */
class VectorTraceSource : public TraceSource
{
  public:
    /**
     * @param instrs instructions to replay.
     * @param loop when true, wraps around forever.
     */
    explicit VectorTraceSource(std::vector<TraceInstruction> instrs,
                               bool loop = false)
        : instructions(std::move(instrs)), looping(loop)
    {}

    bool
    next(TraceInstruction &out) override
    {
        if (position >= instructions.size()) {
            if (!looping || instructions.empty())
                return false;
            position = 0;
        }
        out = instructions[position++];
        return true;
    }

    /** Restart from the beginning. */
    void rewind() { position = 0; }

  private:
    std::vector<TraceInstruction> instructions;
    bool looping;
    std::size_t position = 0;
};

} // namespace avf::trace

#endif // AVF_TRACE_TRACE_SOURCE_HH
