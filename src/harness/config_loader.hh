/**
 * @file
 * Build an ExperimentConfig from an INI-style file, so machines and
 * workloads can be explored without recompiling. Recognized sections
 * and keys (all optional; defaults = Table 1 and M = N = 1000):
 *
 *   [experiment] benchmark=mesa intervals=100 lookahead=32768
 *   [online]     m=1000 n=1000 randomize=false seed=12345
 *   [cpu]        fetch_width, dispatch_width, retire_width,
 *                rob_entries, intls_iq, fp_iq, br_iq, fxu, fpu, lsu,
 *                bru, int_regs, fp_regs, store_queue, fetch_buffer,
 *                redirect_penalty, predictor_bits, history_bits
 *   [mem]        l1d_kb, l1d_ways, l1i_kb, l1i_ways, l2_kb, l2_ways,
 *                line_bytes, l1_lat, l2_lat, mem_lat, tlb_entries,
 *                tlb_penalty
 *   [lifecycle]  enabled=false max_records=2048 latency_bins=50
 *                hop_bins=32 (injection-lifecycle tracing; see
 *                obs/lifecycle.hh)
 *   [workload]   (overrides applied on top of the named benchmark's
 *                profile) load_frac, store_frac, branch_frac,
 *                fp_frac, dead_frac, dep_recency, footprint_kb,
 *                stream_frac, branch_noise, seed
 *
 * Unknown keys are reported via warn() so typos do not silently do
 * nothing.
 */

#ifndef AVF_HARNESS_CONFIG_LOADER_HH
#define AVF_HARNESS_CONFIG_LOADER_HH

#include <string>

#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "util/keyvalue.hh"

namespace avf::harness
{

/** Parse @p path into an ExperimentConfig; fatal() on bad values. */
ExperimentConfig loadExperimentConfig(const std::string &path);

/** Same, from already-parsed key/values (tests). */
ExperimentConfig loadExperimentConfig(const KeyValueFile &file);

/**
 * Resolve campaign RunOptions once, here, instead of scattering
 * env-var reads through every bench. The explicit struct is the
 * contract; the environment variables are documented fallbacks:
 *
 *   AVF_INTERVALS=<n>  interval count (must be a positive integer)
 *   AVF_LANES=<n>      concurrent injection windows per estimator
 *                      (1..64; default 64). 1 = the paper's serial
 *                      Algorithm 1, byte-identical to historical
 *                      campaign output; 64 saturates the error-plane
 *                      word (see core/injection_port.hh)
 *   AVF_FAST=1         smoke mode: shrink intervals to 12 (wins over
 *                      AVF_INTERVALS; accepts 1/true/yes/on and
 *                      0/false/no/off)
 *   AVF_LIFECYCLE=1    injection-lifecycle tracing (obs/lifecycle.hh):
 *                      benches enable ExperimentConfig::lifecycle on
 *                      every task, report outcome digests, and export
 *                      the JSONL record stream (same boolean syntax
 *                      as AVF_FAST)
 *   AVF_METRICS=<p>    metrics layer (obs/metrics.hh): enable
 *                      ExperimentConfig::metrics on every task and
 *                      write <p>_METRICS.json plus <p>_TRACE.json
 *                      per campaign (see export.hh:
 *                      exportCampaignMetrics). The value is a path
 *                      prefix; whitespace/control characters are
 *                      rejected.
 *   AVF_MTTF_BUDGET_HOURS=<h>
 *                      closed-loop control (control/
 *                      throttle_controller.hh): arm the budget-mode
 *                      controller on every task with an MTTF budget
 *                      of <h> hours (strict positive number; junk,
 *                      zero, or negative is fatal()). Unset keeps
 *                      the control loop fully disabled and campaign
 *                      stdout byte-identical to uncontrolled runs.
 *   AVF_TAIL_POLL_MS=<ms>
 *                      `avf-report tail --follow` poll period in
 *                      milliseconds (1..60000, default 200; see
 *                      tailPollMsFromEnv()). Display-side only:
 *                      never touches simulation output.
 *
 * Malformed values — non-numeric, negative, or zero AVF_INTERVALS,
 * unrecognized AVF_FAST / AVF_LIFECYCLE, malformed AVF_METRICS — are
 * rejected with fatal() instead of being silently ignored. Worker-thread count has NO env
 * var by design: override RunOptions::threads in code.
 *
 * @param paperDefaultIntervals interval count when no override is
 *        present (the paper uses 100-200 depending on the figure).
 */
RunOptions loadRunOptions(int paperDefaultIntervals = 100);

/**
 * Resolve AVF_LANES alone (1..64, default 64; fatal() outside that
 * range or non-numeric) — for benches that build RunOptions by hand
 * instead of through loadRunOptions().
 */
int lanesFromEnv();

/**
 * Resolve AVF_TAIL_POLL_MS: the `avf-report tail --follow` poll
 * period in milliseconds (strict positive integer, 1..60000; junk is
 * fatal()). Default 200 ms. Lives here so every env knob flows
 * through the same strict loader (avflint's env-knob discipline).
 */
int tailPollMsFromEnv();

} // namespace avf::harness

#endif // AVF_HARNESS_CONFIG_LOADER_HH
