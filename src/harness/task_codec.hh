/**
 * @file
 * Wire codec for engine task results — the serve layer's process
 * boundary. A forked worker encodes each finished TaskResult as one
 * line of strict JSON; the parent decodes it with the util/json
 * parser and merges in submission order, exactly as the in-process
 * engine would.
 *
 * Byte-identity contract: doubles are printed with %.17g, which
 * strtod() parses back to the identical bit pattern, so a value that
 * crosses the wire equals the value that did not. The serve sharder
 * leans on this the other way around: it routes EVERY result through
 * the codec — even at one worker process — so the feed bytes are the
 * same at any shard count by construction, not by accident.
 *
 * Deliberately partial: the codec carries the deterministic fields
 * (result payload, estimator states, metrics snapshot, error text)
 * and drops the wall-clock side channel (wallMs/startNs/endNs/worker)
 * and the exception pointer, which cannot cross a process boundary
 * and must never influence deterministic output anyway.
 */

#ifndef AVF_HARNESS_TASK_CODEC_HH
#define AVF_HARNESS_TASK_CODEC_HH

#include <string>
#include <string_view>

#include "harness/engine.hh"
#include "util/json.hh"

namespace avf::harness::codec
{

/** Codec schema tag, first key of every encoded line. */
inline constexpr std::string_view taskCodecVersion = "avf-task-v1";

/** Append @p value as %.17g (round-trip exact) to @p out. */
void appendExactDouble(std::string &out, double value);

/**
 * Append one estimator state as a JSON object (fixed key order:
 * name, counters, values, estimates). Shared by the task wire format
 * and the serve checkpoint writer so both serialize states to the
 * same bytes.
 */
void appendEstimatorState(std::string &out,
                          const core::EstimatorState &state);

/** Decode an object written by appendEstimatorState(). */
bool decodeEstimatorState(const json::Value &value,
                          core::EstimatorState &out,
                          std::string &errorOut);

/**
 * Append a metrics snapshot as a JSON object (counters, gauges,
 * histograms, series; registration order preserved).
 */
void appendMetricsSnapshot(std::string &out,
                           const obs::MetricsSnapshot &metrics);

/** Decode an object written by appendMetricsSnapshot(); sets
 *  out.enabled = true. */
bool decodeMetricsSnapshot(const json::Value &value,
                           obs::MetricsSnapshot &out,
                           std::string &errorOut);

/**
 * Append an attribution snapshot as a JSON object: unit names in
 * registration order, rows as compact 7-number arrays
 * [unit, phase, pc, op, windows, live, failures] in canonical order.
 */
void appendAttributionSnapshot(std::string &out,
                               const obs::AttributionSnapshot &attr);

/** Decode an object written by appendAttributionSnapshot(); sets
 *  out.enabled = true. */
bool decodeAttributionSnapshot(const json::Value &value,
                               obs::AttributionSnapshot &out,
                               std::string &errorOut);

/**
 * Encode one task as a single line of JSON (no trailing newline).
 * The task's result is encoded in full when ok(); a failed task
 * carries only its error text.
 */
std::string encodeTaskResult(const TaskResult &task);

/**
 * Decode a line produced by encodeTaskResult().
 *
 * @param line one encoded task, without the newline.
 * @param out receives the task on success; unspecified on failure.
 * @param errorOut receives a diagnostic on failure.
 * @return true on success.
 */
bool decodeTaskResult(std::string_view line, TaskResult &out,
                      std::string &errorOut);

} // namespace avf::harness::codec

#endif // AVF_HARNESS_TASK_CODEC_HH
