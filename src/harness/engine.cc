#include "harness/engine.hh"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/random.hh"

namespace avf::harness
{

ExperimentEngine::ExperimentEngine(RunOptions options)
    : opts(options), pool(options.threads)
{
}

ExperimentEngine::~ExperimentEngine()
{
    // Let in-flight tasks finish; abandoning them would leave workers
    // writing into freed slots.
    pool.wait();
}

unsigned
ExperimentEngine::threadCount() const
{
    return static_cast<unsigned>(pool.size());
}

void
ExperimentEngine::onTaskDone(ProgressFn callback)
{
    progress = std::move(callback);
}

std::size_t
ExperimentEngine::submit(std::string name, ExperimentConfig config)
{
    if (opts.seedSalt != 0) {
        // Seeds derive from the submission index, never from
        // scheduling order, so re-seeded campaigns stay deterministic
        // at any thread count.
        Rng derive(opts.seedSalt ^
                   (0x9e3779b97f4a7c15ull * (batch.size() + 1)));
        config.profile.seed = derive.next();
        config.online.seed = derive.next();
    }
    return submit(std::move(name),
                  [config = std::move(config)] {
                      return detail::runExperimentDirect(config);
                  });
}

std::size_t
ExperimentEngine::submit(std::string name, TaskFn task)
{
    std::size_t index = batch.size();
    batch.emplace_back();
    TaskResult &slot = batch.back();
    slot.index = index;
    slot.name = std::move(name);
    pool.submit([this, &slot, task = std::move(task)] {
        runTask(slot, task);
    });
    return index;
}

void
ExperimentEngine::runTask(TaskResult &slot, const TaskFn &task)
{
    // Wall time feeds only the wallMs progress metric, never the
    // experiment results. avflint: allow(determinism)
    auto start = std::chrono::steady_clock::now();
    try {
        slot.result = task();
    } catch (const std::exception &e) {
        slot.errorText = e.what();
        slot.exception = std::current_exception();
    } catch (...) {
        slot.errorText = "unknown exception";
        slot.exception = std::current_exception();
    }
    slot.wallMs = std::chrono::duration<double, std::milli>(
                      // Wall-clock side-channel again: wallMs only.
                      // avflint: allow(determinism)
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (progress) {
        std::lock_guard<std::mutex> lock(progressMutex);
        progress(slot.name, slot.wallMs,
                 slot.ok() ? slot.result.summary : RunSummary{});
    }
}

std::vector<TaskResult>
ExperimentEngine::collect()
{
    pool.wait();
    std::vector<TaskResult> out;
    out.reserve(batch.size());
    for (auto &slot : batch)
        out.push_back(std::move(slot));
    batch.clear();
    return out;
}

std::vector<TaskResult>
runCampaign(
    const std::vector<std::pair<std::string, ExperimentConfig>> &tasks,
    RunOptions options, ExperimentEngine::ProgressFn progress)
{
    ExperimentEngine engine(options);
    if (progress)
        engine.onTaskDone(std::move(progress));
    for (const auto &[name, config] : tasks)
        engine.submit(name, config);
    return engine.collect();
}

} // namespace avf::harness
