#include "harness/engine.hh"

#include <stdexcept>
#include <utility>

#include "util/random.hh"
#include "util/timing.hh"

namespace avf::harness
{

ExperimentEngine::ExperimentEngine(RunOptions options)
    : opts(options), pool(options.threads)
{
}

ExperimentEngine::~ExperimentEngine()
{
    // Let in-flight tasks finish; abandoning them would leave workers
    // writing into freed slots.
    pool.wait();
}

unsigned
ExperimentEngine::threadCount() const
{
    return static_cast<unsigned>(pool.size());
}

ThreadPool::PoolStats
ExperimentEngine::poolStats() const
{
    return pool.stats();
}

void
ExperimentEngine::onTaskDone(ProgressFn callback)
{
    progress = std::move(callback);
}

void
deriveTaskSeeds(ExperimentConfig &config, std::uint64_t salt,
                std::size_t index)
{
    // Seeds derive from the submission index, never from scheduling
    // order, so re-seeded campaigns stay deterministic at any thread
    // (or, through the serve sharder, process) count.
    Rng derive(salt ^ (0x9e3779b97f4a7c15ull * (index + 1)));
    config.profile.seed = derive.next();
    config.online.seed = derive.next();
}

std::size_t
ExperimentEngine::submit(std::string name, ExperimentConfig config)
{
    if (opts.seedSalt != 0)
        deriveTaskSeeds(config, opts.seedSalt, batch.size());
    // A campaign-level metrics prefix opts every task in; a config
    // that already asked for metrics keeps them either way.
    if (!opts.metricsPrefix.empty())
        config.metrics = true;
    // A campaign-level MTTF budget arms the control loop on every
    // task; a config that already configured control keeps its own
    // (more specific) settings untouched.
    if (opts.mttfBudgetHours > 0.0 && !config.control.enabled) {
        config.control.enabled = true;
        config.control.mttfBudgetHours = opts.mttfBudgetHours;
    }
    // lanes=0 means "inherit the campaign's lane count"; a config
    // with an explicit lane count keeps it.
    if (config.online.lanes == 0)
        config.online.lanes = opts.lanes;
    return submit(std::move(name),
                  [config = std::move(config)] {
                      return detail::runExperimentDirect(config);
                  });
}

std::size_t
ExperimentEngine::submit(std::string name, TaskFn task)
{
    std::size_t index = batch.size();
    batch.emplace_back();
    TaskResult &slot = batch.back();
    slot.index = index;
    slot.name = std::move(name);
    pool.submit([this, &slot, task = std::move(task)] {
        runTask(slot, task);
    });
    return index;
}

void
ExperimentEngine::runTask(TaskResult &slot, const TaskFn &task)
{
    // Wall time feeds only the wallMs progress metric and the trace
    // side channel, never the experiment results; steadyNowNs is the
    // sanctioned clock entry point.
    slot.worker = ThreadPool::currentWorkerId();
    slot.startNs = timing::steadyNowNs();
    try {
        slot.result = task();
    } catch (const std::exception &e) {
        slot.errorText = e.what();
        slot.exception = std::current_exception();
    } catch (...) {
        slot.errorText = "unknown exception";
        slot.exception = std::current_exception();
    }
    slot.endNs = timing::steadyNowNs();
    slot.wallMs =
        static_cast<double>(slot.endNs - slot.startNs) * 1e-6;
    if (progress) {
        std::lock_guard<std::mutex> lock(progressMutex);
        progress(slot.name, slot.wallMs,
                 slot.ok() ? slot.result.summary : RunSummary{});
    }
}

std::vector<TaskResult>
ExperimentEngine::collect()
{
    pool.wait();
    std::vector<TaskResult> out;
    out.reserve(batch.size());
    for (auto &slot : batch)
        out.push_back(std::move(slot));
    batch.clear();
    return out;
}

std::vector<TaskResult>
runCampaign(
    const std::vector<std::pair<std::string, ExperimentConfig>> &tasks,
    RunOptions options, ExperimentEngine::ProgressFn progress)
{
    ExperimentEngine engine(options);
    if (progress)
        engine.onTaskDone(std::move(progress));
    for (const auto &[name, config] : tasks)
        engine.submit(name, config);
    return engine.collect();
}

} // namespace avf::harness
