/**
 * @file
 * Shared experiment driver: runs one workload on the Table 1 machine
 * with the online estimator (all four structures), the SoftArch
 * reference, and the utilization baseline attached, and returns the
 * per-interval AVF series — the raw material for Figures 2 through 5.
 */

#ifndef AVF_HARNESS_EXPERIMENT_HH
#define AVF_HARNESS_EXPERIMENT_HH

#include <array>
#include <string>
#include <vector>

#include "core/online_estimator.hh"
#include "core/structures.hh"
#include "cpu/config.hh"
#include "trace/workload_profile.hh"
#include "util/types.hh"

namespace avf::harness
{

/** Full experiment parameters. */
struct ExperimentConfig
{
    /** Workload to synthesize. */
    trace::WorkloadProfile profile;
    /** Machine parameters (defaults = Table 1). */
    cpu::CpuConfig cpu;
    /** Online-estimator parameters (defaults = M = N = 1000). */
    core::OnlineConfig online;
    /** Number of estimation intervals to collect. */
    int numIntervals = 100;
    /** SoftArch lookahead in cycles. */
    Cycle lookahead = 32'768;
};

/** One estimation interval's worth of results. */
struct IntervalResult
{
    /** Online estimates, indexed by core::Structure. */
    std::array<double, core::numStructures> online{};
    /** SoftArch reference AVFs, indexed by core::Structure. */
    std::array<double, core::numStructures> softarch{};
    /** Utilization baseline: [0] = FXU, [1] = FPU. */
    std::array<double, 2> utilization{};
};

/** Aggregate run-level metrics. */
struct RunSummary
{
    double ipc = 0.0;
    double branchAccuracy = 0.0;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
};

/** Result of a full experiment. */
struct ExperimentResult
{
    std::string benchmark;
    std::vector<IntervalResult> intervals;
    RunSummary summary;

    /** Extract one per-interval series. */
    std::vector<double> onlineSeries(core::Structure s) const;
    std::vector<double> softarchSeries(core::Structure s) const;
    /** Utilization series; only FXU/FPU are meaningful. */
    std::vector<double> utilizationSeries(core::Structure s) const;
};

/**
 * Run the full experiment: simulate numIntervals estimation
 * intervals (plus lookahead), collecting online, SoftArch, and
 * utilization AVFs per interval.
 */
ExperimentResult runExperiment(const ExperimentConfig &config);

/**
 * Resolve the default interval count for benches: the paper uses
 * 100-200 intervals; the environment variable AVF_INTERVALS overrides
 * (and AVF_FAST=1 shrinks to 12 for smoke runs).
 */
int defaultIntervals(int paperDefault = 100);

} // namespace avf::harness

#endif // AVF_HARNESS_EXPERIMENT_HH
