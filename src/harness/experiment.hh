/**
 * @file
 * Shared experiment driver: runs one workload on the Table 1 machine
 * with the full estimator roster attached — the online estimator for
 * every structure, the SoftArch reference, the utilization and
 * occupancy counter baselines, and the regression feature collector —
 * and returns the per-interval AVF series, the raw material for
 * Figures 2 through 5 and every ablation.
 *
 * runExperiment() runs one experiment; campaigns (many workloads or
 * configs) should go through harness::ExperimentEngine (engine.hh),
 * which fans tasks out over a worker pool with deterministic results.
 */

#ifndef AVF_HARNESS_EXPERIMENT_HH
#define AVF_HARNESS_EXPERIMENT_HH

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "control/throttle_controller.hh"
#include "core/online_estimator.hh"
#include "core/regression_estimator.hh"
#include "core/structures.hh"
#include "cpu/config.hh"
#include "obs/attribution.hh"
#include "obs/lifecycle.hh"
#include "obs/metrics.hh"
#include "trace/workload_profile.hh"
#include "util/types.hh"

namespace avf::harness
{

/**
 * Closed-loop control parameters (control/throttle_controller.hh).
 * Disabled by default: a run without control attaches no feed, no
 * arbiter, and no controller, so its output is byte-identical to a
 * build that predates the control loop.
 */
struct ControlConfig
{
    /** Master switch for the whole loop. */
    bool enabled = false;
    /**
     * MTTF budget in hours (AVF_MTTF_BUDGET_HOURS). Positive switches
     * the controller to budget mode behind a reliability::
     * BudgetArbiter over the default FIT model of the run's machine;
     * zero keeps the threshold policy in `throttle`.
     */
    double mttfBudgetHours = 0.0;
    /**
     * Delay between an estimation window closing and its value
     * becoming visible to the controller, in cycles (the
     * delayed-error-reporting regime, after Jaulmes et al.).
     */
    Cycle reportLatencyCycles = 0;
    /** Threshold-mode policy and actuation parameters. */
    control::ThrottleConfig throttle;
};

/** Full experiment parameters. */
struct ExperimentConfig
{
    /** Workload to synthesize. */
    trace::WorkloadProfile profile;
    /** Machine parameters (defaults = Table 1). */
    cpu::CpuConfig cpu;
    /** Online-estimator parameters (defaults = M = N = 1000). */
    core::OnlineConfig online;
    /** Number of estimation intervals to collect. */
    int numIntervals = 100;
    /** SoftArch lookahead in cycles. */
    Cycle lookahead = 32'768;
    /**
     * Injection-lifecycle tracing (src/obs). When enabled, every
     * online injection is tracked through its hops to an outcome,
     * the summary lands on ExperimentResult::lifecycle, and the run
     * hard-fails if the lifecycle ledger disagrees with the
     * estimators' own counters. windowCycles is overridden with the
     * resolved online.m automatically. Purely observational: AVF
     * estimates are byte-identical either way.
     */
    obs::LifecycleConfig lifecycle;
    /**
     * Root-cause attribution (obs/attribution.hh). When enabled,
     * every closed injection window — the five online estimators'
     * plus three extended-coverage probes over the fetch buffer,
     * rename map, and branch predictor — is charged to a blame site
     * (unit, phase, PC, opcode class) and the table lands on
     * ExperimentResult::attribution. phaseCycles == 0 inherits the
     * run's estimation interval length; phaseCount == 0 inherits
     * numIntervals. The probes inject on their own reserved lanes,
     * so the five structures' AVF estimates are byte-identical
     * either way.
     */
    obs::AttributionConfig attribution;
    /**
     * Populate ExperimentResult::metrics (obs/metrics.hh) from the
     * estimator roster, pipeline, and lifecycle counters after the
     * run. Filled post-run from state the simulation tracks anyway,
     * so the hot path is untouched and results are byte-identical
     * either way. ExperimentEngine::submit turns this on
     * automatically when RunOptions::metricsPrefix is set.
     */
    bool metrics = false;
    /**
     * Closed-loop throttling/protection against an MTTF budget.
     * ExperimentEngine::submit turns this on automatically when
     * RunOptions::mttfBudgetHours is positive.
     */
    ControlConfig control;
    /**
     * Snapshot every estimator's reporting state into
     * ExperimentResult::estimatorStates after the run (see
     * core::EstimatorState). Used by the serve layer's checkpoints;
     * purely post-run, so estimates are byte-identical either way.
     */
    bool snapshotEstimators = false;
};

/** One estimation interval's worth of results. */
struct IntervalResult
{
    /** Online estimates, indexed by core::Structure. */
    std::array<double, core::numStructures> online{};
    /** SoftArch reference AVFs, indexed by core::Structure. */
    std::array<double, core::numStructures> softarch{};
    /** Utilization baseline: [0] = FXU, [1] = FPU. */
    std::array<double, 2> utilization{};
    /** Occupancy baseline for the issue queue. */
    double occupancy = 0.0;
};

/** Aggregate run-level metrics. */
struct RunSummary
{
    double ipc = 0.0;
    double branchAccuracy = 0.0;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
    double dtlbMissRate = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;

    /**
     * Lifecycle digest (all zero when tracing was off), summed over
     * structures so campaign progress callbacks (ExperimentEngine::
     * onTaskDone) can report injection outcomes live per task.
     */
    std::uint64_t lifecycleRecords = 0;
    std::uint64_t lifecycleFailures = 0;
    std::uint64_t lifecycleKilled = 0;
    std::uint64_t lifecycleExpired = 0;
};

/**
 * Decision-loop digest of one run (all defaults when the run was
 * configured without ExperimentConfig::control). The full per-interval
 * decision trail lives in the metrics snapshot (control_* / budget_*
 * names); this is the scalar summary benches print.
 */
struct ControlSummary
{
    /** True when a controller ran. */
    bool enabled = false;
    /** Estimation intervals the controller decided on. */
    std::uint64_t intervals = 0;
    /** Intervals spent with the throttle engaged. */
    std::uint64_t throttledIntervals = 0;
    /** Off-to-on throttle transitions. */
    std::uint64_t engagements = 0;
    /** setDispatchThrottle() calls issued (transitions only). */
    std::uint64_t actuations = 0;
    /** Intervals decided while the MTTF budget was exceeded. */
    std::uint64_t budgetExceededIntervals = 0;
    /** Protect decisions (coverage raises) the arbiter issued. */
    std::uint64_t protectActions = 0;
    /** End-of-run projected MTTF (hours; +inf without a budget). */
    double projectedMttfHours =
        std::numeric_limits<double>::infinity();
    /** End-of-run protection coverage, indexed by core::Structure. */
    std::array<double, core::numStructures> coverage{};
    /** First over-budget arbitration target (core::Structure index),
     *  or -1 when the budget never tripped. */
    int firstTarget = -1;
};

/** Result of a full experiment. */
struct ExperimentResult
{
    std::string benchmark;
    std::vector<IntervalResult> intervals;
    /** Per-interval regression features (Walcott-style estimator). */
    std::vector<core::FeatureVector> features;
    RunSummary summary;
    /**
     * Injection-lifecycle summary (enabled == false when the run was
     * configured without tracing; see ExperimentConfig::lifecycle).
     */
    obs::LifecycleSummary lifecycle;
    /**
     * Root-cause attribution table (enabled == false when the run
     * was configured without ExperimentConfig::attribution). Rows in
     * canonical (unit, phase, pc, op) order; merges submission-order
     * across campaign tasks.
     */
    obs::AttributionSnapshot attribution;
    /**
     * Metrics snapshot (enabled == false when the run was configured
     * without ExperimentConfig::metrics). Deterministic by
     * construction: every value is a function of (trace, seed,
     * config), so campaign METRICS.json exports are byte-identical
     * across worker counts.
     */
    obs::MetricsSnapshot metrics;
    /** Control-loop digest (enabled == false when control was off). */
    ControlSummary control;
    /**
     * Post-run estimator state snapshots (empty unless
     * ExperimentConfig::snapshotEstimators). Roster order: the five
     * online estimators (structure order), utilization FXU, FPU,
     * occupancy, the coverage probes (when attribution is enabled),
     * then a synthetic "port" entry carrying the shared
     * InjectionPort's reserved/open lane masks.
     */
    std::vector<core::EstimatorState> estimatorStates;

    /** Extract one per-interval series. */
    std::vector<double> onlineSeries(core::Structure s) const;
    std::vector<double> softarchSeries(core::Structure s) const;
    /**
     * Utilization series. Utilization is defined for the logic
     * structures only: for any structure other than FXU/FPU this
     * returns an EMPTY vector (there is no meaningful data to read —
     * callers must not treat a zeroed array slot as a series).
     */
    std::vector<double> utilizationSeries(core::Structure s) const;
    /** Issue-queue occupancy baseline series. */
    std::vector<double> occupancySeries() const;
};

/**
 * Run one full experiment: simulate numIntervals estimation
 * intervals (plus lookahead), collecting online, SoftArch,
 * utilization, occupancy, and regression-feature data per interval.
 *
 * This is a thin single-task wrapper over the ExperimentEngine
 * (engine.hh); multi-experiment campaigns should use the engine
 * directly and get the worker pool for free.
 */
ExperimentResult runExperiment(const ExperimentConfig &config);

/**
 * Resolve the default interval count for benches: the paper uses
 * 100-200 intervals; the environment variable AVF_INTERVALS overrides
 * (and AVF_FAST=1 shrinks to 12 for smoke runs). Thin wrapper over
 * config_loader.hh:loadRunOptions(), kept for compatibility.
 */
int defaultIntervals(int paperDefault = 100);

namespace detail
{

/**
 * The experiment body: runs on the calling thread, no engine
 * involved. Throws std::invalid_argument on a bad config so the
 * engine can report per-task errors without aborting the campaign.
 */
ExperimentResult runExperimentDirect(const ExperimentConfig &config);

} // namespace detail

} // namespace avf::harness

#endif // AVF_HARNESS_EXPERIMENT_HH
