#include "harness/task_codec.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "harness/export.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace avf::harness::codec
{

void
appendExactDouble(std::string &out, double value)
{
    // %.17g round-trips every finite double through strtod exactly;
    // non-finite values have no JSON spelling and nothing in a task
    // result may produce one.
    avf_assert(std::isfinite(value),
               "task codec: non-finite double");
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
}

namespace
{

void
appendUint(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += buf;
}

void
appendString(std::string &out, std::string_view text)
{
    out += '"';
    out += jsonEscape(text);
    out += '"';
}

void
appendDoubles(std::string &out, const double *values,
              std::size_t count)
{
    out += '[';
    for (std::size_t i = 0; i < count; ++i) {
        if (i)
            out += ',';
        appendExactDouble(out, values[i]);
    }
    out += ']';
}

void
appendDoubles(std::string &out, const std::vector<double> &values)
{
    appendDoubles(out, values.data(), values.size());
}

} // namespace

void
appendEstimatorState(std::string &out,
                     const core::EstimatorState &state)
{
    out += "{\"name\":";
    appendString(out, state.name);
    out += ",\"counters\":[";
    for (std::size_t i = 0; i < state.counters.size(); ++i) {
        if (i)
            out += ',';
        out += '[';
        appendString(out, state.counters[i].first);
        out += ',';
        appendUint(out, state.counters[i].second);
        out += ']';
    }
    out += "],\"values\":[";
    for (std::size_t i = 0; i < state.values.size(); ++i) {
        if (i)
            out += ',';
        out += '[';
        appendString(out, state.values[i].first);
        out += ',';
        appendExactDouble(out, state.values[i].second);
        out += ']';
    }
    out += "],\"estimates\":";
    appendDoubles(out, state.estimates);
    out += '}';
}

void
appendMetricsSnapshot(std::string &out,
                      const obs::MetricsSnapshot &metrics)
{
    out += "{\"counters\":[";
    for (std::size_t i = 0; i < metrics.counters.size(); ++i) {
        if (i)
            out += ',';
        out += '[';
        appendString(out, metrics.counters[i].first);
        out += ',';
        appendUint(out, metrics.counters[i].second);
        out += ']';
    }
    out += "],\"gauges\":[";
    for (std::size_t i = 0; i < metrics.gauges.size(); ++i) {
        if (i)
            out += ',';
        out += '[';
        appendString(out, metrics.gauges[i].first);
        out += ',';
        appendExactDouble(out, metrics.gauges[i].second);
        out += ']';
    }
    out += "],\"histograms\":[";
    for (std::size_t i = 0; i < metrics.histograms.size(); ++i) {
        if (i)
            out += ',';
        const auto &hist = metrics.histograms[i].second;
        out += '[';
        appendString(out, metrics.histograms[i].first);
        out += ",{\"lo\":";
        appendExactDouble(out, hist.lo);
        out += ",\"hi\":";
        appendExactDouble(out, hist.hi);
        out += ",\"bins\":[";
        for (std::size_t b = 0; b < hist.bins.size(); ++b) {
            if (b)
                out += ',';
            appendUint(out, hist.bins[b]);
        }
        out += "],\"underflow\":";
        appendUint(out, hist.underflow);
        out += ",\"overflow\":";
        appendUint(out, hist.overflow);
        out += ",\"total\":";
        appendUint(out, hist.total);
        out += "}]";
    }
    out += "],\"series\":[";
    for (std::size_t i = 0; i < metrics.series.size(); ++i) {
        if (i)
            out += ',';
        out += '[';
        appendString(out, metrics.series[i].first);
        out += ',';
        appendDoubles(out, metrics.series[i].second);
        out += ']';
    }
    out += "]}";
}

void
appendAttributionSnapshot(std::string &out,
                          const obs::AttributionSnapshot &attr)
{
    out += "{\"units\":[";
    for (std::size_t i = 0; i < attr.units.size(); ++i) {
        if (i)
            out += ',';
        appendString(out, attr.units[i]);
    }
    out += "],\"rows\":[";
    for (std::size_t i = 0; i < attr.rows.size(); ++i) {
        if (i)
            out += ',';
        const obs::AttributionRow &row = attr.rows[i];
        out += '[';
        appendUint(out, row.unit);
        out += ',';
        appendUint(out, row.phase);
        out += ',';
        appendUint(out, row.pc);
        out += ',';
        out += std::to_string(row.op); // signed: -1 = no blame op
        out += ',';
        appendUint(out, row.windows);
        out += ',';
        appendUint(out, row.live);
        out += ',';
        appendUint(out, row.failures);
        out += ']';
    }
    out += "]}";
}

// ------------------------------------------------------------------ //
// Decode helpers: each returns false after setting @p errorOut.       //
// ------------------------------------------------------------------ //

namespace
{

bool
fail(std::string &errorOut, const std::string &what)
{
    errorOut = "task codec: " + what;
    return false;
}

bool
readDoubles(const json::Value &value, std::vector<double> &out,
            std::string &errorOut, const char *what)
{
    if (!value.isArray())
        return fail(errorOut, std::string(what) + " not an array");
    out.clear();
    out.reserve(value.items.size());
    for (const auto &item : value.items) {
        if (!item.isNumber())
            return fail(errorOut,
                        std::string(what) + " holds a non-number");
        out.push_back(item.asDouble());
    }
    return true;
}

bool
readFixedDoubles(const json::Value &value, double *out,
                 std::size_t count, std::string &errorOut,
                 const char *what)
{
    if (!value.isArray() || value.items.size() != count)
        return fail(errorOut,
                    std::string(what) + " needs exactly " +
                        std::to_string(count) + " numbers");
    for (std::size_t i = 0; i < count; ++i) {
        if (!value.items[i].isNumber())
            return fail(errorOut,
                        std::string(what) + " holds a non-number");
        out[i] = value.items[i].asDouble();
    }
    return true;
}

bool
readNamedPairs(
    const json::Value &value,
    std::vector<std::pair<std::string, std::uint64_t>> &out,
    std::string &errorOut, const char *what)
{
    if (!value.isArray())
        return fail(errorOut, std::string(what) + " not an array");
    out.clear();
    out.reserve(value.items.size());
    for (const auto &item : value.items) {
        if (!item.isArray() || item.items.size() != 2 ||
            !item.items[0].isString() || !item.items[1].isNumber())
            return fail(errorOut,
                        std::string(what) + " entry malformed");
        out.emplace_back(item.items[0].text, item.items[1].asUint());
    }
    return true;
}

bool
readNamedDoublePairs(
    const json::Value &value,
    std::vector<std::pair<std::string, double>> &out,
    std::string &errorOut, const char *what)
{
    if (!value.isArray())
        return fail(errorOut, std::string(what) + " not an array");
    out.clear();
    out.reserve(value.items.size());
    for (const auto &item : value.items) {
        if (!item.isArray() || item.items.size() != 2 ||
            !item.items[0].isString() || !item.items[1].isNumber())
            return fail(errorOut,
                        std::string(what) + " entry malformed");
        out.emplace_back(item.items[0].text,
                         item.items[1].asDouble());
    }
    return true;
}

bool
readUintField(const json::Value &object, const char *key,
              std::uint64_t &out, std::string &errorOut)
{
    const json::Value *value = object.find(key);
    if (!value || !value->isNumber())
        return fail(errorOut,
                    std::string("missing number '") + key + "'");
    out = value->asUint();
    return true;
}

bool
readDoubleField(const json::Value &object, const char *key,
                double &out, std::string &errorOut)
{
    const json::Value *value = object.find(key);
    if (!value || !value->isNumber())
        return fail(errorOut,
                    std::string("missing number '") + key + "'");
    out = value->asDouble();
    return true;
}

} // namespace

bool
decodeEstimatorState(const json::Value &value,
                     core::EstimatorState &out,
                     std::string &errorOut)
{
    if (!value.isObject())
        return fail(errorOut, "state not an object");
    const json::Value *name =
        value.find("name", json::Value::Kind::String);
    if (!name)
        return fail(errorOut, "state missing name");
    out.name = name->text;
    const json::Value *counters = value.find("counters");
    const json::Value *values = value.find("values");
    const json::Value *estimates = value.find("estimates");
    if (!counters || !values || !estimates)
        return fail(errorOut, "state missing a section");
    return readNamedPairs(*counters, out.counters, errorOut,
                          "state counters") &&
           readNamedDoublePairs(*values, out.values, errorOut,
                                "state values") &&
           readDoubles(*estimates, out.estimates, errorOut,
                       "state estimates");
}

bool
decodeMetricsSnapshot(const json::Value &value,
                      obs::MetricsSnapshot &out,
                      std::string &errorOut)
{
    if (!value.isObject())
        return fail(errorOut, "metrics not an object");
    out.enabled = true;
    const json::Value *counters = value.find("counters");
    const json::Value *gauges = value.find("gauges");
    const json::Value *histograms = value.find("histograms");
    const json::Value *series = value.find("series");
    if (!counters || !gauges || !histograms || !series)
        return fail(errorOut, "metrics missing a section");
    if (!readNamedPairs(*counters, out.counters, errorOut,
                        "metrics counters") ||
        !readNamedDoublePairs(*gauges, out.gauges, errorOut,
                              "metrics gauges"))
        return false;
    if (!histograms->isArray())
        return fail(errorOut, "metrics histograms not an array");
    out.histograms.clear();
    out.histograms.reserve(histograms->items.size());
    for (const auto &item : histograms->items) {
        if (!item.isArray() || item.items.size() != 2 ||
            !item.items[0].isString() || !item.items[1].isObject())
            return fail(errorOut, "metrics histogram malformed");
        const json::Value &body = item.items[1];
        stats::HistogramSnapshot hist;
        if (!readDoubleField(body, "lo", hist.lo, errorOut) ||
            !readDoubleField(body, "hi", hist.hi, errorOut) ||
            !readUintField(body, "underflow", hist.underflow,
                           errorOut) ||
            !readUintField(body, "overflow", hist.overflow,
                           errorOut) ||
            !readUintField(body, "total", hist.total, errorOut))
            return false;
        const json::Value *bins = body.find("bins");
        if (!bins || !bins->isArray())
            return fail(errorOut, "histogram missing bins");
        hist.bins.reserve(bins->items.size());
        for (const auto &bin : bins->items) {
            if (!bin.isNumber())
                return fail(errorOut, "histogram bin not a number");
            hist.bins.push_back(bin.asUint());
        }
        out.histograms.emplace_back(item.items[0].text,
                                    std::move(hist));
    }
    if (!series->isArray())
        return fail(errorOut, "metrics series not an array");
    out.series.clear();
    out.series.reserve(series->items.size());
    for (const auto &item : series->items) {
        if (!item.isArray() || item.items.size() != 2 ||
            !item.items[0].isString())
            return fail(errorOut, "metrics series malformed");
        std::vector<double> points;
        if (!readDoubles(item.items[1], points, errorOut,
                         "series points"))
            return false;
        out.series.emplace_back(item.items[0].text,
                                std::move(points));
    }
    return true;
}

bool
decodeAttributionSnapshot(const json::Value &value,
                          obs::AttributionSnapshot &out,
                          std::string &errorOut)
{
    if (!value.isObject())
        return fail(errorOut, "attribution not an object");
    out.enabled = true;
    const json::Value *units = value.find("units");
    const json::Value *rows = value.find("rows");
    if (!units || !rows || !units->isArray() || !rows->isArray())
        return fail(errorOut, "attribution missing a section");
    out.units.clear();
    out.units.reserve(units->items.size());
    for (const auto &item : units->items) {
        if (!item.isString())
            return fail(errorOut,
                        "attribution unit not a string");
        out.units.push_back(item.text);
    }
    out.rows.clear();
    out.rows.reserve(rows->items.size());
    for (const auto &item : rows->items) {
        if (!item.isArray() || item.items.size() != 7)
            return fail(errorOut, "attribution row malformed");
        for (const auto &field : item.items) {
            if (!field.isNumber())
                return fail(errorOut,
                            "attribution row holds a non-number");
        }
        obs::AttributionRow row;
        row.unit =
            static_cast<std::uint32_t>(item.items[0].asUint());
        row.phase =
            static_cast<std::uint32_t>(item.items[1].asUint());
        row.pc = item.items[2].asUint();
        row.op = static_cast<int>(item.items[3].asDouble());
        row.windows = item.items[4].asUint();
        row.live = item.items[5].asUint();
        row.failures = item.items[6].asUint();
        if (row.unit >= out.units.size())
            return fail(errorOut,
                        "attribution row names an unknown unit");
        out.rows.push_back(row);
    }
    return true;
}

std::string
encodeTaskResult(const TaskResult &task)
{
    std::string out;
    // Sized for small campaigns; larger results grow amortized.
    out.reserve(512);
    out += "{\"v\":\"";
    out += taskCodecVersion;
    out += "\",\"index\":";
    appendUint(out, task.index);
    out += ",\"name\":";
    appendString(out, task.name);
    out += ",\"error_text\":";
    appendString(out, task.errorText);
    if (!task.ok()) {
        out += '}';
        return out;
    }

    const ExperimentResult &result = task.result;
    out += ",\"result\":{\"benchmark\":";
    appendString(out, result.benchmark);
    out += ",\"intervals\":[";
    for (std::size_t k = 0; k < result.intervals.size(); ++k) {
        if (k)
            out += ',';
        const IntervalResult &row = result.intervals[k];
        out += "{\"online\":";
        appendDoubles(out, row.online.data(), row.online.size());
        out += ",\"softarch\":";
        appendDoubles(out, row.softarch.data(), row.softarch.size());
        out += ",\"utilization\":";
        appendDoubles(out, row.utilization.data(),
                      row.utilization.size());
        out += ",\"occupancy\":";
        appendExactDouble(out, row.occupancy);
        out += '}';
    }
    out += "],\"features\":[";
    for (std::size_t k = 0; k < result.features.size(); ++k) {
        if (k)
            out += ',';
        appendDoubles(out, result.features[k].data(),
                      result.features[k].size());
    }
    const RunSummary &summary = result.summary;
    out += "],\"summary\":{\"ipc\":";
    appendExactDouble(out, summary.ipc);
    out += ",\"branch_accuracy\":";
    appendExactDouble(out, summary.branchAccuracy);
    out += ",\"l1d_miss_rate\":";
    appendExactDouble(out, summary.l1dMissRate);
    out += ",\"l2_miss_rate\":";
    appendExactDouble(out, summary.l2MissRate);
    out += ",\"dtlb_miss_rate\":";
    appendExactDouble(out, summary.dtlbMissRate);
    out += ",\"cycles\":";
    appendUint(out, summary.cycles);
    out += ",\"retired\":";
    appendUint(out, summary.retired);
    out += ",\"lifecycle_records\":";
    appendUint(out, summary.lifecycleRecords);
    out += ",\"lifecycle_failures\":";
    appendUint(out, summary.lifecycleFailures);
    out += ",\"lifecycle_killed\":";
    appendUint(out, summary.lifecycleKilled);
    out += ",\"lifecycle_expired\":";
    appendUint(out, summary.lifecycleExpired);
    out += "},\"states\":[";
    for (std::size_t i = 0; i < result.estimatorStates.size(); ++i) {
        if (i)
            out += ',';
        appendEstimatorState(out, result.estimatorStates[i]);
    }
    out += ']';
    if (result.metrics.enabled) {
        out += ",\"metrics\":";
        appendMetricsSnapshot(out, result.metrics);
    }
    if (result.attribution.enabled) {
        out += ",\"attribution\":";
        appendAttributionSnapshot(out, result.attribution);
    }
    out += "}}";
    return out;
}

bool
decodeTaskResult(std::string_view line, TaskResult &out,
                 std::string &errorOut)
{
    json::Value doc;
    std::string parseError;
    if (!json::parse(line, doc, parseError))
        return fail(errorOut, parseError);
    if (!doc.isObject())
        return fail(errorOut, "top level not an object");
    const json::Value *version =
        doc.find("v", json::Value::Kind::String);
    if (!version || version->text != taskCodecVersion)
        return fail(errorOut, "unknown codec version");

    out = TaskResult{};
    std::uint64_t index = 0;
    if (!readUintField(doc, "index", index, errorOut))
        return false;
    out.index = static_cast<std::size_t>(index);
    const json::Value *name =
        doc.find("name", json::Value::Kind::String);
    const json::Value *errorText =
        doc.find("error_text", json::Value::Kind::String);
    if (!name || !errorText)
        return fail(errorOut, "missing name or error_text");
    out.name = name->text;
    out.errorText = errorText->text;
    if (!out.ok())
        return true; // failed task: no result payload to decode

    const json::Value *result = doc.find("result");
    if (!result || !result->isObject())
        return fail(errorOut, "missing result object");
    const json::Value *benchmark =
        result->find("benchmark", json::Value::Kind::String);
    if (!benchmark)
        return fail(errorOut, "missing benchmark");
    out.result.benchmark = benchmark->text;

    const json::Value *intervals = result->find("intervals");
    if (!intervals || !intervals->isArray())
        return fail(errorOut, "missing intervals");
    out.result.intervals.clear();
    out.result.intervals.reserve(intervals->items.size());
    for (const auto &item : intervals->items) {
        if (!item.isObject())
            return fail(errorOut, "interval not an object");
        IntervalResult row;
        const json::Value *online = item.find("online");
        const json::Value *softarch = item.find("softarch");
        const json::Value *utilization = item.find("utilization");
        if (!online || !softarch || !utilization ||
            !readFixedDoubles(*online, row.online.data(),
                              row.online.size(), errorOut,
                              "interval online") ||
            !readFixedDoubles(*softarch, row.softarch.data(),
                              row.softarch.size(), errorOut,
                              "interval softarch") ||
            !readFixedDoubles(*utilization, row.utilization.data(),
                              row.utilization.size(), errorOut,
                              "interval utilization") ||
            !readDoubleField(item, "occupancy", row.occupancy,
                             errorOut))
            return errorOut.empty()
                       ? fail(errorOut, "interval missing a series")
                       : false;
        out.result.intervals.push_back(row);
    }

    const json::Value *features = result->find("features");
    if (!features || !features->isArray())
        return fail(errorOut, "missing features");
    out.result.features.clear();
    out.result.features.reserve(features->items.size());
    for (const auto &item : features->items) {
        core::FeatureVector row{};
        if (!readFixedDoubles(item, row.data(), row.size(), errorOut,
                              "feature row"))
            return false;
        out.result.features.push_back(row);
    }

    const json::Value *summary = result->find("summary");
    if (!summary || !summary->isObject())
        return fail(errorOut, "missing summary");
    RunSummary &sum = out.result.summary;
    if (!readDoubleField(*summary, "ipc", sum.ipc, errorOut) ||
        !readDoubleField(*summary, "branch_accuracy",
                         sum.branchAccuracy, errorOut) ||
        !readDoubleField(*summary, "l1d_miss_rate", sum.l1dMissRate,
                         errorOut) ||
        !readDoubleField(*summary, "l2_miss_rate", sum.l2MissRate,
                         errorOut) ||
        !readDoubleField(*summary, "dtlb_miss_rate",
                         sum.dtlbMissRate, errorOut) ||
        !readUintField(*summary, "cycles", sum.cycles, errorOut) ||
        !readUintField(*summary, "retired", sum.retired, errorOut) ||
        !readUintField(*summary, "lifecycle_records",
                       sum.lifecycleRecords, errorOut) ||
        !readUintField(*summary, "lifecycle_failures",
                       sum.lifecycleFailures, errorOut) ||
        !readUintField(*summary, "lifecycle_killed",
                       sum.lifecycleKilled, errorOut) ||
        !readUintField(*summary, "lifecycle_expired",
                       sum.lifecycleExpired, errorOut))
        return false;

    const json::Value *states = result->find("states");
    if (!states || !states->isArray())
        return fail(errorOut, "missing states");
    out.result.estimatorStates.clear();
    out.result.estimatorStates.reserve(states->items.size());
    for (const auto &item : states->items) {
        core::EstimatorState state;
        if (!decodeEstimatorState(item, state, errorOut))
            return false;
        out.result.estimatorStates.push_back(std::move(state));
    }

    if (const json::Value *metrics = result->find("metrics")) {
        if (!decodeMetricsSnapshot(*metrics, out.result.metrics,
                                   errorOut))
            return false;
    }
    if (const json::Value *attr = result->find("attribution")) {
        if (!decodeAttributionSnapshot(*attr, out.result.attribution,
                                       errorOut))
            return false;
    }
    return true;
}

} // namespace avf::harness::codec
