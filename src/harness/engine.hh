/**
 * @file
 * The campaign engine. Every figure and ablation in the paper is a
 * campaign — the same experiment repeated across workloads, M/N
 * sweeps, or sampling modes — and the per-(workload, config) runs are
 * embarrassingly parallel. Callers enqueue named ExperimentConfig
 * tasks with submit(), the engine fans them out over a fixed-size
 * worker pool, and collect() returns the results in submission order,
 * so campaign output is byte-identical regardless of thread count.
 *
 * Determinism contract: a task's result depends only on its config
 * (every RNG stream is seeded from the config, and optional re-seeding
 * derives from the task's submission index) — never on which worker
 * ran it or in what order the pool scheduled it.
 */

#ifndef AVF_HARNESS_ENGINE_HH
#define AVF_HARNESS_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "util/thread_pool.hh"

namespace avf::harness
{

/**
 * Campaign-level run options, resolved once (see
 * config_loader.hh:loadRunOptions) instead of sprinkling env-var
 * reads through every bench.
 */
struct RunOptions
{
    /** Estimation intervals per task (benches scale figures by it). */
    int intervals = 100;
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Smoke-run mode: loadRunOptions() shrinks intervals to 12. */
    bool fastMode = false;
    /**
     * Concurrent injection windows per estimator (error-plane bit
     * lanes; AVF_LANES, 1..64). submit() copies this into any task
     * whose ExperimentConfig::online.lanes is 0 ("inherit"). 1 runs
     * the paper's serial Algorithm 1 exactly — campaign stdout at
     * lanes=1 is byte-identical to the historical serial runs; the
     * default 64 compresses each N-injection estimation interval to
     * ceil(N/lanes) window boundaries.
     */
    int lanes = 64;
    /**
     * Enable injection-lifecycle tracing (ExperimentConfig::lifecycle)
     * on every task the bench builds from these options.
     */
    bool lifecycle = false;
    /**
     * When nonzero, submit() re-derives each task's workload and
     * estimator seeds from (seedSalt, submission index) — never from
     * scheduling order. Zero (the default) leaves the seeds in the
     * submitted config untouched, which keeps engine campaigns
     * byte-identical to the historical serial runExperiment() loops.
     */
    std::uint64_t seedSalt = 0;
    /**
     * Metrics export prefix (resolved from AVF_METRICS by
     * loadRunOptions). Non-empty enables ExperimentConfig::metrics on
     * every task submit() builds from these options, and benches pass
     * it to exportCampaignMetrics() (export.hh) to write
     * <prefix>_METRICS.json (deterministic snapshot) and
     * <prefix>_TRACE.json (wall-clock trace_event side channel).
     * Empty (the default) keeps the metrics layer fully disabled.
     */
    std::string metricsPrefix{};
    /**
     * MTTF budget in hours (resolved from AVF_MTTF_BUDGET_HOURS by
     * loadRunOptions; strict positive double, junk is fatal()).
     * Positive enables ExperimentConfig::control in budget mode on
     * every task submit() builds from these options. Zero (the
     * default) leaves the control loop fully disabled, keeping
     * campaign stdout byte-identical to uncontrolled runs.
     */
    double mttfBudgetHours = 0.0;
};

/** Outcome of one engine task. */
struct TaskResult
{
    /** Submission index (collect() returns tasks in this order). */
    std::size_t index = 0;
    /** Name given at submit(). */
    std::string name;
    /** The experiment output; meaningful only when ok(). */
    ExperimentResult result;
    /** Empty on success; the failure message otherwise. (Named
     *  errorText, not error: in this codebase bare `error` members
     *  are per-entry error-bit planes — avflint enforces that.) */
    std::string errorText;
    /** The captured exception, for callers who want to rethrow. */
    std::exception_ptr exception;
    /** Wall-clock time the task spent executing, in milliseconds. */
    double wallMs = 0.0;
    /** Execution span ticks (timing::steadyNowNs domain) and the
     *  pool worker that ran the task — trace side channel only,
     *  never part of deterministic exports. */
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    int worker = -1;

    /** True when the task ran to completion. */
    bool ok() const { return errorText.empty(); }
};

/**
 * Re-derive @p config's workload and estimator seeds from
 * (@p salt, @p index) — the engine's seed rule for re-seeded
 * campaigns, factored out so other schedulers (the avf-serve slice
 * sharder) assign byte-identical seeds to the task at a given index
 * without going through submit(). @p salt must be nonzero.
 */
void deriveTaskSeeds(ExperimentConfig &config, std::uint64_t salt,
                     std::size_t index);

/**
 * Parallel, deterministic experiment runner.
 *
 * Usage:
 *     ExperimentEngine engine;               // or engine(options)
 *     for (...) engine.submit(name, config); // fans out immediately
 *     for (auto &task : engine.collect())    // submission order
 *         use(task.result);
 *
 * A task that throws is reported in its TaskResult without affecting
 * sibling tasks. The engine is reusable: submit/collect cycles may
 * repeat. Not itself thread-safe — drive it from one thread.
 */
class ExperimentEngine
{
  public:
    /** A task body; must be self-contained (no shared mutable state). */
    using TaskFn = std::function<ExperimentResult()>;
    /** Progress callback; see onTaskDone(). */
    using ProgressFn = std::function<void(
        const std::string &name, double wallMs, const RunSummary &)>;

    explicit ExperimentEngine(RunOptions options = RunOptions{});
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /**
     * Enqueue a standard experiment; starts as soon as a worker is
     * free. With options.seedSalt nonzero the config's seeds are
     * re-derived from the submission index first.
     *
     * @return the task's submission index.
     */
    std::size_t submit(std::string name, ExperimentConfig config);

    /**
     * Enqueue an arbitrary task body (custom pipelines, fault
     * campaigns, tests). The body runs on a worker thread and must
     * not touch shared mutable state.
     */
    std::size_t submit(std::string name, TaskFn task);

    /**
     * Install a campaign-observability callback, invoked once per
     * finished task (in completion order, serialized) with the task's
     * name, wall-clock milliseconds, and run summary. Failed tasks
     * report a zeroed summary. The callback runs on worker threads —
     * keep it light. Set before the first submit().
     */
    void onTaskDone(ProgressFn callback);

    /**
     * Block until every submitted task finished and return their
     * results in submission order. Resets the engine for the next
     * submit/collect batch.
     */
    std::vector<TaskResult> collect();

    /** Resolved worker count (>= 1). */
    unsigned threadCount() const;

    /** Pool queue/dispatch counters (trace side channel). */
    ThreadPool::PoolStats poolStats() const;

    /** Tasks submitted in the current batch so far. */
    std::size_t submitted() const { return batch.size(); }

    /** Options the engine was built with. */
    const RunOptions &options() const { return opts; }

  private:
    void runTask(TaskResult &slot, const TaskFn &task);

    RunOptions opts;
    ThreadPool pool;
    ProgressFn progress;
    std::mutex progressMutex;
    /** Slots for the current batch; deque keeps references stable
     *  while workers fill earlier slots and submit() appends. */
    std::deque<TaskResult> batch;
};

/**
 * Convenience: run one named campaign start-to-finish. Equivalent to
 * constructing an engine, submitting every (name, config) pair in
 * order, and collecting.
 */
std::vector<TaskResult>
runCampaign(const std::vector<std::pair<std::string,
                                        ExperimentConfig>> &tasks,
            RunOptions options = RunOptions{},
            ExperimentEngine::ProgressFn progress = nullptr);

} // namespace avf::harness

#endif // AVF_HARNESS_ENGINE_HH
