#include "harness/config_loader.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "trace/spec_profiles.hh"
#include "util/logging.hh"

namespace avf::harness
{

namespace
{

void
warnUnknownKeys(const KeyValueFile &file, const std::string &section,
                const std::set<std::string> &known)
{
    for (const auto &key : file.keysIn(section)) {
        if (!known.count(key))
            warn("config: unknown key '%s' in section [%s]",
                 key.c_str(), section.c_str());
    }
}

/** Strict boolean env var: unset/empty = false, junk = fatal(). */
bool
envFlagStrict(const char *name)
{
    const char *val = std::getenv(name);
    if (!val || !*val)
        return false;
    for (const char *t : {"1", "true", "yes", "on"})
        if (std::strcmp(val, t) == 0)
            return true;
    for (const char *f : {"0", "false", "no", "off"})
        if (std::strcmp(val, f) == 0)
            return false;
    fatal("%s='%s' is not a boolean (use 1/true/yes/on or "
          "0/false/no/off)", name, val);
}

/** Strict positive-integer env var; @return fallback when unset. */
int
envPositiveIntStrict(const char *name, int fallback)
{
    const char *val = std::getenv(name);
    if (!val || !*val)
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(val, &end, 10);
    if (end == val || *end != '\0')
        fatal("%s='%s' is not an integer", name, val);
    if (parsed <= 0)
        fatal("%s=%lld must be positive", name, parsed);
    if (parsed > 1'000'000)
        fatal("%s=%lld is implausibly large", name, parsed);
    return static_cast<int>(parsed);
}

/** Strict positive-double env var; @return fallback when unset. */
double
envPositiveDoubleStrict(const char *name, double fallback)
{
    const char *val = std::getenv(name);
    if (!val || !*val)
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(val, &end);
    if (end == val || *end != '\0')
        fatal("%s='%s' is not a number", name, val);
    if (!(parsed > 0.0) || parsed != parsed)
        fatal("%s='%s' must be a positive number", name, val);
    return parsed;
}

/**
 * Strict path-prefix env var: unset/empty = disabled (empty string),
 * whitespace or control characters = fatal(). The prefix becomes a
 * filename stem, where embedded newlines or blanks are invariably
 * quoting accidents, not intent.
 */
std::string
envPrefixStrict(const char *name)
{
    const char *val = std::getenv(name);
    if (!val || !*val)
        return {};
    for (const char *p = val; *p; ++p) {
        unsigned char c = static_cast<unsigned char>(*p);
        if (c <= 0x20 || c == 0x7f)
            fatal("%s='%s' contains whitespace or control "
                  "characters (expected a bare path prefix)",
                  name, val);
    }
    return val;
}

} // namespace

int
lanesFromEnv()
{
    int lanes = envPositiveIntStrict("AVF_LANES", 64);
    if (lanes > 64)
        fatal("AVF_LANES=%d exceeds the 64-bit error plane (1..64)",
              lanes);
    return lanes;
}

int
tailPollMsFromEnv()
{
    // 200 ms default: fast enough to feel live on a terminal, slow
    // enough to cost nothing. 1..60000 keeps typos (0, ms-vs-s
    // confusions) from spinning a core or freezing the tail.
    int ms = envPositiveIntStrict("AVF_TAIL_POLL_MS", 200);
    if (ms > 60'000)
        fatal("AVF_TAIL_POLL_MS=%d exceeds 60000 (one minute)", ms);
    return ms;
}

RunOptions
loadRunOptions(int paperDefaultIntervals)
{
    RunOptions options;
    // AVF_LOG_LEVEL is resolved lazily inside the logging sink; force
    // it here so a junk value fails at startup like every other knob.
    logLevel();
    options.fastMode = envFlagStrict("AVF_FAST");
    options.intervals = envPositiveIntStrict("AVF_INTERVALS",
                                             paperDefaultIntervals);
    options.lanes = lanesFromEnv();
    options.lifecycle = envFlagStrict("AVF_LIFECYCLE");
    options.metricsPrefix = envPrefixStrict("AVF_METRICS");
    options.mttfBudgetHours =
        envPositiveDoubleStrict("AVF_MTTF_BUDGET_HOURS", 0.0);
    if (options.fastMode)
        options.intervals = 12;
    return options;
}

ExperimentConfig
loadExperimentConfig(const std::string &path)
{
    return loadExperimentConfig(KeyValueFile::fromFile(path));
}

ExperimentConfig
loadExperimentConfig(const KeyValueFile &file)
{
    ExperimentConfig conf;

    // ---- [experiment] ----
    warnUnknownKeys(file, "experiment",
                    {"benchmark", "intervals", "lookahead"});
    std::string bench = file.getString("experiment", "benchmark",
                                       "mesa");
    const auto &names = trace::specBenchmarkNames();
    if (std::find(names.begin(), names.end(), bench) != names.end())
        conf.profile = trace::specProfile(bench);
    else if (bench == "generic")
        conf.profile = trace::WorkloadProfile{};
    else
        fatal("config: unknown benchmark '%s'", bench.c_str());
    conf.numIntervals = static_cast<int>(
        file.getInt("experiment", "intervals", conf.numIntervals));
    conf.lookahead = static_cast<Cycle>(
        file.getInt("experiment", "lookahead",
                    static_cast<std::int64_t>(conf.lookahead)));
    if (conf.numIntervals <= 0)
        fatal("config: intervals must be positive");

    // ---- [online] ----
    warnUnknownKeys(file, "online", {"m", "n", "randomize", "seed"});
    conf.online.m = static_cast<Cycle>(
        file.getInt("online", "m",
                    static_cast<std::int64_t>(conf.online.m)));
    conf.online.n = static_cast<std::uint32_t>(
        file.getInt("online", "n", conf.online.n));
    conf.online.randomizeInjectionTiming =
        file.getBool("online", "randomize",
                     conf.online.randomizeInjectionTiming);
    conf.online.seed = static_cast<std::uint64_t>(
        file.getInt("online", "seed",
                    static_cast<std::int64_t>(conf.online.seed)));
    if (conf.online.m == 0 || conf.online.n == 0)
        fatal("config: online m and n must be positive");

    // ---- [cpu] ----
    warnUnknownKeys(
        file, "cpu",
        {"fetch_width", "dispatch_width", "retire_width",
         "rob_entries", "intls_iq", "fp_iq", "br_iq", "fxu", "fpu",
         "lsu", "bru", "int_regs", "fp_regs", "store_queue",
         "fetch_buffer", "redirect_penalty", "predictor_bits",
         "history_bits"});
    auto &cpu = conf.cpu;
    auto cpu_int = [&](const char *key, int current) {
        return static_cast<int>(file.getInt("cpu", key, current));
    };
    cpu.fetchWidth = cpu_int("fetch_width", cpu.fetchWidth);
    cpu.dispatchWidth = cpu_int("dispatch_width", cpu.dispatchWidth);
    cpu.retireWidth = cpu_int("retire_width", cpu.retireWidth);
    cpu.robEntries = cpu_int("rob_entries", cpu.robEntries);
    cpu.intLsIqEntries = cpu_int("intls_iq", cpu.intLsIqEntries);
    cpu.fpIqEntries = cpu_int("fp_iq", cpu.fpIqEntries);
    cpu.brIqEntries = cpu_int("br_iq", cpu.brIqEntries);
    cpu.numFxu = cpu_int("fxu", cpu.numFxu);
    cpu.numFpu = cpu_int("fpu", cpu.numFpu);
    cpu.numLsu = cpu_int("lsu", cpu.numLsu);
    cpu.numBru = cpu_int("bru", cpu.numBru);
    cpu.intPhysRegs = cpu_int("int_regs", cpu.intPhysRegs);
    cpu.fpPhysRegs = cpu_int("fp_regs", cpu.fpPhysRegs);
    cpu.storeQueueEntries = cpu_int("store_queue",
                                    cpu.storeQueueEntries);
    cpu.fetchBufferEntries = cpu_int("fetch_buffer",
                                     cpu.fetchBufferEntries);
    cpu.redirectPenalty = cpu_int("redirect_penalty",
                                  cpu.redirectPenalty);
    cpu.predictorBits = cpu_int("predictor_bits", cpu.predictorBits);
    cpu.historyBits = cpu_int("history_bits", cpu.historyBits);

    // ---- [mem] ----
    warnUnknownKeys(file, "mem",
                    {"l1d_kb", "l1d_ways", "l1i_kb", "l1i_ways",
                     "l2_kb", "l2_ways", "line_bytes", "l1_lat",
                     "l2_lat", "mem_lat", "tlb_entries",
                     "tlb_penalty"});
    auto &mem = conf.cpu.mem;
    auto mem_u64 = [&](const char *key, std::uint64_t current) {
        return static_cast<std::uint64_t>(
            file.getInt("mem", key,
                        static_cast<std::int64_t>(current)));
    };
    mem.l1d.sizeBytes = mem_u64("l1d_kb",
                                mem.l1d.sizeBytes / 1024) * 1024;
    mem.l1d.ways = static_cast<std::uint32_t>(
        mem_u64("l1d_ways", mem.l1d.ways));
    mem.l1i.sizeBytes = mem_u64("l1i_kb",
                                mem.l1i.sizeBytes / 1024) * 1024;
    mem.l1i.ways = static_cast<std::uint32_t>(
        mem_u64("l1i_ways", mem.l1i.ways));
    mem.l2.sizeBytes = mem_u64("l2_kb", mem.l2.sizeBytes / 1024) *
                       1024;
    mem.l2.ways = static_cast<std::uint32_t>(
        mem_u64("l2_ways", mem.l2.ways));
    std::uint32_t line = static_cast<std::uint32_t>(
        mem_u64("line_bytes", mem.l1d.lineBytes));
    mem.l1d.lineBytes = line;
    mem.l1i.lineBytes = line;
    mem.l2.lineBytes = line;
    mem.l1Latency = static_cast<std::uint32_t>(
        mem_u64("l1_lat", mem.l1Latency));
    mem.l2Latency = static_cast<std::uint32_t>(
        mem_u64("l2_lat", mem.l2Latency));
    mem.memLatency = static_cast<std::uint32_t>(
        mem_u64("mem_lat", mem.memLatency));
    std::uint32_t tlb_entries = static_cast<std::uint32_t>(
        mem_u64("tlb_entries", mem.dtlb.entries));
    mem.dtlb.entries = tlb_entries;
    mem.itlb.entries = tlb_entries;
    std::uint32_t tlb_penalty = static_cast<std::uint32_t>(
        mem_u64("tlb_penalty", mem.dtlb.missPenalty));
    mem.dtlb.missPenalty = tlb_penalty;
    mem.itlb.missPenalty = tlb_penalty;

    // ---- [lifecycle] ----
    warnUnknownKeys(file, "lifecycle",
                    {"enabled", "max_records", "latency_bins",
                     "hop_bins"});
    auto &lc = conf.lifecycle;
    lc.enabled = file.getBool("lifecycle", "enabled", lc.enabled);
    lc.maxRecordsPerStructure = static_cast<std::size_t>(
        file.getInt("lifecycle", "max_records",
                    static_cast<std::int64_t>(
                        lc.maxRecordsPerStructure)));
    lc.latencyBins = static_cast<std::size_t>(
        file.getInt("lifecycle", "latency_bins",
                    static_cast<std::int64_t>(lc.latencyBins)));
    lc.hopCountBins = static_cast<std::size_t>(
        file.getInt("lifecycle", "hop_bins",
                    static_cast<std::int64_t>(lc.hopCountBins)));
    if (lc.latencyBins == 0 || lc.hopCountBins == 0)
        fatal("config: lifecycle histogram bins must be positive");

    // ---- [workload] overrides ----
    warnUnknownKeys(file, "workload",
                    {"load_frac", "store_frac", "branch_frac",
                     "fp_frac", "dead_frac", "dep_recency",
                     "footprint_kb", "stream_frac", "branch_noise",
                     "seed"});
    auto apply = [&](trace::PhaseParams &p) {
        p.loadFrac = file.getDouble("workload", "load_frac",
                                    p.loadFrac);
        p.storeFrac = file.getDouble("workload", "store_frac",
                                     p.storeFrac);
        p.branchFrac = file.getDouble("workload", "branch_frac",
                                      p.branchFrac);
        p.fpFrac = file.getDouble("workload", "fp_frac", p.fpFrac);
        p.deadFrac = file.getDouble("workload", "dead_frac",
                                    p.deadFrac);
        p.depRecency = file.getDouble("workload", "dep_recency",
                                      p.depRecency);
        p.footprint = static_cast<std::uint64_t>(
            file.getInt("workload", "footprint_kb",
                        static_cast<std::int64_t>(
                            p.footprint / 1024))) * 1024;
        p.streamFrac = file.getDouble("workload", "stream_frac",
                                      p.streamFrac);
        p.branchNoise = file.getDouble("workload", "branch_noise",
                                       p.branchNoise);
    };
    apply(conf.profile.base);
    for (auto &phase : conf.profile.phases)
        apply(phase.params);
    conf.profile.seed = static_cast<std::uint64_t>(
        file.getInt("workload", "seed",
                    static_cast<std::int64_t>(conf.profile.seed)));

    conf.cpu.validate();
    return conf;
}

} // namespace avf::harness
