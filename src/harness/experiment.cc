#include "harness/experiment.hh"

#include <algorithm>
#include <memory>

#include "core/utilization_estimator.hh"
#include "cpu/pipeline.hh"
#include "softarch/ace_analyzer.hh"
#include "trace/synthetic.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace avf::harness
{

using core::Structure;

std::vector<double>
ExperimentResult::onlineSeries(Structure s) const
{
    std::vector<double> out;
    out.reserve(intervals.size());
    for (const auto &row : intervals)
        out.push_back(row.online[static_cast<std::size_t>(s)]);
    return out;
}

std::vector<double>
ExperimentResult::softarchSeries(Structure s) const
{
    std::vector<double> out;
    out.reserve(intervals.size());
    for (const auto &row : intervals)
        out.push_back(row.softarch[static_cast<std::size_t>(s)]);
    return out;
}

std::vector<double>
ExperimentResult::utilizationSeries(Structure s) const
{
    std::vector<double> out;
    out.reserve(intervals.size());
    std::size_t idx = s == Structure::FXU ? 0 : 1;
    avf_assert(s == Structure::FXU || s == Structure::FPU,
               "utilization defined for logic structures only");
    for (const auto &row : intervals)
        out.push_back(row.utilization[idx]);
    return out;
}

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    avf_assert(config.numIntervals > 0, "need at least one interval");

    const Cycle interval_len = config.online.m *
        static_cast<Cycle>(config.online.n);

    trace::SyntheticTraceGenerator generator(config.profile);
    cpu::Pipeline pipeline(config.cpu, generator);

    // Online estimators, one per structure / channel.
    std::vector<std::unique_ptr<core::OnlineAvfEstimator>> online;
    for (int s = 0; s < core::numStructures; ++s) {
        online.push_back(std::make_unique<core::OnlineAvfEstimator>(
            pipeline, static_cast<Structure>(s), config.online));
        pipeline.addObserver(online.back().get());
    }

    // SoftArch reference.
    softarch::SoftArchConfig sa_conf;
    sa_conf.intervalCycles = interval_len;
    sa_conf.lookahead = config.lookahead;
    softarch::AceAnalyzer reference(pipeline, sa_conf);
    pipeline.addObserver(&reference);

    // Utilization baseline for the logic structures.
    core::UtilizationEstimator util_fxu(pipeline, cpu::FuClass::Fxu,
                                        interval_len);
    core::UtilizationEstimator util_fpu(pipeline, cpu::FuClass::Fpu,
                                        interval_len);
    pipeline.addObserver(&util_fxu);
    pipeline.addObserver(&util_fpu);

    // Simulate: numIntervals intervals plus the SoftArch lookahead
    // (plus one spare window so every boundary event fires).
    const Cycle total = interval_len *
        static_cast<Cycle>(config.numIntervals) +
        config.lookahead + config.online.m;
    pipeline.run(total);
    reference.finalizeAll(static_cast<std::size_t>(
        config.numIntervals - 1));

    ExperimentResult result;
    result.benchmark = config.profile.name;

    auto intervals_available = static_cast<std::size_t>(
        config.numIntervals);
    for (const auto &est : online)
        intervals_available = std::min(intervals_available,
                                       est->estimates().size());
    intervals_available = std::min(intervals_available,
                                   reference.results().size());
    intervals_available = std::min(intervals_available,
                                   util_fxu.estimates().size());
    intervals_available = std::min(intervals_available,
                                   util_fpu.estimates().size());
    if (intervals_available <
        static_cast<std::size_t>(config.numIntervals)) {
        warn("experiment '%s': only %zu of %d intervals completed",
             config.profile.name.c_str(), intervals_available,
             config.numIntervals);
    }

    result.intervals.resize(intervals_available);
    for (std::size_t k = 0; k < intervals_available; ++k) {
        auto &row = result.intervals[k];
        for (int s = 0; s < core::numStructures; ++s)
            row.online[static_cast<std::size_t>(s)] =
                online[static_cast<std::size_t>(s)]->estimates()[k];
        for (int s = 0; s < core::numStructures; ++s)
            row.softarch[static_cast<std::size_t>(s)] =
                reference.results()[k].avf[static_cast<std::size_t>(s)];
        row.utilization[0] = util_fxu.estimates()[k];
        row.utilization[1] = util_fpu.estimates()[k];
    }

    const auto &stats = pipeline.stats();
    result.summary.ipc = stats.ipc();
    result.summary.branchAccuracy =
        pipeline.branchPredictor().stats().accuracy();
    result.summary.l1dMissRate = pipeline.memory().l1d().stats()
        .missRate();
    result.summary.l2MissRate = pipeline.memory().l2().stats()
        .missRate();
    result.summary.cycles = stats.cycles;
    result.summary.retired = stats.retired;
    return result;
}

int
defaultIntervals(int paperDefault)
{
    if (envFlag("AVF_FAST"))
        return 12;
    return static_cast<int>(envInt("AVF_INTERVALS", paperDefault));
}

} // namespace avf::harness
