#include "harness/experiment.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "control/throttle_controller.hh"
#include "core/avf_estimator.hh"
#include "core/occupancy_estimator.hh"
#include "core/utilization_estimator.hh"
#include "cpu/pipeline.hh"
#include "harness/config_loader.hh"
#include "harness/engine.hh"
#include "obs/attribution.hh"
#include "obs/control_feed.hh"
#include "obs/coverage_probe.hh"
#include "reliability/budget_arbiter.hh"
#include "softarch/ace_analyzer.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace avf::harness
{

using core::Structure;

std::vector<double>
ExperimentResult::onlineSeries(Structure s) const
{
    std::vector<double> out;
    out.reserve(intervals.size());
    for (const auto &row : intervals)
        out.push_back(row.online[static_cast<std::size_t>(s)]);
    return out;
}

std::vector<double>
ExperimentResult::softarchSeries(Structure s) const
{
    std::vector<double> out;
    out.reserve(intervals.size());
    for (const auto &row : intervals)
        out.push_back(row.softarch[static_cast<std::size_t>(s)]);
    return out;
}

std::vector<double>
ExperimentResult::utilizationSeries(Structure s) const
{
    // Utilization is only defined for the logic structures; for a
    // storage structure there is no underlying data, so return an
    // empty series instead of misreading a zeroed array slot.
    if (s != Structure::FXU && s != Structure::FPU)
        return {};
    std::vector<double> out;
    out.reserve(intervals.size());
    std::size_t idx = s == Structure::FXU ? 0 : 1;
    for (const auto &row : intervals)
        out.push_back(row.utilization[idx]);
    return out;
}

std::vector<double>
ExperimentResult::occupancySeries() const
{
    std::vector<double> out;
    out.reserve(intervals.size());
    for (const auto &row : intervals)
        out.push_back(row.occupancy);
    return out;
}

namespace
{

/**
 * Build the run's metrics snapshot from counters the simulation
 * tracks anyway. Runs once, after the simulation — recording adds
 * nothing to the per-cycle path, and every value is a function of
 * (trace, seed, config), so snapshots merge byte-identically at any
 * worker count.
 */
obs::MetricsSnapshot
collectRunMetrics(
    const ExperimentResult &result, const cpu::Pipeline &pipeline,
    const std::vector<std::unique_ptr<core::AvfEstimator>> &estimators)
{
    obs::MetricsShard shard;

    const auto &stats = pipeline.stats();
    shard.inc(shard.registerCounter("cycles_total"), stats.cycles);
    shard.inc(shard.registerCounter("instructions_fetched_total"),
              stats.fetched);
    shard.inc(shard.registerCounter("instructions_dispatched_total"),
              stats.dispatched);
    shard.inc(shard.registerCounter("instructions_issued_total"),
              stats.issued);
    shard.inc(shard.registerCounter("instructions_retired_total"),
              stats.retired);
    shard.inc(shard.registerCounter("fetch_stall_cycles_total"),
              stats.fetchStallCycles);
    shard.inc(shard.registerCounter("branch_redirects_total"),
              stats.redirects);

    for (int s = 0; s < core::numStructures; ++s) {
        const auto *est = static_cast<const core::OnlineAvfEstimator *>(
            estimators[static_cast<std::size_t>(s)].get());
        std::string base =
            "online_" +
            std::string(core::structureName(
                static_cast<Structure>(s)));
        shard.inc(shard.registerCounter(base + "_injections_total"),
                  est->totalInjections());
        shard.inc(shard.registerCounter(base + "_failures_total"),
                  est->totalFailures());
        shard.inc(shard.registerCounter(base + "_windows_closed_total"),
                  est->totalWindowsClosed());
        shard.inc(
            shard.registerCounter(base + "_live_injections_total"),
            est->totalLiveInjections());
    }

    if (result.lifecycle.enabled) {
        shard.inc(shard.registerCounter("lifecycle_records_total"),
                  result.summary.lifecycleRecords);
        shard.inc(shard.registerCounter("lifecycle_failures_total"),
                  result.summary.lifecycleFailures);
        shard.inc(shard.registerCounter("lifecycle_killed_total"),
                  result.summary.lifecycleKilled);
        shard.inc(shard.registerCounter("lifecycle_expired_total"),
                  result.summary.lifecycleExpired);
    }

    shard.set(shard.registerGauge("injection_lanes"),
              static_cast<double>(
                  static_cast<const core::OnlineAvfEstimator *>(
                      estimators[0].get())
                      ->laneCount()));
    shard.set(shard.registerGauge("ipc"), result.summary.ipc);
    shard.set(shard.registerGauge("branch_accuracy"),
              result.summary.branchAccuracy);
    shard.set(shard.registerGauge("l1d_miss_rate"),
              result.summary.l1dMissRate);
    shard.set(shard.registerGauge("l2_miss_rate"),
              result.summary.l2MissRate);
    shard.set(shard.registerGauge("dtlb_miss_rate"),
              result.summary.dtlbMissRate);

    for (int s = 0; s < core::numStructures; ++s) {
        auto structure = static_cast<Structure>(s);
        std::string name(core::structureName(structure));
        auto hist = shard.registerHistogram(
            "online_" + name + "_avf_hist", 0.0, 1.0, 20);
        auto online = shard.registerSeries("online_" + name + "_avf");
        auto softarch =
            shard.registerSeries("softarch_" + name + "_avf");
        for (const auto &row : result.intervals) {
            double avf = row.online[static_cast<std::size_t>(s)];
            shard.observe(hist, avf);
            shard.push(online, avf);
            shard.push(softarch,
                       row.softarch[static_cast<std::size_t>(s)]);
        }
    }
    auto util_fxu = shard.registerSeries("utilization_fxu");
    auto util_fpu = shard.registerSeries("utilization_fpu");
    auto occ_iq = shard.registerSeries("occupancy_iq");
    for (const auto &row : result.intervals) {
        shard.push(util_fxu, row.utilization[0]);
        shard.push(util_fpu, row.utilization[1]);
        shard.push(occ_iq, row.occupancy);
    }

    return shard.snapshot();
}

/**
 * Append every entry of @p src into @p dst. Used to fold the control
 * loop's shard into the run snapshot; the name sets are disjoint by
 * construction (control_* / budget_* vs the collectRunMetrics names),
 * so appending cannot shadow or double-count anything.
 */
void
appendSnapshot(obs::MetricsSnapshot &dst,
               const obs::MetricsSnapshot &src)
{
    dst.enabled = dst.enabled || src.enabled;
    dst.counters.insert(dst.counters.end(), src.counters.begin(),
                        src.counters.end());
    dst.gauges.insert(dst.gauges.end(), src.gauges.begin(),
                      src.gauges.end());
    dst.histograms.insert(dst.histograms.end(),
                          src.histograms.begin(),
                          src.histograms.end());
    dst.series.insert(dst.series.end(), src.series.begin(),
                      src.series.end());
}

} // namespace

namespace detail
{

ExperimentResult
runExperimentDirect(const ExperimentConfig &config)
{
    if (config.numIntervals <= 0)
        throw std::invalid_argument(
            "experiment: need at least one interval");
    if (config.online.m == 0 || config.online.n == 0)
        throw std::invalid_argument(
            "experiment: online M and N must be positive");
    if (config.online.lanes < 0 ||
        config.online.lanes > numErrorChannels)
        throw std::invalid_argument(
            "experiment: online lanes out of 0..64");

    // Fair-share lane split: the five online estimators divide the
    // 64-lane error plane, each getting min(requested, 64/5 = 12)
    // lanes. With L lanes per estimator an N-injection estimation
    // interval closes in ceil(N/L) window boundaries, so the interval
    // length every fixed-period observer (utilization, occupancy,
    // SoftArch reference) must march to compresses accordingly.
    // lanes <= 1 keeps the historical serial interval exactly.
    const int requested = config.online.lanes > 0
                              ? config.online.lanes
                              : 1;
    const int per_est = std::max(
        1, std::min(requested,
                    numErrorChannels / core::numStructures));
    const auto boundaries = static_cast<Cycle>(
        (config.online.n + static_cast<std::uint32_t>(per_est) - 1) /
        static_cast<std::uint32_t>(per_est));
    const Cycle interval_len = config.online.m * boundaries;

    trace::SyntheticTraceGenerator generator(config.profile);
    cpu::Pipeline pipeline(config.cpu, generator);

    // One InjectionPort serves every estimator of the run; it must
    // observe retirements before the estimators poll window state, so
    // it is the first observer attached. Reservation happens in
    // estimator construction order (structure order), which at
    // lanes=1 maps each estimator to exactly its legacy channel bit.
    core::InjectionPort port(pipeline);
    pipeline.addObserver(&port);

    core::OnlineConfig online_conf = config.online;
    online_conf.lanes = per_est;

    // The estimator roster, iterated generically below: online
    // estimators first (one per structure, slot = structure index),
    // then the utilization baselines and the occupancy baseline.
    std::vector<std::unique_ptr<core::AvfEstimator>> estimators;
    for (int s = 0; s < core::numStructures; ++s)
        estimators.push_back(
            std::make_unique<core::OnlineAvfEstimator>(
                pipeline, static_cast<Structure>(s), online_conf,
                &port));
    const std::size_t util_fxu_slot = estimators.size();
    estimators.push_back(std::make_unique<core::UtilizationEstimator>(
        pipeline, cpu::FuClass::Fxu, interval_len));
    estimators.push_back(std::make_unique<core::UtilizationEstimator>(
        pipeline, cpu::FuClass::Fpu, interval_len));
    const std::size_t occupancy_slot = estimators.size();
    estimators.push_back(std::make_unique<core::OccupancyEstimator>(
        pipeline, interval_len));

    // SoftArch reference (attached between the online estimators and
    // the counter baselines, matching the historical observer order).
    // Lane-compressed intervals can be shorter than the configured
    // ACE lookahead, which would make the reference's tail dominate
    // the run again and forfeit the compression. Clamp it to one
    // interval — but only in lane-parallel runs: serial (lanes=1)
    // campaigns keep the configured lookahead untouched so their
    // output stays byte-identical to the historical runs.
    Cycle eff_lookahead = config.lookahead;
    if (per_est > 1)
        eff_lookahead = std::min(eff_lookahead, interval_len);

    softarch::SoftArchConfig sa_conf;
    sa_conf.intervalCycles = interval_len;
    sa_conf.lookahead = eff_lookahead;
    sa_conf.fieldGranularIq = config.online.fieldGranularIq;
    softarch::AceAnalyzer reference(pipeline, sa_conf);

    for (std::size_t i = 0; i < util_fxu_slot; ++i)
        pipeline.addObserver(estimators[i].get());
    pipeline.addObserver(&reference);
    for (std::size_t i = util_fxu_slot; i < estimators.size(); ++i)
        pipeline.addObserver(estimators[i].get());

    // Regression features ride along so engine campaigns can fit and
    // evaluate the Walcott-style estimator without a second pass.
    core::FeatureCollector features(pipeline, interval_len);
    pipeline.addObserver(&features);

    // Lifecycle tracing: the tracker sees every injection open/close
    // from the estimators (LifecycleSink) and every error-bit hop from
    // the pipeline (onErrorHop). The window length must match the
    // estimators' M so expiry latency lands on the histogram edge.
    std::unique_ptr<obs::LifecycleTracker> tracker;
    if (config.lifecycle.enabled) {
        obs::LifecycleConfig lc_conf = config.lifecycle;
        lc_conf.windowCycles = config.online.m;
        tracker = std::make_unique<obs::LifecycleTracker>(lc_conf);
        pipeline.addObserver(tracker.get()); // onRetire failure watch
        pipeline.setHopSink(tracker.get());  // onErrorHop fast path
    }

    // Root-cause attribution: every closed window is charged to a
    // blame site (unit, phase, PC, op). Three coverage probes extend
    // injection to the structures the estimator roster never touches
    // — fetch buffer, rename map, branch predictor — each on its own
    // reserved lane (5 estimators x <= 12 lanes + 3 probes <= 63, so
    // the lane budget always closes). Probe N is the interval's
    // boundary count: one probe estimate per estimation interval.
    std::unique_ptr<obs::AttributionTracker> attribution;
    std::vector<std::unique_ptr<obs::CoverageProbe>> probes;
    if (config.attribution.enabled) {
        obs::AttributionConfig at_conf = config.attribution;
        if (at_conf.phaseCycles == 0)
            at_conf.phaseCycles = interval_len;
        if (at_conf.phaseCount == 0)
            at_conf.phaseCount =
                static_cast<std::uint32_t>(config.numIntervals);
        attribution =
            std::make_unique<obs::AttributionTracker>(at_conf);
        obs::CoverageProbeConfig probe_conf;
        probe_conf.m = config.online.m;
        probe_conf.n = static_cast<std::uint32_t>(boundaries);
        for (int t = 0; t < obs::numCoverageTargets; ++t) {
            probes.push_back(std::make_unique<obs::CoverageProbe>(
                pipeline, port, *attribution,
                static_cast<obs::CoverageTarget>(t), probe_conf));
            pipeline.addObserver(probes.back().get());
        }
    }

    // Estimator sink wiring: the lifecycle tracker and the
    // attribution tracker both watch through the one sink slot each
    // estimator has, teed when both are on.
    std::unique_ptr<obs::LifecycleTee> sink_tee;
    core::LifecycleSink *estimator_sink = nullptr;
    if (tracker && attribution) {
        sink_tee = std::make_unique<obs::LifecycleTee>(*tracker,
                                                       *attribution);
        estimator_sink = sink_tee.get();
    } else if (tracker) {
        estimator_sink = tracker.get();
    } else if (attribution) {
        estimator_sink = attribution.get();
    }
    if (estimator_sink) {
        for (int s = 0; s < core::numStructures; ++s) {
            static_cast<core::OnlineAvfEstimator *>(
                estimators[static_cast<std::size_t>(s)].get())
                ->setLifecycleSink(estimator_sink);
        }
    }

    // Closed-loop control (fully gated: a run without control attaches
    // nothing and stays byte-identical to the uncontrolled build). The
    // feed is attached after every estimator so a window that closes
    // in cycle C publishes in cycle C; the controller is attached
    // after the feed so it decides on fresh rows the same cycle. The
    // controller reads exclusively from the feed's published metrics
    // series — it holds no estimator reference.
    std::unique_ptr<obs::ControlFeed> feed;
    std::unique_ptr<reliability::BudgetArbiter> arbiter;
    std::unique_ptr<control::ThrottleController> controller;
    if (config.control.enabled) {
        feed = std::make_unique<obs::ControlFeed>(
            config.control.reportLatencyCycles);
        for (int s = 0; s < core::numStructures; ++s)
            feed->attachAvf(
                static_cast<Structure>(s),
                *estimators[static_cast<std::size_t>(s)]);
        feed->attachOccupancy(*estimators[occupancy_slot]);
        pipeline.addObserver(feed.get());
        if (config.control.mttfBudgetHours > 0.0)
            arbiter = std::make_unique<reliability::BudgetArbiter>(
                reliability::FitModel(
                    reliability::defaultFitModel(config.cpu)),
                config.control.mttfBudgetHours);
        controller = std::make_unique<control::ThrottleController>(
            pipeline, *feed, config.control.throttle, arbiter.get());
        pipeline.addObserver(controller.get());
    }

    // Simulate: numIntervals intervals plus the SoftArch lookahead
    // (plus one spare window so every boundary event fires).
    const Cycle total = interval_len *
        static_cast<Cycle>(config.numIntervals) +
        eff_lookahead + config.online.m;
    pipeline.run(total);
    reference.finalizeAll(static_cast<std::size_t>(
        config.numIntervals - 1));

    ExperimentResult result;
    result.benchmark = config.profile.name;

    auto intervals_available = static_cast<std::size_t>(
        config.numIntervals);
    for (const auto &est : estimators)
        intervals_available = std::min(intervals_available,
                                       est->estimates().size());
    intervals_available = std::min(intervals_available,
                                   reference.results().size());
    intervals_available = std::min(intervals_available,
                                   features.features().size());
    if (intervals_available <
        static_cast<std::size_t>(config.numIntervals)) {
        warn("experiment '%s': only %zu of %d intervals completed",
             config.profile.name.c_str(), intervals_available,
             config.numIntervals);
    }

    result.intervals.resize(intervals_available);
    for (std::size_t k = 0; k < intervals_available; ++k) {
        auto &row = result.intervals[k];
        for (int s = 0; s < core::numStructures; ++s)
            row.online[static_cast<std::size_t>(s)] =
                estimators[static_cast<std::size_t>(s)]
                    ->estimates()[k];
        for (int s = 0; s < core::numStructures; ++s)
            row.softarch[static_cast<std::size_t>(s)] =
                reference.results()[k].avf[static_cast<std::size_t>(s)];
        row.utilization[0] =
            estimators[util_fxu_slot]->estimates()[k];
        row.utilization[1] =
            estimators[util_fxu_slot + 1]->estimates()[k];
        row.occupancy = estimators[occupancy_slot]->estimates()[k];
    }
    result.features.assign(
        features.features().begin(),
        features.features().begin() +
            static_cast<std::ptrdiff_t>(intervals_available));

    const auto &stats = pipeline.stats();
    result.summary.ipc = stats.ipc();
    result.summary.branchAccuracy =
        pipeline.branchPredictor().stats().accuracy();
    result.summary.l1dMissRate = pipeline.memory().l1d().stats()
        .missRate();
    result.summary.l2MissRate = pipeline.memory().l2().stats()
        .missRate();
    const auto &dtlb = pipeline.memory().dtlb().stats();
    result.summary.dtlbMissRate = dtlb.accesses
        ? static_cast<double>(dtlb.misses) /
              static_cast<double>(dtlb.accesses)
        : 0.0;
    result.summary.cycles = stats.cycles;
    result.summary.retired = stats.retired;

    if (tracker) {
        // Self-check: the tracker's ledger must agree with each online
        // estimator's own counters. They watch the same retirement
        // stream independently, so any divergence is a real bug — fail
        // the task rather than export inconsistent data.
        for (int s = 0; s < core::numStructures; ++s) {
            const auto *est = static_cast<core::OnlineAvfEstimator *>(
                estimators[static_cast<std::size_t>(s)].get());
            std::string mismatch = tracker->reconcile(*est);
            if (!mismatch.empty())
                throw std::runtime_error(
                    "experiment '" + config.profile.name + "': " +
                    mismatch);
        }
        result.lifecycle = tracker->summary();
        result.summary.lifecycleRecords = result.lifecycle.totalClosed();
        result.summary.lifecycleFailures =
            result.lifecycle.totalFailures();
        result.summary.lifecycleKilled =
            result.lifecycle.totalWithOutcome(obs::Outcome::Killed);
        result.summary.lifecycleExpired =
            result.lifecycle.totalWithOutcome(obs::Outcome::Expired);
    }
    if (attribution)
        result.attribution = attribution->snapshot();
    if (controller) {
        auto &ctl = result.control;
        ctl.enabled = true;
        ctl.intervals = controller->intervals();
        ctl.throttledIntervals = controller->throttledIntervals();
        ctl.engagements = controller->engagements();
        ctl.actuations = controller->actuations();
        ctl.budgetExceededIntervals =
            controller->budgetExceededIntervals();
        ctl.protectActions = controller->protectActions();
        ctl.firstTarget = controller->firstTargetStructure();
        if (arbiter) {
            ctl.projectedMttfHours =
                arbiter->tracker().projectedMttfHours();
            for (int s = 0; s < core::numStructures; ++s)
                ctl.coverage[static_cast<std::size_t>(s)] =
                    arbiter->coverageOf(static_cast<Structure>(s));
        }
    }
    if (config.metrics) {
        result.metrics = collectRunMetrics(result, pipeline,
                                           estimators);
        // The decision trail exports through the same snapshot, read
        // from the very storage the controller decided on.
        if (feed)
            appendSnapshot(result.metrics,
                           feed->shard().snapshot());
    }
    if (config.snapshotEstimators) {
        // Quiesce-point snapshots for the serve layer's checkpoints:
        // the roster in construction order, then a synthetic entry
        // for the shared port's lane masks (diagnostic — resume
        // re-reserves lanes by rebuilding the roster, it never
        // replays masks).
        result.estimatorStates.reserve(estimators.size() +
                                       probes.size() + 1);
        for (const auto &est : estimators)
            result.estimatorStates.push_back(est->snapshotState());
        for (const auto &probe : probes)
            result.estimatorStates.push_back(probe->snapshotState());
        core::EstimatorState port_state;
        port_state.name = "port";
        port_state.counters = {
            {"reserved_mask", port.reservedMask()},
            {"open_mask", port.openMask()},
        };
        result.estimatorStates.push_back(std::move(port_state));
    }
    return result;
}

} // namespace detail

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    RunOptions options;
    options.threads = 1;
    ExperimentEngine engine(options);
    engine.submit(config.profile.name, config);
    auto tasks = engine.collect();
    auto &task = tasks.front();
    if (!task.ok()) {
        if (task.exception)
            std::rethrow_exception(task.exception);
        fatal("experiment '%s' failed: %s",
              config.profile.name.c_str(), task.errorText.c_str());
    }
    return std::move(task.result);
}

int
defaultIntervals(int paperDefault)
{
    return loadRunOptions(paperDefault).intervals;
}

} // namespace avf::harness
