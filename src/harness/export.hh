/**
 * @file
 * Machine-readable exports of experiment results: CSV for
 * spreadsheets, JSON for scripts, and gnuplot command files that
 * re-plot the paper's figures from the emitted data.
 */

#ifndef AVF_HARNESS_EXPORT_HH
#define AVF_HARNESS_EXPORT_HH

#include <string>
#include <string_view>
#include <vector>

#include "harness/engine.hh"
#include "harness/experiment.hh"

namespace avf::harness
{

/**
 * Minimal JSON string escaping: backslash, double quote, and control
 * characters (U+0000..U+001F, as \n, \t, ... or \u00XX). Everything
 * the JSON writers interpolate from runtime strings (benchmark names
 * in particular) must pass through here.
 */
std::string jsonEscape(std::string_view text);

/**
 * Write the per-interval series as CSV with the header
 * `interval,<struct>_online,<struct>_softarch,...,fxu_util,fpu_util`.
 * fatal() on I/O errors.
 */
void writeCsv(const ExperimentResult &result, const std::string &path);

/**
 * Write the full result (benchmark, summary, per-interval series, and
 * — when tracing was enabled — the per-structure lifecycle summary)
 * as a single JSON object. fatal() on I/O errors.
 */
void writeJson(const ExperimentResult &result,
               const std::string &path);

/**
 * Write the retained injection-lifecycle records as JSON Lines: one
 * object per record (structure, entry/field, liveness, cycles,
 * outcome, per-kind hop counts), ordered by structure then injection
 * cycle. Requires a result produced with lifecycle tracing enabled;
 * fatal() otherwise and on I/O errors.
 */
void writeLifecycleJsonl(const ExperimentResult &result,
                         const std::string &path);

/**
 * Write a gnuplot script that plots the Figure 4-style AVF traces
 * from a CSV produced by writeCsv().
 *
 * @param csvPath path the script will read.
 * @param scriptPath where to write the script.
 * @param title plot title (benchmark name).
 */
void writeGnuplotScript(const std::string &csvPath,
                        const std::string &scriptPath,
                        const std::string &title);

/**
 * Write a campaign's metrics snapshots as one `avf-metrics-v1` JSON
 * document: a "tasks" array (one entry per TaskResult, submission
 * order, each with its MetricsSnapshot) plus a "totals" object
 * folding every task's counters and histograms. Deterministic by
 * construction — snapshots contain no wall-clock data — so the bytes
 * are identical at any worker count. fatal() on I/O errors.
 */
void writeMetricsJson(const std::string &path,
                      const std::string &campaign,
                      const std::vector<TaskResult> &tasks);

/**
 * Write a campaign's root-cause attribution tables as one
 * `avf-rootcause-v1` JSON document: the submission-order fold of
 * every task's AttributionSnapshot (obs/attribution.hh), so the
 * bytes are identical at any worker count. fatal() when no task
 * carries attribution data and on I/O errors.
 */
void writeRootCauseJson(const std::string &path,
                        const std::string &campaign,
                        const std::vector<TaskResult> &tasks);

/**
 * Companion to exportCampaignMetrics() for attribution campaigns:
 * when the engine was built with a RunOptions::metricsPrefix
 * (AVF_METRICS), write <prefix>_ROOTCAUSE.json and report the path
 * on stderr. Written separately from the metrics pair so a bench can
 * export attribution without clobbering another campaign's
 * <prefix>_METRICS.json.
 *
 * @return true when the file was written, false when metrics are off.
 */
bool exportCampaignRootCause(const std::string &campaign,
                             const ExperimentEngine &engine,
                             const std::vector<TaskResult> &tasks);

/**
 * Write the campaign's wall-clock story as Chrome/Perfetto
 * trace_event JSON (obs/trace_export.hh): one "X" span per task on
 * its worker's lane, a synthetic per-task-phase lane built from a
 * util/timing PhaseAccumulator, and pool/task-latency summaries
 * under "otherData". Everything here is timing-dependent — this file
 * is never byte-compared. fatal() on I/O errors.
 */
void writeTraceJson(const std::string &path,
                    const std::string &campaign,
                    const ExperimentEngine &engine,
                    const std::vector<TaskResult> &tasks);

/**
 * The one-liner benches call after collect(): when the engine was
 * built with a RunOptions::metricsPrefix (AVF_METRICS), write
 * <prefix>_METRICS.json and <prefix>_TRACE.json for this campaign
 * and report the paths on stderr.
 *
 * @return true when files were written, false when metrics are off.
 */
bool exportCampaignMetrics(const std::string &campaign,
                           const ExperimentEngine &engine,
                           const std::vector<TaskResult> &tasks);

} // namespace avf::harness

#endif // AVF_HARNESS_EXPORT_HH
