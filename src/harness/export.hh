/**
 * @file
 * Machine-readable exports of experiment results: CSV for
 * spreadsheets, JSON for scripts, and gnuplot command files that
 * re-plot the paper's figures from the emitted data.
 */

#ifndef AVF_HARNESS_EXPORT_HH
#define AVF_HARNESS_EXPORT_HH

#include <string>

#include "harness/experiment.hh"

namespace avf::harness
{

/**
 * Write the per-interval series as CSV with the header
 * `interval,<struct>_online,<struct>_softarch,...,fxu_util,fpu_util`.
 * fatal() on I/O errors.
 */
void writeCsv(const ExperimentResult &result, const std::string &path);

/**
 * Write the full result (benchmark, summary, per-interval series) as
 * a single JSON object. fatal() on I/O errors.
 */
void writeJson(const ExperimentResult &result,
               const std::string &path);

/**
 * Write a gnuplot script that plots the Figure 4-style AVF traces
 * from a CSV produced by writeCsv().
 *
 * @param csvPath path the script will read.
 * @param scriptPath where to write the script.
 * @param title plot title (benchmark name).
 */
void writeGnuplotScript(const std::string &csvPath,
                        const std::string &scriptPath,
                        const std::string &title);

} // namespace avf::harness

#endif // AVF_HARNESS_EXPORT_HH
