#include "harness/export.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/structures.hh"
#include "obs/attribution.hh"
#include "obs/lifecycle.hh"
#include "obs/trace_export.hh"
#include "stats/histogram.hh"
#include "trace/instruction.hh"
#include "util/logging.hh"
#include "util/timing.hh"

namespace avf::harness
{

namespace
{

std::FILE *
openOrDie(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        fatal("cannot open '%s' for writing", path.c_str());
    return file;
}

/** Emit a histogram snapshot as a JSON object on @p file. */
void
printHistogram(std::FILE *file, const stats::HistogramSnapshot &hist)
{
    std::fprintf(file, "{\"lo\": %.1f, \"hi\": %.1f, \"bins\": [",
                 hist.lo, hist.hi);
    for (std::size_t b = 0; b < hist.bins.size(); ++b)
        std::fprintf(file, "%s%llu", b ? ", " : "",
                     static_cast<unsigned long long>(hist.bins[b]));
    std::fprintf(file,
                 "], \"underflow\": %llu, \"overflow\": %llu}",
                 static_cast<unsigned long long>(hist.underflow),
                 static_cast<unsigned long long>(hist.overflow));
}

} // namespace

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeCsv(const ExperimentResult &result, const std::string &path)
{
    std::FILE *file = openOrDie(path);

    std::fprintf(file, "interval");
    for (int s = 0; s < core::numStructures; ++s) {
        auto name = core::structureName(
            static_cast<core::Structure>(s));
        std::fprintf(file, ",%.*s_online,%.*s_softarch",
                     static_cast<int>(name.size()), name.data(),
                     static_cast<int>(name.size()), name.data());
    }
    std::fprintf(file, ",fxu_util,fpu_util\n");

    for (std::size_t k = 0; k < result.intervals.size(); ++k) {
        const auto &row = result.intervals[k];
        std::fprintf(file, "%zu", k);
        for (int s = 0; s < core::numStructures; ++s)
            std::fprintf(file, ",%.6f,%.6f",
                         row.online[static_cast<std::size_t>(s)],
                         row.softarch[static_cast<std::size_t>(s)]);
        std::fprintf(file, ",%.6f,%.6f\n", row.utilization[0],
                     row.utilization[1]);
    }
    if (std::fclose(file) != 0)
        fatal("error closing '%s'", path.c_str());
}

void
writeJson(const ExperimentResult &result, const std::string &path)
{
    std::FILE *file = openOrDie(path);

    std::fprintf(file, "{\n  \"benchmark\": \"%s\",\n",
                 jsonEscape(result.benchmark).c_str());
    std::fprintf(file,
                 "  \"summary\": {\"ipc\": %.4f, "
                 "\"branch_accuracy\": %.4f, \"l1d_miss\": %.4f, "
                 "\"l2_miss\": %.4f, \"cycles\": %llu, "
                 "\"retired\": %llu},\n",
                 result.summary.ipc, result.summary.branchAccuracy,
                 result.summary.l1dMissRate, result.summary.l2MissRate,
                 static_cast<unsigned long long>(result.summary.cycles),
                 static_cast<unsigned long long>(
                     result.summary.retired));
    std::fprintf(file, "  \"intervals\": [\n");
    for (std::size_t k = 0; k < result.intervals.size(); ++k) {
        const auto &row = result.intervals[k];
        std::fprintf(file, "    {\"k\": %zu", k);
        for (int s = 0; s < core::numStructures; ++s) {
            auto name = core::structureName(
                static_cast<core::Structure>(s));
            std::fprintf(
                file,
                ", \"%.*s\": {\"online\": %.6f, \"softarch\": %.6f}",
                static_cast<int>(name.size()), name.data(),
                row.online[static_cast<std::size_t>(s)],
                row.softarch[static_cast<std::size_t>(s)]);
        }
        std::fprintf(file,
                     ", \"util\": {\"fxu\": %.6f, \"fpu\": %.6f}}%s\n",
                     row.utilization[0], row.utilization[1],
                     k + 1 == result.intervals.size() ? "" : ",");
    }
    std::fprintf(file, "  ]%s\n",
                 result.lifecycle.enabled ? "," : "");

    if (result.lifecycle.enabled) {
        std::fprintf(file, "  \"lifecycle\": {\n");
        for (int s = 0; s < core::numStructures; ++s) {
            const auto &sum =
                result.lifecycle.structures[static_cast<std::size_t>(s)];
            auto name = core::structureName(
                static_cast<core::Structure>(s));
            std::fprintf(file,
                         "    \"%.*s\": {\"closed\": %llu, "
                         "\"open_at_end\": %llu, \"live\": %llu, "
                         "\"dropped\": %llu,\n",
                         static_cast<int>(name.size()), name.data(),
                         static_cast<unsigned long long>(sum.closed),
                         static_cast<unsigned long long>(sum.openAtEnd),
                         static_cast<unsigned long long>(sum.live),
                         static_cast<unsigned long long>(sum.dropped));
            std::fprintf(file, "      \"outcomes\": {");
            for (int o = 0; o < obs::numOutcomes; ++o) {
                auto oname = obs::outcomeName(
                    static_cast<obs::Outcome>(o));
                std::fprintf(
                    file, "%s\"%.*s\": %llu", o ? ", " : "",
                    static_cast<int>(oname.size()), oname.data(),
                    static_cast<unsigned long long>(
                        sum.outcomes[static_cast<std::size_t>(o)]));
            }
            std::fprintf(file, "},\n      \"hops\": {");
            for (int h = 0; h < cpu::numErrorHops; ++h) {
                const char *hname = cpu::errorHopName(
                    static_cast<cpu::ErrorHop>(h));
                std::fprintf(
                    file, "%s\"%s\": %llu", h ? ", " : "", hname,
                    static_cast<unsigned long long>(
                        sum.hopTotals[static_cast<std::size_t>(h)]));
            }
            std::fprintf(file,
                         "},\n      \"latency\": {\"mean\": %.4f, "
                         "\"stddev\": %.4f, \"min\": %.1f, "
                         "\"max\": %.1f},\n",
                         sum.latencyMean, sum.latencyStddev,
                         sum.latencyMin, sum.latencyMax);
            std::fprintf(file, "      \"latency_hist\": ");
            printHistogram(file, sum.latencyHist);
            std::fprintf(file, ",\n      \"hop_count_hist\": ");
            printHistogram(file, sum.hopCountHist);
            std::fprintf(file, "}%s\n",
                         s + 1 == core::numStructures ? "" : ",");
        }
        std::fprintf(file, "  }\n");
    }

    std::fprintf(file, "}\n");
    if (std::fclose(file) != 0)
        fatal("error closing '%s'", path.c_str());
}

void
writeLifecycleJsonl(const ExperimentResult &result,
                    const std::string &path)
{
    if (!result.lifecycle.enabled)
        fatal("writeLifecycleJsonl('%s'): result has no lifecycle "
              "data (run with lifecycle tracing enabled)",
              path.c_str());

    std::FILE *file = openOrDie(path);
    std::string bench = jsonEscape(result.benchmark);

    // First line: a legend record naming the hop kinds and outcomes
    // the record lines key their objects on, so a reader never has
    // to hard-code the cpu::ErrorHop taxonomy. Readers distinguish
    // it by its "legend" key (record lines have none).
    std::fprintf(file, "{\"legend\": true, \"hop_kinds\": [");
    for (int h = 0; h < cpu::numErrorHops; ++h)
        std::fprintf(file, "%s\"%s\"", h ? ", " : "",
                     cpu::errorHopName(static_cast<cpu::ErrorHop>(h)));
    std::fprintf(file, "], \"outcomes\": [");
    for (int o = 0; o < obs::numOutcomes; ++o) {
        auto oname = obs::outcomeName(static_cast<obs::Outcome>(o));
        std::fprintf(file, "%s\"%.*s\"", o ? ", " : "",
                     static_cast<int>(oname.size()), oname.data());
    }
    std::fprintf(file, "]}\n");

    for (int s = 0; s < core::numStructures; ++s) {
        const auto &sum =
            result.lifecycle.structures[static_cast<std::size_t>(s)];
        auto name = core::structureName(static_cast<core::Structure>(s));
        for (const auto &rec : sum.records) {
            auto oname = obs::outcomeName(rec.outcome);
            std::fprintf(
                file,
                "{\"benchmark\": \"%s\", \"structure\": \"%.*s\", "
                "\"lane\": %d, "
                "\"entry\": %d, \"field\": %d, \"live\": %s, "
                "\"inject_cycle\": %llu, \"close_cycle\": %llu, "
                "\"outcome_cycle\": %llu, \"outcome\": \"%.*s\", "
                "\"latency\": %llu, ",
                bench.c_str(), static_cast<int>(name.size()),
                name.data(), rec.lane, rec.entry, rec.field,
                rec.live ? "true" : "false",
                static_cast<unsigned long long>(rec.injectCycle),
                static_cast<unsigned long long>(rec.closeCycle),
                static_cast<unsigned long long>(rec.outcomeCycle),
                static_cast<int>(oname.size()), oname.data(),
                static_cast<unsigned long long>(rec.latency()));
            // Blame identity of failure records ("-"/0 otherwise).
            auto opname =
                rec.blameOp >= 0
                    ? trace::opClassName(
                          static_cast<trace::OpClass>(rec.blameOp))
                    : std::string_view("-");
            std::fprintf(
                file, "\"blame_pc\": %llu, \"blame_op\": \"%.*s\", "
                "\"hops\": {",
                static_cast<unsigned long long>(rec.blamePc),
                static_cast<int>(opname.size()), opname.data());
            for (int h = 0; h < cpu::numErrorHops; ++h) {
                std::fprintf(
                    file, "%s\"%s\": %u", h ? ", " : "",
                    cpu::errorHopName(static_cast<cpu::ErrorHop>(h)),
                    rec.hops[static_cast<std::size_t>(h)]);
            }
            std::fprintf(file, "}}\n");
        }
    }
    if (std::fclose(file) != 0)
        fatal("error closing '%s'", path.c_str());
}

void
writeMetricsJson(const std::string &path, const std::string &campaign,
                 const std::vector<TaskResult> &tasks)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());

    out << "{\n  \"schema\": \"" << obs::metricsSchemaVersion
        << "\",\n  \"campaign\": \"" << jsonEscape(campaign)
        << "\",\n  \"tasks\": [\n";
    obs::MetricsSnapshot totals;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto &task = tasks[i];
        out << "    {\"name\": \"" << jsonEscape(task.name)
            << "\", \"index\": " << task.index << ", \"ok\": "
            << (task.ok() ? "true" : "false") << ", \"metrics\": ";
        task.result.metrics.writeJson(out, 4);
        out << "}" << (i + 1 == tasks.size() ? "" : ",") << "\n";
        if (task.ok())
            totals.mergeTotals(task.result.metrics);
    }
    out << "  ],\n  \"totals\": ";
    totals.writeJson(out, 2);
    out << "\n}\n";

    out.close();
    if (!out)
        fatal("error closing '%s'", path.c_str());
}

void
writeTraceJson(const std::string &path, const std::string &campaign,
               const ExperimentEngine &engine,
               const std::vector<TaskResult> &tasks)
{
    obs::TraceWriter trace;
    trace.setProcessName(campaign);

    const unsigned workers = engine.threadCount();
    for (unsigned w = 0; w < workers; ++w)
        trace.setThreadName(w, "worker " + std::to_string(w));
    const std::uint32_t phaseLane = workers;
    trace.setThreadName(phaseLane, "phases (aggregate)");

    // Per-task spans on their worker's lane, and a per-task-name
    // phase accumulator feeding the aggregate lane.
    timing::PhaseAccumulator phases;
    std::uint64_t campaignStartNs = 0;
    double maxWallMs = 0.0;
    for (const auto &task : tasks) {
        if (task.endNs <= task.startNs)
            continue;
        if (campaignStartNs == 0 || task.startNs < campaignStartNs)
            campaignStartNs = task.startNs;
        maxWallMs = std::max(maxWallMs, task.wallMs);
        obs::TraceSpan span;
        span.name = task.name;
        span.category = "task";
        span.beginNs = task.startNs;
        span.durNs = task.endNs - task.startNs;
        span.tid = task.worker >= 0
            ? static_cast<std::uint32_t>(task.worker)
            : phaseLane;
        span.args = {
            {"index", static_cast<double>(task.index)},
            {"ok", task.ok() ? 1.0 : 0.0},
            {"wall_ms", task.wallMs},
        };
        trace.addSpan(std::move(span));
        phases.add(task.name, static_cast<double>(task.endNs -
                                                  task.startNs));
    }
    trace.addPhases(phases, phaseLane, campaignStartNs);

    const auto pool = engine.poolStats();
    std::ostringstream poolJson;
    poolJson << "{\"workers\": " << workers << ", \"submitted\": "
             << pool.submitted << ", \"executed\": " << pool.executed
             << ", \"max_queue_depth\": " << pool.maxQueueDepth
             << "}";
    trace.addOtherData("thread_pool", poolJson.str());

    // Task-latency histogram (milliseconds, uniform buckets sized to
    // the slowest task). Wall-clock data: trace side channel only.
    stats::Histogram latency(0.0, maxWallMs > 0 ? maxWallMs * 1.001
                                                : 1.0, 20);
    for (const auto &task : tasks)
        latency.add(task.wallMs);
    const auto snap = latency.snapshot();
    std::ostringstream latencyJson;
    latencyJson << "{\"unit\": \"ms\", \"lo\": " << snap.lo
                << ", \"hi\": " << snap.hi << ", \"bins\": [";
    for (std::size_t b = 0; b < snap.bins.size(); ++b)
        latencyJson << (b ? ", " : "") << snap.bins[b];
    latencyJson << "], \"underflow\": " << snap.underflow
                << ", \"overflow\": " << snap.overflow << "}";
    trace.addOtherData("task_latency_ms", latencyJson.str());

    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    trace.writeJson(out);
    out.close();
    if (!out)
        fatal("error closing '%s'", path.c_str());
}

void
writeRootCauseJson(const std::string &path,
                   const std::string &campaign,
                   const std::vector<TaskResult> &tasks)
{
    // Submission-order fold, like writeMetricsJson's totals: the
    // bytes are identical at any worker count by construction.
    obs::AttributionSnapshot totals;
    for (const auto &task : tasks) {
        if (task.ok())
            totals.mergeFrom(task.result.attribution);
    }
    if (!totals.enabled)
        fatal("writeRootCauseJson('%s'): no task carries attribution "
              "data (run with attribution enabled)",
              path.c_str());

    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << "{\n  \"schema\": \"" << obs::rootCauseSchemaVersion
        << "\",\n  \"campaign\": \"" << jsonEscape(campaign)
        << "\",\n  \"attribution\": ";
    totals.writeJson(out, 2);
    out << "\n}\n";
    out.close();
    if (!out)
        fatal("error closing '%s'", path.c_str());
}

bool
exportCampaignRootCause(const std::string &campaign,
                        const ExperimentEngine &engine,
                        const std::vector<TaskResult> &tasks)
{
    const std::string &prefix = engine.options().metricsPrefix;
    if (prefix.empty())
        return false;
    const std::string path = prefix + "_ROOTCAUSE.json";
    writeRootCauseJson(path, campaign, tasks);
    // stderr, not stdout: campaign stdout is byte-compared.
    inform("root-cause: wrote %s", path.c_str());
    return true;
}

bool
exportCampaignMetrics(const std::string &campaign,
                      const ExperimentEngine &engine,
                      const std::vector<TaskResult> &tasks)
{
    const std::string &prefix = engine.options().metricsPrefix;
    if (prefix.empty())
        return false;
    const std::string metricsPath = prefix + "_METRICS.json";
    const std::string tracePath = prefix + "_TRACE.json";
    writeMetricsJson(metricsPath, campaign, tasks);
    writeTraceJson(tracePath, campaign, engine, tasks);
    // stderr, not stdout: campaign stdout is byte-compared.
    inform("metrics: wrote %s and %s", metricsPath.c_str(),
           tracePath.c_str());
    return true;
}

void
writeGnuplotScript(const std::string &csvPath,
                   const std::string &scriptPath,
                   const std::string &title)
{
    std::FILE *file = openOrDie(scriptPath);
    // One panel per structure, from the same enum walk writeCsv()
    // uses for its header — names, column indices, and panel count
    // all stay in lockstep when core::Structure grows.
    const int rows = (core::numStructures + 1) / 2;
    std::fprintf(file,
                 "set datafile separator ','\n"
                 "set key outside\n"
                 "set xlabel 'estimation interval (1M cycles)'\n"
                 "set ylabel 'AVF'\n"
                 "set yrange [0:0.6]\n"
                 "set terminal pngcairo size 1200,%d\n"
                 "set output '%s_avf.png'\n"
                 "set multiplot layout %d,2 title 'AVF for %s "
                 "(Figure 4 style)'\n",
                 400 * rows, title.c_str(), rows, title.c_str());
    // Columns: 1=interval, then an online/softarch pair per structure
    // in enum order (writeCsv's layout).
    for (int s = 0; s < core::numStructures; ++s) {
        auto name = core::structureName(
            static_cast<core::Structure>(s));
        int online_col = 2 + 2 * s;
        int softarch_col = online_col + 1;
        std::fprintf(file,
                     "set title '%.*s'\n"
                     "plot '%s' every ::1 using 1:%d with lines "
                     "title 'Real (SoftArch)', \\\n"
                     "     '%s' every ::1 using 1:%d with lines "
                     "title 'Online estimate'\n",
                     static_cast<int>(name.size()), name.data(),
                     csvPath.c_str(), softarch_col,
                     csvPath.c_str(), online_col);
    }
    std::fprintf(file, "unset multiplot\n");
    if (std::fclose(file) != 0)
        fatal("error closing '%s'", scriptPath.c_str());
}

} // namespace avf::harness
