#include "harness/export.hh"

#include <cstdio>

#include "core/structures.hh"
#include "util/logging.hh"

namespace avf::harness
{

namespace
{

std::FILE *
openOrDie(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        fatal("cannot open '%s' for writing", path.c_str());
    return file;
}

} // namespace

void
writeCsv(const ExperimentResult &result, const std::string &path)
{
    std::FILE *file = openOrDie(path);

    std::fprintf(file, "interval");
    for (int s = 0; s < core::numStructures; ++s) {
        auto name = core::structureName(
            static_cast<core::Structure>(s));
        std::fprintf(file, ",%.*s_online,%.*s_softarch",
                     static_cast<int>(name.size()), name.data(),
                     static_cast<int>(name.size()), name.data());
    }
    std::fprintf(file, ",fxu_util,fpu_util\n");

    for (std::size_t k = 0; k < result.intervals.size(); ++k) {
        const auto &row = result.intervals[k];
        std::fprintf(file, "%zu", k);
        for (int s = 0; s < core::numStructures; ++s)
            std::fprintf(file, ",%.6f,%.6f",
                         row.online[static_cast<std::size_t>(s)],
                         row.softarch[static_cast<std::size_t>(s)]);
        std::fprintf(file, ",%.6f,%.6f\n", row.utilization[0],
                     row.utilization[1]);
    }
    if (std::fclose(file) != 0)
        fatal("error closing '%s'", path.c_str());
}

void
writeJson(const ExperimentResult &result, const std::string &path)
{
    std::FILE *file = openOrDie(path);

    std::fprintf(file, "{\n  \"benchmark\": \"%s\",\n",
                 result.benchmark.c_str());
    std::fprintf(file,
                 "  \"summary\": {\"ipc\": %.4f, "
                 "\"branch_accuracy\": %.4f, \"l1d_miss\": %.4f, "
                 "\"l2_miss\": %.4f, \"cycles\": %llu, "
                 "\"retired\": %llu},\n",
                 result.summary.ipc, result.summary.branchAccuracy,
                 result.summary.l1dMissRate, result.summary.l2MissRate,
                 static_cast<unsigned long long>(result.summary.cycles),
                 static_cast<unsigned long long>(
                     result.summary.retired));
    std::fprintf(file, "  \"intervals\": [\n");
    for (std::size_t k = 0; k < result.intervals.size(); ++k) {
        const auto &row = result.intervals[k];
        std::fprintf(file, "    {\"k\": %zu", k);
        for (int s = 0; s < core::numStructures; ++s) {
            auto name = core::structureName(
                static_cast<core::Structure>(s));
            std::fprintf(
                file,
                ", \"%.*s\": {\"online\": %.6f, \"softarch\": %.6f}",
                static_cast<int>(name.size()), name.data(),
                row.online[static_cast<std::size_t>(s)],
                row.softarch[static_cast<std::size_t>(s)]);
        }
        std::fprintf(file,
                     ", \"util\": {\"fxu\": %.6f, \"fpu\": %.6f}}%s\n",
                     row.utilization[0], row.utilization[1],
                     k + 1 == result.intervals.size() ? "" : ",");
    }
    std::fprintf(file, "  ]\n}\n");
    if (std::fclose(file) != 0)
        fatal("error closing '%s'", path.c_str());
}

void
writeGnuplotScript(const std::string &csvPath,
                   const std::string &scriptPath,
                   const std::string &title)
{
    std::FILE *file = openOrDie(scriptPath);
    std::fprintf(file,
                 "set datafile separator ','\n"
                 "set key outside\n"
                 "set xlabel 'estimation interval (1M cycles)'\n"
                 "set ylabel 'AVF'\n"
                 "set yrange [0:0.6]\n"
                 "set terminal pngcairo size 1200,800\n"
                 "set output '%s_avf.png'\n"
                 "set multiplot layout 2,2 title 'AVF for %s "
                 "(Figure 4 style)'\n",
                 title.c_str(), title.c_str());
    // Columns: 1=interval, then pairs per structure in enum order.
    const char *names[] = {"iq", "reg", "fxu", "fpu"};
    for (int s = 0; s < 4; ++s) {
        int online_col = 2 + 2 * s;
        int softarch_col = online_col + 1;
        std::fprintf(file,
                     "set title '%s'\n"
                     "plot '%s' every ::1 using 1:%d with lines "
                     "title 'Real (SoftArch)', \\\n"
                     "     '%s' every ::1 using 1:%d with lines "
                     "title 'Online estimate'\n",
                     names[s], csvPath.c_str(), softarch_col,
                     csvPath.c_str(), online_col);
    }
    std::fprintf(file, "unset multiplot\n");
    if (std::fclose(file) != 0)
        fatal("error closing '%s'", scriptPath.c_str());
}

} // namespace avf::harness
