/**
 * @file
 * Soft-error reliability arithmetic connecting AVF to MTTF, following
 * the sum-of-failure-rates (SOFR) model the paper relies on (Section
 * 1, citing Li et al. [5]): each structure contributes a failure rate
 *
 *     FIT_i = rawFitPerBit * bits_i * AVF_i * (1 - coverage_i),
 *
 * where coverage models protection (parity+recovery, ECC, ...), and
 *
 *     MTTF = 1e9 hours / sum_i FIT_i.
 *
 * The raw FIT/bit is a technology constant; AVF is what this
 * repository estimates online, which is exactly what makes dynamic
 * MTTF tracking and AVF-aware protection provisioning possible.
 */

#ifndef AVF_RELIABILITY_FIT_MODEL_HH
#define AVF_RELIABILITY_FIT_MODEL_HH

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/structures.hh"
#include "cpu/config.hh"

namespace avf::reliability
{

/** One structure's contribution to the chip failure rate. */
struct StructureFit
{
    /** Which structure. */
    core::Structure structure = core::Structure::IQ;
    /** Raw (unmasked, unprotected) susceptible bits. */
    double bits = 0.0;
    /**
     * Fraction of raw errors the protection scheme removes
     * (0 = unprotected, 1 = fully protected, e.g. ECC ~ 0.99+).
     */
    double coverage = 0.0;
};

/** Technology + protection description of the modeled chip. */
struct FitModelConfig
{
    /** Raw soft-error rate per bit, in FIT (failures / 1e9 hours). */
    double rawFitPerBit = 1e-3;
    /** Structures included in the SOFR sum. */
    std::vector<StructureFit> structures;
};

/**
 * Derive a default bit inventory from the machine configuration:
 * 64-bit registers, ~128-bit issue-queue entries, and an effective
 * latch count per functional unit.
 */
FitModelConfig defaultFitModel(const cpu::CpuConfig &machine);

/** SOFR reliability calculator. */
class FitModel
{
  public:
    /** Build from @p config; fatal() on nonsensical values. */
    explicit FitModel(FitModelConfig config);

    /**
     * Chip-level failure rate in FIT for one interval's AVFs.
     *
     * @param avf per-structure AVF, indexed by core::Structure
     *        (entries for structures absent from the model are
     *        ignored).
     */
    double
    fit(const std::array<double, core::numStructures> &avf) const;

    /** MTTF in hours for one interval's AVFs (SOFR). */
    double
    mttfHours(const std::array<double, core::numStructures> &avf)
        const;

    /**
     * MTTF over a whole run: SOFR with the time-average failure rate
     * across intervals (the standard handling of phased behaviour).
     */
    double mttfHoursOverRun(
        const std::vector<std::array<double, core::numStructures>>
            &avfSeries) const;

    /**
     * Worst-case (AVF-oblivious) failure rate: what a designer must
     * assume without AVF knowledge — every bit ACE all the time.
     */
    double worstCaseFit() const;

    /**
     * Set the protection coverage of one structure (used by adaptive
     * protection policies).
     */
    void setCoverage(core::Structure structure, double coverage);

    /**
     * One structure's FIT contribution at @p avf, including its
     * current coverage; 0 when the structure is absent from the
     * model. The SOFR attribution the BudgetArbiter ranks by.
     */
    double structureFit(core::Structure structure, double avf) const;

    /** Current protection coverage of @p structure (0 when absent). */
    double coverageOf(core::Structure structure) const;

    /** The model's configuration. */
    const FitModelConfig &config() const { return conf; }

  private:
    FitModelConfig conf;
};

} // namespace avf::reliability

#endif // AVF_RELIABILITY_FIT_MODEL_HH
