/**
 * @file
 * Arbitration of a chip-level MTTF budget across structures. Each
 * estimation interval the arbiter folds the per-structure AVF row
 * into its MttfTracker, compares the interval's SOFR failure rate
 * against the rate the budget allows, and — while over budget —
 * names the structure contributing the most FIT as the one to act on
 * first. Occupancy-driven structures (IQ, REG) are throttleable:
 * fewer instructions in flight directly lowers their AVF. The rest
 * (FXU, FPU, FREG) are protected instead: the arbiter raises their
 * model coverage just enough to bring the interval's rate back to
 * the budget, the provisioning move of the paper's introduction
 * ("more protection during highly vulnerable periods").
 *
 * The exceeded state is hysteretic: it engages when an interval's
 * FIT rises above the budget rate and releases only when FIT falls
 * below releaseMargin * budget rate, so a rate that hovers at the
 * budget cannot thrash the actuators.
 */

#ifndef AVF_RELIABILITY_BUDGET_ARBITER_HH
#define AVF_RELIABILITY_BUDGET_ARBITER_HH

#include <array>
#include <cstdint>

#include "reliability/mttf_tracker.hh"

namespace avf::reliability
{

/** What the arbiter decided for one estimation interval. */
struct BudgetDecision
{
    /** Actuator the decision calls for. */
    enum class Action
    {
        None,     ///< within budget; leave everything alone
        Throttle, ///< target is occupancy-driven: throttle dispatch
        Protect   ///< target is logic/FP: raise protection coverage
    };

    /** True while the budget is exceeded (hysteretic). */
    bool exceeded = false;
    /** Structure contributing the most FIT this interval. */
    core::Structure target = core::Structure::IQ;
    /** Recommended actuation (None when within budget). */
    Action action = Action::None;
    /** This interval's SOFR failure rate (FIT). */
    double intervalFit = 0.0;
    /** Running-average MTTF projection (hours). */
    double projectedMttfHours = 0.0;
    /** The target's FIT contribution this interval. */
    double targetFit = 0.0;
    /** The target's protection coverage after this decision. */
    double coverage = 0.0;
    /** Per-structure FIT attribution, indexed by core::Structure. */
    std::array<double, core::numStructures> structureFit{};
};

/** MTTF-budget arbiter over the SOFR model. */
class BudgetArbiter
{
  public:
    /**
     * @param model failure-rate model (copied into the tracker; the
     *        arbiter owns and may mutate coverage).
     * @param budgetMttfHours the MTTF the chip must sustain
     *        (AVF_MTTF_BUDGET_HOURS); must be positive.
     * @param releaseMargin fraction of the budget rate below which
     *        the exceeded state releases, in (0, 1]; 1 disables the
     *        hysteresis band.
     */
    BudgetArbiter(FitModel model, double budgetMttfHours,
                  double releaseMargin = 0.9);

    /**
     * Fold one interval's per-structure AVFs and decide. Coverage
     * changes a Protect decision applies take effect from the next
     * interval on.
     */
    BudgetDecision decide(
        const std::array<double, core::numStructures> &avf);

    /** The rolling MTTF accounting behind the decisions. */
    const MttfTracker &tracker() const { return mttf; }

    /** The budget, in hours. */
    double budgetHours() const { return goalHours; }

    /** Failure rate the budget allows (FIT). */
    double goalFit() const { return goalRate; }

    /** Intervals decided while the budget was exceeded. */
    std::uint64_t exceededIntervals() const { return overBudget; }

    /** Current protection coverage of @p structure. */
    double coverageOf(core::Structure structure) const
    {
        return mttf.model().coverageOf(structure);
    }

    /**
     * True when the dispatch throttle can lower @p structure's AVF:
     * the occupancy-driven storage structures (IQ, REG). FXU/FPU
     * vulnerability tracks utilization, not queue depth, and FREG
     * lifetimes are workload-bound — those are protected instead.
     */
    static bool throttleable(core::Structure structure)
    {
        return structure == core::Structure::IQ ||
               structure == core::Structure::REG;
    }

  private:
    MttfTracker mttf;
    double goalHours;
    double goalRate;
    double releaseMargin;
    bool engagedState = false;
    std::uint64_t overBudget = 0;
};

} // namespace avf::reliability

#endif // AVF_RELIABILITY_BUDGET_ARBITER_HH
