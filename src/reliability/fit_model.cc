#include "reliability/fit_model.hh"

#include "util/logging.hh"

namespace avf::reliability
{

namespace
{

/** Hours per 1e9 device-hours (the FIT normalization). */
constexpr double fitHours = 1e9;

} // namespace

FitModelConfig
defaultFitModel(const cpu::CpuConfig &machine)
{
    FitModelConfig conf;
    using core::Structure;

    // Issue-queue entries hold a renamed instruction: opcode, three
    // source tags, a destination tag, immediates — model ~128 bits.
    conf.structures.push_back(
        {Structure::IQ,
         static_cast<double>(machine.totalIqEntries()) * 128.0, 0.0});
    // 64-bit integer registers.
    conf.structures.push_back(
        {Structure::REG,
         static_cast<double>(machine.intPhysRegs) * 64.0, 0.0});
    // Effective susceptible latch count per unit (pipeline registers
    // and control), a few thousand bits per execution pipe.
    conf.structures.push_back(
        {Structure::FXU, static_cast<double>(machine.numFxu) * 2048.0,
         0.0});
    conf.structures.push_back(
        {Structure::FPU, static_cast<double>(machine.numFpu) * 4096.0,
         0.0});
    // 64-bit FP registers (the FREG extension).
    conf.structures.push_back(
        {Structure::FREG,
         static_cast<double>(machine.fpPhysRegs) * 64.0, 0.0});
    return conf;
}

FitModel::FitModel(FitModelConfig config) : conf(std::move(config))
{
    if (conf.rawFitPerBit <= 0.0)
        fatal("fit model: raw FIT/bit must be positive");
    for (const auto &entry : conf.structures) {
        if (entry.bits < 0.0)
            fatal("fit model: negative bit count");
        if (entry.coverage < 0.0 || entry.coverage > 1.0)
            fatal("fit model: coverage must lie in [0,1]");
    }
}

double
FitModel::fit(const std::array<double, core::numStructures> &avf)
    const
{
    double total = 0.0;
    for (const auto &entry : conf.structures) {
        double structure_avf =
            avf[static_cast<std::size_t>(entry.structure)];
        total += conf.rawFitPerBit * entry.bits * structure_avf *
                 (1.0 - entry.coverage);
    }
    return total;
}

double
FitModel::mttfHours(
    const std::array<double, core::numStructures> &avf) const
{
    double rate = fit(avf);
    if (rate <= 0.0)
        return std::numeric_limits<double>::infinity();
    return fitHours / rate;
}

double
FitModel::mttfHoursOverRun(
    const std::vector<std::array<double, core::numStructures>>
        &avfSeries) const
{
    if (avfSeries.empty())
        return std::numeric_limits<double>::infinity();
    double rate_sum = 0.0;
    for (const auto &avf : avfSeries)
        rate_sum += fit(avf);
    double mean_rate = rate_sum / static_cast<double>(
        avfSeries.size());
    if (mean_rate <= 0.0)
        return std::numeric_limits<double>::infinity();
    return fitHours / mean_rate;
}

double
FitModel::worstCaseFit() const
{
    double total = 0.0;
    for (const auto &entry : conf.structures)
        total += conf.rawFitPerBit * entry.bits *
                 (1.0 - entry.coverage);
    return total;
}

double
FitModel::structureFit(core::Structure structure, double avf) const
{
    double total = 0.0;
    for (const auto &entry : conf.structures)
        if (entry.structure == structure)
            total += conf.rawFitPerBit * entry.bits * avf *
                     (1.0 - entry.coverage);
    return total;
}

double
FitModel::coverageOf(core::Structure structure) const
{
    for (const auto &entry : conf.structures)
        if (entry.structure == structure)
            return entry.coverage;
    return 0.0;
}

void
FitModel::setCoverage(core::Structure structure, double coverage)
{
    avf_assert(coverage >= 0.0 && coverage <= 1.0,
               "coverage must lie in [0,1]");
    for (auto &entry : conf.structures)
        if (entry.structure == structure)
            entry.coverage = coverage;
}

} // namespace avf::reliability
