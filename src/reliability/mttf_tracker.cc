#include "reliability/mttf_tracker.hh"

#include <limits>

#include "util/logging.hh"

namespace avf::reliability
{

namespace
{
constexpr double fitHours = 1e9;
} // namespace

MttfTracker::MttfTracker(FitModel model, double mttfGoalHours)
    : fitModel(std::move(model)), goalHours(mttfGoalHours)
{
    avf_assert(goalHours > 0.0, "MTTF goal must be positive");
}

void
MttfTracker::observe(
    const std::array<double, core::numStructures> &avf)
{
    double rate = fitModel.fit(avf);
    // One FIT sample per control interval, retained for reporting;
    // length is workload-dependent. avflint: allow(hot-path-alloc)
    fitSeries.push_back(rate);
    fitSum += rate;
}

double
MttfTracker::currentFit() const
{
    return fitSeries.empty() ? 0.0 : fitSeries.back();
}

double
MttfTracker::averageFit() const
{
    return fitSeries.empty()
        ? 0.0
        : fitSum / static_cast<double>(fitSeries.size());
}

double
MttfTracker::projectedMttfHours() const
{
    double rate = averageFit();
    if (rate <= 0.0)
        return std::numeric_limits<double>::infinity();
    return fitHours / rate;
}

bool
MttfTracker::meetsGoal() const
{
    return projectedMttfHours() >= goalHours;
}

void
MttfTracker::setCoverage(core::Structure structure, double coverage)
{
    fitModel.setCoverage(structure, coverage);
}

double
MttfTracker::requiredCoverage() const
{
    double rate = averageFit();
    double goal_rate = fitHours / goalHours;
    if (rate <= goal_rate)
        return 0.0;
    double coverage = 1.0 - goal_rate / rate;
    return coverage > 1.0 ? 1.0 : coverage;
}

} // namespace avf::reliability
