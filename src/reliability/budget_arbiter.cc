#include "reliability/budget_arbiter.hh"

#include <cstddef>

#include "util/logging.hh"

namespace avf::reliability
{

namespace
{
/** Hours per 1e9 device-hours (the FIT normalization). */
constexpr double fitHours = 1e9;
} // namespace

BudgetArbiter::BudgetArbiter(FitModel model, double budgetMttfHours,
                             double margin)
    : mttf(std::move(model), budgetMttfHours),
      goalHours(budgetMttfHours), goalRate(fitHours / budgetMttfHours),
      releaseMargin(margin)
{
    avf_assert(budgetMttfHours > 0.0,
               "MTTF budget must be positive");
    avf_assert(releaseMargin > 0.0 && releaseMargin <= 1.0,
               "release margin must lie in (0, 1]");
}

BudgetDecision
BudgetArbiter::decide(
    const std::array<double, core::numStructures> &avf)
{
    mttf.observe(avf);

    BudgetDecision decision;
    decision.intervalFit = mttf.currentFit();
    decision.projectedMttfHours = mttf.projectedMttfHours();

    // Hysteretic exceeded state on the interval failure rate.
    if (!engagedState) {
        if (decision.intervalFit > goalRate)
            engagedState = true;
    } else if (decision.intervalFit < goalRate * releaseMargin) {
        engagedState = false;
    }
    decision.exceeded = engagedState;
    if (engagedState)
        ++overBudget;

    // FIT attribution: who is costing the most right now? Ties break
    // toward the lower enum index, keeping the ordering deterministic.
    std::size_t target = 0;
    for (std::size_t s = 0; s < core::numStructures; ++s) {
        decision.structureFit[s] = mttf.model().structureFit(
            static_cast<core::Structure>(s), avf[s]);
        if (decision.structureFit[s] >
            decision.structureFit[target])
            target = s;
    }
    decision.target = static_cast<core::Structure>(target);
    decision.targetFit = decision.structureFit[target];
    decision.coverage = coverageOf(decision.target);

    if (!decision.exceeded)
        return decision;

    if (throttleable(decision.target)) {
        decision.action = BudgetDecision::Action::Throttle;
        return decision;
    }

    // Protect: raise the target's coverage just enough to absorb the
    // over-budget share of the rate, assuming the target's AVF holds.
    decision.action = BudgetDecision::Action::Protect;
    double uncovered = decision.targetFit;
    if (uncovered > 0.0) {
        double excess = decision.intervalFit - goalRate;
        double current = decision.coverage;
        // targetFit already includes (1 - current); scale back to the
        // unprotected contribution before resizing the cover.
        double raw = uncovered / (1.0 - current);
        double wanted = current + excess / raw;
        if (wanted > 1.0)
            wanted = 1.0;
        if (wanted > current) {
            mttf.setCoverage(decision.target, wanted);
            decision.coverage = wanted;
        }
    }
    return decision;
}

} // namespace avf::reliability
