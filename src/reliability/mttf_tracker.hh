/**
 * @file
 * Dynamic MTTF tracking on top of the online AVF estimates: fold each
 * estimation interval's AVFs into a running failure-rate average,
 * compare against an MTTF goal, and recommend a protection coverage
 * that would meet the goal — the control loop the paper's
 * introduction motivates ("more protection during highly vulnerable
 * periods and less during less vulnerable periods").
 */

#ifndef AVF_RELIABILITY_MTTF_TRACKER_HH
#define AVF_RELIABILITY_MTTF_TRACKER_HH

#include <array>
#include <vector>

#include "reliability/fit_model.hh"

namespace avf::reliability
{

/**
 * Rolling MTTF accounting over estimation intervals.
 *
 * Empty-history contract (zero observed intervals): every reader is
 * well-defined before the first observe(). currentFit() and
 * averageFit() return 0 (no evidence of any failure rate),
 * projectedMttfHours() returns +infinity, meetsGoal() is therefore
 * true, and requiredCoverage() is 0. "No data yet" deliberately reads
 * as "nothing to protect against yet" — callers that need to
 * distinguish it check intervals() == 0.
 */
class MttfTracker
{
  public:
    /**
     * @param model failure-rate model (copied).
     * @param mttfGoalHours reliability target.
     */
    MttfTracker(FitModel model, double mttfGoalHours);

    /** Fold in one interval's per-structure AVFs. */
    void observe(const std::array<double, core::numStructures> &avf);

    /** Intervals observed. */
    std::size_t intervals() const { return fitSeries.size(); }

    /** Failure rate of the latest interval (FIT); 0 before the
     *  first observe(). */
    double currentFit() const;

    /** Running-average failure rate (FIT); 0 before the first
     *  observe(). */
    double averageFit() const;

    /** MTTF implied by the running-average failure rate (hours);
     *  +infinity before the first observe(). */
    double projectedMttfHours() const;

    /** True while the projection meets the goal. */
    bool meetsGoal() const;

    /**
     * Uniform protection coverage (applied to every structure) that
     * would bring the running-average failure rate to the goal;
     * 0 when none is needed, capped at 1.
     */
    double requiredCoverage() const;

    /** Per-interval FIT history. */
    const std::vector<double> &history() const { return fitSeries; }

    /** The underlying model. */
    const FitModel &model() const { return fitModel; }

    /**
     * Adjust one structure's protection coverage in the underlying
     * model. Affects subsequent observe() calls only — already-folded
     * intervals keep the rate they were observed at. This is the
     * adaptive-protection hook the BudgetArbiter actuates.
     */
    void setCoverage(core::Structure structure, double coverage);

  private:
    FitModel fitModel;
    double goalHours;
    std::vector<double> fitSeries;
    double fitSum = 0.0;
};

} // namespace avf::reliability

#endif // AVF_RELIABILITY_MTTF_TRACKER_HH
