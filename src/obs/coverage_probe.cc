#include "obs/coverage_probe.hh"

#include <stdexcept>

#include "cpu/pipeline.hh"
#include "obs/attribution.hh"
#include "util/logging.hh"

namespace avf::obs
{

using core::Site;

namespace
{

/** Validate before any member (the boundary ticker) consumes M. */
CoverageProbeConfig
checked(CoverageProbeConfig config)
{
    avf_assert(config.m > 0 && config.n > 0,
               "coverage probe needs positive M and N");
    return config;
}

} // namespace

std::string_view
coverageTargetName(CoverageTarget t)
{
    switch (t) {
      case CoverageTarget::FetchBuf: return "fetch_buf";
      case CoverageTarget::RenameMap: return "rename_map";
      case CoverageTarget::BranchPred: return "branch_pred";
      default: break;
    }
    panic("coverageTargetName(%d) out of range", static_cast<int>(t));
}

CoverageProbe::CoverageProbe(cpu::Pipeline &pipe,
                             core::InjectionPort &port,
                             AttributionTracker &tracker,
                             CoverageTarget target,
                             CoverageProbeConfig config)
    : pipeline(pipe), portRef(port), attribution(tracker),
      probeTarget(target), conf(checked(config)), boundaryTick(config.m)
{
    unit = attribution.registerBlameUnit(
        std::string(coverageTargetName(target)));
    lane = portRef.reserveLane();
    avf_assert(numSlots() > 0, "coverage probe target has no slots");
}

int
CoverageProbe::numSlots() const
{
    switch (probeTarget) {
      case CoverageTarget::FetchBuf:
        return pipeline.numFetchBufSlots();
      case CoverageTarget::RenameMap:
        return pipeline.numRenameMapSlots();
      case CoverageTarget::BranchPred:
        return pipeline.numBranchPredSlots();
      default: break;
    }
    panic("coverage probe bound to invalid target");
}

Site
CoverageProbe::siteAt(int slot) const
{
    Site site;
    switch (probeTarget) {
      case CoverageTarget::FetchBuf:
        site.kind = Site::Kind::FetchBuf;
        break;
      case CoverageTarget::RenameMap:
        site.kind = Site::Kind::RenameMap;
        break;
      case CoverageTarget::BranchPred:
        site.kind = Site::Kind::BranchPred;
        break;
      default:
        panic("coverage probe bound to invalid target");
    }
    site.entry = slot;
    return site;
}

void
CoverageProbe::onCycle(Cycle now)
{
    if (!boundaryTick.tick(now))
        return;
    if (windowOpen) {
        core::Outcome outcome = portRef.closed(handle);
        windowOpen = false;
        ++injections;
        ++lifetimeInjections;
        if (outcome.failed) {
            ++failures;
            ++lifetimeFailures;
        } else if (probeTarget == CoverageTarget::BranchPred &&
                   (pipeline.branchPredKilledMask() & laneBit(lane))) {
            // Counter bits never reach the dataflow: the first update
            // of the injected counter kills them. Read the kill
            // before the sweep below clears it.
            ++killed;
        }
        attribution.recordWindow(unit, openCycle, windowLive,
                                 outcome.failed, outcome.failPc,
                                 outcome.failOp);
        if (injections == conf.n) {
            // One estimate per completed interval of n windows.
            // avflint: allow(hot-path-alloc)
            results.push_back(static_cast<double>(failures) /
                              static_cast<double>(conf.n));
            injections = 0;
            failures = 0;
        }
    }
    portRef.clearLanes(laneBit(lane));

    Site site = siteAt(cursor);
    cursor = (cursor + 1) % numSlots();
    handle = portRef.open(lane, site, now);
    windowOpen = true;
    windowLive = handle.inject == InjectOutcome::Occupied;
    openCycle = now;
}

std::string
CoverageProbe::name() const
{
    return "probe:" + std::string(coverageTargetName(probeTarget));
}

double
CoverageProbe::partialAvf() const
{
    return injections ? static_cast<double>(failures) /
                        static_cast<double>(injections)
                      : 0.0;
}

core::EstimatorState
CoverageProbe::snapshotState() const
{
    core::EstimatorState state;
    state.name = name();
    state.counters = {
        {"injections", injections},
        {"failures", failures},
        {"lifetime_injections", lifetimeInjections},
        {"lifetime_failures", lifetimeFailures},
        {"killed", killed},
        {"cursor", static_cast<std::uint64_t>(cursor)},
    };
    state.estimates = results;
    return state;
}

void
CoverageProbe::restoreState(const core::EstimatorState &state)
{
    if (state.name != name())
        throw std::invalid_argument(
            "estimator state for '" + state.name +
            "' cannot restore into '" + name() + "'");
    injections = static_cast<std::uint32_t>(
        state.counterValue("injections"));
    failures = static_cast<std::uint32_t>(
        state.counterValue("failures"));
    lifetimeInjections = state.counterValue("lifetime_injections");
    lifetimeFailures = state.counterValue("lifetime_failures");
    killed = state.counterValue("killed");
    cursor = static_cast<int>(state.counterValue("cursor"));
    results = state.estimates;
}

} // namespace avf::obs
