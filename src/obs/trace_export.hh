/**
 * @file
 * Chrome/Perfetto trace_event exporter: the wall-clock side channel
 * of the metrics layer. Everything timing-dependent — task spans,
 * per-phase costs from util/timing PhaseAccumulators, worker/thread
 * attribution — is emitted here and ONLY here, so the deterministic
 * METRICS.json snapshot stays byte-identical across worker counts
 * while this file captures what actually happened on the clock.
 *
 * Output is the JSON Object Format of the Trace Event spec:
 * {"traceEvents": [...]} with "X" (complete) events carrying
 * microsecond ts/dur and "M" (metadata) events naming the process
 * and threads. The file loads directly in ui.perfetto.dev or
 * chrome://tracing.
 */

#ifndef AVF_OBS_TRACE_EXPORT_HH
#define AVF_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace avf::timing
{
class PhaseAccumulator;
} // namespace avf::timing

namespace avf::obs
{

/** One complete ("X") span on the trace timeline. */
struct TraceSpan
{
    std::string name;
    std::string category;
    /** Absolute begin tick (timing::steadyNowNs() domain). */
    std::uint64_t beginNs = 0;
    std::uint64_t durNs = 0;
    /** Trace-local thread lane (worker index, or a synthetic lane). */
    std::uint32_t tid = 0;
    /** Numeric args shown in the span's detail pane. */
    std::vector<std::pair<std::string, double>> args;
};

/**
 * Collects spans and thread names, then serializes them as one
 * trace_event JSON document. Timestamps are rebased so the earliest
 * span starts at ts=0; Perfetto only cares about relative time.
 * Not thread-safe — build it after the parallel work is done.
 */
class TraceWriter
{
  public:
    /** Name shown for the whole process track. */
    void setProcessName(std::string name);

    /** Label a tid lane ("worker 0", "campaign", ...). */
    void setThreadName(std::uint32_t tid, std::string name);

    /** Add one complete span. */
    void addSpan(TraceSpan span);

    /**
     * Expand a PhaseAccumulator into back-to-back spans on lane
     * @p tid starting at @p baseNs: one span per phase with
     * dur = the phase's total, carrying count/mean/min/max as args.
     * Phases have no recorded begin ticks (they are aggregates), so
     * this lays them end to end — right proportions, synthetic
     * placement.
     */
    void addPhases(const timing::PhaseAccumulator &phases,
                   std::uint32_t tid, std::uint64_t baseNs);

    /** Number of spans queued. */
    std::size_t spanCount() const { return spans.size(); }

    /**
     * Attach one entry to the document's "otherData" metadata object
     * (pool stats, task-latency histograms, ...). @p jsonValue is
     * emitted verbatim and must already be valid JSON.
     */
    void addOtherData(std::string key, std::string jsonValue);

    /** Serialize the whole trace as one JSON document. */
    void writeJson(std::ostream &out) const;

  private:
    std::string processName = "avf";
    std::vector<std::pair<std::uint32_t, std::string>> threadNames;
    std::vector<TraceSpan> spans;
    std::vector<std::pair<std::string, std::string>> otherData;
};

} // namespace avf::obs

#endif // AVF_OBS_TRACE_EXPORT_HH
