#include "obs/trace_export.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/timing.hh"

namespace avf::obs
{

namespace
{

/** JSON string escape (local copy; obs cannot depend on harness). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Microseconds with sub-µs precision, as trace_event expects. */
std::string
usec(double ns)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", ns / 1000.0);
    return buf;
}

} // namespace

void
TraceWriter::setProcessName(std::string name)
{
    processName = std::move(name);
}

void
TraceWriter::setThreadName(std::uint32_t tid, std::string name)
{
    for (auto &[id, label] : threadNames) {
        if (id == tid) {
            label = std::move(name);
            return;
        }
    }
    threadNames.emplace_back(tid, std::move(name));
}

void
TraceWriter::addSpan(TraceSpan span)
{
    // Spans are recorded at phase granularity during report
    // assembly, never per cycle. avflint: allow(hot-path-alloc)
    spans.push_back(std::move(span));
}

void
TraceWriter::addOtherData(std::string key, std::string jsonValue)
{
    otherData.emplace_back(std::move(key), std::move(jsonValue));
}

void
TraceWriter::addPhases(const timing::PhaseAccumulator &phases,
                       std::uint32_t tid, std::uint64_t baseNs)
{
    std::uint64_t cursor = baseNs;
    for (const auto &phase : phases.phases()) {
        TraceSpan span;
        span.name = phase.name;
        span.category = "phase";
        span.beginNs = cursor;
        span.durNs = static_cast<std::uint64_t>(phase.totalNs);
        span.tid = tid;
        span.args = {
            {"count", static_cast<double>(phase.count)},
            {"mean_ns", phase.meanNs()},
            {"min_ns", phase.minNs},
            {"max_ns", phase.maxNs},
        };
        spans.push_back(std::move(span));
        cursor += span.durNs;
    }
}

void
TraceWriter::writeJson(std::ostream &out) const
{
    // Rebase so the earliest span lands at ts=0: steady-clock ticks
    // are huge raw numbers Perfetto would render as absolute time.
    std::uint64_t base = 0;
    if (!spans.empty()) {
        base = spans.front().beginNs;
        for (const auto &span : spans)
            base = std::min(base, span.beginNs);
    }

    out << "{\n  \"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out << ",\n";
        first = false;
    };

    sep();
    out << "    {\"name\": \"process_name\", \"ph\": \"M\", "
           "\"pid\": 1, \"tid\": 0, \"args\": {\"name\": \""
        << escape(processName) << "\"}}";
    for (const auto &[tid, label] : threadNames) {
        sep();
        out << "    {\"name\": \"thread_name\", \"ph\": \"M\", "
               "\"pid\": 1, \"tid\": " << tid
            << ", \"args\": {\"name\": \"" << escape(label)
            << "\"}}";
    }
    for (const auto &span : spans) {
        sep();
        out << "    {\"name\": \"" << escape(span.name)
            << "\", \"cat\": \""
            << escape(span.category.empty() ? "avf" : span.category)
            << "\", \"ph\": \"X\", \"ts\": "
            << usec(static_cast<double>(span.beginNs - base))
            << ", \"dur\": " << usec(static_cast<double>(span.durNs))
            << ", \"pid\": 1, \"tid\": " << span.tid;
        if (!span.args.empty()) {
            out << ", \"args\": {";
            for (std::size_t i = 0; i < span.args.size(); ++i) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.3f",
                              span.args[i].second);
                out << (i ? ", " : "") << "\""
                    << escape(span.args[i].first) << "\": " << buf;
            }
            out << "}";
        }
        out << "}";
    }
    out << "\n  ],\n";
    if (!otherData.empty()) {
        out << "  \"otherData\": {";
        for (std::size_t i = 0; i < otherData.size(); ++i)
            out << (i ? ", " : "") << "\"" << escape(otherData[i].first)
                << "\": " << otherData[i].second;
        out << "},\n";
    }
    out << "  \"displayTimeUnit\": \"ms\"\n}\n";
}

} // namespace avf::obs
