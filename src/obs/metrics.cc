#include "obs/metrics.hh"

#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace avf::obs
{

namespace
{

/** Fixed-format double for byte-stable JSON. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

std::string
pad(int indent)
{
    return std::string(static_cast<std::size_t>(indent), ' ');
}

void
writeHistogramJson(std::ostream &out,
                   const stats::HistogramSnapshot &hist)
{
    out << "{\"lo\": " << fmtDouble(hist.lo)
        << ", \"hi\": " << fmtDouble(hist.hi) << ", \"bins\": [";
    for (std::size_t b = 0; b < hist.bins.size(); ++b)
        out << (b ? ", " : "") << hist.bins[b];
    out << "], \"underflow\": " << hist.underflow
        << ", \"overflow\": " << hist.overflow
        << ", \"total\": " << hist.total << "}";
}

} // namespace

bool
validMetricName(std::string_view name)
{
    if (name.empty() || name.front() < 'a' || name.front() > 'z')
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_';
        if (!ok)
            return false;
    }
    return true;
}

std::uint64_t
MetricsSnapshot::counterValue(std::string_view name) const
{
    for (const auto &[n, v] : counters)
        if (n == name)
            return v;
    return 0;
}

const std::vector<double> *
MetricsSnapshot::findSeries(std::string_view name) const
{
    for (const auto &[n, v] : series)
        if (n == name)
            return &v;
    return nullptr;
}

void
MetricsSnapshot::mergeTotals(const MetricsSnapshot &other)
{
    enabled = enabled || other.enabled;
    for (const auto &[name, value] : other.counters) {
        bool found = false;
        for (auto &[mine, total] : counters) {
            if (mine == name) {
                total = saturatingAdd(total, value);
                found = true;
                break;
            }
        }
        if (!found)
            counters.emplace_back(name, value);
    }
    for (const auto &[name, hist] : other.histograms) {
        bool found = false;
        for (auto &[mine, total] : histograms) {
            if (mine != name)
                continue;
            avf_assert(total.bins.size() == hist.bins.size() &&
                           total.lo == hist.lo && total.hi == hist.hi,
                       "histogram '%s' merged across mismatched "
                       "shapes", name.c_str());
            for (std::size_t b = 0; b < hist.bins.size(); ++b)
                total.bins[b] =
                    saturatingAdd(total.bins[b], hist.bins[b]);
            total.underflow =
                saturatingAdd(total.underflow, hist.underflow);
            total.overflow =
                saturatingAdd(total.overflow, hist.overflow);
            total.total = saturatingAdd(total.total, hist.total);
            found = true;
            break;
        }
        if (!found)
            histograms.emplace_back(name, hist);
    }
    // Gauges and series deliberately not folded; see header.
}

void
MetricsSnapshot::writeJson(std::ostream &out, int indent) const
{
    const std::string p0 = pad(indent);
    const std::string p1 = pad(indent + 2);
    const std::string p2 = pad(indent + 4);

    out << "{\n" << p1 << "\"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i)
        out << (i ? ", " : "") << "\"" << counters[i].first
            << "\": " << counters[i].second;
    out << "},\n" << p1 << "\"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i)
        out << (i ? ", " : "") << "\"" << gauges[i].first
            << "\": " << fmtDouble(gauges[i].second);
    out << "},\n" << p1 << "\"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        out << (i ? ",\n" : "\n") << p2 << "\""
            << histograms[i].first << "\": ";
        writeHistogramJson(out, histograms[i].second);
    }
    out << (histograms.empty() ? "" : "\n" + p1) << "},\n"
        << p1 << "\"series\": {";
    for (std::size_t i = 0; i < series.size(); ++i) {
        out << (i ? ",\n" : "\n") << p2 << "\"" << series[i].first
            << "\": [";
        const auto &values = series[i].second;
        for (std::size_t k = 0; k < values.size(); ++k)
            out << (k ? ", " : "") << fmtDouble(values[k]);
        out << "]";
    }
    out << (series.empty() ? "" : "\n" + p1) << "}\n" << p0 << "}";
}

void
MetricsShard::claimName(const std::string &name)
{
    avf_assert(validMetricName(name),
               "metric name '%s' is not snake_case", name.c_str());
    avf_assert(names.insert(name).second,
               "metric '%s' registered twice", name.c_str());
}

MetricsShard::Id
MetricsShard::registerCounter(std::string name)
{
    claimName(name);
    counters.emplace_back(std::move(name), 0);
    return static_cast<Id>(counters.size() - 1);
}

MetricsShard::Id
MetricsShard::registerGauge(std::string name)
{
    claimName(name);
    gauges.emplace_back(std::move(name), 0.0);
    return static_cast<Id>(gauges.size() - 1);
}

MetricsShard::Id
MetricsShard::registerHistogram(std::string name, double lo, double hi,
                                std::size_t bins)
{
    claimName(name);
    hists.emplace_back(std::move(name),
                       stats::Histogram(lo, hi, bins));
    return static_cast<Id>(hists.size() - 1);
}

MetricsShard::Id
MetricsShard::registerSeries(std::string name)
{
    claimName(name);
    seriesData.emplace_back(std::move(name), std::vector<double>{});
    return static_cast<Id>(seriesData.size() - 1);
}

void
MetricsShard::inc(Id counter, std::uint64_t delta)
{
    auto &value = counters[counter].second;
    value = saturatingAdd(value, delta);
}

void
MetricsShard::set(Id gauge, double value)
{
    gauges[gauge].second = value;
}

void
MetricsShard::observe(Id histogram, double value)
{
    hists[histogram].second.add(value);
}

void
MetricsShard::push(Id series, double value)
{
    // Series grow by one point per closed estimation interval, not
    // per cycle; length is workload-dependent, so no bound to
    // reserve. avflint: allow(hot-path-alloc)
    seriesData[series].second.push_back(value);
}

const std::vector<double> &
MetricsShard::seriesValues(Id series) const
{
    avf_assert(series < seriesData.size(),
               "series id out of range");
    return seriesData[series].second;
}

std::uint64_t
MetricsShard::counterValue(Id counter) const
{
    avf_assert(counter < counters.size(),
               "counter id out of range");
    return counters[counter].second;
}

MetricsSnapshot
MetricsShard::snapshot() const
{
    MetricsSnapshot out;
    out.enabled = true;
    out.counters = counters;
    out.gauges = gauges;
    out.histograms.reserve(hists.size());
    for (const auto &[name, hist] : hists)
        out.histograms.emplace_back(name, hist.snapshot());
    out.series = seriesData;
    return out;
}

} // namespace avf::obs
