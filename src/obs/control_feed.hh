/**
 * @file
 * The single data path between estimation and control. The paper's
 * point is that AVF must be estimated *online* so the hardware can
 * react; this feed is the reaction side's only legal input: it polls
 * the estimator roster at interval boundaries, publishes each new
 * per-interval value into a MetricsShard series — the same storage
 * METRICS.json serializes — and consumers (control/
 * throttle_controller.hh) read decisions exclusively from those
 * series. Policy and telemetry therefore cannot disagree: corrupting
 * an estimator's private history after publication changes nothing
 * the controller sees.
 *
 * Reporting latency: Jaulmes et al. ("Memory Vulnerability: A Case
 * for Delaying Error Reporting") show reporting latency trades
 * directly against vulnerability. The feed reproduces that regime: a
 * configurable delay (in cycles) between an estimation window closing
 * and its value becoming visible to consumers. Telemetry publication
 * is delayed identically, so the exported series remain exactly what
 * the controller acted on.
 */

#ifndef AVF_OBS_CONTROL_FEED_HH
#define AVF_OBS_CONTROL_FEED_HH

#include <array>
#include <deque>
#include <utility>
#include <vector>

#include "core/avf_estimator.hh"
#include "core/structures.hh"
#include "cpu/observer.hh"
#include "obs/metrics.hh"
#include "util/types.hh"

namespace avf::obs
{

/**
 * Latency-aware publisher of per-interval estimator output into live
 * metrics series. Attach as a pipeline observer AFTER the estimators
 * it watches (so a window that closes in cycle C is staged in cycle
 * C) and BEFORE any consumer (so consumers see fresh rows the cycle
 * they publish).
 */
class ControlFeed : public cpu::PipelineObserver
{
  public:
    /**
     * @param reportLatencyCycles delay between a window closing and
     *        its estimate becoming visible in the published series
     *        (0 = same-cycle visibility, the ideal-reporting regime).
     */
    explicit ControlFeed(Cycle reportLatencyCycles = 0);

    /**
     * Watch @p estimator as the per-interval AVF source for
     * @p structure; registers the series "control_<structure>_avf".
     * Each structure may be attached once, before the run starts.
     */
    void attachAvf(core::Structure structure,
                   const core::AvfEstimator &estimator);

    /**
     * Watch @p estimator as the issue-queue occupancy baseline;
     * registers the series "control_occupancy_iq".
     */
    void attachOccupancy(const core::AvfEstimator &estimator);

    void onCycle(Cycle now) override;

    /**
     * Rows published so far: the minimum published length across all
     * attached AVF sources, i.e. the number of complete per-structure
     * AVF rows a consumer may read. 0 when nothing is attached.
     */
    std::size_t rows() const;

    /** True when @p structure has an attached AVF source. */
    bool hasAvf(core::Structure structure) const;

    /**
     * Published AVF series of @p structure (live view of the metrics
     * storage). The structure must be attached.
     */
    const std::vector<double> &avfSeries(core::Structure structure)
        const;

    /** Published occupancy series; occupancy must be attached. */
    const std::vector<double> &occupancySeries() const;

    /** Configured reporting latency in cycles. */
    Cycle reportLatency() const { return latency; }

    /**
     * The shard backing the published series. Consumers register
     * their own decision metrics here so the whole control loop
     * exports through one snapshot.
     */
    MetricsShard &shard() { return registry; }
    const MetricsShard &shard() const { return registry; }

  private:
    /** One watched estimator and its publication pipeline. */
    struct Source
    {
        const core::AvfEstimator *estimator = nullptr;
        MetricsShard::Id series = 0;
        /** Estimates pulled from the estimator so far. */
        std::size_t taken = 0;
        /** Staged values waiting out the reporting latency. */
        std::deque<std::pair<Cycle, double>> staged;
    };

    void pump(Source &source, Cycle now);

    MetricsShard registry;
    Cycle latency;
    std::vector<Source> sources;
    /** Index into sources per structure; -1 = unattached. */
    std::array<int, core::numStructures> avfSlot;
    int occupancySlot = -1;
};

} // namespace avf::obs

#endif // AVF_OBS_CONTROL_FEED_HH
