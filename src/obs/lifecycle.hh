/**
 * @file
 * Injection-lifecycle observability: records *why* every online-
 * estimator injection counted the way it did. Each injection opens a
 * lifecycle record (structure, lane, entry/field, cycle, liveness);
 * pipeline error-hop events (read-carry, OR-merge, FU transit,
 * overwrite-kill) accumulate on the open record; the window close
 * stamps the outcome (failure at a store/load/branch, killed by
 * overwrite, or expired at M) and the latency from injection to
 * outcome.
 *
 * Open records are keyed by injection lane — the error-plane bit the
 * InjectionPort tagged the injection with — because lane-parallel
 * estimators keep up to 64 windows of one structure open at once.
 * Aggregates stay per structure: the lane is a transport tag, not a
 * population of its own (though the JSONL export and avf-report keep
 * it on every record so per-lane behavior can be audited).
 *
 * The tracker aggregates everything into per-structure outcome
 * counters and latency / hop-count histograms, retains a capped set of
 * detail records for JSONL export, and offers a reconciliation
 * self-check against the estimator's own counters: the two observe the
 * same retirement stream independently, so a mismatch means an
 * estimator (or tracker) bug — the harness treats it as fatal.
 *
 * Provenance of this design: the ACE-lifetime accounting of
 * SoftArch-style models and the per-error lifecycle tracking argued
 * for in "Memory Vulnerability: A Case for Delaying Error Reporting";
 * attributing outcomes to propagation paths follows FastFlip. The
 * injection-to-failure timing generalizes
 * core/propagation_probe.hh, which times failures only: here every
 * injection gets an outcome, hop trail, and latency.
 */

#ifndef AVF_OBS_LIFECYCLE_HH
#define AVF_OBS_LIFECYCLE_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/lifecycle_sink.hh"
#include "core/structures.hh"
#include "cpu/observer.hh"
#include "stats/histogram.hh"
#include "stats/running_stats.hh"
#include "util/types.hh"

namespace avf::core
{
class OnlineAvfEstimator;
}

namespace avf::obs
{

/**
 * Final outcome of one injection's lifecycle. Failure outcomes split
 * by the failure point that carried the error bit out (Section 3.2's
 * taxonomy); Killed means at least one overwrite-kill of the lane
 * bit was observed and no failure surfaced; Expired means the window
 * closed with neither observed.
 */
enum class Outcome : int
{
    FailureStore = 0,  ///< error retired through a store
    FailureLoad = 1,   ///< error retired through a load
    FailureBranch = 2, ///< error retired through a branch
    Killed = 3,        ///< overwrite killed the bit, no failure
    Expired = 4,       ///< window closed, bit never surfaced
    NumOutcomes
};

/** Number of distinct outcomes. */
inline constexpr int numOutcomes = static_cast<int>(Outcome::NumOutcomes);

/** Stable display name ("failure_store", "killed", ...). */
std::string_view outcomeName(Outcome o);

/** True for the three failure outcomes. */
constexpr bool
isFailureOutcome(Outcome o)
{
    return static_cast<int>(o) <= static_cast<int>(Outcome::FailureBranch);
}

/** Tracker parameters. */
struct LifecycleConfig
{
    /**
     * Master switch, consumed by the harness: when false no tracker
     * is constructed and the pipeline's hop events stay off.
     */
    bool enabled = false;
    /**
     * Detail records retained per structure for JSONL export; closes
     * beyond the cap still count in every aggregate but the record
     * itself is dropped (see StructureLifecycleSummary::dropped).
     */
    std::size_t maxRecordsPerStructure = 2048;
    /**
     * The estimator's window length M: upper edge of the
     * latency-to-outcome histogram (expiry latency equals M).
     */
    Cycle windowCycles = 1000;
    /** Bins of the latency histogram. */
    std::size_t latencyBins = 50;
    /** Bins (and upper edge) of the per-record hop-count histogram. */
    std::size_t hopCountBins = 32;
};

/** One injection's full lifecycle. */
struct LifecycleRecord
{
    /** Structure injected into. */
    core::Structure structure = core::Structure::IQ;
    /** Injection lane (error-plane bit) the window ran on. */
    LaneId lane = -1;
    /** Entry index (register / IQ entry / unit) targeted. */
    int entry = -1;
    /** Field within the entry (field-granular IQ), -1 whole-entry. */
    int field = -1;
    /** Target was occupied/busy at injection time. */
    bool live = false;
    /** Cycle the injection fired. */
    Cycle injectCycle = 0;
    /** Cycle the window closed (record finalized). */
    Cycle closeCycle = 0;
    /**
     * Cycle the outcome happened: failure retirement, first
     * overwrite-kill, or the window close for Expired.
     */
    Cycle outcomeCycle = 0;
    /** Final outcome. */
    Outcome outcome = Outcome::Expired;
    /**
     * Blame identity: trace PC and opcode class (trace::OpClass as
     * int) of the retiring instruction that carried the bit out.
     * Zero / -1 when the window closed without a failure.
     */
    Addr blamePc = 0;
    int blameOp = -1;
    /** Hop events observed on this record, by cpu::ErrorHop kind. */
    std::array<std::uint32_t, cpu::numErrorHops> hops{};

    /** All hops, summed over kinds. */
    std::uint32_t totalHops() const;

    /** Cycles from injection to outcome. */
    Cycle latency() const { return outcomeCycle - injectCycle; }
};

/** Aggregated lifecycle statistics for one structure. */
struct StructureLifecycleSummary
{
    /** Records closed (outcome stamped). */
    std::uint64_t closed = 0;
    /** Records still open when the run ended (one per open lane). */
    std::uint64_t openAtEnd = 0;
    /** Closed records whose injection hit a live target. */
    std::uint64_t live = 0;
    /** Closed records not retained (maxRecordsPerStructure). */
    std::uint64_t dropped = 0;
    /** Closed-record counts by Outcome. */
    std::array<std::uint64_t, numOutcomes> outcomes{};
    /** Hop events summed over closed records, by cpu::ErrorHop. */
    std::array<std::uint64_t, cpu::numErrorHops> hopTotals{};
    /** Latency-to-outcome moments over closed records. */
    double latencyMean = 0.0;
    double latencyStddev = 0.0;
    double latencyMin = 0.0;
    double latencyMax = 0.0;
    /** Latency-to-outcome histogram over [0, windowCycles + 1). */
    stats::HistogramSnapshot latencyHist;
    /** Per-record total-hop-count histogram. */
    stats::HistogramSnapshot hopCountHist;
    /** Retained detail records, oldest first. */
    std::vector<LifecycleRecord> records;

    /** Closed records with a failure outcome. */
    std::uint64_t failures() const;
};

/** Whole-run lifecycle summary, indexed by core::Structure. */
struct LifecycleSummary
{
    /** False when tracing was off (all content zero/empty). */
    bool enabled = false;
    std::array<StructureLifecycleSummary, core::numStructures>
        structures{};

    /** Totals across structures. */
    std::uint64_t totalClosed() const;
    std::uint64_t totalFailures() const;
    std::uint64_t totalWithOutcome(Outcome o) const;
};

/**
 * The lifecycle tracker. Attach to the pipeline as an observer
 * (pipe.addObserver), enable hop events
 * (pipe.setHopSink(&tracker)), and hand it to each online
 * estimator as its LifecycleSink (est.setLifecycleSink(&tracker)).
 * One tracker serves every estimator of one pipeline: open records
 * are keyed by injection lane (the one-window-at-a-time rule per
 * lane), aggregates by structure.
 */
class LifecycleTracker : public cpu::PipelineObserver,
                         public core::LifecycleSink
{
  public:
    explicit LifecycleTracker(LifecycleConfig config = LifecycleConfig{});

    // ---- core::LifecycleSink ----
    void openRecord(core::Structure s, LaneId lane, int entry,
                    int field, bool live, Cycle now) override;
    void closeRecord(core::Structure s, LaneId lane, Cycle now,
                     const core::Outcome &outcome) override;

    // ---- cpu::PipelineObserver ----
    void onRetire(const cpu::DynInstr &instr,
                  const cpu::RetireInfo &info) override;
    void onErrorHop(const cpu::DynInstr &instr, cpu::ErrorMask bits,
                    cpu::ErrorHop hop) override;

    /** Snapshot every aggregate (callable any time). */
    LifecycleSummary summary() const;

    /**
     * Reconcile this tracker against @p est, which must have been
     * feeding it: closed + open records must equal the estimator's
     * lifetime injections, and failure-outcome records must equal its
     * lifetime failures. @return empty string when consistent, else a
     * description of the first mismatch.
     */
    std::string reconcile(const core::OnlineAvfEstimator &est) const;

    /** Tracker configuration. */
    const LifecycleConfig &config() const { return conf; }

  private:
    /** One open injection window, keyed by its lane. */
    struct OpenWindow
    {
        bool failed = false;
        bool sawKill = false;
        Cycle failCycle = 0;
        Cycle killCycle = 0;
        Outcome failureKind = Outcome::Expired;
        /** Blame identity of the latched failure retirement. */
        Addr blamePc = 0;
        int blameOp = -1;
        LifecycleRecord rec;
    };

    /** Per-structure aggregates over closed records. */
    struct PerStructure
    {
        explicit PerStructure(const LifecycleConfig &conf);

        std::uint64_t closed = 0;
        std::uint64_t live = 0;
        std::uint64_t dropped = 0;
        std::array<std::uint64_t, numOutcomes> outcomes{};
        std::array<std::uint64_t, cpu::numErrorHops> hopTotals{};
        stats::RunningStats latency;
        stats::Histogram latencyHist;
        stats::Histogram hopCountHist;
        std::vector<LifecycleRecord> records;
    };

    OpenWindow &windowAt(LaneId lane);
    PerStructure &stateOf(core::Structure s);
    const PerStructure &stateOf(core::Structure s) const;
    /** Open lanes whose record belongs to @p s. */
    std::uint64_t openCountOf(core::Structure s) const;

    LifecycleConfig conf;
    std::array<OpenWindow, numErrorChannels> openWindows{};
    /** Bit set per lane with an open record (fast retire/hop skip). */
    ErrorMask openLaneMask = 0;
    std::vector<PerStructure> perStructure;
};

} // namespace avf::obs

#endif // AVF_OBS_LIFECYCLE_HH
