#include "obs/feed_writer.hh"

#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

namespace avf::obs
{

namespace
{

std::string
ioError(const std::string &path, const char *what)
{
    return "feed '" + path + "': " + what + ": " +
           std::strerror(errno);
}

} // namespace

FeedWriter::~FeedWriter()
{
    close();
}

void
FeedWriter::close()
{
    if (!stream)
        return;
    // Destructor-path close: nothing durable is promised past the
    // last flushSync(), so a failing close only loses bytes the
    // contract already treats as volatile.
    (void)std::fclose(stream);
    stream = nullptr;
}

bool
FeedWriter::create(const std::string &path, std::string &errorOut)
{
    close();
    filePath = path;
    written = 0;
    stream = std::fopen(path.c_str(), "wb");
    if (!stream) {
        errorOut = ioError(path, "open failed");
        return false;
    }
    return true;
}

bool
FeedWriter::resume(const std::string &path,
                   std::uint64_t durableBytes, std::string &errorOut)
{
    close();
    filePath = path;
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
        errorOut = ioError(path, "stat failed");
        return false;
    }
    if (static_cast<std::uint64_t>(st.st_size) < durableBytes) {
        errorOut = "feed '" + path + "': file is shorter than the " +
                   "checkpointed offset — feed and checkpoint " +
                   "disagree, refusing to resume";
        return false;
    }
    // Drop any torn tail past the checkpoint (a SIGKILL can land
    // mid-write), then append from the durable offset.
    if (::truncate(path.c_str(), static_cast<off_t>(durableBytes)) !=
        0) {
        errorOut = ioError(path, "truncate failed");
        return false;
    }
    stream = std::fopen(path.c_str(), "ab");
    if (!stream) {
        errorOut = ioError(path, "open failed");
        return false;
    }
    written = durableBytes;
    return true;
}

bool
FeedWriter::appendLine(std::string_view line, std::string &errorOut)
{
    if (!stream) {
        errorOut = "feed: append on a closed writer";
        return false;
    }
    if (std::fwrite(line.data(), 1, line.size(), stream) !=
        line.size() ||
        std::fputc('\n', stream) == EOF) {
        errorOut = ioError(filePath, "write failed");
        return false;
    }
    written += line.size() + 1;
    return true;
}

bool
FeedWriter::flushSync(std::string &errorOut)
{
    if (!stream) {
        errorOut = "feed: flush on a closed writer";
        return false;
    }
    if (std::fflush(stream) != 0) {
        errorOut = ioError(filePath, "flush failed");
        return false;
    }
    if (::fsync(::fileno(stream)) != 0) {
        errorOut = ioError(filePath, "fsync failed");
        return false;
    }
    return true;
}

} // namespace avf::obs
