#include "obs/lifecycle.hh"

#include <numeric>

#include "core/online_estimator.hh"
#include "util/logging.hh"

namespace avf::obs
{

using core::Structure;

std::string_view
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::FailureStore: return "failure_store";
      case Outcome::FailureLoad: return "failure_load";
      case Outcome::FailureBranch: return "failure_branch";
      case Outcome::Killed: return "killed";
      case Outcome::Expired: return "expired";
      default: break;
    }
    panic("outcomeName(%d) out of range", static_cast<int>(o));
}

std::uint32_t
LifecycleRecord::totalHops() const
{
    return std::accumulate(hops.begin(), hops.end(), 0u);
}

std::uint64_t
StructureLifecycleSummary::failures() const
{
    std::uint64_t n = 0;
    for (int o = 0; o < numOutcomes; ++o) {
        if (isFailureOutcome(static_cast<Outcome>(o)))
            n += outcomes[static_cast<std::size_t>(o)];
    }
    return n;
}

std::uint64_t
LifecycleSummary::totalClosed() const
{
    std::uint64_t n = 0;
    for (const auto &s : structures)
        n += s.closed;
    return n;
}

std::uint64_t
LifecycleSummary::totalFailures() const
{
    std::uint64_t n = 0;
    for (const auto &s : structures)
        n += s.failures();
    return n;
}

std::uint64_t
LifecycleSummary::totalWithOutcome(Outcome o) const
{
    std::uint64_t n = 0;
    for (const auto &s : structures)
        n += s.outcomes[static_cast<std::size_t>(o)];
    return n;
}

LifecycleTracker::PerStructure::PerStructure(const LifecycleConfig &conf)
    : latencyHist(0.0,
                  static_cast<double>(conf.windowCycles) + 1.0,
                  conf.latencyBins),
      hopCountHist(0.0, static_cast<double>(conf.hopCountBins),
                   conf.hopCountBins)
{
}

LifecycleTracker::LifecycleTracker(LifecycleConfig config)
    : conf(config)
{
    avf_assert(conf.windowCycles > 0,
               "lifecycle windowCycles must be positive");
    avf_assert(conf.latencyBins > 0 && conf.hopCountBins > 0,
               "lifecycle histograms need at least one bin");
    perStructure.reserve(static_cast<std::size_t>(core::numStructures));
    for (int s = 0; s < core::numStructures; ++s)
        perStructure.emplace_back(conf);
}

LifecycleTracker::PerStructure &
LifecycleTracker::stateOf(Structure s)
{
    return perStructure[static_cast<std::size_t>(s)];
}

const LifecycleTracker::PerStructure &
LifecycleTracker::stateOf(Structure s) const
{
    return perStructure[static_cast<std::size_t>(s)];
}

void
LifecycleTracker::openRecord(Structure s, int entry, int field,
                             bool live, Cycle now)
{
    PerStructure &state = stateOf(s);
    avf_assert(!state.open,
               "lifecycle record for %s opened twice (one error at a "
               "time)", std::string(structureName(s)).c_str());
    state.open = true;
    state.failed = false;
    state.sawKill = false;
    state.rec = LifecycleRecord{};
    state.rec.structure = s;
    state.rec.entry = entry;
    state.rec.field = field;
    state.rec.live = live;
    state.rec.injectCycle = now;
}

void
LifecycleTracker::closeRecord(Structure s, Cycle now)
{
    PerStructure &state = stateOf(s);
    avf_assert(state.open, "lifecycle close without an open record");
    state.open = false;

    LifecycleRecord &rec = state.rec;
    rec.closeCycle = now;
    if (state.failed) {
        rec.outcome = state.failureKind;
        rec.outcomeCycle = state.failCycle;
    } else if (state.sawKill) {
        rec.outcome = Outcome::Killed;
        rec.outcomeCycle = state.killCycle;
    } else {
        rec.outcome = Outcome::Expired;
        rec.outcomeCycle = now;
    }

    ++state.closed;
    if (rec.live)
        ++state.live;
    ++state.outcomes[static_cast<std::size_t>(rec.outcome)];
    for (int h = 0; h < cpu::numErrorHops; ++h) {
        state.hopTotals[static_cast<std::size_t>(h)] +=
            rec.hops[static_cast<std::size_t>(h)];
    }
    double latency = static_cast<double>(rec.latency());
    state.latency.add(latency);
    state.latencyHist.add(latency);
    state.hopCountHist.add(static_cast<double>(rec.totalHops()));

    if (state.records.size() < conf.maxRecordsPerStructure)
        state.records.push_back(rec);
    else
        ++state.dropped;
}

void
LifecycleTracker::onRetire(const cpu::DynInstr &instr,
                           const cpu::RetireInfo &info)
{
    if (!info.failureMask)
        return;
    for (auto &state : perStructure) {
        if (!state.open || state.failed)
            continue;
        auto bit = static_cast<cpu::ErrorMask>(
            1u << channelOf(state.rec.structure));
        if (!(info.failureMask & bit))
            continue;
        state.failed = true;
        state.failCycle = instr.retireCycle;
        switch (instr.in.op) {
          case trace::OpClass::Store:
            state.failureKind = Outcome::FailureStore;
            break;
          case trace::OpClass::Load:
            state.failureKind = Outcome::FailureLoad;
            break;
          default:
            // isFailurePoint() admits only loads, stores, branches.
            state.failureKind = Outcome::FailureBranch;
            break;
        }
    }
}

void
LifecycleTracker::onErrorHop(const cpu::DynInstr &instr,
                             cpu::ErrorMask bits, cpu::ErrorHop hop)
{
    for (auto &state : perStructure) {
        if (!state.open)
            continue;
        auto bit = static_cast<cpu::ErrorMask>(
            1u << channelOf(state.rec.structure));
        if (!(bits & bit))
            continue;
        ++state.rec.hops[static_cast<std::size_t>(hop)];
        if (hop == cpu::ErrorHop::OverwriteKill && !state.sawKill) {
            state.sawKill = true;
            state.killCycle = instr.completeCycle;
        }
    }
}

LifecycleSummary
LifecycleTracker::summary() const
{
    LifecycleSummary out;
    out.enabled = true;
    for (int s = 0; s < core::numStructures; ++s) {
        const PerStructure &state =
            perStructure[static_cast<std::size_t>(s)];
        auto &dst = out.structures[static_cast<std::size_t>(s)];
        dst.closed = state.closed;
        dst.openAtEnd = state.open ? 1 : 0;
        dst.live = state.live;
        dst.dropped = state.dropped;
        dst.outcomes = state.outcomes;
        dst.hopTotals = state.hopTotals;
        if (state.latency.count() > 0) {
            dst.latencyMean = state.latency.mean();
            dst.latencyStddev = state.latency.stddev();
            dst.latencyMin = state.latency.min();
            dst.latencyMax = state.latency.max();
        }
        dst.latencyHist = state.latencyHist.snapshot();
        dst.hopCountHist = state.hopCountHist.snapshot();
        dst.records = state.records;
    }
    return out;
}

std::string
LifecycleTracker::reconcile(const core::OnlineAvfEstimator &est) const
{
    const PerStructure &state = stateOf(est.structure());
    std::string name(structureName(est.structure()));

    std::uint64_t tracked = state.closed + (state.open ? 1 : 0);
    if (tracked != est.totalInjections()) {
        return "lifecycle reconciliation failed for " + name + ": " +
               std::to_string(tracked) + " records vs " +
               std::to_string(est.totalInjections()) +
               " estimator injections";
    }

    std::uint64_t failures = 0;
    for (int o = 0; o < numOutcomes; ++o) {
        if (isFailureOutcome(static_cast<Outcome>(o)))
            failures += state.outcomes[static_cast<std::size_t>(o)];
    }
    if (failures != est.totalFailures()) {
        return "lifecycle reconciliation failed for " + name + ": " +
               std::to_string(failures) + " failure records vs " +
               std::to_string(est.totalFailures()) +
               " estimator failures";
    }
    return "";
}

} // namespace avf::obs
