#include "obs/lifecycle.hh"

#include <bit>
#include <numeric>

#include "core/injection_port.hh"
#include "core/online_estimator.hh"
#include "util/logging.hh"

namespace avf::obs
{

using core::Structure;

std::string_view
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::FailureStore: return "failure_store";
      case Outcome::FailureLoad: return "failure_load";
      case Outcome::FailureBranch: return "failure_branch";
      case Outcome::Killed: return "killed";
      case Outcome::Expired: return "expired";
      default: break;
    }
    panic("outcomeName(%d) out of range", static_cast<int>(o));
}

std::uint32_t
LifecycleRecord::totalHops() const
{
    return std::accumulate(hops.begin(), hops.end(), 0u);
}

std::uint64_t
StructureLifecycleSummary::failures() const
{
    std::uint64_t n = 0;
    for (int o = 0; o < numOutcomes; ++o) {
        if (isFailureOutcome(static_cast<Outcome>(o)))
            n += outcomes[static_cast<std::size_t>(o)];
    }
    return n;
}

std::uint64_t
LifecycleSummary::totalClosed() const
{
    std::uint64_t n = 0;
    for (const auto &s : structures)
        n += s.closed;
    return n;
}

std::uint64_t
LifecycleSummary::totalFailures() const
{
    std::uint64_t n = 0;
    for (const auto &s : structures)
        n += s.failures();
    return n;
}

std::uint64_t
LifecycleSummary::totalWithOutcome(Outcome o) const
{
    std::uint64_t n = 0;
    for (const auto &s : structures)
        n += s.outcomes[static_cast<std::size_t>(o)];
    return n;
}

LifecycleTracker::PerStructure::PerStructure(const LifecycleConfig &conf)
    : latencyHist(0.0,
                  static_cast<double>(conf.windowCycles) + 1.0,
                  conf.latencyBins),
      hopCountHist(0.0, static_cast<double>(conf.hopCountBins),
                   conf.hopCountBins)
{
    // Retention is capped, so one up-front reservation keeps
    // closeRecord() off the allocator for the simulation's lifetime.
    records.reserve(conf.maxRecordsPerStructure);
}

LifecycleTracker::LifecycleTracker(LifecycleConfig config)
    : conf(config)
{
    avf_assert(conf.windowCycles > 0,
               "lifecycle windowCycles must be positive");
    avf_assert(conf.latencyBins > 0 && conf.hopCountBins > 0,
               "lifecycle histograms need at least one bin");
    perStructure.reserve(static_cast<std::size_t>(core::numStructures));
    for (int s = 0; s < core::numStructures; ++s)
        perStructure.emplace_back(conf);
}

LifecycleTracker::OpenWindow &
LifecycleTracker::windowAt(LaneId lane)
{
    avf_assert(lane >= 0 && lane < numErrorChannels,
               "lifecycle lane %d outside the %d-lane error plane",
               lane, numErrorChannels);
    return openWindows[static_cast<std::size_t>(lane)];
}

LifecycleTracker::PerStructure &
LifecycleTracker::stateOf(Structure s)
{
    return perStructure[static_cast<std::size_t>(s)];
}

const LifecycleTracker::PerStructure &
LifecycleTracker::stateOf(Structure s) const
{
    return perStructure[static_cast<std::size_t>(s)];
}

std::uint64_t
LifecycleTracker::openCountOf(Structure s) const
{
    std::uint64_t n = 0;
    ErrorMask mask = openLaneMask;
    while (mask) {
        auto lane = static_cast<std::size_t>(std::countr_zero(mask));
        mask &= mask - 1;
        if (openWindows[lane].rec.structure == s)
            ++n;
    }
    return n;
}

void
LifecycleTracker::openRecord(Structure s, LaneId lane, int entry,
                             int field, bool live, Cycle now)
{
    OpenWindow &win = windowAt(lane);
    std::string_view sname = structureName(s);
    avf_assert(!(openLaneMask & laneBit(lane)),
               "lifecycle record for %.*s lane %d opened twice (one "
               "window at a time per lane)",
               static_cast<int>(sname.size()), sname.data(), lane);
    openLaneMask |= laneBit(lane);
    win.failed = false;
    win.sawKill = false;
    win.blamePc = 0;
    win.blameOp = -1;
    win.rec = LifecycleRecord{};
    win.rec.structure = s;
    win.rec.lane = lane;
    win.rec.entry = entry;
    win.rec.field = field;
    win.rec.live = live;
    win.rec.injectCycle = now;
}

void
LifecycleTracker::closeRecord(Structure s, LaneId lane, Cycle now,
                              const core::Outcome &outcome)
{
    OpenWindow &win = windowAt(lane);
    avf_assert(openLaneMask & laneBit(lane),
               "lifecycle close without an open record on lane %d",
               lane);
    // The port and this tracker watch the same retirement stream
    // independently; disagreement on whether (or where) the window
    // failed means one of them mis-latched — same fatality class as
    // reconcile().
    avf_assert(outcome.failed == win.failed,
               "lifecycle/port failure disagreement on lane %d", lane);
    avf_assert(!win.failed || (outcome.failPc == win.blamePc &&
                               outcome.failOp == win.blameOp),
               "lifecycle/port blame disagreement on lane %d", lane);
    std::string_view byName = structureName(s);
    std::string_view openerName = structureName(win.rec.structure);
    avf_assert(win.rec.structure == s,
               "lifecycle close of lane %d by %.*s, opened by %.*s",
               lane, static_cast<int>(byName.size()), byName.data(),
               static_cast<int>(openerName.size()),
               openerName.data());
    openLaneMask &= ~laneBit(lane);

    LifecycleRecord &rec = win.rec;
    rec.closeCycle = now;
    if (win.failed) {
        rec.outcome = win.failureKind;
        rec.outcomeCycle = win.failCycle;
        rec.blamePc = win.blamePc;
        rec.blameOp = win.blameOp;
    } else if (win.sawKill) {
        rec.outcome = Outcome::Killed;
        rec.outcomeCycle = win.killCycle;
    } else {
        rec.outcome = Outcome::Expired;
        rec.outcomeCycle = now;
    }

    PerStructure &state = stateOf(s);
    ++state.closed;
    if (rec.live)
        ++state.live;
    ++state.outcomes[static_cast<std::size_t>(rec.outcome)];
    for (int h = 0; h < cpu::numErrorHops; ++h) {
        state.hopTotals[static_cast<std::size_t>(h)] +=
            rec.hops[static_cast<std::size_t>(h)];
    }
    double latency = static_cast<double>(rec.latency());
    state.latency.add(latency);
    state.latencyHist.add(latency);
    state.hopCountHist.add(static_cast<double>(rec.totalHops()));

    if (state.records.size() < conf.maxRecordsPerStructure)
        state.records.push_back(rec);
    else
        ++state.dropped;
}

void
LifecycleTracker::onRetire(const cpu::DynInstr &instr,
                           const cpu::RetireInfo &info)
{
    ErrorMask hit = info.failureMask & openLaneMask;
    while (hit) {
        auto lane = static_cast<std::size_t>(std::countr_zero(hit));
        hit &= hit - 1;
        OpenWindow &win = openWindows[lane];
        if (win.failed)
            continue;
        win.failed = true;
        win.failCycle = instr.retireCycle;
        win.blamePc = instr.in.pc;
        win.blameOp = static_cast<int>(instr.in.op);
        switch (instr.in.op) {
          case trace::OpClass::Store:
            win.failureKind = Outcome::FailureStore;
            break;
          case trace::OpClass::Load:
            win.failureKind = Outcome::FailureLoad;
            break;
          default:
            // isFailurePoint() admits only loads, stores, branches.
            win.failureKind = Outcome::FailureBranch;
            break;
        }
    }
}

void
LifecycleTracker::onErrorHop(const cpu::DynInstr &instr,
                             cpu::ErrorMask bits, cpu::ErrorHop hop)
{
    ErrorMask hit = bits & openLaneMask;
    while (hit) {
        auto lane = static_cast<std::size_t>(std::countr_zero(hit));
        hit &= hit - 1;
        OpenWindow &win = openWindows[lane];
        ++win.rec.hops[static_cast<std::size_t>(hop)];
        if (hop == cpu::ErrorHop::OverwriteKill && !win.sawKill) {
            win.sawKill = true;
            win.killCycle = instr.completeCycle;
        }
    }
}

LifecycleSummary
LifecycleTracker::summary() const
{
    LifecycleSummary out;
    out.enabled = true;
    for (int s = 0; s < core::numStructures; ++s) {
        const PerStructure &state =
            perStructure[static_cast<std::size_t>(s)];
        auto &dst = out.structures[static_cast<std::size_t>(s)];
        dst.closed = state.closed;
        dst.openAtEnd = openCountOf(static_cast<Structure>(s));
        dst.live = state.live;
        dst.dropped = state.dropped;
        dst.outcomes = state.outcomes;
        dst.hopTotals = state.hopTotals;
        if (state.latency.count() > 0) {
            dst.latencyMean = state.latency.mean();
            dst.latencyStddev = state.latency.stddev();
            dst.latencyMin = state.latency.min();
            dst.latencyMax = state.latency.max();
        }
        dst.latencyHist = state.latencyHist.snapshot();
        dst.hopCountHist = state.hopCountHist.snapshot();
        dst.records = state.records;
    }
    return out;
}

std::string
LifecycleTracker::reconcile(const core::OnlineAvfEstimator &est) const
{
    const PerStructure &state = stateOf(est.structure());
    std::string name(structureName(est.structure()));

    std::uint64_t tracked = state.closed + openCountOf(est.structure());
    if (tracked != est.totalInjections()) {
        return "lifecycle reconciliation failed for " + name + ": " +
               std::to_string(tracked) + " records vs " +
               std::to_string(est.totalInjections()) +
               " estimator injections";
    }

    std::uint64_t failures = 0;
    for (int o = 0; o < numOutcomes; ++o) {
        if (isFailureOutcome(static_cast<Outcome>(o)))
            failures += state.outcomes[static_cast<std::size_t>(o)];
    }
    if (failures != est.totalFailures()) {
        return "lifecycle reconciliation failed for " + name + ": " +
               std::to_string(failures) + " failure records vs " +
               std::to_string(est.totalFailures()) +
               " estimator failures";
    }
    return "";
}

} // namespace avf::obs
