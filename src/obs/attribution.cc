#include "obs/attribution.hh"

#include <ostream>

#include "core/injection_port.hh"
#include "obs/metrics.hh"
#include "trace/instruction.hh"
#include "util/logging.hh"

namespace avf::obs
{

using core::Structure;

namespace
{

/** Blamed-opcode display name; "-" for the no-failure rows. */
std::string_view
blameOpName(int op)
{
    if (op < 0)
        return "-";
    avf_assert(op < static_cast<int>(trace::OpClass::NumOpClasses),
               "blame op %d out of range", op);
    return trace::opClassName(static_cast<trace::OpClass>(op));
}

std::string
pad(int width)
{
    return std::string(static_cast<std::size_t>(width), ' ');
}

} // namespace

void
AttributionSnapshot::mergeFrom(const AttributionSnapshot &other)
{
    if (!other.enabled)
        return;
    enabled = true;

    // Remap the other table's unit ids onto ours; unknown units
    // append in the other's registration order (deterministic under
    // submission-order folding).
    std::vector<std::uint32_t> remap;
    remap.reserve(other.units.size());
    for (const std::string &name : other.units) {
        std::uint32_t id = 0;
        for (; id < units.size(); ++id)
            if (units[id] == name)
                break;
        if (id == units.size())
            units.push_back(name);
        remap.push_back(id);
    }

    // Rebuild in canonical order. Both inputs are already sorted,
    // but the remap can reorder the other's rows, so a keyed fold
    // is the simple correct thing (this runs once per collected
    // task, never per cycle).
    std::map<std::tuple<std::uint32_t, std::uint32_t, Addr, int>,
             AttributionRow>
        merged;
    for (const AttributionRow &row : rows)
        merged.emplace(std::make_tuple(row.unit, row.phase, row.pc,
                                       row.op),
                       row);
    for (const AttributionRow &row : other.rows) {
        AttributionRow mapped = row;
        mapped.unit = remap[row.unit];
        auto key = std::make_tuple(mapped.unit, mapped.phase,
                                   mapped.pc, mapped.op);
        auto [it, inserted] = merged.emplace(key, mapped);
        if (!inserted) {
            it->second.windows += mapped.windows;
            it->second.live += mapped.live;
            it->second.failures += mapped.failures;
        }
    }
    rows.clear();
    rows.reserve(merged.size());
    for (const auto &[key, row] : merged)
        rows.push_back(row);
}

std::uint64_t
AttributionSnapshot::totalWindows() const
{
    std::uint64_t n = 0;
    for (const AttributionRow &row : rows)
        n += row.windows;
    return n;
}

std::uint64_t
AttributionSnapshot::totalFailures() const
{
    std::uint64_t n = 0;
    for (const AttributionRow &row : rows)
        n += row.failures;
    return n;
}

void
AttributionSnapshot::writeJson(std::ostream &out, int indent) const
{
    const std::string p0 = pad(indent);
    const std::string p1 = pad(indent + 2);
    const std::string p2 = pad(indent + 4);

    out << "{\n" << p1 << "\"units\": [";
    for (std::size_t i = 0; i < units.size(); ++i)
        out << (i ? ", " : "") << "\"" << units[i] << "\"";
    out << "],\n" << p1 << "\"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const AttributionRow &row = rows[i];
        out << (i ? ",\n" : "\n") << p2 << "{\"unit\": \""
            << units[row.unit] << "\", \"phase\": " << row.phase
            << ", \"pc\": " << row.pc << ", \"op\": \""
            << blameOpName(row.op) << "\", \"windows\": "
            << row.windows << ", \"live\": " << row.live
            << ", \"failures\": " << row.failures << "}";
    }
    out << (rows.empty() ? "" : "\n" + p1) << "]\n" << p0 << "}";
}

AttributionTracker::AttributionTracker(AttributionConfig config)
    : conf(config)
{
    avf_assert(conf.phaseCycles > 0,
               "attribution phaseCycles must be positive (the "
               "harness fills 0 with the interval length)");
    // The five paper structures are always present so unit ids (and
    // the canonical row order) never depend on which estimator
    // happens to close a window first.
    for (int s = 0; s < core::numStructures; ++s) {
        structureUnit[static_cast<std::size_t>(s)] = registerBlameUnit(
            std::string(structureName(static_cast<Structure>(s))));
    }
}

std::uint32_t
AttributionTracker::registerBlameUnit(std::string name)
{
    avf_assert(validMetricName(name),
               "blame unit '%s' is not snake_case", name.c_str());
    for (const std::string &existing : unitNames)
        avf_assert(existing != name, "blame unit '%s' registered "
                   "twice", name.c_str());
    unitNames.push_back(std::move(name));
    return static_cast<std::uint32_t>(unitNames.size() - 1);
}

std::uint32_t
AttributionTracker::unitOf(Structure s) const
{
    return structureUnit[static_cast<std::size_t>(s)];
}

std::uint32_t
AttributionTracker::phaseOf(Cycle cycle) const
{
    auto bucket =
        static_cast<std::uint32_t>(cycle / conf.phaseCycles);
    if (conf.phaseCount > 0 && bucket >= conf.phaseCount)
        bucket = conf.phaseCount - 1;
    return conf.phaseBase + bucket;
}

void
AttributionTracker::openRecord(Structure s, LaneId lane, int entry,
                               int field, bool live, Cycle now)
{
    (void)s;
    (void)entry;
    (void)field;
    avf_assert(lane >= 0 && lane < numErrorChannels,
               "attribution lane %d outside the %d-lane error plane",
               lane, numErrorChannels);
    LaneOpen &slot = laneOpen[static_cast<std::size_t>(lane)];
    avf_assert(!slot.open,
               "attribution record on lane %d opened twice", lane);
    slot.open = true;
    slot.live = live;
    slot.injectCycle = now;
}

void
AttributionTracker::closeRecord(Structure s, LaneId lane, Cycle now,
                                const core::Outcome &outcome)
{
    (void)now;
    avf_assert(lane >= 0 && lane < numErrorChannels,
               "attribution lane %d outside the %d-lane error plane",
               lane, numErrorChannels);
    LaneOpen &slot = laneOpen[static_cast<std::size_t>(lane)];
    avf_assert(slot.open,
               "attribution close without an open record on lane %d",
               lane);
    slot.open = false;
    recordWindow(unitOf(s), slot.injectCycle, slot.live,
                 outcome.failed, outcome.failPc, outcome.failOp);
}

void
AttributionTracker::recordWindow(std::uint32_t unit, Cycle injectCycle,
                                 bool live, bool failed, Addr pc,
                                 int op)
{
    avf_assert(unit < unitNames.size(),
               "blame unit id %u never registered", unit);
    if (!failed) {
        // The masked mass: charged to (unit, phase) alone.
        pc = 0;
        op = -1;
    }
    Key key{unit, phaseOf(injectCycle), pc, op};
    // The table grows one node per distinct blame site — bounded by
    // the workload's static code footprint, not by cycles.
    // avflint: allow(hot-path-alloc)
    Counts &counts = table[key];
    ++counts.windows;
    if (live)
        ++counts.live;
    if (failed)
        ++counts.failures;
}

AttributionSnapshot
AttributionTracker::snapshot() const
{
    AttributionSnapshot out;
    out.enabled = true;
    out.units = unitNames;
    out.rows.reserve(table.size());
    for (const auto &[key, counts] : table) {
        AttributionRow row;
        row.unit = std::get<0>(key);
        row.phase = std::get<1>(key);
        row.pc = std::get<2>(key);
        row.op = std::get<3>(key);
        row.windows = counts.windows;
        row.live = counts.live;
        row.failures = counts.failures;
        out.rows.push_back(row);
    }
    return out;
}

} // namespace avf::obs
