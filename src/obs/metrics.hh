/**
 * @file
 * The runtime metrics registry. One MetricsShard belongs to one
 * engine task (the unit of parallelism in harness::ExperimentEngine):
 * recording is single-threaded and index-addressed — a counter
 * increment is one array add — so the hot path costs nothing
 * measurable, and thread-awareness comes from the sharding itself:
 * each worker records into its own task's shard and the campaign
 * merges the resulting snapshots *in submission order* at collect
 * time, the same determinism rule the engine applies to results.
 * METRICS.json is therefore byte-identical at any worker count.
 *
 * Metric kinds:
 *   counter    monotonic uint64; saturates at 2^64-1 instead of
 *              wrapping (a wrapped counter silently lies; a pegged
 *              one is visibly saturated).
 *   gauge      last-written double (rates, ratios, point-in-time).
 *   histogram  fixed uniform buckets over [lo, hi), reusing
 *              stats::Histogram; under/overflow tracked.
 *   series     append-only labeled time-series, one value per
 *              estimation interval (per-interval AVF, IPC, ...).
 *
 * Naming discipline (enforced at registration and by the avflint
 * `metric-name-discipline` check): names are snake_case
 * (`[a-z][a-z0-9_]*`), registered once per shard, and registered at
 * setup time — never inside per-cycle hot paths.
 *
 * Determinism contract: everything recorded here lands in the
 * schema-versioned METRICS.json snapshot, so values must be a
 * function of (trace, seed, config) only. Wall-clock data belongs in
 * the trace_event export (obs/trace_export.hh), never here.
 */

#ifndef AVF_OBS_METRICS_HH
#define AVF_OBS_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/histogram.hh"

namespace avf::obs
{

/** Exporter schema tag written into every METRICS.json. */
inline constexpr std::string_view metricsSchemaVersion =
    "avf-metrics-v1";

/** True when @p name is a valid snake_case metric name. */
bool validMetricName(std::string_view name);

/**
 * Plain-data copy of one shard's metrics: default-constructible,
 * copyable, and what actually travels on ExperimentResult. Entries
 * keep registration order, which is deterministic for a fixed code
 * path (same rule as timing::PhaseAccumulator).
 */
struct MetricsSnapshot
{
    /** False when the producing run had metrics disabled. */
    bool enabled = false;

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, stats::HistogramSnapshot>>
        histograms;
    std::vector<std::pair<std::string, std::vector<double>>> series;

    /** Counter value by name; 0 when absent. */
    std::uint64_t counterValue(std::string_view name) const;

    /** Series by name; nullptr when absent. */
    const std::vector<double> *findSeries(std::string_view name) const;

    /**
     * Campaign-total fold: counters add (saturating) and histograms
     * add bin-wise (shapes must match; panic otherwise). Gauges and
     * series are per-task signals with no meaningful cross-task sum,
     * so totals skip them — read those from the per-task snapshots.
     * Unknown names append in @p other's order, keeping the merge
     * deterministic under submission-order folding.
     */
    void mergeTotals(const MetricsSnapshot &other);

    /**
     * Emit as one JSON object with fixed key order {"counters": {},
     * "gauges": {}, "histograms": {}, "series": {}} and fixed number
     * formatting (%.6f for doubles), so equal snapshots serialize to
     * equal bytes.
     */
    void writeJson(std::ostream &out, int indent = 0) const;
};

/**
 * The per-task registry. Register every metric up front (handles are
 * dense indices), record through the handle, snapshot at the end of
 * the run. Not thread-safe by design — one shard per task, merged
 * deterministically by the campaign layer.
 */
class MetricsShard
{
  public:
    /** Dense handle; valid only against the shard that issued it. */
    using Id = std::uint32_t;

    /**
     * Register a monotonic counter. Names must be snake_case and
     * unique across every kind in this shard; violations panic
     * (programmer error, not input error).
     */
    Id registerCounter(std::string name);

    /** Register a last-write-wins gauge. */
    Id registerGauge(std::string name);

    /**
     * Register a fixed-bucket histogram over [lo, hi) with @p bins
     * uniform buckets (see stats::Histogram).
     */
    Id registerHistogram(std::string name, double lo, double hi,
                         std::size_t bins);

    /** Register an append-only time-series. */
    Id registerSeries(std::string name);

    /** Add @p delta to a counter; saturates at 2^64-1. */
    void inc(Id counter, std::uint64_t delta = 1);

    /** Set a gauge. */
    void set(Id gauge, double value);

    /** Fold a sample into a histogram. */
    void observe(Id histogram, double value);

    /** Append one point to a series. */
    void push(Id series, double value);

    /**
     * Live read of a series' contents (no snapshot copy). This is the
     * control loop's data path: a consumer that decides from the same
     * storage the exporter serializes can never disagree with the
     * telemetry (see obs/control_feed.hh).
     */
    const std::vector<double> &seriesValues(Id series) const;

    /** Current value of a counter (live read). */
    std::uint64_t counterValue(Id counter) const;

    /** Number of metrics registered, all kinds. */
    std::size_t size() const { return names.size(); }

    /** Copy the current state into a plain-data snapshot. */
    MetricsSnapshot snapshot() const;

  private:
    void claimName(const std::string &name);

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, stats::Histogram>> hists;
    std::vector<std::pair<std::string, std::vector<double>>>
        seriesData;
    std::set<std::string> names;
};

/** Saturating uint64 add (the counter overflow rule). */
constexpr std::uint64_t
saturatingAdd(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t sum = a + b;
    return sum < a ? ~std::uint64_t{0} : sum;
}

} // namespace avf::obs

#endif // AVF_OBS_METRICS_HH
