/**
 * @file
 * Root-cause attribution: per-instruction and per-phase failure
 * accountability. Every closed injection window is charged to a
 * *blame site* — (unit, workload phase bucket, trace PC, opcode
 * class) — where the instruction identity is the retiring
 * load/store/branch that carried the lane's bit out of the machine
 * (core::Outcome::failPc / failOp, latched by the InjectionPort).
 * Windows that close without a failure are charged to the unit and
 * phase alone (PC 0, op -1): they are the masked mass the failure
 * rows are read against.
 *
 * Units are registered by name (registerBlameUnit), snake_case and
 * once per tracker — the same naming discipline as the metrics
 * registry, enforced by the avflint metric-name-discipline check.
 * The five paper structures register automatically; the extended
 * coverage probes (fetch buffer, rename map, branch predictor —
 * obs/coverage_probe.hh) register their own units, so the table
 * spans the whole modeled machine.
 *
 * Determinism contract: the snapshot's rows are kept in canonical
 * (unit, phase, pc, op) order and merge submission-order like
 * MetricsSnapshot, so the campaign-level table — and everything
 * rendered from it, including `avf-report root-cause` — is
 * byte-identical at any worker count, any `avf-serve --procs`, and
 * across crash/resume. Phase buckets are campaign-global: serve
 * slices offset them with AttributionConfig::phaseBase.
 *
 * Provenance: the ROADMAP's CFA-style open item (inject every
 * component, attribute failures to the responsible instructions) and
 * FastFlip's instruction-level outcome composition (PAPERS.md).
 */

#ifndef AVF_OBS_ATTRIBUTION_HH
#define AVF_OBS_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "core/lifecycle_sink.hh"
#include "core/structures.hh"
#include "util/types.hh"

namespace avf::obs
{

/** Exporter schema tag written into every ROOTCAUSE.json. */
inline constexpr std::string_view rootCauseSchemaVersion =
    "avf-rootcause-v1";

/** Attribution parameters (harness-wired; see ExperimentConfig). */
struct AttributionConfig
{
    /**
     * Master switch, consumed by the harness: when false no tracker
     * or coverage probe is constructed and nothing below changes any
     * output byte.
     */
    bool enabled = false;
    /**
     * Cycles per workload phase bucket. 0 means "inherit": the
     * harness fills it with the estimation interval length, so a
     * bucket is one AVF estimation interval.
     */
    Cycle phaseCycles = 0;
    /**
     * First phase bucket of this run. Serve slices set it to the
     * slice's first campaign interval so merged buckets are
     * campaign-global; batch runs leave it 0.
     */
    std::uint32_t phaseBase = 0;
    /**
     * Buckets this run may produce (relative to phaseBase); windows
     * closed in the drain tail past the last interval clamp into the
     * final bucket. 0 disables the clamp.
     */
    std::uint32_t phaseCount = 0;
};

/** One blame-site row of the attribution table. */
struct AttributionRow
{
    /** Index into AttributionSnapshot::units. */
    std::uint32_t unit = 0;
    /** Workload phase bucket (campaign-global). */
    std::uint32_t phase = 0;
    /** Blamed trace PC; 0 when the window closed without failure. */
    Addr pc = 0;
    /** trace::OpClass of the blamed instruction as int, -1 none. */
    int op = -1;
    /** Closed windows charged to this blame site. */
    std::uint64_t windows = 0;
    /** ... whose injection landed on an occupied/busy target. */
    std::uint64_t live = 0;
    /** ... that ended in a failure (rows with pc != 0: all). */
    std::uint64_t failures = 0;
};

/**
 * Plain-data attribution table: default-constructible, copyable,
 * and what travels on ExperimentResult / the serve checkpoint. Rows
 * are in canonical (unit, phase, pc, op) order; units keep
 * registration order, which is deterministic for a fixed code path.
 */
struct AttributionSnapshot
{
    /** False when the producing run had attribution disabled. */
    bool enabled = false;

    /** Blame-unit names, registration order. */
    std::vector<std::string> units;
    /** The table, canonical order. */
    std::vector<AttributionRow> rows;

    /** Campaign fold: counts add key-wise; unknown units append in
     *  @p other's registration order (submission-order merges give
     *  identical bytes at any worker count). */
    void mergeFrom(const AttributionSnapshot &other);

    /** Windows summed over every row. */
    std::uint64_t totalWindows() const;

    /** Failures summed over every row. */
    std::uint64_t totalFailures() const;

    /**
     * Emit the ROOTCAUSE.json document body: fixed key order, fixed
     * number formatting, ops and units by name — equal snapshots
     * serialize to equal bytes.
     */
    void writeJson(std::ostream &out, int indent = 0) const;
};

/**
 * The attribution tracker. Implements core::LifecycleSink, so the
 * harness hands it to each online estimator (alone or teed with the
 * LifecycleTracker — obs::LifecycleTee); the extended coverage
 * probes feed it directly through recordWindow(). Single-threaded
 * like MetricsShard: one tracker per engine task, snapshots merged
 * in submission order by the campaign layer.
 */
class AttributionTracker : public core::LifecycleSink
{
  public:
    explicit AttributionTracker(AttributionConfig config);

    /**
     * Register a blame unit (setup time, never per cycle). Names
     * must be snake_case and unique in this tracker; violations
     * panic (programmer error). @return the unit's dense id.
     */
    std::uint32_t registerBlameUnit(std::string name);

    /** Unit id for a paper structure (pre-registered). */
    std::uint32_t unitOf(core::Structure s) const;

    // ---- core::LifecycleSink ----
    void openRecord(core::Structure s, LaneId lane, int entry,
                    int field, bool live, Cycle now) override;
    void closeRecord(core::Structure s, LaneId lane, Cycle now,
                     const core::Outcome &outcome) override;

    /**
     * Charge one closed window directly (the coverage probes'
     * entry point). @p pc / @p op are the blame identity, 0 / -1
     * for windows that closed without a failure.
     */
    void recordWindow(std::uint32_t unit, Cycle injectCycle,
                      bool live, bool failed, Addr pc, int op);

    /** Snapshot the table (canonical row order). */
    AttributionSnapshot snapshot() const;

    /** Tracker configuration. */
    const AttributionConfig &config() const { return conf; }

  private:
    /** Blame key: (unit, phase, pc, op). */
    using Key = std::tuple<std::uint32_t, std::uint32_t, Addr, int>;

    struct Counts
    {
        std::uint64_t windows = 0;
        std::uint64_t live = 0;
        std::uint64_t failures = 0;
    };

    /** Open-window context per lane (sink path only). */
    struct LaneOpen
    {
        bool open = false;
        bool live = false;
        Cycle injectCycle = 0;
    };

    /** Map @p cycle to its campaign-global phase bucket. */
    std::uint32_t phaseOf(Cycle cycle) const;

    AttributionConfig conf;
    std::vector<std::string> unitNames;
    std::array<std::uint32_t, core::numStructures> structureUnit{};
    std::array<LaneOpen, numErrorChannels> laneOpen{};
    /** Ordered blame table: std::map iteration IS the canonical
     *  (unit, phase, pc, op) row order. */
    std::map<Key, Counts> table;
};

/**
 * Fan-out LifecycleSink: forwards every open/close to two sinks.
 * Lets the lifecycle tracker and the attribution tracker both watch
 * the estimators through the single sink slot each estimator has.
 */
class LifecycleTee : public core::LifecycleSink
{
  public:
    LifecycleTee(core::LifecycleSink &first, core::LifecycleSink &second)
        : a(first), b(second)
    {}

    void
    openRecord(core::Structure s, LaneId lane, int entry, int field,
               bool live, Cycle now) override
    {
        a.openRecord(s, lane, entry, field, live, now);
        b.openRecord(s, lane, entry, field, live, now);
    }

    void
    closeRecord(core::Structure s, LaneId lane, Cycle now,
                const core::Outcome &outcome) override
    {
        a.closeRecord(s, lane, now, outcome);
        b.closeRecord(s, lane, now, outcome);
    }

  private:
    core::LifecycleSink &a;
    core::LifecycleSink &b;
};

} // namespace avf::obs

#endif // AVF_OBS_ATTRIBUTION_HH
