/**
 * @file
 * Append-only JSONL feed writer — the streaming counterpart of the
 * batch exporters. One line per record, appended as the campaign
 * runs, so a reader (`avf-report tail`) can follow results mid-run
 * instead of waiting for a METRICS.json at collect().
 *
 * Durability contract (the serve layer's crash-resume leans on it):
 * flushSync() pushes every appended byte through the OS to the disk
 * (fflush + fsync), and bytesWritten() after a flushSync() is a
 * durable offset — a checkpoint that records it can truncate the
 * feed back to that offset on resume, discarding any torn line a
 * SIGKILL left behind, and re-append from there to reproduce the
 * uninterrupted byte stream exactly.
 */

#ifndef AVF_OBS_FEED_WRITER_HH
#define AVF_OBS_FEED_WRITER_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace avf::obs
{

/**
 * One open feed file. Not copyable; the destructor closes (without
 * syncing — call flushSync() at every durable point).
 */
class FeedWriter
{
  public:
    FeedWriter() = default;
    ~FeedWriter();

    FeedWriter(const FeedWriter &) = delete;
    FeedWriter &operator=(const FeedWriter &) = delete;

    /**
     * Create @p path (truncating any previous content) and start a
     * fresh feed. @return false with @p errorOut set on I/O failure.
     */
    bool create(const std::string &path, std::string &errorOut);

    /**
     * Open an existing feed for resumption: truncate it to
     * @p durableBytes (the last checkpointed offset, discarding any
     * torn tail) and position appends there. Fails when the file is
     * shorter than @p durableBytes — that means the checkpoint and
     * the feed disagree, which resume must treat as corruption
     * rather than silently re-emitting a diverged feed.
     */
    bool resume(const std::string &path, std::uint64_t durableBytes,
                std::string &errorOut);

    /** Append one record plus the terminating newline. */
    bool appendLine(std::string_view line, std::string &errorOut);

    /** Flush user and OS buffers to disk (fflush + fsync). */
    bool flushSync(std::string &errorOut);

    /** Bytes appended so far (durable only after flushSync()). */
    std::uint64_t bytesWritten() const { return written; }

    /** True between a successful create()/resume() and close(). */
    bool isOpen() const { return stream != nullptr; }

    /** Close the file (idempotent; does not sync). */
    void close();

  private:
    std::FILE *stream = nullptr;
    std::string filePath;
    std::uint64_t written = 0;
};

} // namespace avf::obs

#endif // AVF_OBS_FEED_WRITER_HH
