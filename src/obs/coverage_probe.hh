/**
 * @file
 * Extended-coverage injection probes: single-lane online estimators
 * for the structures the paper models but never estimates — the
 * fetch/instruction buffer, the rename map, and the branch predictor
 * counter table. Each probe runs the same M-cycle tagged-window
 * protocol as core::OnlineAvfEstimator (open at the boundary, read
 * the Outcome at the next, clear, re-open round-robin), through the
 * shared core::InjectionPort, so lane accounting and the
 * one-error-per-lane rule are identical.
 *
 * What distinguishes the three targets is how their bits leave the
 * machine:
 *  - fetch buffer: the error mask rides the buffered instruction into
 *    dispatch and from there behaves exactly like an IQ injection —
 *    it can fail at a retiring load/store/branch.
 *  - rename map: injecting a map slot corrupts the currently mapped
 *    physical register (always a live, occupied target), so failures
 *    surface through the ordinary register read-out path.
 *  - branch predictor: counter bits never enter the dataflow; the
 *    first counter update kills them (architecturally masked by
 *    construction). The probe observes the kill through the
 *    predictor's killed mask and reports AVF 0 — the point is the
 *    attribution row proving the mass is masked, not the estimate.
 *
 * Every closed window is charged to the AttributionTracker under the
 * probe's own blame unit ("fetch_buf", "rename_map", "branch_pred"),
 * giving `avf-report root-cause` visibility into the whole modeled
 * machine rather than just the five estimated structures.
 */

#ifndef AVF_OBS_COVERAGE_PROBE_HH
#define AVF_OBS_COVERAGE_PROBE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/avf_estimator.hh"
#include "core/injection_port.hh"
#include "util/interval_ticker.hh"
#include "util/types.hh"

namespace avf::cpu
{
class Pipeline;
}

namespace avf::obs
{

class AttributionTracker;

/** Structures covered by probes (beyond core::Structure). */
enum class CoverageTarget : int
{
    FetchBuf = 0,   ///< fetch/instruction buffer entries
    RenameMap = 1,  ///< rename map (arch -> phys) slots
    BranchPred = 2, ///< branch predictor counter table
    NumTargets
};

/** Number of probe targets. */
inline constexpr int numCoverageTargets =
    static_cast<int>(CoverageTarget::NumTargets);

/** Blame-unit / display name ("fetch_buf", ...). */
std::string_view coverageTargetName(CoverageTarget t);

/** Probe parameters (one M/N pair shared by the probe set). */
struct CoverageProbeConfig
{
    /** Injection window length in cycles. */
    Cycle m = 1000;
    /** Windows per completed AVF estimate. */
    std::uint32_t n = 100;
};

/**
 * One probe: a core::AvfEstimator over one CoverageTarget, one lane
 * of the shared injection port, feeding the attribution tracker
 * directly through recordWindow(). Attach with pipe.addObserver()
 * after the shared port, like any estimator.
 */
class CoverageProbe : public core::AvfEstimator
{
  public:
    CoverageProbe(cpu::Pipeline &pipe, core::InjectionPort &port,
                  AttributionTracker &tracker, CoverageTarget target,
                  CoverageProbeConfig config);

    // ---- cpu::PipelineObserver ----
    void onCycle(Cycle now) override;

    // ---- core::AvfEstimator ----
    std::string name() const override;
    const std::vector<double> &estimates() const override
    {
        return results;
    }
    double partialAvf() const override;
    core::EstimatorState snapshotState() const override;
    void restoreState(const core::EstimatorState &state) override;

    /** Probe target. */
    CoverageTarget target() const { return probeTarget; }

    /** Lane this probe injects on. */
    LaneId laneId() const { return lane; }

    /** Windows whose bit the target killed (branch predictor only:
     *  the architecturally-masked-by-construction count). */
    std::uint64_t killedWindows() const { return killed; }

  private:
    /** Slots in the probed structure (round-robin modulus). */
    int numSlots() const;

    /** Build the injection site for the current cursor. */
    core::Site siteAt(int slot) const;

    cpu::Pipeline &pipeline;
    core::InjectionPort &portRef;
    AttributionTracker &attribution;
    CoverageTarget probeTarget;
    CoverageProbeConfig conf;
    std::uint32_t unit = 0;

    IntervalTicker boundaryTick;
    LaneId lane = -1;
    core::WindowHandle handle;
    bool windowOpen = false;
    bool windowLive = false;
    Cycle openCycle = 0;
    int cursor = 0;
    std::uint32_t injections = 0;
    std::uint32_t failures = 0;
    std::uint64_t lifetimeInjections = 0;
    std::uint64_t lifetimeFailures = 0;
    std::uint64_t killed = 0;
    std::vector<double> results;
};

} // namespace avf::obs

#endif // AVF_OBS_COVERAGE_PROBE_HH
