#include "obs/control_feed.hh"

#include <algorithm>
#include <string>

#include "util/logging.hh"

namespace avf::obs
{

ControlFeed::ControlFeed(Cycle reportLatencyCycles)
    : latency(reportLatencyCycles)
{
    avfSlot.fill(-1);
}

void
ControlFeed::attachAvf(core::Structure structure,
                       const core::AvfEstimator &estimator)
{
    auto idx = static_cast<std::size_t>(structure);
    avf_assert(avfSlot[idx] < 0,
               "control feed: structure attached twice");
    Source source;
    source.estimator = &estimator;
    source.series = registry.registerSeries(
        "control_" + std::string(core::structureName(structure)) +
        "_avf");
    avfSlot[idx] = static_cast<int>(sources.size());
    sources.push_back(std::move(source));
}

void
ControlFeed::attachOccupancy(const core::AvfEstimator &estimator)
{
    avf_assert(occupancySlot < 0,
               "control feed: occupancy attached twice");
    Source source;
    source.estimator = &estimator;
    source.series = registry.registerSeries("control_occupancy_iq");
    occupancySlot = static_cast<int>(sources.size());
    sources.push_back(std::move(source));
}

void
ControlFeed::pump(Source &source, Cycle now)
{
    const auto &fresh = source.estimator->estimates();
    while (source.taken < fresh.size()) {
        // One staged entry per closed estimation interval (a deque:
        // chunk reuse keeps steady state off the allocator).
        // avflint: allow(hot-path-alloc)
        source.staged.emplace_back(now + latency,
                                   fresh[source.taken]);
        ++source.taken;
    }
    while (!source.staged.empty() &&
           source.staged.front().first <= now) {
        registry.push(source.series, source.staged.front().second);
        source.staged.pop_front();
    }
}

void
ControlFeed::onCycle(Cycle now)
{
    for (auto &source : sources)
        pump(source, now);
}

std::size_t
ControlFeed::rows() const
{
    bool any = false;
    std::size_t rows = 0;
    for (int slot : avfSlot) {
        if (slot < 0)
            continue;
        std::size_t len = registry
            .seriesValues(sources[static_cast<std::size_t>(slot)]
                              .series)
            .size();
        rows = any ? std::min(rows, len) : len;
        any = true;
    }
    return any ? rows : 0;
}

bool
ControlFeed::hasAvf(core::Structure structure) const
{
    return avfSlot[static_cast<std::size_t>(structure)] >= 0;
}

const std::vector<double> &
ControlFeed::avfSeries(core::Structure structure) const
{
    int slot = avfSlot[static_cast<std::size_t>(structure)];
    avf_assert(slot >= 0, "control feed: structure not attached");
    return registry.seriesValues(
        sources[static_cast<std::size_t>(slot)].series);
}

const std::vector<double> &
ControlFeed::occupancySeries() const
{
    avf_assert(occupancySlot >= 0,
               "control feed: occupancy not attached");
    return registry.seriesValues(
        sources[static_cast<std::size_t>(occupancySlot)].series);
}

} // namespace avf::obs
