/**
 * @file
 * Trace-driven out-of-order superscalar timing model in the style of
 * Turandot: fetch through an instruction buffer with a gshare
 * predictor (mispredictions stall fetch until resolve + redirect),
 * register renaming onto physical register files, dispatch groups,
 * three issue queues, fully-pipelined functional units with Table 1
 * latencies, a store queue with store-to-load forwarding, and
 * in-order group retirement from a reorder buffer.
 *
 * The pipeline carries the paper's error-bit plane: every physical
 * register, issue-queue entry (via the occupying instruction), and
 * functional unit can be "injected" with a per-channel error bit that
 * then propagates with execution exactly as Section 3 describes —
 * reads OR source bits into the consumer, overwrites kill bits, idle
 * structures mask injections, and retiring loads/stores/branches are
 * the failure points.
 */

#ifndef AVF_CPU_PIPELINE_HH
#define AVF_CPU_PIPELINE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "cpu/config.hh"
#include "cpu/dyn_instr.hh"
#include "cpu/observer.hh"
#include "cpu/rename.hh"
#include "mem/hierarchy.hh"
#include "trace/trace_source.hh"
#include "util/error_plane.hh"
#include "util/types.hh"

namespace avf::cpu
{

/** Aggregate pipeline counters. */
struct PipelineStats
{
    std::uint64_t cycles = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t retired = 0;
    std::uint64_t fetchStallCycles = 0;
    /** Branch mispredictions resolved (fetch redirects issued). */
    std::uint64_t redirects = 0;
    /** Cycles each unit class had at least one op in flight, summed
     *  over the units of the class (unit-cycles). */
    std::uint64_t busyUnitCycles[static_cast<int>(
        FuClass::NumClasses)] = {0, 0, 0, 0};
    /** Sum over cycles of occupied issue-queue entries (all queues). */
    std::uint64_t iqOccupancySum = 0;
    /** Sum over cycles of occupied ROB entries. */
    std::uint64_t robOccupancySum = 0;

    /** Retired instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(retired) /
                        static_cast<double>(cycles)
                      : 0.0;
    }
};

/** The out-of-order core. */
class Pipeline
{
  public:
    /**
     * @param config machine parameters (validated here).
     * @param source dynamic instruction stream; must outlive this.
     */
    Pipeline(const CpuConfig &config, trace::TraceSource &source);

    /** Attach an observer (not owned); order of attach = call order. */
    void addObserver(PipelineObserver *observer);

    /**
     * Advance one cycle.
     * @return false once the trace is exhausted and the core drained.
     */
    bool step();

    /** Run for at most @p cycles cycles (stops early when drained). */
    void run(Cycle cycles);

    /** True when no work remains anywhere in the machine. */
    bool done() const;

    /** Current cycle. */
    Cycle now() const { return currentCycle; }

    // ---- error-bit plane (Section 3.5 hardware support) ----

    /**
     * Inject an error into physical register @p physReg by OR-ing
     * @p mask into its error bits.
     */
    void injectRegError(int physReg, ErrorMask mask);

    /**
     * Inject an error into the issue-queue entry with global index
     * @p globalEntry (0 .. totalIqEntries()-1). If the entry holds an
     * instruction, that instruction's value becomes erroneous.
     *
     * @return true if the entry was occupied (injection can matter).
     */
    bool injectIqEntryError(int globalEntry, ErrorMask mask);

    /** Outcome of a field-granular issue-queue injection. */
    enum class IqFieldInjection
    {
        EmptyEntry,  ///< no instruction in the entry: masked
        UnusedField, ///< the field is not populated: masked
        Corrupted    ///< the occupying instruction is now erroneous
    };

    /** Fields per issue-queue entry in field-granular mode: the
     *  opcode/control field plus three source-operand fields. */
    static constexpr int iqFieldsPerEntry = 4;

    /**
     * Finer-granularity issue-queue injection (Section 3.6's
     * multiple-error-bits-per-value extension): corrupt only field
     * @p field of entry @p globalEntry. Field 0 is the opcode /
     * control field (always populated); fields 1..3 are the source
     * operand slots, which are masked when the occupying instruction
     * does not use them.
     */
    IqFieldInjection injectIqFieldError(int globalEntry, int field,
                                        ErrorMask mask);

    /**
     * Inject an error into functional unit @p unit of class @p cls:
     * all operations resident in the unit this cycle are corrupted.
     *
     * @return the number of operations corrupted (0 = unit idle,
     *         injection masked).
     */
    int injectFuError(FuClass cls, int unit, ErrorMask mask);

    /** Clear the given channels everywhere (between injections). */
    void clearErrorChannels(ErrorMask mask);

    /**
     * Route PipelineObserver::onErrorHop events to @p sink; nullptr
     * (the default) disables them. Hop events go to one dedicated
     * sink rather than the whole observer list because the emission
     * checks sit on the issue/writeback hot paths — fanning every
     * hop out through N virtual no-ops would tax runs that do not
     * trace. No-op (events never fire) when the build was configured
     * with -DAVF_LIFECYCLE_HOOKS=OFF.
     */
    void setHopSink(PipelineObserver *sink) { hopSink = sink; }

    /** True when onErrorHop events are being delivered. */
    bool hopEventsEnabled() const { return hopSink != nullptr; }

    /**
     * Inject an error into dTLB entry slot @p slot (the TLB-AVF
     * extension experiment; see bench/ext_tlb_avf).
     * @return the typed Tlb::injectError outcome: Rejected (slot out
     *         of range, nothing written), Opened (no valid
     *         translation, trivially masked) or Occupied (bits landed
     *         on a live translation).
     */
    InjectOutcome injectDtlbError(int slot, ErrorMask mask);

    /** dTLB entry slots available for injection. */
    int numDtlbSlots() const;

    // ---- extended-coverage injection surfaces (the structures the
    //      paper models but never estimates; see obs::CoverageProbe) --

    /**
     * Inject an error into fetch-buffer slot @p slot (0 = oldest
     * buffered instruction). A corrupted buffered instruction
     * dispatches erroneous: its error bits ride the DynInstr exactly
     * like an IQ-entry injection.
     *
     * @return true when the slot held an instruction (injection can
     *         matter); false when it was empty (masked).
     */
    bool injectFetchBufError(int slot, ErrorMask mask);

    /** Fetch-buffer slots available for injection (capacity). */
    int numFetchBufSlots() const { return conf.fetchBufferEntries; }

    /**
     * Inject an error into rename-map slot @p archReg: the value
     * reached through the corrupted mapping — the physical register
     * the slot currently names — is treated as erroneous (a flipped
     * map bit steers every consumer to the wrong register, which the
     * plane models at value granularity, conservatively).
     *
     * @return Occupied (a map slot always names a register) or
     *         Rejected when @p archReg is out of range.
     */
    InjectOutcome injectRenameMapError(int archReg, ErrorMask mask);

    /** Rename-map slots available for injection (arch registers). */
    int numRenameMapSlots() const;

    /**
     * Inject an error into branch-predictor counter slot @p slot.
     * Predictor state is architecturally masked (a flip can change
     * timing, never a retired value), so the bit either dies when an
     * update overwrites its entry — query branchPredKilledMask() —
     * or sits in the plane until swept.
     */
    InjectOutcome injectBranchPredError(int slot, ErrorMask mask);

    /** Predictor counter slots available for injection. */
    int numBranchPredSlots() const;

    /** Error bits resident on predictor slot @p slot. */
    ErrorMask branchPredErrorAt(int slot) const;

    /** Lanes whose predictor bits were overwritten by updates. */
    ErrorMask branchPredKilledMask() const;

    // ---- dynamic adaptation knobs ----

    /**
     * Throttle dispatch to at most @p width instructions per cycle
     * (a classic vulnerability-reduction mechanism: fewer
     * instructions in flight means lower occupancy and lower AVF at
     * an IPC cost). Pass 0 to restore the configured width.
     */
    void setDispatchThrottle(int width);

    /** Current effective dispatch width. */
    int effectiveDispatchWidth() const;

    /** Error bits currently on physical register @p physReg. */
    ErrorMask regErrorAt(int physReg) const;

    /** True if issue-queue global entry @p globalEntry is occupied. */
    bool iqEntryOccupied(int globalEntry) const;

    // ---- introspection ----

    const CpuConfig &config() const { return conf; }
    const PipelineStats &stats() const { return statsData; }
    const mem::MemoryHierarchy &memory() const { return hierarchy; }
    const BranchPredictor &branchPredictor() const { return predictor; }
    const RenameUnit &renameUnit() const { return rename; }

    /** Physical registers in the integer plane (the REG structure). */
    int numIntPhysRegs() const { return rename.intPhysRegs(); }

    /** Total issue-queue entries (the IQ structure). */
    int totalIqEntries() const { return conf.totalIqEntries(); }

  private:
    /** One slot-array issue queue. */
    struct IssueQueue
    {
        std::vector<int> slots; ///< robIdx or -1
        std::vector<int> freeSlots; ///< stack of empty slot indices
        int occupied = 0;
        int globalBase = 0; ///< first global entry index of this queue
    };

    /** Issue candidate gathered by issueStage. */
    struct IssueCandidate
    {
        InstrSeq seq;
        int robIdx;
        FuClass cls;
    };

    /** Store-queue entry (circular, program order). */
    struct SqEntry
    {
        bool valid = false;
        bool addrReady = false;
        Addr addr = 0;
        std::uint8_t size = 8;
        ErrorMask error = 0;
        InstrSeq seq = invalidSeq;
    };

    /** Instruction waiting between fetch and dispatch. */
    struct FetchedInstr
    {
        trace::TraceInstruction in;
        Cycle fetchCycle;
        bool mispredicted;
        /** Error bits injected into this buffer slot. */
        ErrorMask error;
    };

    // pipeline stages, called in reverse order each cycle
    void retireStage();
    void completeStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();
    void accountCycle();

    // helpers
    static IqId iqFor(trace::OpClass op);
    static FuClass fuFor(trace::OpClass op);
    int latencyFor(const DynInstr &instr, bool forwarded) const;
    void issueOne(int robIdx, FuClass cls);
    void notifyErrorHop(const DynInstr &instr, ErrorMask bits,
                        ErrorHop hop);
    bool tryDispatchOne(const FetchedInstr &fetched);
    void scheduleCompletion(int robIdx, Cycle when);
    /** Search the store queue for a forwardable older store. */
    int findForwardingStore(const DynInstr &load) const;

    DynInstr &robAt(int idx) { return rob[static_cast<std::size_t>(idx)]; }

    CpuConfig conf;
    trace::TraceSource &source;
    mem::MemoryHierarchy hierarchy;
    BranchPredictor predictor;
    RenameUnit rename;
    std::vector<PipelineObserver *> observers;

    Cycle currentCycle = 0;
    InstrSeq nextSeq = 0;
    /** 0 = no throttle; otherwise a dispatch-width cap. */
    int dispatchThrottle = 0;
    /** Receiver of onErrorHop events; nullptr = disabled. */
    PipelineObserver *hopSink = nullptr;

    // ROB (circular)
    std::vector<DynInstr> rob;
    int robHead = 0;
    int robTail = 0;
    int robCount = 0;

    // issue queues
    IssueQueue queues[static_cast<int>(IqId::NumQueues)];

    // physical register state
    std::vector<std::uint8_t> regReady;
    ErrorPlane regError;
    std::vector<InstrSeq> regProducer;
    /**
     * Conservative superset of the error channels present in any ROB
     * errorMask or store-queue entry. Lets clearErrorChannels() skip
     * the ROB and SQ sweeps when the swept channels never reached
     * them — with one channel per estimator and one error at a time,
     * the common case by far. Only ever overcounts: cleared solely by
     * clearErrorChannels() after it swept the channels out.
     */
    ErrorMask errInRobSq = 0;
    /** Same conservative summary for the fetch buffer's slots. */
    ErrorMask errInFetchBuf = 0;

    // store queue (circular)
    std::vector<SqEntry> storeQueue;
    int sqHead = 0;
    int sqTail = 0;
    int sqCount = 0;

    // completion events: ring of robIdx lists
    static constexpr std::size_t ringSize = 1024;
    std::vector<std::vector<int>> completionRing;

    // functional units: in-flight counters for busy accounting plus
    // lazily-pruned (robIdx, completeCycle) lists for error injection
    struct Unit
    {
        std::vector<std::pair<int, Cycle>> resident;
        int inFlight = 0;
    };
    std::vector<Unit> units[static_cast<int>(FuClass::NumClasses)];
    /**
     * Event-driven wakeup: instructions whose operands are all ready
     * wait here (sorted at issue time); per-register waiter lists
     * move instructions in as their producers write back. This keeps
     * the issue stage O(ready work) instead of O(queue occupancy).
     */
    std::vector<IssueCandidate> readyList;
    /** Scratch for the not-issued leftovers each cycle. */
    std::vector<IssueCandidate> leftoverScratch;
    /** Per-physical-register waiters: (seq, robIdx) pairs. */
    std::vector<std::vector<std::pair<InstrSeq, int>>> regWaiters;
    int unitRoundRobin[static_cast<int>(FuClass::NumClasses)] = {0, 0,
                                                                 0, 0};

    // fetch state
    std::deque<FetchedInstr> fetchBuffer;
    std::optional<trace::TraceInstruction> pendingInstr;
    bool traceDone = false;
    Cycle fetchResumeCycle = 0;
    bool fetchBlockedOnBranch = false;
    Addr lastFetchLine = ~Addr(0);

    PipelineStats statsData;
};

} // namespace avf::cpu

#endif // AVF_CPU_PIPELINE_HH
