#include "cpu/branch_predictor.hh"

#include "util/logging.hh"

namespace avf::cpu
{

BranchPredictor::BranchPredictor(int tableBits, int historyBits)
{
    avf_assert(tableBits > 0 && tableBits <= 24,
               "predictor table bits out of range");
    avf_assert(historyBits >= 0 && historyBits <= tableBits,
               "history longer than index");
    table.assign(std::size_t(1) << tableBits, 1); // weakly not-taken
    indexMask = (std::uint32_t(1) << tableBits) - 1;
    historyMask = historyBits
        ? (std::uint32_t(1) << historyBits) - 1
        : 0;
}

bool
BranchPredictor::predictAndUpdate(Addr pc, bool taken)
{
    ++statsData.lookups;
    std::uint32_t idx =
        (static_cast<std::uint32_t>(pc >> 2) ^ history) & indexMask;
    std::uint8_t &ctr = table[idx];
    bool predicted = ctr >= 2;

    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;

    history = ((history << 1) | (taken ? 1 : 0)) & historyMask;

    if (predicted != taken) {
        ++statsData.mispredicts;
        return false;
    }
    return true;
}

} // namespace avf::cpu
