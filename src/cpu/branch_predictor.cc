#include "cpu/branch_predictor.hh"

#include "util/logging.hh"

namespace avf::cpu
{

BranchPredictor::BranchPredictor(int tableBits, int historyBits)
{
    avf_assert(tableBits > 0 && tableBits <= 24,
               "predictor table bits out of range");
    avf_assert(historyBits >= 0 && historyBits <= tableBits,
               "history longer than index");
    table.assign(std::size_t(1) << tableBits, 1); // weakly not-taken
    tableError.assign(table.size(), 0);
    indexMask = (std::uint32_t(1) << tableBits) - 1;
    historyMask = historyBits
        ? (std::uint32_t(1) << historyBits) - 1
        : 0;
}

bool
BranchPredictor::predictAndUpdate(Addr pc, bool taken)
{
    ++statsData.lookups;
    std::uint32_t idx =
        (static_cast<std::uint32_t>(pc >> 2) ^ history) & indexMask;
    std::uint8_t &ctr = table[idx];
    bool predicted = ctr >= 2;

    // The update rewrites this entry, killing any resident injected
    // bits (correct state overwrites the flip). One summary-mask test
    // keeps the unarmed common case free.
    if (errAny != 0 && tableError[idx] != 0) {
        killedBits |= tableError[idx];
        errAny &= ~tableError[idx];
        tableError[idx] = 0;
    }

    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;

    history = ((history << 1) | (taken ? 1 : 0)) & historyMask;

    if (predicted != taken) {
        ++statsData.mispredicts;
        return false;
    }
    return true;
}

InjectOutcome
BranchPredictor::injectError(int slot, ErrorMask mask)
{
    if (slot < 0 || slot >= numSlots())
        return InjectOutcome::Rejected;
    tableError[static_cast<std::size_t>(slot)] |= mask;
    errAny |= mask;
    return InjectOutcome::Occupied;
}

ErrorMask
BranchPredictor::errorAt(int slot) const
{
    if (slot < 0 || slot >= numSlots())
        return 0;
    return tableError[static_cast<std::size_t>(slot)];
}

void
BranchPredictor::clearErrors(ErrorMask mask)
{
    killedBits &= ~mask;
    if ((errAny & mask) == 0)
        return;
    for (ErrorMask &bits : tableError)
        bits &= ~mask;
    errAny &= ~mask;
}

} // namespace avf::cpu
