/**
 * @file
 * Machine configuration. Defaults reproduce Table 1 of the paper: a
 * POWER4-like out-of-order superscalar with an 8-wide fetch, 5-wide
 * dispatch groups, 2 FXU / 2 FPU / 2 LSU / 1 BR units, issue queues
 * of 36 (int + load/store), 20 (FP), and 12 (branch) entries, 80
 * integer and 72 FP physical registers, and a 64-entry instruction
 * buffer, over the Table 1 memory hierarchy.
 */

#ifndef AVF_CPU_CONFIG_HH
#define AVF_CPU_CONFIG_HH

#include <cstdint>
#include <string>

#include "mem/hierarchy.hh"

namespace avf::cpu
{

/** Issue-queue identifiers. */
enum class IqId : std::uint8_t
{
    IntLs = 0, ///< shared integer + load/store queue (36 entries)
    Fp = 1,    ///< floating-point queue (20 entries)
    Br = 2,    ///< branch queue (12 entries)
    NumQueues
};

/** Functional-unit classes. */
enum class FuClass : std::uint8_t
{
    Fxu = 0, ///< fixed-point (integer) units
    Fpu = 1, ///< floating-point units
    Lsu = 2, ///< load/store units
    Bru = 3, ///< branch unit
    NumClasses
};

/** Human-readable name of a functional-unit class. */
std::string fuClassName(FuClass cls);

/** Full processor configuration (defaults = Table 1). */
struct CpuConfig
{
    // --- front end ---
    /** Instructions fetched per cycle. */
    int fetchWidth = 8;
    /** Instruction (fetch) buffer entries. */
    int fetchBufferEntries = 64;
    /** Fetch-redirect penalty after a resolved misprediction. */
    int redirectPenalty = 3;
    /** log2 of branch-predictor table entries. */
    int predictorBits = 12;
    /**
     * Branch history length for gshare; 0 selects a pure bimodal
     * table, which is the right default for per-site-biased branch
     * behaviour (history only dilutes bias-dominated streams).
     */
    int historyBits = 0;

    // --- dispatch / retire ---
    /** Max instructions dispatched per cycle (one dispatch group). */
    int dispatchWidth = 5;
    /** Max instructions retired per cycle (one dispatch group). */
    int retireWidth = 5;
    /** Reorder-buffer capacity (POWER4: 20 groups of 5). */
    int robEntries = 100;

    // --- issue queues ---
    /** Shared integer/load/store queue entries. */
    int intLsIqEntries = 36;
    /** FP queue entries. */
    int fpIqEntries = 20;
    /** Branch queue entries. */
    int brIqEntries = 12;

    // --- execution resources ---
    int numFxu = 2;
    int numFpu = 2;
    int numLsu = 2;
    int numBru = 1;

    // --- register files ---
    int intPhysRegs = 80;
    int fpPhysRegs = 72;

    // --- store queue ---
    int storeQueueEntries = 32;

    // --- latencies (cycles) ---
    int intAluLatency = 1;
    int intMulLatency = 4;
    int intDivLatency = 35;
    int fpAluLatency = 5;
    int fpDivLatency = 28;
    /** Address-generation cycles added before the cache access. */
    int agenLatency = 1;
    /** Store execution (address + data capture). */
    int storeLatency = 1;
    /** Load latency when forwarded from the store queue. */
    int forwardLatency = 2;
    /** Branch execution latency. */
    int branchLatency = 1;

    // --- memory hierarchy ---
    mem::MemConfig mem;

    /** Total issue-queue entries across all queues. */
    int
    totalIqEntries() const
    {
        return intLsIqEntries + fpIqEntries + brIqEntries;
    }

    /** Units in @p cls. */
    int unitsIn(FuClass cls) const;

    /** Abort with fatal() if any field is inconsistent. */
    void validate() const;
};

} // namespace avf::cpu

#endif // AVF_CPU_CONFIG_HH
