#include "cpu/pipeline.hh"

#include <algorithm>

#include "util/logging.hh"

// Lifecycle observability hooks (onErrorHop emission) compile out
// entirely with -DAVF_LIFECYCLE_HOOKS=OFF; see the root CMakeLists.
#ifndef AVF_LIFECYCLE_HOOKS
#define AVF_LIFECYCLE_HOOKS 1
#endif

namespace avf::cpu
{

using trace::OpClass;

Pipeline::Pipeline(const CpuConfig &config, trace::TraceSource &src)
    : conf(config), source(src), hierarchy(config.mem),
      predictor(config.predictorBits, config.historyBits), rename(config)
{
    conf.validate();
    rob.resize(static_cast<std::size_t>(conf.robEntries));

    auto init_queue = [](IssueQueue &q, int entries, int base) {
        q.slots.assign(static_cast<std::size_t>(entries), -1);
        q.freeSlots.reserve(static_cast<std::size_t>(entries));
        for (int s = entries; s-- > 0;)
            q.freeSlots.push_back(s);
        q.occupied = 0;
        q.globalBase = base;
    };
    init_queue(queues[static_cast<int>(IqId::IntLs)],
               conf.intLsIqEntries, 0);
    init_queue(queues[static_cast<int>(IqId::Fp)], conf.fpIqEntries,
               conf.intLsIqEntries);
    init_queue(queues[static_cast<int>(IqId::Br)], conf.brIqEntries,
               conf.intLsIqEntries + conf.fpIqEntries);

    int total_regs = rename.totalPhysRegs();
    regReady.assign(static_cast<std::size_t>(total_regs), 1);
    regError.resize(static_cast<std::size_t>(total_regs));
    regProducer.assign(static_cast<std::size_t>(total_regs),
                       invalidSeq);
    regWaiters.resize(static_cast<std::size_t>(total_regs));

    // Steady-state issue traffic never exceeds the ROB; size the
    // scheduling scratch once so the per-cycle loops do not grow it.
    readyList.reserve(static_cast<std::size_t>(conf.robEntries));
    leftoverScratch.reserve(static_cast<std::size_t>(conf.robEntries));

    storeQueue.assign(static_cast<std::size_t>(conf.storeQueueEntries),
                      SqEntry{});
    completionRing.resize(ringSize);

    for (int cls = 0; cls < static_cast<int>(FuClass::NumClasses);
         ++cls) {
        units[cls].resize(static_cast<std::size_t>(
            conf.unitsIn(static_cast<FuClass>(cls))));
        // Residency lists are bounded by the ROB; size them once so
        // issueOne never grows them per cycle.
        for (auto &unit : units[cls])
            unit.resident.reserve(
                static_cast<std::size_t>(conf.robEntries));
    }
}

void
Pipeline::addObserver(PipelineObserver *observer)
{
    observers.push_back(observer);
}

bool
Pipeline::done() const
{
    return traceDone && !pendingInstr.has_value() &&
           fetchBuffer.empty() && robCount == 0;
}

bool
Pipeline::step()
{
    if (done())
        return false;

    retireStage();
    completeStage();
    issueStage();
    dispatchStage();
    fetchStage();
    accountCycle();

    for (auto *obs : observers)
        obs->onCycle(currentCycle);

    ++currentCycle;
    ++statsData.cycles;
    return !done();
}

void
Pipeline::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        if (!step())
            break;
}

// ---------------------------------------------------------------------
// Stage: retirement (in order, up to one dispatch group per cycle)
// ---------------------------------------------------------------------

void
Pipeline::retireStage()
{
    for (int n = 0; n < conf.retireWidth && robCount > 0; ++n) {
        DynInstr &instr = robAt(robHead);
        if (!instr.completed)
            break;

        instr.retireCycle = currentCycle;

        if (instr.in.op == OpClass::Store) {
            // The committing store uses a dTLB translation; a
            // corrupted entry corrupts the store.
            ErrorMask tlb_error = 0;
            hierarchy.dataAccess(instr.in.effAddr, currentCycle,
                                 &tlb_error);
            instr.errorMask |= tlb_error;
            errInRobSq |= tlb_error;
        }

        RetireInfo info;
        if (instr.isFailurePoint())
            info.failureMask = instr.errorMask;

        if (instr.in.op == OpClass::Store) {
            // Free the store-queue slot. Stores retire in program
            // order, so the slot is always the SQ head.
            avf_assert(sqCount > 0, "store retiring with empty SQ");
            avf_assert(storeQueue[static_cast<std::size_t>(
                           sqHead)].seq == instr.seq,
                       "store retire out of SQ order");
            storeQueue[static_cast<std::size_t>(sqHead)] = SqEntry{};
            sqHead = (sqHead + 1) % conf.storeQueueEntries;
            --sqCount;
        }

        if (instr.oldDestPhys >= 0)
            rename.release(instr.oldDestPhys);

        for (auto *obs : observers)
            obs->onRetire(instr, info);

        robHead = (robHead + 1) % conf.robEntries;
        --robCount;
        ++statsData.retired;
    }
}

// ---------------------------------------------------------------------
// Stage: completion / writeback
// ---------------------------------------------------------------------

void
Pipeline::scheduleCompletion(int robIdx, Cycle when)
{
    avf_assert(when > currentCycle && when - currentCycle < ringSize,
               "completion out of ring range (delta %llu)",
               static_cast<unsigned long long>(when - currentCycle));
    // Ring slots keep their capacity across wrap-around clears, so
    // growth stops once the in-flight high-water mark is reached.
    // avflint: allow(hot-path-alloc)
    completionRing[when % ringSize].push_back(robIdx);
}

void
Pipeline::completeStage()
{
    auto &bucket = completionRing[currentCycle % ringSize];
    for (int rob_idx : bucket) {
        DynInstr &instr = robAt(rob_idx);
        avf_assert(instr.issued && !instr.completed,
                   "completion of non-issued instruction");
        avf_assert(instr.completeCycle == currentCycle,
                   "completion ring slot mismatch");
        instr.completed = true;

        if (instr.destPhys >= 0) {
            auto dest = static_cast<std::size_t>(instr.destPhys);
            regReady[dest] = 1;
#if AVF_LIFECYCLE_HOOKS
            if (hopSink) {
                ErrorMask killed = regError.get(dest) &
                    static_cast<ErrorMask>(~instr.errorMask);
                if (killed)
                    notifyErrorHop(instr, killed,
                                   ErrorHop::OverwriteKill);
            }
#endif
            // Overwrite, not OR: writing a value replaces whatever
            // error state the register carried (dead-error kill).
            regError.setMask(dest, instr.errorMask);

            // Wake consumers blocked on this register.
            auto &waiters = regWaiters[dest];
            for (auto [seq, waiter_rob] : waiters) {
                DynInstr &waiter = robAt(waiter_rob);
                if (waiter.seq != seq || waiter.issued)
                    continue;
                avf_assert(waiter.pendingSrcs > 0,
                           "waiter with no pending sources");
                if (--waiter.pendingSrcs == 0)
                    readyList.push_back({waiter.seq, waiter_rob,
                                         waiter.fu});
            }
            waiters.clear();
        }

        if (instr.fuUnit >= 0) {
            --units[static_cast<int>(instr.fu)]
                  [static_cast<std::size_t>(instr.fuUnit)].inFlight;
        }

        if (instr.in.op == OpClass::Store) {
            auto &entry = storeQueue[static_cast<std::size_t>(
                instr.sqIndex)];
            avf_assert(entry.valid && entry.seq == instr.seq,
                       "store completion against stale SQ entry");
            entry.addr = instr.in.effAddr;
            entry.size = instr.in.memSize;
            entry.addrReady = true;
            entry.error = instr.errorMask;
        }

        if (instr.mispredicted) {
            // Branch resolved: release fetch after the redirect
            // penalty.
            avf_assert(fetchBlockedOnBranch,
                       "mispredicted branch resolved but fetch not "
                       "blocked");
            fetchBlockedOnBranch = false;
            fetchResumeCycle = currentCycle +
                static_cast<Cycle>(conf.redirectPenalty);
            ++statsData.redirects;
        }

        for (auto *obs : observers)
            obs->onComplete(instr);
    }
    bucket.clear();
}

// ---------------------------------------------------------------------
// Stage: issue (oldest-ready-first per queue, bounded by unit counts)
// ---------------------------------------------------------------------

int
Pipeline::latencyFor(const DynInstr &instr, bool forwarded) const
{
    switch (instr.in.op) {
      case OpClass::IntAlu: return conf.intAluLatency;
      case OpClass::IntMul: return conf.intMulLatency;
      case OpClass::IntDiv: return conf.intDivLatency;
      case OpClass::FpAlu: return conf.fpAluLatency;
      case OpClass::FpDiv: return conf.fpDivLatency;
      case OpClass::Store: return conf.storeLatency;
      case OpClass::BranchCond:
      case OpClass::BranchUncond: return conf.branchLatency;
      case OpClass::Load:
        avf_assert(forwarded,
                   "non-forwarded loads resolve latency in issueOne");
        return conf.agenLatency + conf.forwardLatency;
      default:
        panic("latencyFor called for op %d",
              static_cast<int>(instr.in.op));
    }
}

int
Pipeline::findForwardingStore(const DynInstr &load) const
{
    // Scan the store queue youngest-first for an older store with a
    // resolved, matching (8-byte-granular) address.
    Addr dword = load.in.effAddr >> 3;
    int idx = (sqTail + conf.storeQueueEntries - 1) %
              conf.storeQueueEntries;
    for (int n = 0; n < sqCount; ++n) {
        const auto &entry = storeQueue[static_cast<std::size_t>(idx)];
        if (entry.valid && entry.seq < load.seq && entry.addrReady &&
            (entry.addr >> 3) == dword) {
            return idx;
        }
        idx = (idx + conf.storeQueueEntries - 1) %
              conf.storeQueueEntries;
    }
    return -1;
}

void
Pipeline::issueOne(int robIdx, FuClass cls)
{
    DynInstr &instr = robAt(robIdx);

    // Read the source registers: error bits travel with the values
    // ("or" gates merge multi-input errors).
#if AVF_LIFECYCLE_HOOKS
    // Hop accounting. hop_carried: bits acquired by reads this issue.
    // hop_once/hop_twice: per-channel origin tracking — a channel bit
    // contributed by two or more origins (prior mask, each erroneous
    // source, forwarded store, dTLB entry) is an OR-merge.
    ErrorMask hop_carried = 0;
    ErrorMask hop_once = hopSink ? instr.errorMask : 0;
    ErrorMask hop_twice = 0;
#endif
    for (auto phys : instr.srcPhys) {
        if (phys >= 0) {
            ErrorMask src_bits =
                regError.get(static_cast<std::size_t>(phys));
            instr.errorMask |= src_bits;
#if AVF_LIFECYCLE_HOOKS
            if (hopSink && src_bits) {
                hop_carried |= src_bits;
                hop_twice |= hop_once & src_bits;
                hop_once |= src_bits;
            }
#endif
        }
    }

    bool forwarded = false;
    if (instr.in.op == OpClass::Load) {
        int fwd = findForwardingStore(instr);
        if (fwd >= 0) {
            forwarded = true;
            // The loaded value inherits the forwarded store's error.
            ErrorMask fwd_bits =
                storeQueue[static_cast<std::size_t>(fwd)].error;
            instr.errorMask |= fwd_bits;
#if AVF_LIFECYCLE_HOOKS
            if (hopSink && fwd_bits) {
                hop_carried |= fwd_bits;
                hop_twice |= hop_once & fwd_bits;
                hop_once |= fwd_bits;
            }
#endif
        }
    }

    // Free the issue-queue entry.
    auto &queue = queues[static_cast<int>(instr.iq)];
    avf_assert(instr.iqEntry >= 0 &&
               queue.slots[static_cast<std::size_t>(instr.iqEntry)] ==
                   robIdx,
               "issue-queue slot inconsistency");
    queue.slots[static_cast<std::size_t>(instr.iqEntry)] = -1;
    queue.freeSlots.push_back(instr.iqEntry);
    --queue.occupied;
    instr.iqEntry = -1;

    // Bind a unit (fully pipelined; round-robin across the class).
    auto &class_units = units[static_cast<int>(cls)];
    int unit = unitRoundRobin[static_cast<int>(cls)];
    unitRoundRobin[static_cast<int>(cls)] =
        (unit + 1) % static_cast<int>(class_units.size());
    instr.fuUnit = static_cast<std::int8_t>(unit);

    int latency;
    if (instr.in.op == OpClass::Load && !forwarded) {
        // The cache access happens at issue; the dTLB entry that
        // translates the access carries its own error bits, which
        // ride into the loaded value.
        ErrorMask tlb_error = 0;
        latency = conf.agenLatency + static_cast<int>(
            hierarchy.dataAccess(instr.in.effAddr, currentCycle,
                                 &tlb_error));
        instr.errorMask |= tlb_error;
#if AVF_LIFECYCLE_HOOKS
        if (hopSink && tlb_error) {
            hop_carried |= tlb_error;
            hop_twice |= hop_once & tlb_error;
            hop_once |= tlb_error;
        }
#endif
    } else {
        latency = latencyFor(instr, forwarded);
    }
#if AVF_LIFECYCLE_HOOKS
    if (hopSink) {
        if (hop_carried)
            notifyErrorHop(instr, hop_carried, ErrorHop::ReadCarry);
        if (hop_twice)
            notifyErrorHop(instr, hop_twice, ErrorHop::OrMerge);
        if (instr.errorMask)
            notifyErrorHop(instr, instr.errorMask, ErrorHop::FuTransit);
    }
#endif
    // The instruction now carries every channel it will hold while in
    // the ROB (later additions — FU injections, retire-time dTLB
    // reads — maintain the mask at their own sites).
    errInRobSq |= instr.errorMask;
    instr.issued = true;
    instr.issueCycle = currentCycle;
    instr.completeCycle = currentCycle + static_cast<Cycle>(latency);
    scheduleCompletion(robIdx, instr.completeCycle);

    auto &unit_state = class_units[static_cast<std::size_t>(unit)];
    ++unit_state.inFlight;
    // The resident list exists for error injection; prune stale
    // entries lazily once it clearly exceeds the true in-flight set.
    if (unit_state.resident.size() >
        static_cast<std::size_t>(unit_state.inFlight) + 8) {
        auto &res = unit_state.resident;
        res.erase(std::remove_if(res.begin(), res.end(),
                                 [this](const auto &p) {
                                     return p.second <= currentCycle;
                                 }),
                  res.end());
    }
    unit_state.resident.emplace_back(robIdx, instr.completeCycle);

    ++statsData.issued;
    for (auto *obs : observers)
        obs->onIssue(instr);
}

void
Pipeline::notifyErrorHop(const DynInstr &instr, ErrorMask bits,
                         ErrorHop hop)
{
    hopSink->onErrorHop(instr, bits, hop);
}

void
Pipeline::issueStage()
{
    if (readyList.empty())
        return;

    int avail[static_cast<int>(FuClass::NumClasses)];
    for (int cls = 0; cls < static_cast<int>(FuClass::NumClasses);
         ++cls)
        avail[cls] = conf.unitsIn(static_cast<FuClass>(cls));

    std::sort(readyList.begin(), readyList.end(),
              [](const IssueCandidate &a, const IssueCandidate &b) {
                  return a.seq < b.seq;
              });

    leftoverScratch.clear();
    for (const auto &cand : readyList) {
        int cls = static_cast<int>(cand.cls);
        if (avail[cls] <= 0) {
            leftoverScratch.push_back(cand);
            continue;
        }
        --avail[cls];
        issueOne(cand.robIdx, cand.cls);
    }
    readyList.swap(leftoverScratch);
}

// ---------------------------------------------------------------------
// Stage: dispatch (rename + ROB + issue-queue + SQ allocation)
// ---------------------------------------------------------------------

IqId
Pipeline::iqFor(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
      case OpClass::Load:
      case OpClass::Store: return IqId::IntLs;
      case OpClass::FpAlu:
      case OpClass::FpDiv: return IqId::Fp;
      case OpClass::BranchCond:
      case OpClass::BranchUncond: return IqId::Br;
      default: return IqId::NumQueues;
    }
}

FuClass
Pipeline::fuFor(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv: return FuClass::Fxu;
      case OpClass::FpAlu:
      case OpClass::FpDiv: return FuClass::Fpu;
      case OpClass::Load:
      case OpClass::Store: return FuClass::Lsu;
      case OpClass::BranchCond:
      case OpClass::BranchUncond: return FuClass::Bru;
      default: return FuClass::NumClasses;
    }
}

bool
Pipeline::tryDispatchOne(const FetchedInstr &fetched)
{
    if (robCount >= conf.robEntries)
        return false;

    const auto &in = fetched.in;
    IqId iq = iqFor(in.op);
    bool needs_queue = iq != IqId::NumQueues;
    int iq_slot = -1;

    if (needs_queue) {
        auto &queue = queues[static_cast<int>(iq)];
        if (queue.freeSlots.empty())
            return false;
        iq_slot = queue.freeSlots.back();
    }

    if (in.dest != invalidReg && !rename.canAllocate(in.dest))
        return false;

    if (in.op == OpClass::Store && sqCount >= conf.storeQueueEntries)
        return false;

    // All resources available: commit the dispatch.
    int rob_idx = robTail;
    robTail = (robTail + 1) % conf.robEntries;
    ++robCount;

    DynInstr &instr = robAt(rob_idx);
    instr = DynInstr{};
    instr.in = in;
    instr.seq = nextSeq++;
    instr.fetchCycle = fetched.fetchCycle;
    instr.dispatchCycle = currentCycle;
    instr.mispredicted = fetched.mispredicted;
    // Fetch-buffer corruption rides into the machine on the
    // instruction itself; from here the bits propagate exactly like
    // an IQ-entry injection (and must be swept from the ROB).
    instr.errorMask = fetched.error;
    errInRobSq |= fetched.error;
    instr.iq = iq;
    instr.fu = fuFor(in.op);

    // Rename sources and register wakeup waiters for the not-yet-
    // ready ones.
    bool needs_wakeup = iq != IqId::NumQueues;
    for (int s = 0; s < 3; ++s) {
        if (in.src[static_cast<std::size_t>(s)] == invalidReg)
            continue;
        int phys = rename.mapOf(in.src[static_cast<std::size_t>(s)]);
        instr.srcPhys[static_cast<std::size_t>(s)] =
            static_cast<std::int16_t>(phys);
        instr.srcProducer[static_cast<std::size_t>(s)] =
            regProducer[static_cast<std::size_t>(phys)];
        if (needs_wakeup && !regReady[static_cast<std::size_t>(phys)]) {
            ++instr.pendingSrcs;
            // Waiter lists keep capacity across clears; growth stops
            // at each register's consumer high-water mark.
            // avflint: allow(hot-path-alloc)
            regWaiters[static_cast<std::size_t>(phys)].emplace_back(
                instr.seq, rob_idx);
        }
    }
    if (needs_wakeup && instr.pendingSrcs == 0)
        readyList.push_back({instr.seq, rob_idx, instr.fu});

    // Rename destination.
    if (in.dest != invalidReg) {
        int old_phys = -1;
        int phys = rename.allocate(in.dest, old_phys);
        instr.destPhys = static_cast<std::int16_t>(phys);
        instr.oldDestPhys = static_cast<std::int16_t>(old_phys);
        regReady[static_cast<std::size_t>(phys)] = 0;
        regProducer[static_cast<std::size_t>(phys)] = instr.seq;
    }

    if (needs_queue) {
        auto &queue = queues[static_cast<int>(iq)];
        queue.freeSlots.pop_back();
        queue.slots[static_cast<std::size_t>(iq_slot)] = rob_idx;
        ++queue.occupied;
        instr.iqEntry = static_cast<std::int16_t>(iq_slot);
        instr.iqGlobalEntry =
            static_cast<std::int16_t>(queue.globalBase + iq_slot);
    }

    if (in.op == OpClass::Store) {
        auto &entry = storeQueue[static_cast<std::size_t>(sqTail)];
        entry = SqEntry{};
        entry.valid = true;
        entry.seq = instr.seq;
        instr.sqIndex = static_cast<std::int16_t>(sqTail);
        sqTail = (sqTail + 1) % conf.storeQueueEntries;
        ++sqCount;
    }

    if (in.op == OpClass::Nop) {
        // Nops occupy only a ROB slot and complete instantly.
        instr.issued = true;
        instr.completed = true;
        instr.issueCycle = currentCycle;
        instr.completeCycle = currentCycle;
    }

    ++statsData.dispatched;
    for (auto *obs : observers)
        obs->onDispatch(instr);
    if (in.op == OpClass::Nop) {
        for (auto *obs : observers)
            obs->onComplete(instr);
    }
    return true;
}

void
Pipeline::dispatchStage()
{
    int width = effectiveDispatchWidth();
    for (int n = 0; n < width && !fetchBuffer.empty(); ++n) {
        if (!tryDispatchOne(fetchBuffer.front()))
            break;
        fetchBuffer.pop_front();
    }
}

void
Pipeline::setDispatchThrottle(int width)
{
    avf_assert(width >= 0, "throttle width must be non-negative");
    dispatchThrottle = width;
}

int
Pipeline::effectiveDispatchWidth() const
{
    if (dispatchThrottle > 0 && dispatchThrottle < conf.dispatchWidth)
        return dispatchThrottle;
    return conf.dispatchWidth;
}

// ---------------------------------------------------------------------
// Stage: fetch
// ---------------------------------------------------------------------

void
Pipeline::fetchStage()
{
    if (fetchBlockedOnBranch || currentCycle < fetchResumeCycle) {
        ++statsData.fetchStallCycles;
        return;
    }

    const Addr line_mask = ~static_cast<Addr>(
        conf.mem.l1i.lineBytes - 1);

    for (int n = 0; n < conf.fetchWidth; ++n) {
        if (static_cast<int>(fetchBuffer.size()) >=
            conf.fetchBufferEntries)
            break;

        if (!pendingInstr) {
            trace::TraceInstruction next;
            if (traceDone || !source.next(next)) {
                traceDone = true;
                break;
            }
            pendingInstr = next;
        }

        // Instruction-cache access at line granularity.
        Addr line = pendingInstr->pc & line_mask;
        if (line != lastFetchLine) {
            std::uint32_t latency = hierarchy.instrAccess(
                pendingInstr->pc, currentCycle);
            lastFetchLine = line;
            if (latency > conf.mem.l1Latency) {
                // Miss: the line arrives after `latency` cycles.
                fetchResumeCycle = currentCycle + latency;
                break;
            }
        }

        FetchedInstr fetched;
        fetched.in = *pendingInstr;
        fetched.fetchCycle = currentCycle;
        fetched.mispredicted = false;
        fetched.error = 0;
        pendingInstr.reset();

        bool ends_fetch = false;
        if (fetched.in.op == OpClass::BranchCond) {
            bool correct = predictor.predictAndUpdate(
                fetched.in.pc, fetched.in.taken);
            if (!correct) {
                fetched.mispredicted = true;
                fetchBlockedOnBranch = true;
                ends_fetch = true;
            } else if (fetched.in.taken) {
                ends_fetch = true; // taken branch breaks the group
            }
        } else if (fetched.in.op == OpClass::BranchUncond) {
            ends_fetch = true;
        }

        // fetchBuffer is a deque bounded by fetchWidth per group;
        // chunk storage is reused, not regrown, per cycle.
        // avflint: allow(hot-path-alloc)
        fetchBuffer.push_back(fetched);
        ++statsData.fetched;

        if (ends_fetch)
            break;
    }
}

// ---------------------------------------------------------------------
// End-of-cycle accounting
// ---------------------------------------------------------------------

void
Pipeline::accountCycle()
{
    for (int cls = 0; cls < static_cast<int>(FuClass::NumClasses);
         ++cls) {
        for (auto &unit : units[cls]) {
            if (unit.inFlight > 0)
                ++statsData.busyUnitCycles[cls];
        }
    }
    std::uint64_t occupied = 0;
    for (const auto &queue : queues)
        occupied += static_cast<std::uint64_t>(queue.occupied);
    statsData.iqOccupancySum += occupied;
    statsData.robOccupancySum += static_cast<std::uint64_t>(robCount);
}

// ---------------------------------------------------------------------
// Error-bit plane
// ---------------------------------------------------------------------

void
Pipeline::injectRegError(int physReg, ErrorMask mask)
{
    avf_assert(physReg >= 0 && physReg < rename.totalPhysRegs(),
               "injectRegError target %d out of range", physReg);
    regError.orMask(static_cast<std::size_t>(physReg), mask);
}

bool
Pipeline::injectIqEntryError(int globalEntry, ErrorMask mask)
{
    avf_assert(globalEntry >= 0 && globalEntry < conf.totalIqEntries(),
               "injectIqEntryError target %d out of range",
               globalEntry);
    for (auto &queue : queues) {
        int local = globalEntry - queue.globalBase;
        if (local < 0 || local >= static_cast<int>(queue.slots.size()))
            continue;
        int rob_idx = queue.slots[static_cast<std::size_t>(local)];
        if (rob_idx < 0)
            return false; // empty entry: injection masked
        robAt(rob_idx).errorMask |= mask;
        errInRobSq |= mask;
        return true;
    }
    panic("global IQ entry %d not covered by any queue", globalEntry);
}

Pipeline::IqFieldInjection
Pipeline::injectIqFieldError(int globalEntry, int field,
                             ErrorMask mask)
{
    avf_assert(field >= 0 && field < iqFieldsPerEntry,
               "IQ field %d out of range", field);
    avf_assert(globalEntry >= 0 && globalEntry < conf.totalIqEntries(),
               "injectIqFieldError target %d out of range",
               globalEntry);
    for (auto &queue : queues) {
        int local = globalEntry - queue.globalBase;
        if (local < 0 || local >= static_cast<int>(queue.slots.size()))
            continue;
        int rob_idx = queue.slots[static_cast<std::size_t>(local)];
        if (rob_idx < 0)
            return IqFieldInjection::EmptyEntry;
        DynInstr &instr = robAt(rob_idx);
        if (field > 0 &&
            instr.in.src[static_cast<std::size_t>(field - 1)] ==
                invalidReg) {
            return IqFieldInjection::UnusedField;
        }
        // A corrupted populated field corrupts the instruction's
        // outcome at value granularity (conservative, as in the
        // paper: any bit error makes the whole value wrong).
        instr.errorMask |= mask;
        errInRobSq |= mask;
        return IqFieldInjection::Corrupted;
    }
    panic("global IQ entry %d not covered by any queue", globalEntry);
}

int
Pipeline::injectFuError(FuClass cls, int unit, ErrorMask mask)
{
    auto &class_units = units[static_cast<int>(cls)];
    avf_assert(unit >= 0 &&
               unit < static_cast<int>(class_units.size()),
               "injectFuError unit %d out of range", unit);
    int corrupted = 0;
    for (auto &[rob_idx, complete] :
         class_units[static_cast<std::size_t>(unit)].resident) {
        if (complete > currentCycle) {
            robAt(rob_idx).errorMask |= mask;
            ++corrupted;
        }
    }
    if (corrupted > 0)
        errInRobSq |= mask;
    return corrupted;
}

void
Pipeline::clearErrorChannels(ErrorMask mask)
{
    // Register plane: word-level broadcast clear, skipped outright
    // when the plane's live summary proves the channels clean.
    regError.clearChannels(mask);

    // ROB / store queue: per-entry masks live inside wide structs, so
    // the sweep is strided — gate it on the conservative channel
    // summary instead. Sweeping is idempotent and the summary only
    // overcounts, so skipping exactly when no entry holds the
    // channels preserves behaviour bit for bit.
    if (errInRobSq & mask) {
        ErrorMask keep = static_cast<ErrorMask>(~mask);
        for (auto &instr : rob)
            instr.errorMask &= keep;
        for (auto &entry : storeQueue)
            entry.error &= keep;
        errInRobSq &= keep;
    }

    // Fetch buffer: same summary-gated strided sweep.
    if (errInFetchBuf & mask) {
        ErrorMask keep = static_cast<ErrorMask>(~mask);
        for (auto &fetched : fetchBuffer)
            fetched.error &= keep;
        errInFetchBuf &= keep;
    }

    predictor.clearErrors(mask);
    hierarchy.dtlbMutable().clearErrors(mask);
}

bool
Pipeline::injectFetchBufError(int slot, ErrorMask mask)
{
    avf_assert(slot >= 0 && slot < conf.fetchBufferEntries,
               "injectFetchBufError target %d out of range", slot);
    if (slot >= static_cast<int>(fetchBuffer.size()))
        return false; // empty slot: injection masked
    fetchBuffer[static_cast<std::size_t>(slot)].error |= mask;
    errInFetchBuf |= mask;
    return true;
}

InjectOutcome
Pipeline::injectRenameMapError(int archReg, ErrorMask mask)
{
    if (archReg < 0 || archReg >= trace::numArchRegs)
        return InjectOutcome::Rejected;
    // A map slot always names a live architectural value, so the
    // injection is never trivially masked.
    int phys = rename.mapOf(static_cast<RegIndex>(archReg));
    regError.orMask(static_cast<std::size_t>(phys), mask);
    return InjectOutcome::Occupied;
}

int
Pipeline::numRenameMapSlots() const
{
    return trace::numArchRegs;
}

InjectOutcome
Pipeline::injectBranchPredError(int slot, ErrorMask mask)
{
    return predictor.injectError(slot, mask);
}

int
Pipeline::numBranchPredSlots() const
{
    return predictor.numSlots();
}

ErrorMask
Pipeline::branchPredErrorAt(int slot) const
{
    return predictor.errorAt(slot);
}

ErrorMask
Pipeline::branchPredKilledMask() const
{
    return predictor.killedMask();
}

InjectOutcome
Pipeline::injectDtlbError(int slot, ErrorMask mask)
{
    return hierarchy.dtlbMutable().injectError(slot, mask);
}

int
Pipeline::numDtlbSlots() const
{
    return hierarchy.dtlb().numSlots();
}

ErrorMask
Pipeline::regErrorAt(int physReg) const
{
    avf_assert(physReg >= 0 && physReg < rename.totalPhysRegs(),
               "regErrorAt %d out of range", physReg);
    return regError.get(static_cast<std::size_t>(physReg));
}

bool
Pipeline::iqEntryOccupied(int globalEntry) const
{
    for (const auto &queue : queues) {
        int local = globalEntry - queue.globalBase;
        if (local < 0 || local >= static_cast<int>(queue.slots.size()))
            continue;
        return queue.slots[static_cast<std::size_t>(local)] >= 0;
    }
    return false;
}

} // namespace avf::cpu
