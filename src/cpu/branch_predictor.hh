/**
 * @file
 * Gshare direction predictor. In a trace-driven simulator the
 * predictor exists to decide *when* fetch stalls: a mispredicted
 * conditional branch blocks fetch until the branch resolves plus a
 * redirect penalty, which is how Turandot-style models account for
 * wrong-path time without simulating wrong-path instructions.
 */

#ifndef AVF_CPU_BRANCH_PREDICTOR_HH
#define AVF_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace avf::cpu
{

/** Prediction statistics. */
struct PredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    /** Fraction of lookups predicted correctly. */
    double
    accuracy() const
    {
        return lookups ? 1.0 - static_cast<double>(mispredicts) /
                               static_cast<double>(lookups)
                       : 0.0;
    }
};

/** Gshare with 2-bit saturating counters. */
class BranchPredictor
{
  public:
    /**
     * @param tableBits log2 of the counter-table size.
     * @param historyBits global-history length (0 = pure bimodal).
     */
    BranchPredictor(int tableBits, int historyBits);

    /**
     * Predict-and-update for a conditional branch whose actual
     * outcome is known from the trace.
     *
     * @param pc branch address.
     * @param taken actual outcome.
     * @return true if the prediction matched the outcome.
     */
    bool predictAndUpdate(Addr pc, bool taken);

    /** Accumulated statistics. */
    const PredictorStats &stats() const { return statsData; }

    /** Reset statistics (tables keep training). */
    void clearStats() { statsData = PredictorStats{}; }

    // ---- error-bit plane over the counter table ----
    //
    // Predictor state is architecturally masked in this model: a
    // flipped counter can only change a prediction, never a retired
    // value, so an injected bit never reaches a failure point. It
    // either dies when the next update overwrites its entry
    // (tracked in killedBits) or survives untouched to the window
    // close. The plane is pure metadata — predictions and timing are
    // computed from the counters alone, so an armed plane perturbs
    // nothing (the byte-identity contracts rely on that).

    /** Counter-table slots available for injection. */
    int numSlots() const { return static_cast<int>(table.size()); }

    /**
     * OR @p mask into the error bits of table slot @p slot.
     * @return Rejected when @p slot is out of range, else Occupied
     *         (a counter always holds trained state).
     */
    InjectOutcome injectError(int slot, ErrorMask mask);

    /** Error bits currently resident on @p slot. */
    ErrorMask errorAt(int slot) const;

    /**
     * Lanes whose injected bits were overwritten by a counter update
     * since the last clearErrors() of those lanes.
     */
    ErrorMask killedMask() const { return killedBits; }

    /** Sweep @p mask lanes out of the plane and the killed latch. */
    void clearErrors(ErrorMask mask);

  private:
    std::vector<std::uint8_t> table;
    std::uint32_t indexMask;
    std::uint32_t historyMask;
    std::uint32_t history = 0;
    PredictorStats statsData;

    /** Per-slot error bits, one word per counter. */
    std::vector<ErrorMask> tableError;
    /** Union of all resident bits: zero skips the hot-path check. */
    ErrorMask errAny = 0;
    /** Lanes killed by counter updates since their last clear. */
    ErrorMask killedBits = 0;
};

} // namespace avf::cpu

#endif // AVF_CPU_BRANCH_PREDICTOR_HH
