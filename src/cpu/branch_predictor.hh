/**
 * @file
 * Gshare direction predictor. In a trace-driven simulator the
 * predictor exists to decide *when* fetch stalls: a mispredicted
 * conditional branch blocks fetch until the branch resolves plus a
 * redirect penalty, which is how Turandot-style models account for
 * wrong-path time without simulating wrong-path instructions.
 */

#ifndef AVF_CPU_BRANCH_PREDICTOR_HH
#define AVF_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace avf::cpu
{

/** Prediction statistics. */
struct PredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    /** Fraction of lookups predicted correctly. */
    double
    accuracy() const
    {
        return lookups ? 1.0 - static_cast<double>(mispredicts) /
                               static_cast<double>(lookups)
                       : 0.0;
    }
};

/** Gshare with 2-bit saturating counters. */
class BranchPredictor
{
  public:
    /**
     * @param tableBits log2 of the counter-table size.
     * @param historyBits global-history length (0 = pure bimodal).
     */
    BranchPredictor(int tableBits, int historyBits);

    /**
     * Predict-and-update for a conditional branch whose actual
     * outcome is known from the trace.
     *
     * @param pc branch address.
     * @param taken actual outcome.
     * @return true if the prediction matched the outcome.
     */
    bool predictAndUpdate(Addr pc, bool taken);

    /** Accumulated statistics. */
    const PredictorStats &stats() const { return statsData; }

    /** Reset statistics (tables keep training). */
    void clearStats() { statsData = PredictorStats{}; }

  private:
    std::vector<std::uint8_t> table;
    std::uint32_t indexMask;
    std::uint32_t historyMask;
    std::uint32_t history = 0;
    PredictorStats statsData;
};

} // namespace avf::cpu

#endif // AVF_CPU_BRANCH_PREDICTOR_HH
