/**
 * @file
 * Register renaming: per-class map tables from architectural to
 * physical registers plus free lists. Physical registers live in one
 * global index space — the integer plane first (0 .. intPhysRegs-1),
 * then the FP plane — so the error-bit arrays and the SoftArch
 * residency accounting can be flat.
 */

#ifndef AVF_CPU_RENAME_HH
#define AVF_CPU_RENAME_HH

#include <cstdint>
#include <vector>

#include "cpu/config.hh"
#include "trace/instruction.hh"
#include "util/types.hh"

namespace avf::cpu
{

/** Map tables + free lists for both register classes. */
class RenameUnit
{
  public:
    /** Build for @p config's register-file sizes. */
    explicit RenameUnit(const CpuConfig &config);

    /** Total physical registers across both planes. */
    int totalPhysRegs() const { return numIntPhys + numFpPhys; }

    /** Physical registers in the integer plane. */
    int intPhysRegs() const { return numIntPhys; }

    /** @return true if @p phys indexes the FP plane. */
    bool isFpPhys(int phys) const { return phys >= numIntPhys; }

    /** Current mapping of architectural register @p arch. */
    int
    mapOf(RegIndex arch) const
    {
        return map[static_cast<std::size_t>(arch)];
    }

    /** @return true if the class of @p arch has a free register. */
    bool canAllocate(RegIndex arch) const;

    /**
     * Allocate a new physical register for a write to @p arch and
     * update the map.
     *
     * @param arch destination architectural register.
     * @param oldPhys out: the previous mapping (freed at retire).
     * @return the newly allocated physical register.
     */
    int allocate(RegIndex arch, int &oldPhys);

    /** Return @p phys to its class free list (at retirement). */
    void release(int phys);

    /** Free integer-plane registers remaining. */
    std::size_t intFreeCount() const { return intFree.size(); }

    /** Free FP-plane registers remaining. */
    std::size_t fpFreeCount() const { return fpFree.size(); }

  private:
    int numIntPhys;
    int numFpPhys;
    std::vector<int> map;     // arch (0..63) -> phys
    std::vector<int> intFree; // LIFO free lists
    std::vector<int> fpFree;
};

} // namespace avf::cpu

#endif // AVF_CPU_RENAME_HH
