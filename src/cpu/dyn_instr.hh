/**
 * @file
 * The in-flight dynamic instruction. Besides the usual out-of-order
 * bookkeeping (renamed operands, stage timestamps), it carries the
 * paper's error-bit state: a per-channel error mask that is seeded by
 * injections, merged from source registers at issue ("or" gates in
 * hardware), and checked at retirement against the failure-point
 * definition of Section 3.2.
 */

#ifndef AVF_CPU_DYN_INSTR_HH
#define AVF_CPU_DYN_INSTR_HH

#include <array>
#include <cstdint>

#include "cpu/config.hh"
#include "trace/instruction.hh"
#include "util/types.hh"

namespace avf::cpu
{

/**
 * Error-bit channels. Each channel (bit lane) is an independent
 * one-error-at-a-time estimation (the paper runs one structure at a
 * time; running many structures and many concurrent windows as
 * independent bit-planes is equivalent and lets a single simulation
 * estimate all of them). The mask type itself lives in util/types.hh
 * because the memory hierarchy's TLB error plane speaks it too.
 */
using avf::ErrorMask;

/** Maximum number of concurrent estimation channels. */
using avf::numErrorChannels;

/** One in-flight instruction (lives in the ROB). */
struct DynInstr
{
    /** Trace-side view of the instruction. */
    trace::TraceInstruction in;

    /** Global dynamic sequence number. */
    InstrSeq seq = invalidSeq;

    // --- renamed operands ---
    /** Physical source registers (global phys index), -1 unused. */
    std::array<std::int16_t, 3> srcPhys{-1, -1, -1};
    /** Physical destination register, -1 none. */
    std::int16_t destPhys = -1;
    /** Previous mapping of the destination (freed at retire). */
    std::int16_t oldDestPhys = -1;
    /**
     * Sequence numbers of the producers of each source value at
     * rename time (invalidSeq when the value predates the window or
     * the operand is unused). Consumed by the SoftArch ACE analyzer.
     */
    std::array<InstrSeq, 3> srcProducer{invalidSeq, invalidSeq,
                                        invalidSeq};

    // --- structure placement ---
    /** Issue queue holding the instruction (before issue). */
    IqId iq = IqId::NumQueues;
    /** Entry index within its issue queue, -1 when not queued. */
    std::int16_t iqEntry = -1;
    /** Global issue-queue entry index (stable across queues). */
    std::int16_t iqGlobalEntry = -1;
    /** Functional-unit class executing this instruction. */
    FuClass fu = FuClass::NumClasses;
    /** Unit index within the class, -1 when none. */
    std::int8_t fuUnit = -1;
    /** Store-queue slot for stores, -1 otherwise. */
    std::int16_t sqIndex = -1;

    // --- timing ---
    Cycle fetchCycle = neverCycle;
    Cycle dispatchCycle = neverCycle;
    Cycle issueCycle = neverCycle;
    Cycle completeCycle = neverCycle;
    Cycle retireCycle = neverCycle;

    // --- status ---
    bool issued = false;
    bool completed = false;
    bool mispredicted = false;
    /** Source operands still awaiting writeback (wakeup counter). */
    std::int8_t pendingSrcs = 0;

    // --- error-bit plane ---
    /**
     * Per-channel error bits riding with this instruction's value.
     * Sources OR in at issue; the destination register inherits the
     * mask at completion; failure points test it at retirement.
     */
    ErrorMask errorMask = 0;

    /** True if this op retires through a failure point (Sec. 3.2). */
    bool
    isFailurePoint() const
    {
        using trace::OpClass;
        return in.op == OpClass::Load || in.op == OpClass::Store ||
               in.op == OpClass::BranchCond ||
               in.op == OpClass::BranchUncond;
    }
};

/** Retirement notification payload for observers. */
struct RetireInfo
{
    /**
     * Channels whose error bit reached this retirement through a
     * failure point (0 when the op is not a failure point or carries
     * no error).
     */
    ErrorMask failureMask = 0;
};

} // namespace avf::cpu

#endif // AVF_CPU_DYN_INSTR_HH
