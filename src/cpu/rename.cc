#include "cpu/rename.hh"

#include "util/logging.hh"

namespace avf::cpu
{

RenameUnit::RenameUnit(const CpuConfig &config)
    : numIntPhys(config.intPhysRegs), numFpPhys(config.fpPhysRegs)
{
    using namespace trace;
    map.resize(numArchRegs);
    // Identity-map the committed architectural state.
    for (int a = 0; a < numArchIntRegs; ++a)
        map[static_cast<std::size_t>(a)] = a;
    for (int a = 0; a < numArchFpRegs; ++a)
        map[static_cast<std::size_t>(numArchIntRegs + a)] =
            numIntPhys + a;
    // Remaining registers populate the free lists. A list can hold
    // every physical register at once; size it here so release()
    // never grows it per cycle.
    intFree.reserve(static_cast<std::size_t>(numIntPhys));
    fpFree.reserve(static_cast<std::size_t>(numFpPhys));
    for (int p = numArchIntRegs; p < numIntPhys; ++p)
        intFree.push_back(p);
    for (int p = numArchFpRegs; p < numFpPhys; ++p)
        fpFree.push_back(numIntPhys + p);
}

bool
RenameUnit::canAllocate(RegIndex arch) const
{
    return trace::isFpReg(arch) ? !fpFree.empty() : !intFree.empty();
}

int
RenameUnit::allocate(RegIndex arch, int &oldPhys)
{
    auto &free_list = trace::isFpReg(arch) ? fpFree : intFree;
    avf_assert(!free_list.empty(), "allocate() with empty free list");
    int phys = free_list.back();
    free_list.pop_back();
    oldPhys = map[static_cast<std::size_t>(arch)];
    map[static_cast<std::size_t>(arch)] = phys;
    return phys;
}

void
RenameUnit::release(int phys)
{
    avf_assert(phys >= 0 && phys < totalPhysRegs(),
               "release of bad phys reg %d", phys);
    if (isFpPhys(phys))
        fpFree.push_back(phys);
    else
        intFree.push_back(phys);
}

} // namespace avf::cpu
