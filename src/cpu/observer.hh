/**
 * @file
 * Observation interface over the pipeline. The online estimator and
 * the SoftArch offline analyzer both attach here; the pipeline calls
 * out at dispatch, issue, completion, retirement, and once per cycle.
 */

#ifndef AVF_CPU_OBSERVER_HH
#define AVF_CPU_OBSERVER_HH

#include "cpu/dyn_instr.hh"

namespace avf::cpu
{

/**
 * How an error bit moved during one pipeline event. Mirrors the
 * paper's Section 3 propagation rules: reads carry bits into
 * consumers, multi-input OR gates merge them, corrupted values transit
 * functional units, and overwrites kill whatever the destination held.
 */
enum class ErrorHop : int
{
    ReadCarry = 0,  ///< a source read pulled error bits into a consumer
    OrMerge = 1,    ///< bits from two or more origins merged in one value
    FuTransit = 2,  ///< an erroneous value entered a functional unit
    OverwriteKill = 3, ///< a clean(er) writeback killed resident bits
    NumHops
};

/** Number of distinct hop kinds. */
inline constexpr int numErrorHops = static_cast<int>(ErrorHop::NumHops);

/** Stable display name ("read_carry", "or_merge", ...). */
constexpr const char *
errorHopName(ErrorHop hop)
{
    switch (hop) {
      case ErrorHop::ReadCarry: return "read_carry";
      case ErrorHop::OrMerge: return "or_merge";
      case ErrorHop::FuTransit: return "fu_transit";
      case ErrorHop::OverwriteKill: return "overwrite_kill";
      default: return "invalid";
    }
}

/** Passive pipeline observer; all hooks default to no-ops. */
class PipelineObserver
{
  public:
    virtual ~PipelineObserver() = default;

    /** Instruction entered the ROB (and its issue queue). */
    virtual void onDispatch(const DynInstr &) {}

    /** Instruction left its issue queue for a functional unit. */
    virtual void onIssue(const DynInstr &) {}

    /** Instruction finished execution / wrote back. */
    virtual void onComplete(const DynInstr &) {}

    /** Instruction retired (in order). */
    virtual void onRetire(const DynInstr &, const RetireInfo &) {}

    /** End of cycle @p now. */
    virtual void onCycle(Cycle) {}

    /**
     * Error bits @p bits moved via @p hop at instruction @p instr.
     * Only delivered when the pipeline's hop events are enabled
     * (Pipeline::setHopSink) and the build retains the hooks
     * (cmake -DAVF_LIFECYCLE_HOOKS=ON, the default); bits is always
     * nonzero. @p instr is the consumer for ReadCarry/OrMerge/
     * FuTransit and the overwriting producer for OverwriteKill.
     */
    virtual void onErrorHop(const DynInstr &, ErrorMask, ErrorHop) {}
};

} // namespace avf::cpu

#endif // AVF_CPU_OBSERVER_HH
