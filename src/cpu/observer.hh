/**
 * @file
 * Observation interface over the pipeline. The online estimator and
 * the SoftArch offline analyzer both attach here; the pipeline calls
 * out at dispatch, issue, completion, retirement, and once per cycle.
 */

#ifndef AVF_CPU_OBSERVER_HH
#define AVF_CPU_OBSERVER_HH

#include "cpu/dyn_instr.hh"

namespace avf::cpu
{

/** Passive pipeline observer; all hooks default to no-ops. */
class PipelineObserver
{
  public:
    virtual ~PipelineObserver() = default;

    /** Instruction entered the ROB (and its issue queue). */
    virtual void onDispatch(const DynInstr &) {}

    /** Instruction left its issue queue for a functional unit. */
    virtual void onIssue(const DynInstr &) {}

    /** Instruction finished execution / wrote back. */
    virtual void onComplete(const DynInstr &) {}

    /** Instruction retired (in order). */
    virtual void onRetire(const DynInstr &, const RetireInfo &) {}

    /** End of cycle @p now. */
    virtual void onCycle(Cycle) {}
};

} // namespace avf::cpu

#endif // AVF_CPU_OBSERVER_HH
