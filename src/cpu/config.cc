#include "cpu/config.hh"

#include "trace/instruction.hh"
#include "util/logging.hh"

namespace avf::cpu
{

std::string
fuClassName(FuClass cls)
{
    switch (cls) {
      case FuClass::Fxu: return "FXU";
      case FuClass::Fpu: return "FPU";
      case FuClass::Lsu: return "LSU";
      case FuClass::Bru: return "BRU";
      default: return "?";
    }
}

int
CpuConfig::unitsIn(FuClass cls) const
{
    switch (cls) {
      case FuClass::Fxu: return numFxu;
      case FuClass::Fpu: return numFpu;
      case FuClass::Lsu: return numLsu;
      case FuClass::Bru: return numBru;
      default: return 0;
    }
}

void
CpuConfig::validate() const
{
    if (fetchWidth <= 0 || dispatchWidth <= 0 || retireWidth <= 0)
        fatal("cpu config: widths must be positive");
    if (robEntries < dispatchWidth)
        fatal("cpu config: ROB smaller than one dispatch group");
    if (intLsIqEntries <= 0 || fpIqEntries <= 0 || brIqEntries <= 0)
        fatal("cpu config: issue queues must be non-empty");
    if (numFxu <= 0 || numFpu <= 0 || numLsu <= 0 || numBru <= 0)
        fatal("cpu config: every unit class needs at least one unit");
    if (intPhysRegs < trace::numArchIntRegs)
        fatal("cpu config: need at least %d integer physical registers",
              trace::numArchIntRegs);
    if (fpPhysRegs < trace::numArchFpRegs)
        fatal("cpu config: need at least %d FP physical registers",
              trace::numArchFpRegs);
    if (storeQueueEntries <= 0)
        fatal("cpu config: store queue must be non-empty");
    if (intAluLatency <= 0 || intMulLatency <= 0 || intDivLatency <= 0 ||
        fpAluLatency <= 0 || fpDivLatency <= 0)
        fatal("cpu config: latencies must be positive");
    if (predictorBits <= 0 || predictorBits > 24)
        fatal("cpu config: predictorBits out of range");
    if (historyBits < 0 || historyBits > 24)
        fatal("cpu config: historyBits out of range");
}

} // namespace avf::cpu
