/**
 * @file
 * Environment-variable helpers used by benches to scale experiment
 * sizes (e.g. AVF_INTERVALS, AVF_FAST) without recompiling.
 */

#ifndef AVF_UTIL_ENV_HH
#define AVF_UTIL_ENV_HH

#include <cstdint>
#include <string>

namespace avf
{

/** @return env var value as i64, or fallback if unset/unparsable. */
std::int64_t envInt(const char *name, std::int64_t fallback);

/** @return env var value, or fallback if unset. */
std::string envString(const char *name, const std::string &fallback);

/** @return true if the env var is set to a truthy value (1/true/yes). */
bool envFlag(const char *name);

} // namespace avf

#endif // AVF_UTIL_ENV_HH
