/**
 * @file
 * Wall-clock instrumentation for the perf subsystem: a steady-clock
 * stopwatch, named per-phase accumulators, and derived throughput
 * metrics (cycles/sec, injections/sec).
 *
 * Determinism contract: everything in this header is a *side
 * channel*. Timing values may be printed to stderr, written to
 * BENCH_micro.json, or fed to progress callbacks, but must never
 * influence experiment results, estimator state, seeds, or any
 * stdout table the figures compare byte-for-byte. The avflint
 * determinism check enforces the discipline at the call sites: the
 * only sanctioned clock reads live in timing.cc, each carrying an
 * `avflint: allow(determinism)` justification.
 */

#ifndef AVF_UTIL_TIMING_HH
#define AVF_UTIL_TIMING_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace avf::timing
{

/**
 * Monotonic wall-clock stopwatch. Accumulates across start()/stop()
 * pairs so one watch can time a phase entered many times; reset()
 * returns it to zero. Reads come from std::chrono::steady_clock, so
 * elapsed time never goes backwards under NTP adjustments.
 */
class Stopwatch
{
  public:
    /** Begin (or resume) timing. No-op if already running. */
    void start();

    /**
     * Stop timing and fold the lap into the accumulated total.
     * @return the lap's length in nanoseconds (0 if not running).
     */
    double stop();

    /** Discard all accumulated time (and any running lap). */
    void reset();

    /** True between start() and stop(). */
    bool running() const { return isRunning; }

    /**
     * Accumulated nanoseconds, including the in-flight lap when
     * running. Monotonically non-decreasing until reset().
     */
    double elapsedNs() const;

    /** elapsedNs() scaled to seconds. */
    double elapsedSec() const { return elapsedNs() * 1e-9; }

  private:
    double accumulatedNs = 0.0;
    std::uint64_t startTick = 0;
    bool isRunning = false;
};

/** Aggregated timings of one named phase. */
struct PhaseStats
{
    std::string name;
    std::uint64_t count = 0; ///< add() calls folded in
    double totalNs = 0.0;
    double minNs = 0.0; ///< 0 when count == 0
    double maxNs = 0.0;

    /** Mean nanoseconds per recorded lap (0 when empty). */
    double meanNs() const;

    /** Fold @p other into this (same-phase merge). */
    void merge(const PhaseStats &other);
};

/**
 * Named per-phase time accumulators, e.g. one per campaign stage
 * (simulate / finalize / export). Phases are created on first use
 * and reported in first-use order, which is deterministic for a
 * fixed code path — accumulator *ordering* never depends on timing.
 */
class PhaseAccumulator
{
  public:
    /** Record one lap of @p ns nanoseconds against @p phase. */
    void add(std::string_view phase, double ns);

    /** Record a stopped stopwatch and reset it. */
    void addWatch(std::string_view phase, Stopwatch &watch);

    /** Stats of one phase; zeroed stats if never recorded. */
    PhaseStats get(std::string_view phase) const;

    /** All phases, first-use order. */
    const std::vector<PhaseStats> &phases() const { return slots; }

    /** Sum of totalNs over all phases. */
    double totalNs() const;

    /**
     * Fold @p other into this: same-name phases merge, new phases
     * append. Merging accumulators from parallel workers is ordering
     * sensitive only in float rounding of totals; counts and extrema
     * are exact.
     */
    void merge(const PhaseAccumulator &other);

    /**
     * Serialize as a JSON array of phase objects with fixed key
     * order: name, count, total_ns, min_ns, max_ns, mean_ns.
     */
    void writeJson(std::ostream &out) const;

    /**
     * Parse the writeJson() format back (round-trip support for
     * persisted phase reports). @return false on malformed input,
     * leaving the accumulator unchanged.
     */
    bool readJson(std::string_view json);

  private:
    std::vector<PhaseStats> slots;
};

/**
 * Items-per-second from a count and elapsed nanoseconds; 0 when no
 * time has elapsed. The naming helpers make call sites read like the
 * metric they report.
 */
double ratePerSec(std::uint64_t items, double elapsedNs);

/** Simulated cycles per wall second. */
inline double
cyclesPerSec(std::uint64_t cycles, double elapsedNs)
{
    return ratePerSec(cycles, elapsedNs);
}

/** Estimator injections per wall second. */
inline double
injectionsPerSec(std::uint64_t injections, double elapsedNs)
{
    return ratePerSec(injections, elapsedNs);
}

/**
 * Raw steady-clock tick in nanoseconds. The single sanctioned clock
 * entry point for the perf subsystem (Stopwatch and the bench/micro
 * harness both route through it).
 */
std::uint64_t steadyNowNs();

} // namespace avf::timing

#endif // AVF_UTIL_TIMING_HH
