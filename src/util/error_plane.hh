/**
 * @file
 * A per-entry byte plane for error-bit channels, backed by 64-bit
 * words so channel-wide operations run eight entries at a time.
 *
 * Two properties make the window-boundary sweep cheap:
 *
 *  - clearChannels() clears a channel from every entry with one
 *    AND-NOT per word (the channel mask broadcast to all byte lanes)
 *    instead of one read-modify-write per entry;
 *  - the plane keeps a conservative "live" summary of every channel
 *    that may be set anywhere, so sweeps of channels that were never
 *    written skip the word loop entirely. With one estimator per
 *    channel and the one-error-at-a-time rule, most sweeps hit this
 *    fast path.
 *
 * The live mask is a superset, never an undercount: byte overwrites
 * with zero do not lower it (scanning to recompute would cost what
 * the summary saves), only clearChannels() retires bits from it.
 */

#ifndef AVF_UTIL_ERROR_PLANE_HH
#define AVF_UTIL_ERROR_PLANE_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace avf
{

/** Fixed-size-after-resize plane of per-entry error bytes. */
class ErrorPlane
{
  public:
    ErrorPlane() = default;

    /** Construct with @p count entries, all clear. */
    explicit ErrorPlane(std::size_t count) { resize(count); }

    /** Resize to @p count entries, clearing every byte. */
    void
    resize(std::size_t count)
    {
        numEntries = count;
        words.assign((count + 7) / 8, 0);
        live = 0;
    }

    /** Number of entries held. */
    std::size_t size() const { return numEntries; }

    /** Error byte of entry @p idx. */
    std::uint8_t
    get(std::size_t idx) const
    {
        avf_assert(idx < numEntries,
                   "error-plane index %zu out of range %zu", idx,
                   numEntries);
        return bytes()[idx];
    }

    /** Carry/merge: OR @p mask into entry @p idx. */
    void
    orByte(std::size_t idx, std::uint8_t mask)
    {
        avf_assert(idx < numEntries,
                   "error-plane index %zu out of range %zu", idx,
                   numEntries);
        bytes()[idx] |= mask;
        live |= mask;
    }

    /** Overwrite entry @p idx with @p mask (the kill discipline). */
    void
    setByte(std::size_t idx, std::uint8_t mask)
    {
        avf_assert(idx < numEntries,
                   "error-plane index %zu out of range %zu", idx,
                   numEntries);
        bytes()[idx] = mask;
        live |= mask;
    }

    /** Superset of the channels set anywhere in the plane. */
    std::uint8_t liveMask() const { return live; }

    /** True when some entry may carry a channel of @p mask. */
    bool
    maybeLive(std::uint8_t mask) const
    {
        return (live & mask) != 0;
    }

    /**
     * Clear the channels of @p mask from every entry. Skips the
     * plane entirely when the live summary proves them all clear;
     * otherwise one AND-NOT per backing word.
     */
    void
    clearChannels(std::uint8_t mask)
    {
        if (!maybeLive(mask))
            return;
        const std::uint64_t lanes =
            std::uint64_t{0x0101010101010101u} * mask;
        for (auto &w : words)
            w &= ~lanes;
        live &= static_cast<std::uint8_t>(~mask);
    }

  private:
    std::uint8_t *
    bytes()
    {
        return reinterpret_cast<std::uint8_t *>(words.data());
    }

    const std::uint8_t *
    bytes() const
    {
        return reinterpret_cast<const std::uint8_t *>(words.data());
    }

    std::size_t numEntries = 0;
    std::vector<std::uint64_t> words;
    std::uint8_t live = 0;
};

} // namespace avf

#endif // AVF_UTIL_ERROR_PLANE_HH
