/**
 * @file
 * A per-entry word plane for error-bit channels: every entry carries
 * one 64-bit ErrorMask word, one bit per injection lane, so the
 * propagation data path moves 64 independent tagged campaigns per
 * load/OR/store.
 *
 * Two properties make the window-boundary sweep cheap:
 *
 *  - clearChannels() clears a set of lanes from every entry with one
 *    AND-NOT per entry word — and because lanes close in batches at a
 *    shared window boundary, one sweep retires up to 64 windows;
 *  - the plane keeps a conservative "live" summary of every lane that
 *    may be set anywhere, so sweeps of lanes that were never written
 *    skip the loop entirely. With the one-error-at-a-time-per-lane
 *    rule, most sweeps of idle lanes hit this fast path.
 *
 * The live mask is a superset, never an undercount: overwrites with
 * zero do not lower it (scanning to recompute would cost what the
 * summary saves); only clearChannels() retires bits from it.
 *
 * Lane independence invariant: no ErrorPlane operation mixes bits
 * across lane positions — get/or/set/clear are all bitwise-parallel —
 * so the state of lane k after any operation sequence equals the
 * state of a one-lane plane fed the same sequence masked to bit k.
 * The lane-vs-serial equivalence tests (ctest -L lanes) pin this.
 */

#ifndef AVF_UTIL_ERROR_PLANE_HH
#define AVF_UTIL_ERROR_PLANE_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace avf
{

/** Fixed-size-after-resize plane of per-entry error-mask words. */
class ErrorPlane
{
  public:
    ErrorPlane() = default;

    /** Construct with @p count entries, all clear. */
    explicit ErrorPlane(std::size_t count) { resize(count); }

    /** Resize to @p count entries, clearing every word. */
    void
    resize(std::size_t count)
    {
        numEntries = count;
        words.assign(count, 0);
        live = 0;
    }

    /** Number of entries held. */
    std::size_t size() const { return numEntries; }

    /** Error mask of entry @p idx. */
    ErrorMask
    get(std::size_t idx) const
    {
        avf_assert(idx < numEntries,
                   "error-plane index %zu out of range %zu", idx,
                   numEntries);
        return words[idx];
    }

    /** Carry/merge: OR @p mask into entry @p idx. */
    void
    orMask(std::size_t idx, ErrorMask mask)
    {
        avf_assert(idx < numEntries,
                   "error-plane index %zu out of range %zu", idx,
                   numEntries);
        words[idx] |= mask;
        live |= mask;
    }

    /** Overwrite entry @p idx with @p mask (the kill discipline). */
    void
    setMask(std::size_t idx, ErrorMask mask)
    {
        avf_assert(idx < numEntries,
                   "error-plane index %zu out of range %zu", idx,
                   numEntries);
        words[idx] = mask;
        live |= mask;
    }

    /** Superset of the lanes set anywhere in the plane. */
    ErrorMask liveMask() const { return live; }

    /** True when some entry may carry a lane of @p mask. */
    bool
    maybeLive(ErrorMask mask) const
    {
        return (live & mask) != 0;
    }

    /**
     * Clear the lanes of @p mask from every entry. Skips the plane
     * entirely when the live summary proves them all clear;
     * otherwise one AND-NOT per entry word.
     */
    void
    clearChannels(ErrorMask mask)
    {
        if (!maybeLive(mask))
            return;
        for (auto &w : words)
            w &= ~mask;
        live &= ~mask;
    }

  private:
    std::size_t numEntries = 0;
    std::vector<ErrorMask> words;
    ErrorMask live = 0;
};

} // namespace avf

#endif // AVF_UTIL_ERROR_PLANE_HH
