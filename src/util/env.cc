#include "util/env.hh"

#include <cstdlib>
#include <cstring>

namespace avf
{

std::int64_t
envInt(const char *name, std::int64_t fallback)
{
    const char *val = std::getenv(name);
    if (!val || !*val)
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(val, &end, 10);
    if (end == val || (end && *end != '\0'))
        return fallback;
    return parsed;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *val = std::getenv(name);
    return (val && *val) ? std::string(val) : fallback;
}

bool
envFlag(const char *name)
{
    const char *val = std::getenv(name);
    if (!val)
        return false;
    return std::strcmp(val, "1") == 0 || std::strcmp(val, "true") == 0 ||
           std::strcmp(val, "yes") == 0 || std::strcmp(val, "on") == 0;
}

} // namespace avf
