#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace avf
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((s[0] | s[1] | s[2] | s[3]) == 0)
        s[0] = 0x9e3779b97f4a7c15ull;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    avf_assert(bound > 0, "below() requires a positive bound");
    // Lemire's nearly-divisionless bounded draw.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    avf_assert(lo <= hi, "range() requires lo <= hi");
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p, std::uint64_t cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    // Inverse-CDF method.
    double u = uniform();
    double draws = std::floor(std::log1p(-u) / std::log1p(-p));
    if (draws < 0.0)
        draws = 0.0;
    auto val = static_cast<std::uint64_t>(draws);
    return val > cap ? cap : val;
}

double
Rng::gaussian()
{
    // Irwin-Hall with 12 uniforms: mean 6, variance 1.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += uniform();
    return acc - 6.0;
}

std::uint64_t
hashString(std::string_view str)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : str) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace avf
