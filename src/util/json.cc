#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace avf::json
{

namespace
{

/** Parser state: cursor over the input plus the first error. */
struct Parser
{
    std::string_view in;
    std::size_t pos = 0;
    std::string error;
    /** Nesting guard: malformed deeply-nested input must fail
     *  cleanly instead of exhausting the stack. */
    int depth = 0;
    static constexpr int maxDepth = 128;

    bool fail(const std::string &message)
    {
        if (error.empty())
            error = "offset " + std::to_string(pos) + ": " + message;
        return false;
    }

    bool done() const { return pos >= in.size(); }
    char peek() const { return done() ? '\0' : in[pos]; }

    void
    skipWs()
    {
        while (!done() && (in[pos] == ' ' || in[pos] == '\t' ||
                           in[pos] == '\n' || in[pos] == '\r'))
            ++pos;
    }

    bool
    expect(char c)
    {
        if (peek() != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (in.compare(pos, word.size(), word) != 0)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool parseValue(Value &out);

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (!done()) {
            char c = in[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (done())
                    break;
                char esc = in[pos++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > in.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        char h = in[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad hex digit in \\u escape");
                    }
                    // UTF-8 encode (surrogate pairs are passed through
                    // as two 3-byte sequences; the exporters only emit
                    // \u00XX control escapes, so this is ample).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return fail("raw control character in string");
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("malformed number");
        // RFC 8259: no leading zeros ("01" is two tokens, an error).
        if (peek() == '0' && pos + 1 < in.size() &&
            std::isdigit(static_cast<unsigned char>(in[pos + 1])))
            return fail("leading zero in number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos;
        bool integral = true;
        if (peek() == '.') {
            integral = false;
            ++pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit required after decimal point");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            integral = false;
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit required in exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        std::string token(in.substr(start, pos - start));
        if (integral && token[0] != '-') {
            char *end = nullptr;
            unsigned long long u = std::strtoull(token.c_str(), &end,
                                                 10);
            if (end && *end == '\0') {
                out.kind = Value::Kind::Uint;
                out.uintValue = u;
                out.number = static_cast<double>(u);
                return true;
            }
        }
        out.kind = Value::Kind::Double;
        out.number = std::strtod(token.c_str(), nullptr);
        return true;
    }

    bool
    parseArray(Value &out)
    {
        ++pos; // '['
        out.kind = Value::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            Value item;
            if (!parseValue(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            return expect(']');
        }
    }

    bool
    parseObject(Value &out)
    {
        ++pos; // '{'
        out.kind = Value::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            Value member;
            if (!parseValue(member))
                return false;
            out.members.emplace_back(std::move(key),
                                     std::move(member));
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            return expect('}');
        }
    }
};

bool
Parser::parseValue(Value &out)
{
    if (++depth > maxDepth)
        return fail("nesting too deep");
    skipWs();
    bool ok = false;
    switch (peek()) {
      case '{': ok = parseObject(out); break;
      case '[': ok = parseArray(out); break;
      case '"':
        out.kind = Value::Kind::String;
        ok = parseString(out.text);
        break;
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out.kind = Value::Kind::Null;
        ok = literal("null");
        break;
      case '\0':
        ok = fail("unexpected end of input");
        break;
      default:
        ok = parseNumber(out);
        break;
    }
    --depth;
    return ok;
}

} // namespace

double
Value::asDouble() const
{
    if (kind == Kind::Uint)
        return static_cast<double>(uintValue);
    if (kind == Kind::Double)
        return number;
    return 0.0;
}

std::uint64_t
Value::asUint() const
{
    if (kind == Kind::Uint)
        return uintValue;
    if (kind == Kind::Double && number >= 0 &&
        std::floor(number) == number)
        return static_cast<std::uint64_t>(number);
    return 0;
}

const Value *
Value::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            return &value;
    return nullptr;
}

const Value *
Value::find(std::string_view key, Kind k) const
{
    const Value *v = find(key);
    return (v && v->kind == k) ? v : nullptr;
}

bool
parse(std::string_view input, Value &out, std::string &error)
{
    Parser p{input, 0, {}, 0};
    out = Value{};
    if (!p.parseValue(out)) {
        error = p.error;
        return false;
    }
    p.skipWs();
    if (!p.done()) {
        p.fail("trailing garbage after document");
        error = p.error;
        return false;
    }
    error.clear();
    return true;
}

} // namespace avf::json
