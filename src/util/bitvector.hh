/**
 * @file
 * A compact dynamic bit vector used for error-bit planes and cache
 * valid bits. Much smaller interface than std::vector<bool> and with
 * explicit popcount / clear-all support, which the estimator uses to
 * verify the one-error-at-a-time invariant.
 */

#ifndef AVF_UTIL_BITVECTOR_HH
#define AVF_UTIL_BITVECTOR_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace avf
{

/** Fixed-size-after-construction vector of bits. */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct with @p count bits, all zero. */
    explicit BitVector(std::size_t count)
        : numBits(count), words((count + 63) / 64, 0)
    {}

    /** Number of bits held. */
    std::size_t size() const { return numBits; }

    /** Read bit @p idx. */
    bool
    test(std::size_t idx) const
    {
        avf_assert(idx < numBits, "bit index %zu out of range %zu",
                   idx, numBits);
        return (words[idx >> 6] >> (idx & 63)) & 1;
    }

    /** Set bit @p idx to @p value. */
    void
    set(std::size_t idx, bool value = true)
    {
        avf_assert(idx < numBits, "bit index %zu out of range %zu",
                   idx, numBits);
        std::uint64_t mask = std::uint64_t(1) << (idx & 63);
        if (value)
            words[idx >> 6] |= mask;
        else
            words[idx >> 6] &= ~mask;
    }

    /** Clear bit @p idx. */
    void reset(std::size_t idx) { set(idx, false); }

    /** Clear every bit. */
    void
    clearAll()
    {
        for (auto &w : words)
            w = 0;
    }

    /** Count of set bits. */
    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (auto w : words)
            total += static_cast<std::size_t>(std::popcount(w));
        return total;
    }

    /** True if no bit is set. */
    bool
    none() const
    {
        for (auto w : words)
            if (w)
                return false;
        return true;
    }

  private:
    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace avf

#endif // AVF_UTIL_BITVECTOR_HH
