/**
 * @file
 * A compact dynamic bit vector used for error-bit planes and cache
 * valid bits. Much smaller interface than std::vector<bool> and with
 * explicit popcount / clear-all support, which the estimator uses to
 * verify the one-error-at-a-time invariant.
 */

#ifndef AVF_UTIL_BITVECTOR_HH
#define AVF_UTIL_BITVECTOR_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace avf
{

/** Fixed-size-after-construction vector of bits. */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct with @p count bits, all zero. */
    explicit BitVector(std::size_t count)
        : numBits(count), words((count + 63) / 64, 0)
    {}

    /** Number of bits held. */
    std::size_t size() const { return numBits; }

    /** Read bit @p idx. */
    bool
    test(std::size_t idx) const
    {
        avf_assert(idx < numBits, "bit index %zu out of range %zu",
                   idx, numBits);
        return (words[idx >> 6] >> (idx & 63)) & 1;
    }

    /** Set bit @p idx to @p value. */
    void
    set(std::size_t idx, bool value = true)
    {
        avf_assert(idx < numBits, "bit index %zu out of range %zu",
                   idx, numBits);
        std::uint64_t mask = std::uint64_t(1) << (idx & 63);
        if (value)
            words[idx >> 6] |= mask;
        else
            words[idx >> 6] &= ~mask;
    }

    /** Clear bit @p idx. */
    void reset(std::size_t idx) { set(idx, false); }

    /** Clear every bit. */
    void
    clearAll()
    {
        for (auto &w : words)
            w = 0;
    }

    /** Count of set bits. */
    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (auto w : words)
            total += static_cast<std::size_t>(std::popcount(w));
        return total;
    }

    /** True if no bit is set. */
    bool
    none() const
    {
        for (auto w : words)
            if (w)
                return false;
        return true;
    }

    // ---- word-level operations ----------------------------------
    // The error-bit planes and cache/TLB valid planes use these in
    // place of per-bit loops: one uint64 op covers 64 entries. All
    // binary ops require equal sizes; bits past size() in the last
    // word are zero by construction and every operation below
    // preserves that invariant (OR/AND of zeros is zero).

    /** Number of backing 64-bit words. */
    std::size_t numWords() const { return words.size(); }

    /** Raw word @p w (bit i lives in word i/64 at position i%64). */
    std::uint64_t
    word(std::size_t w) const
    {
        avf_assert(w < words.size(), "word index %zu out of range %zu",
                   w, words.size());
        return words[w];
    }

    /** Carry/merge: this |= other, one word at a time. */
    void
    orWith(const BitVector &other)
    {
        avf_assert(numBits == other.numBits,
                   "orWith size mismatch (%zu vs %zu)", numBits,
                   other.numBits);
        for (std::size_t w = 0; w < words.size(); ++w)
            words[w] |= other.words[w];
    }

    /** Intersect: this &= other, one word at a time. */
    void
    andWith(const BitVector &other)
    {
        avf_assert(numBits == other.numBits,
                   "andWith size mismatch (%zu vs %zu)", numBits,
                   other.numBits);
        for (std::size_t w = 0; w < words.size(); ++w)
            words[w] &= other.words[w];
    }

    /** Kill: this &= ~other, one word at a time. */
    void
    andNotWith(const BitVector &other)
    {
        avf_assert(numBits == other.numBits,
                   "andNotWith size mismatch (%zu vs %zu)", numBits,
                   other.numBits);
        for (std::size_t w = 0; w < words.size(); ++w)
            words[w] &= ~other.words[w];
    }

    /** Exact equality (sizes and every bit). */
    bool
    operator==(const BitVector &other) const
    {
        return numBits == other.numBits && words == other.words;
    }

    /**
     * Invoke @p fn(index) for every set bit, ascending. Scans words
     * and peels bits with countr_zero, so wholly-zero words cost one
     * compare — the sparse case the one-error-at-a-time invariant
     * makes common.
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words.size(); ++w) {
            std::uint64_t bits = words[w];
            while (bits) {
                auto bit = static_cast<std::size_t>(
                    std::countr_zero(bits));
                fn(w * 64 + bit);
                bits &= bits - 1;
            }
        }
    }

  private:
    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace avf

#endif // AVF_UTIL_BITVECTOR_HH
