/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis
 * and randomized-injection experiments.
 *
 * We use xoshiro256** (public domain, Blackman & Vigna) seeded through
 * SplitMix64 so that a single 64-bit seed fully determines a stream.
 * Determinism matters: every experiment in this repository is
 * reproducible from (benchmark name, seed).
 */

#ifndef AVF_UTIL_RANDOM_HH
#define AVF_UTIL_RANDOM_HH

#include <cstdint>
#include <string_view>

namespace avf
{

/**
 * xoshiro256** generator with convenience draws used throughout the
 * workload generators and samplers.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /**
     * Geometric draw: number of failures before first success with
     * success probability p (p clamped to (0,1]); bounded by cap.
     */
    std::uint64_t geometric(double p, std::uint64_t cap = 1u << 20);

    /** Approximately normal draw (sum of uniforms), mean 0, sd 1. */
    double gaussian();

  private:
    std::uint64_t s[4];
};

/** Stable 64-bit hash of a string (FNV-1a), for name -> seed mapping. */
std::uint64_t hashString(std::string_view str);

} // namespace avf

#endif // AVF_UTIL_RANDOM_HH
