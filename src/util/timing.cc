#include "util/timing.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace avf::timing
{

std::uint64_t
steadyNowNs()
{
    // The perf subsystem's one sanctioned wall-clock read: values
    // derived from it are side-channel metrics only and never reach
    // experiment output.
    auto now =
        std::chrono::steady_clock::now(); // avflint: allow(determinism)
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
}

void
Stopwatch::start()
{
    if (isRunning)
        return;
    startTick = steadyNowNs();
    isRunning = true;
}

double
Stopwatch::stop()
{
    if (!isRunning)
        return 0.0;
    auto lap = static_cast<double>(steadyNowNs() - startTick);
    accumulatedNs += lap;
    isRunning = false;
    return lap;
}

void
Stopwatch::reset()
{
    accumulatedNs = 0.0;
    isRunning = false;
}

double
Stopwatch::elapsedNs() const
{
    double total = accumulatedNs;
    if (isRunning)
        total += static_cast<double>(steadyNowNs() - startTick);
    return total;
}

double
PhaseStats::meanNs() const
{
    return count ? totalNs / static_cast<double>(count) : 0.0;
}

void
PhaseStats::merge(const PhaseStats &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        minNs = other.minNs;
        maxNs = other.maxNs;
    } else {
        minNs = std::min(minNs, other.minNs);
        maxNs = std::max(maxNs, other.maxNs);
    }
    count += other.count;
    totalNs += other.totalNs;
}

void
PhaseAccumulator::add(std::string_view phase, double ns)
{
    for (auto &slot : slots) {
        if (slot.name == phase) {
            PhaseStats lap;
            lap.count = 1;
            lap.totalNs = ns;
            lap.minNs = ns;
            lap.maxNs = ns;
            slot.merge(lap);
            return;
        }
    }
    PhaseStats fresh;
    // First lap of a new phase name only; the slot table is bounded
    // by the distinct phases. avflint: allow(hot-path-alloc)
    fresh.name = std::string(phase);
    fresh.count = 1;
    fresh.totalNs = ns;
    fresh.minNs = ns;
    fresh.maxNs = ns;
    // avflint: allow(hot-path-alloc)
    slots.push_back(std::move(fresh));
}

void
PhaseAccumulator::addWatch(std::string_view phase, Stopwatch &watch)
{
    watch.stop();
    add(phase, watch.elapsedNs());
    watch.reset();
}

PhaseStats
PhaseAccumulator::get(std::string_view phase) const
{
    for (const auto &slot : slots)
        if (slot.name == phase)
            return slot;
    PhaseStats empty;
    // Reporting-time query, not per-cycle.
    // avflint: allow(hot-path-alloc)
    empty.name = std::string(phase);
    return empty;
}

double
PhaseAccumulator::totalNs() const
{
    double total = 0.0;
    for (const auto &slot : slots)
        total += slot.totalNs;
    return total;
}

void
PhaseAccumulator::merge(const PhaseAccumulator &other)
{
    for (const auto &theirs : other.slots) {
        bool found = false;
        for (auto &mine : slots) {
            if (mine.name == theirs.name) {
                mine.merge(theirs);
                found = true;
                break;
            }
        }
        if (!found) {
            // Merge runs once at report assembly.
            // avflint: allow(hot-path-alloc)
            slots.push_back(theirs);
        }
    }
}

namespace
{

/** Escape for a JSON string literal (phase names are identifiers in
 * practice, but stay safe for arbitrary input). */
std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Minimal scanner for the writeJson() output format. */
struct JsonScanner
{
    std::string_view text;
    std::size_t pos = 0;

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        skipSpace();
        return pos < text.size() && text[pos] == c;
    }

    bool
    readString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\' && pos < text.size()) {
                char esc = text[pos++];
                switch (esc) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return false;
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    out += static_cast<char>(code);
                    break;
                  }
                  default: out += esc;
                }
            } else {
                out += c;
            }
        }
        return pos < text.size() && text[pos++] == '"';
    }

    bool
    readNumber(double &out)
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        if (pos == start)
            return false;
        try {
            out = std::stod(std::string(text.substr(start,
                                                    pos - start)));
        } catch (...) {
            return false;
        }
        return std::isfinite(out);
    }

    bool
    readKey(const char *expect)
    {
        std::string key;
        return readString(key) && key == expect && consume(':');
    }
};

} // namespace

void
PhaseAccumulator::writeJson(std::ostream &out) const
{
    out << "[";
    bool first = true;
    for (const auto &slot : slots) {
        if (!first)
            out << ",";
        first = false;
        out << "\n  {\"name\": \"" << jsonEscape(slot.name)
            << "\", \"count\": " << slot.count
            << ", \"total_ns\": " << slot.totalNs
            << ", \"min_ns\": " << slot.minNs
            << ", \"max_ns\": " << slot.maxNs
            << ", \"mean_ns\": " << slot.meanNs() << "}";
    }
    out << (slots.empty() ? "]" : "\n]");
}

bool
PhaseAccumulator::readJson(std::string_view json)
{
    JsonScanner scan{json};
    std::vector<PhaseStats> parsed;
    if (!scan.consume('['))
        return false;
    if (!scan.peek(']')) {
        do {
            PhaseStats stats;
            double count = 0.0;
            if (!scan.consume('{') || !scan.readKey("name") ||
                !scan.readString(stats.name) || !scan.consume(',') ||
                !scan.readKey("count") || !scan.readNumber(count) ||
                !scan.consume(',') || !scan.readKey("total_ns") ||
                !scan.readNumber(stats.totalNs) || !scan.consume(',') ||
                !scan.readKey("min_ns") ||
                !scan.readNumber(stats.minNs) || !scan.consume(',') ||
                !scan.readKey("max_ns") ||
                !scan.readNumber(stats.maxNs) || !scan.consume(','))
                return false;
            double mean = 0.0;
            if (!scan.readKey("mean_ns") || !scan.readNumber(mean) ||
                !scan.consume('}'))
                return false;
            if (count < 0.0)
                return false;
            stats.count = static_cast<std::uint64_t>(count);
            parsed.push_back(std::move(stats));
        } while (scan.consume(','));
    }
    if (!scan.consume(']'))
        return false;
    slots = std::move(parsed);
    return true;
}

double
ratePerSec(std::uint64_t items, double elapsedNs)
{
    if (elapsedNs <= 0.0)
        return 0.0;
    return static_cast<double>(items) / (elapsedNs * 1e-9);
}

} // namespace avf::timing
