/**
 * @file
 * Error and status reporting in the gem5 spirit: panic() for internal
 * invariant violations (aborts), fatal() for user/configuration errors
 * (clean exit), warn()/inform() for status messages.
 */

#ifndef AVF_UTIL_LOGGING_HH
#define AVF_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace avf
{

/**
 * Report an internal simulator bug and abort. Use only for conditions
 * that can never happen regardless of user input.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error (bad configuration, bad
 * arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently silenced. */
bool isQuiet();

/**
 * Backend for avf_assert: reports condition and location, then the
 * formatted message, and aborts.
 */
[[noreturn]] void panicAt(const char *file, int line, const char *cond,
                          const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Message-less backend for avf_assert(cond). */
[[noreturn]] void panicAt(const char *file, int line,
                          const char *cond);

/**
 * Assert a simulator invariant; panics with the message on failure.
 * Unlike assert(), stays on in release builds: the simulator's
 * correctness arguments depend on these checks. The printf-style
 * message is optional — `__VA_OPT__` keeps the expansion well-formed
 * under -Wpedantic when only the condition (or a message with no
 * varargs) is given, instead of the GNU `, ##__VA_ARGS__` extension.
 */
#define avf_assert(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::avf::panicAt(__FILE__, __LINE__,                          \
                           #cond __VA_OPT__(, ) __VA_ARGS__);           \
        }                                                               \
    } while (0)

} // namespace avf

#endif // AVF_UTIL_LOGGING_HH
