/**
 * @file
 * Error and status reporting in the gem5 spirit: panic() for internal
 * invariant violations (aborts), fatal() for user/configuration errors
 * (clean exit), warn()/inform()/debugLog() for status messages.
 *
 * Every message goes through one severity-filtered sink that formats
 * the whole line before a single atomic write, so concurrent worker
 * threads (the experiment engine's pool, metrics/trace emission)
 * never interleave mid-line. The threshold comes from setLogLevel()
 * or, lazily on first use, the AVF_LOG_LEVEL environment variable
 * (debug|info|warn|error, strict-validated like the RunOptions env
 * knobs — junk is a fatal() config error, not a silent default).
 * panic()/fatal() ignore the threshold: a message you are about to
 * die with is never the one to drop.
 */

#ifndef AVF_UTIL_LOGGING_HH
#define AVF_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace avf
{

/** Message severities, in increasing order of importance. */
enum class LogLevel : int
{
    Debug = 0, ///< debugLog(): developer diagnostics, off by default
    Info = 1,  ///< inform(): normal operating status
    Warn = 2,  ///< warn(): suspicious but survivable
    Error = 3  ///< panic()/fatal() (never filtered)
};

/**
 * Report an internal simulator bug and abort. Use only for conditions
 * that can never happen regardless of user input.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error (bad configuration, bad
 * arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Developer diagnostics; emitted only at LogLevel::Debug. */
void debugLog(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Parse a level name as AVF_LOG_LEVEL does: exactly one of
 * debug|info|warn|error; anything else is a fatal() config error.
 */
LogLevel parseLogLevel(const char *name);

/**
 * Set the severity threshold: messages below @p level are dropped.
 * Overrides whatever AVF_LOG_LEVEL resolved to.
 */
void setLogLevel(LogLevel level);

/** Current severity threshold (resolving AVF_LOG_LEVEL on first
 *  use). */
LogLevel logLevel();

/**
 * Globally silence warn()/inform() (used by tests and benches).
 * Equivalent to setLogLevel(LogLevel::Error); setQuiet(false)
 * restores LogLevel::Info.
 */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently silenced. */
bool isQuiet();

/**
 * Backend for avf_assert: reports condition and location, then the
 * formatted message, and aborts.
 */
[[noreturn]] void panicAt(const char *file, int line, const char *cond,
                          const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Message-less backend for avf_assert(cond). */
[[noreturn]] void panicAt(const char *file, int line,
                          const char *cond);

/**
 * Assert a simulator invariant; panics with the message on failure.
 * Unlike assert(), stays on in release builds: the simulator's
 * correctness arguments depend on these checks. The printf-style
 * message is optional — `__VA_OPT__` keeps the expansion well-formed
 * under -Wpedantic when only the condition (or a message with no
 * varargs) is given, instead of the GNU `, ##__VA_ARGS__` extension.
 */
#define avf_assert(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::avf::panicAt(__FILE__, __LINE__,                          \
                           #cond __VA_OPT__(, ) __VA_ARGS__);           \
        }                                                               \
    } while (0)

} // namespace avf

#endif // AVF_UTIL_LOGGING_HH
