/**
 * @file
 * Minimal INI-style configuration parser: `[section]` headers,
 * `key = value` lines, `#` or `;` comments. Used to configure
 * machines, workloads, and estimator geometry from files.
 */

#ifndef AVF_UTIL_KEYVALUE_HH
#define AVF_UTIL_KEYVALUE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace avf
{

/** Parsed key/value configuration with sections. */
class KeyValueFile
{
  public:
    KeyValueFile() = default;

    /** Parse @p path; fatal() on open or syntax errors. */
    static KeyValueFile fromFile(const std::string &path);

    /** Parse @p text (tests); fatal() on syntax errors. */
    static KeyValueFile fromString(const std::string &text);

    /** True if `[section] key` exists. */
    bool has(const std::string &section,
             const std::string &key) const;

    /** String value or @p fallback. */
    std::string getString(const std::string &section,
                          const std::string &key,
                          const std::string &fallback = "") const;

    /** Integer value or @p fallback; fatal() on parse failure. */
    std::int64_t getInt(const std::string &section,
                        const std::string &key,
                        std::int64_t fallback) const;

    /** Double value or @p fallback; fatal() on parse failure. */
    double getDouble(const std::string &section,
                     const std::string &key, double fallback) const;

    /** Boolean value (true/false/1/0/yes/no) or @p fallback. */
    bool getBool(const std::string &section, const std::string &key,
                 bool fallback) const;

    /** All keys present in @p section (for unknown-key warnings). */
    std::vector<std::string> keysIn(const std::string &section) const;

    /** All section names. */
    std::vector<std::string> sections() const;

  private:
    void parse(const std::string &text, const std::string &origin);

    /** "section\x1fkey" -> value. */
    std::map<std::string, std::string> values;
};

} // namespace avf

#endif // AVF_UTIL_KEYVALUE_HH
