/**
 * @file
 * Fundamental typedefs shared across the simulator and the AVF estimators.
 */

#ifndef AVF_UTIL_TYPES_HH
#define AVF_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace avf
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Dynamic-instruction sequence number (monotonic over a run). */
using InstrSeq = std::uint64_t;

/** Simulated byte address. */
using Addr = std::uint64_t;

/** Architectural or physical register index. */
using RegIndex = std::int16_t;

/** Sentinel for "no register". */
inline constexpr RegIndex invalidReg = -1;

/** Sentinel for "no sequence number yet". */
inline constexpr InstrSeq invalidSeq =
    std::numeric_limits<InstrSeq>::max();

/** Sentinel cycle meaning "never happened / not yet". */
inline constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

} // namespace avf

#endif // AVF_UTIL_TYPES_HH
