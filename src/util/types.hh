/**
 * @file
 * Fundamental typedefs shared across the simulator and the AVF estimators.
 */

#ifndef AVF_UTIL_TYPES_HH
#define AVF_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace avf
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Dynamic-instruction sequence number (monotonic over a run). */
using InstrSeq = std::uint64_t;

/** Simulated byte address. */
using Addr = std::uint64_t;

/** Architectural or physical register index. */
using RegIndex = std::int16_t;

/** Sentinel for "no register". */
inline constexpr RegIndex invalidReg = -1;

/** Sentinel for "no sequence number yet". */
inline constexpr InstrSeq invalidSeq =
    std::numeric_limits<InstrSeq>::max();

/** Sentinel cycle meaning "never happened / not yet". */
inline constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/**
 * Error-bit channels. One bit per concurrently-tracked injection
 * lane: every lane is an independent one-error-at-a-time estimation
 * riding the same word-level propagation (OR at issue, overwrite at
 * complete, failure-point test at retire), so 64 tagged campaigns
 * advance per plane word. Lives here rather than in cpu/ because the
 * memory hierarchy (TLB error plane) speaks the same mask type.
 */
using ErrorMask = std::uint64_t;

/** Maximum number of concurrent estimation channels (bit lanes). */
inline constexpr int numErrorChannels = 64;

/** Lane index into an ErrorMask, 0..numErrorChannels-1. */
using LaneId = int;

/** The bit a lane occupies in every ErrorMask word. */
constexpr ErrorMask
laneBit(LaneId lane)
{
    return ErrorMask{1} << lane;
}

/**
 * Typed result of an injection request. Replaces the bare bool whose
 * `false` conflated "slot out of range" with "slot empty": callers
 * that used to drop the distinction now have to spell out which
 * rejection they tolerate.
 */
enum class InjectOutcome
{
    Rejected, ///< invalid target (out of range): nothing was written
    Occupied, ///< bit landed on a live/occupied target
    Opened,   ///< bit landed on an empty target (trivially maskable)
};

/** True when the injection wrote a bit (occupied or empty target). */
constexpr bool
injected(InjectOutcome o)
{
    return o != InjectOutcome::Rejected;
}

} // namespace avf

#endif // AVF_UTIL_TYPES_HH
