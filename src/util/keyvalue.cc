#include "util/keyvalue.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "util/logging.hh"

namespace avf
{

namespace
{

constexpr char separator = '\x1f';

std::string
trim(const std::string &text)
{
    auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

} // namespace

KeyValueFile
KeyValueFile::fromFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open config file '%s'", path.c_str());
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        text.append(buf, got);
    bool truncated = std::ferror(file) != 0;
    if (std::fclose(file) != 0 || truncated)
        fatal("error reading config file '%s'", path.c_str());

    KeyValueFile out;
    out.parse(text, path);
    return out;
}

KeyValueFile
KeyValueFile::fromString(const std::string &text)
{
    KeyValueFile out;
    out.parse(text, "<string>");
    return out;
}

void
KeyValueFile::parse(const std::string &text, const std::string &origin)
{
    std::string section;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = trim(text.substr(pos, eol - pos));
        pos = eol + 1;
        ++line_no;

        if (line.empty() || line[0] == '#' || line[0] == ';')
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("%s:%zu: malformed section header '%s'",
                      origin.c_str(), line_no, line.c_str());
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("%s:%zu: expected 'key = value', got '%s'",
                  origin.c_str(), line_no, line.c_str());
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("%s:%zu: empty key", origin.c_str(), line_no);
        values[section + separator + key] = value;
    }
}

bool
KeyValueFile::has(const std::string &section,
                  const std::string &key) const
{
    return values.count(section + separator + key) > 0;
}

std::string
KeyValueFile::getString(const std::string &section,
                        const std::string &key,
                        const std::string &fallback) const
{
    auto it = values.find(section + separator + key);
    return it == values.end() ? fallback : it->second;
}

std::int64_t
KeyValueFile::getInt(const std::string &section,
                     const std::string &key,
                     std::int64_t fallback) const
{
    auto it = values.find(section + separator + key);
    if (it == values.end())
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config [%s] %s: '%s' is not an integer",
              section.c_str(), key.c_str(), it->second.c_str());
    return parsed;
}

double
KeyValueFile::getDouble(const std::string &section,
                        const std::string &key, double fallback) const
{
    auto it = values.find(section + separator + key);
    if (it == values.end())
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config [%s] %s: '%s' is not a number",
              section.c_str(), key.c_str(), it->second.c_str());
    return parsed;
}

bool
KeyValueFile::getBool(const std::string &section,
                      const std::string &key, bool fallback) const
{
    auto it = values.find(section + separator + key);
    if (it == values.end())
        return fallback;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(), ::tolower);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("config [%s] %s: '%s' is not a boolean", section.c_str(),
          key.c_str(), it->second.c_str());
}

std::vector<std::string>
KeyValueFile::keysIn(const std::string &section) const
{
    std::vector<std::string> out;
    std::string prefix = section + separator;
    for (const auto &[full, value] : values) {
        (void)value;
        if (full.rfind(prefix, 0) == 0)
            out.push_back(full.substr(prefix.size()));
    }
    return out;
}

std::vector<std::string>
KeyValueFile::sections() const
{
    std::set<std::string> seen;
    for (const auto &[full, value] : values) {
        (void)value;
        seen.insert(full.substr(0, full.find(separator)));
    }
    return {seen.begin(), seen.end()};
}

} // namespace avf
