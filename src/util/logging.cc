#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace avf
{

namespace
{

/** Serializes sink writes only — never held while resolving the
 *  level, because resolution can fatal() back into the sink. */
std::mutex sinkMutex;

/** Resolved threshold; -1 until AVF_LOG_LEVEL has been consulted. */
std::atomic<int> currentLevel{-1};

/**
 * Resolve AVF_LOG_LEVEL once, strictly: unset/empty means Info, any
 * other value must be one of the four level names. Runs outside
 * sinkMutex so the fatal() path for a junk value can emit.
 */
int
loadLevelFromEnv()
{
    // AVF_LOG_LEVEL must be readable before any config file loads —
    // logging is what reports loader failures — and the value is
    // strict-validated by parseLogLevel (fatal() on junk), so this
    // is the one read outside the config loader.
    // avflint: allow(env-knob-discipline)
    const char *val = std::getenv("AVF_LOG_LEVEL");
    if (!val || !*val)
        return static_cast<int>(LogLevel::Info);
    return static_cast<int>(parseLogLevel(val));
}

int
resolvedLevel()
{
    int level = currentLevel.load(std::memory_order_relaxed);
    if (level >= 0)
        return level;
    const int fromEnv = loadLevelFromEnv();
    // Racing resolvers compute the same value; only a concurrent
    // setLogLevel() can differ, and it wins — never clobber it.
    if (currentLevel.compare_exchange_strong(
            level, fromEnv, std::memory_order_relaxed))
        return fromEnv;
    return level;
}

/**
 * The single sink: takes a fully-assembled "tag: message" line and
 * hands it to the stream in one write, under the lock — worker
 * threads can never interleave mid-line.
 */
void
emitRaw(std::string text)
{
    text += '\n';
    std::lock_guard<std::mutex> lock(sinkMutex);
    (void)std::fwrite(text.data(), 1, text.size(), stderr);
}

/** Render a printf-style message into a std::string. */
std::string
vformat(const char *fmt, va_list args)
{
    va_list measure;
    va_copy(measure, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, measure);
    va_end(measure);
    if (needed < 0)
        needed = 0;
    // Log lines are rendered only past the severity filter (or on
    // panic), never on the per-cycle simulation path.
    // avflint: allow(hot-path-alloc)
    std::string text(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(text.data(), static_cast<std::size_t>(needed) + 1,
                   fmt, args);
    return text;
}

/** Assemble and emit one "tag: message" line. */
void
vemitLine(const char *tag, const char *fmt, va_list args)
{
    // Same cold path as vformat. avflint: allow(hot-path-alloc)
    emitRaw(std::string(tag) + ": " + vformat(fmt, args));
}

/** Severity-filtered emission for warn/inform/debugLog. */
void
vreport(LogLevel level, const char *tag, const char *fmt,
        va_list args)
{
    if (static_cast<int>(level) < resolvedLevel())
        return;
    vemitLine(tag, fmt, args);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vemitLine("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vemitLine("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(LogLevel::Warn, "warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(LogLevel::Info, "info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(LogLevel::Debug, "debug", fmt, args);
    va_end(args);
}

void
panicAt(const char *file, int line, const char *cond, const char *fmt,
        ...)
{
    char where[512];
    std::snprintf(where, sizeof(where),
                  "assertion '%s' failed at %s:%d:", cond, file,
                  line);
    // Two lines would risk interleaving; fold location and message
    // into one panic line.
    std::string full = std::string(where) + " " + fmt;
    va_list args;
    va_start(args, fmt);
    vemitLine("panic", full.c_str(), args);
    va_end(args);
    std::abort();
}

void
panicAt(const char *file, int line, const char *cond)
{
    panicAt(file, line, cond, "%s", "invariant violated");
}

LogLevel
parseLogLevel(const char *name)
{
    if (std::strcmp(name, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(name, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(name, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(name, "error") == 0)
        return LogLevel::Error;
    fatal("'%s' is not a log level (use debug|info|warn|error)",
          name);
}

void
setLogLevel(LogLevel level)
{
    currentLevel.store(static_cast<int>(level),
                       std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(resolvedLevel());
}

void
setQuiet(bool quiet)
{
    setLogLevel(quiet ? LogLevel::Error : LogLevel::Info);
}

bool
isQuiet()
{
    return logLevel() > LogLevel::Warn;
}

} // namespace avf
