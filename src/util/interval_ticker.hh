/**
 * @file
 * Division-free periodic trigger for per-cycle observers. The
 * estimators all ask "is `now` at my interval boundary?" every
 * cycle; asked with `now % period` that is a 64-bit division on the
 * hottest loop in the simulator. IntervalTicker answers the same
 * question with a decrement and a compare by exploiting the only
 * call pattern the pipeline produces: consecutive cycle numbers, one
 * tick per cycle.
 *
 * The first tick computes the phase once (one division total), so a
 * ticker attached mid-run stays exact.
 */

#ifndef AVF_UTIL_INTERVAL_TICKER_HH
#define AVF_UTIL_INTERVAL_TICKER_HH

#include "util/logging.hh"
#include "util/types.hh"

namespace avf
{

/** Fires on the cycles congruent to @c phase modulo @c period. */
class IntervalTicker
{
  public:
    /**
     * @param period interval length in cycles (> 0).
     * @param phase residue to fire on: tick(now) is true exactly
     *        when now % period == phase.
     */
    explicit IntervalTicker(Cycle period, Cycle phase = 0)
        : interval(period)
    {
        avf_assert(period > 0, "ticker period must be positive");
        residue = phase % period;
    }

    /**
     * Advance one cycle. Must be called with consecutive values of
     * @p now (the pipeline observer contract); only the first call
     * may start anywhere.
     */
    bool
    tick(Cycle now)
    {
        if (!primed) {
            Cycle mod = now % interval;
            remaining = mod <= residue ? residue - mod
                                       : interval - mod + residue;
            primed = true;
        }
        if (remaining == 0) {
            remaining = interval - 1;
            return true;
        }
        --remaining;
        return false;
    }

    /** The configured period. */
    Cycle period() const { return interval; }

  private:
    Cycle interval;
    Cycle residue = 0;
    Cycle remaining = 0;
    bool primed = false;
};

} // namespace avf

#endif // AVF_UTIL_INTERVAL_TICKER_HH
