/**
 * @file
 * Minimal JSON document model and recursive-descent parser. The repo
 * *writes* JSON with hand-rolled fprintf emitters (export.cc,
 * obs/metrics.cc) so their byte layout stays deterministic; this is
 * the matching *read* side, used by tools/avf-report and the tests
 * that round-trip the exporters. It parses strict RFC 8259 JSON into
 * an ordered document tree — object keys keep file order, so reports
 * iterate deterministically — and reports the first error with its
 * byte offset instead of guessing.
 *
 * Deliberately small: no streaming, no writer (the emitters own the
 * byte layout), no number preservation beyond double + a lossless
 * uint64 fast path for counters.
 */

#ifndef AVF_UTIL_JSON_HH
#define AVF_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace avf::json
{

/** One JSON value; a tagged union over the seven RFC 8259 kinds
 *  (integers get their own tag so 64-bit counters survive). */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        /** Number that parsed exactly as an unsigned 64-bit integer. */
        Uint,
        /** Any other number. */
        Double,
        String,
        Array,
        Object
    };

    /** Object member list; keeps source order. */
    using Members = std::vector<std::pair<std::string, Value>>;

    Kind kind = Kind::Null;
    bool boolean = false;
    std::uint64_t uintValue = 0;
    double number = 0.0;
    std::string text;
    std::vector<Value> items; ///< Array elements
    Members members;          ///< Object members

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const
    {
        return kind == Kind::Uint || kind == Kind::Double;
    }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Numeric value as double (Uint converts; else 0). */
    double asDouble() const;

    /** Numeric value as uint64 (Double truncates if exact; else 0). */
    std::uint64_t asUint() const;

    /**
     * Object member lookup, first match; nullptr when absent or when
     * this value is not an object.
     */
    const Value *find(std::string_view key) const;

    /** find() that also requires the member to be kind @p k. */
    const Value *find(std::string_view key, Kind k) const;
};

/**
 * Parse @p input as one JSON document (trailing whitespace allowed,
 * trailing garbage is an error).
 *
 * @param input the JSON text.
 * @param out receives the document on success; unspecified on error.
 * @param error receives "offset N: message" on failure.
 * @return true on success.
 */
bool parse(std::string_view input, Value &out, std::string &error);

} // namespace avf::json

#endif // AVF_UTIL_JSON_HH
