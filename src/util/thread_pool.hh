/**
 * @file
 * Minimal fixed-size worker pool for the experiment engine. Workers
 * pull std::function jobs from a shared queue until shutdown; wait()
 * blocks until every job submitted so far has finished, so a caller
 * can reuse one pool across successive batches.
 *
 * Deliberately tiny: no futures, no work stealing, no priorities.
 * Determinism is the caller's job — jobs must not communicate through
 * scheduling order (the engine derives all per-task randomness from
 * submission indices, never from which worker ran first).
 */

#ifndef AVF_UTIL_THREAD_POOL_HH
#define AVF_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace avf
{

/** Fixed-size pool of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 resolves to
     *        std::thread::hardware_concurrency() (minimum 1).
     */
    explicit ThreadPool(unsigned threads = 0)
    {
        if (threads == 0)
            threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
        workers.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        wakeWorkers.notify_all();
        for (auto &worker : workers)
            worker.join();
    }

    /** Number of worker threads. */
    std::size_t size() const { return workers.size(); }

    /** Enqueue a job; runs on some worker, FIFO dispatch order. */
    void submit(std::function<void()> job)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            queue.push_back(std::move(job));
        }
        wakeWorkers.notify_one();
    }

    /** Block until the queue is empty and no job is in flight. */
    void wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        idle.wait(lock,
                  [this] { return queue.empty() && running == 0; });
    }

  private:
    void workerLoop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            wakeWorkers.wait(
                lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, queue drained
            auto job = std::move(queue.front());
            queue.pop_front();
            ++running;
            lock.unlock();
            job();
            lock.lock();
            --running;
            if (queue.empty() && running == 0)
                idle.notify_all();
        }
    }

    std::mutex mutex;
    std::condition_variable wakeWorkers;
    std::condition_variable idle;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    unsigned running = 0;
    bool stopping = false;
};

} // namespace avf

#endif // AVF_UTIL_THREAD_POOL_HH
