/**
 * @file
 * Minimal fixed-size worker pool for the experiment engine. Workers
 * pull std::function jobs from a shared queue until shutdown; wait()
 * blocks until every job submitted so far has finished, so a caller
 * can reuse one pool across successive batches.
 *
 * Deliberately tiny: no futures, no work stealing, no priorities.
 * Determinism is the caller's job — jobs must not communicate through
 * scheduling order (the engine derives all per-task randomness from
 * submission indices, never from which worker ran first).
 */

#ifndef AVF_UTIL_THREAD_POOL_HH
#define AVF_UTIL_THREAD_POOL_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace avf
{

/** Fixed-size pool of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /**
     * Queue/dispatch observability counters, snapshotted under the
     * pool lock. Wall-clock/scheduling-dependent by nature — they
     * belong in the trace side channel (obs/trace_export.hh), never
     * in deterministic exports.
     */
    struct PoolStats
    {
        std::uint64_t submitted = 0; ///< jobs ever enqueued
        std::uint64_t executed = 0;  ///< jobs finished
        std::uint64_t maxQueueDepth = 0; ///< peak queue length seen
    };

    /**
     * @param threads worker count; 0 resolves to
     *        std::thread::hardware_concurrency() (minimum 1).
     */
    explicit ThreadPool(unsigned threads = 0)
    {
        if (threads == 0)
            threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
        workers.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers.emplace_back([this, i] {
                workerIndex = static_cast<int>(i);
                workerLoop();
            });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        wakeWorkers.notify_all();
        for (auto &worker : workers)
            worker.join();
    }

    /** Number of worker threads. */
    std::size_t size() const { return workers.size(); }

    /**
     * Index of the calling pool worker (0-based), or -1 when the
     * caller is not a pool worker thread. Lets task instrumentation
     * attribute work to a trace lane without threading an id through
     * every job closure.
     */
    static int currentWorkerId() { return workerIndex; }

    /** Snapshot the observability counters. */
    PoolStats stats() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return statsData;
    }

    /** Enqueue a job; runs on some worker, FIFO dispatch order. */
    void submit(std::function<void()> job)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            queue.push_back(std::move(job));
            ++statsData.submitted;
            statsData.maxQueueDepth =
                std::max<std::uint64_t>(statsData.maxQueueDepth,
                                        queue.size());
        }
        wakeWorkers.notify_one();
    }

    /** Block until the queue is empty and no job is in flight. */
    void wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        idle.wait(lock,
                  [this] { return queue.empty() && running == 0; });
    }

  private:
    void workerLoop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            wakeWorkers.wait(
                lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, queue drained
            auto job = std::move(queue.front());
            queue.pop_front();
            ++running;
            lock.unlock();
            job();
            lock.lock();
            --running;
            ++statsData.executed;
            if (queue.empty() && running == 0)
                idle.notify_all();
        }
    }

    /** This thread's pool index; -1 on non-pool threads. */
    static inline thread_local int workerIndex = -1;

    mutable std::mutex mutex;
    std::condition_variable wakeWorkers;
    std::condition_variable idle;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    unsigned running = 0;
    bool stopping = false;
    PoolStats statsData;
};

} // namespace avf

#endif // AVF_UTIL_THREAD_POOL_HH
