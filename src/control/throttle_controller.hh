/**
 * @file
 * Closed-loop vulnerability control: the use case the paper builds
 * toward (Section 1, citing Soundararajan et al.: "use the AVF input
 * to control instruction throttling ... a real-time online AVF
 * estimation is a must"). At the end of each estimation interval the
 * controller reads the interval's AVF from the published metrics
 * series — obs::ControlFeed is its only input; it holds no estimator
 * reference — and decides whether to throttle dispatch: fewer
 * instructions in flight lowers occupancy and therefore AVF, at an
 * IPC cost.
 *
 * Two policies share the actuator:
 *  - threshold mode (no arbiter): an EMA predictor over the driving
 *    structure's AVF series, with hysteresis between engage and
 *    release thresholds;
 *  - budget mode (arbiter attached): every structure's AVF row is
 *    handed to a reliability::BudgetArbiter, which checks the SOFR
 *    failure rate against an MTTF budget and names the structure to
 *    act on. Throttleable targets engage the dispatch throttle;
 *    the rest get protection coverage raised inside the arbiter.
 *
 * The throttle is actuated only on decision transitions, and every
 * decision is recorded into the same MetricsShard the feed publishes
 * through, so METRICS.json carries the full decision trail
 * (`avf-report budget` renders it).
 */

#ifndef AVF_CONTROL_THROTTLE_CONTROLLER_HH
#define AVF_CONTROL_THROTTLE_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/predictor.hh"
#include "core/structures.hh"
#include "cpu/observer.hh"
#include "cpu/pipeline.hh"
#include "obs/control_feed.hh"
#include "reliability/budget_arbiter.hh"

namespace avf::control
{

/** Threshold-mode policy (budget mode takes these as fallbacks). */
struct ThrottleConfig
{
    /** Structure whose published AVF series drives the predictor. */
    core::Structure structure = core::Structure::IQ;
    /** Predicted AVF at or above which throttling engages. */
    double engageThreshold = 0.30;
    /** Predicted AVF below which throttling releases; must be
     *  strictly below engageThreshold (positive hysteresis band). */
    double releaseThreshold = 0.25;
    /** Dispatch width while throttled. */
    int throttledWidth = 2;
    /** Smoothing factor of the internal EMA predictor. */
    double predictorAlpha = 0.7;
};

/**
 * Watches the control feed and actuates the dispatch throttle at
 * estimation-interval boundaries. Attach as a pipeline observer
 * AFTER the feed so decisions land the cycle a row publishes.
 */
class ThrottleController : public cpu::PipelineObserver
{
  public:
    /**
     * @param pipe pipeline to actuate.
     * @param feed the published per-interval series to decide from;
     *        conf.structure must be attached. Decision metrics are
     *        registered on the feed's shard here (never mid-run).
     * @param config policy.
     * @param arbiter optional MTTF-budget arbiter; non-null switches
     *        the controller to budget mode. Not owned; must outlive
     *        the controller.
     */
    ThrottleController(cpu::Pipeline &pipe, obs::ControlFeed &feed,
                       ThrottleConfig config = ThrottleConfig{},
                       reliability::BudgetArbiter *arbiter = nullptr);

    void onCycle(Cycle now) override;

    /** True while the throttle is engaged. */
    bool throttled() const { return engaged; }

    /** Number of intervals (published rows) consumed. */
    std::uint64_t intervals() const { return seenRows; }

    /** Number of intervals spent throttled. */
    std::uint64_t throttledIntervals() const;

    /** Off-to-on transitions so far. */
    std::uint64_t engagements() const;

    /** setDispatchThrottle() calls issued (transitions only). */
    std::uint64_t actuations() const;

    /** Intervals decided while the MTTF budget was exceeded
     *  (0 in threshold mode). */
    std::uint64_t budgetExceededIntervals() const;

    /** Protect decisions (coverage raises) the arbiter issued
     *  (0 in threshold mode). */
    std::uint64_t protectActions() const;

    /** Per-interval engaged/not decisions (after each row). */
    const std::vector<bool> &decisions() const { return decisionLog; }

    /**
     * Structure index of the first over-budget arbitration target,
     * or -1 when the budget never tripped (or threshold mode).
     */
    int firstTargetStructure() const { return firstTarget; }

    /** The arbiter driving budget mode, or nullptr. */
    const reliability::BudgetArbiter *budget() const
    {
        return arbiter;
    }

  private:
    void processRow(std::size_t row);

    cpu::Pipeline &pipeline;
    obs::ControlFeed &feed;
    reliability::BudgetArbiter *arbiter;
    ThrottleConfig conf;
    core::EmaPredictor predictor;

    obs::MetricsShard::Id engagementsId;
    obs::MetricsShard::Id releasesId;
    obs::MetricsShard::Id actuationsId;
    obs::MetricsShard::Id throttledId;
    obs::MetricsShard::Id engagedSeriesId;
    obs::MetricsShard::Id latencyGaugeId;
    // Budget-mode metrics (registered only when an arbiter is set).
    obs::MetricsShard::Id exceededId = 0;
    obs::MetricsShard::Id protectId = 0;
    obs::MetricsShard::Id fitSeriesId = 0;
    obs::MetricsShard::Id mttfSeriesId = 0;
    obs::MetricsShard::Id targetSeriesId = 0;
    obs::MetricsShard::Id budgetGaugeId = 0;
    std::array<obs::MetricsShard::Id, core::numStructures>
        coverageIds{};

    std::size_t seenRows = 0;
    bool engaged = false;
    int firstTarget = -1;
    std::vector<bool> decisionLog;
};

} // namespace avf::control

#endif // AVF_CONTROL_THROTTLE_CONTROLLER_HH
