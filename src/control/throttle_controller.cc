#include "control/throttle_controller.hh"

#include <algorithm>
#include <string>

#include "util/logging.hh"

namespace avf::control
{

namespace
{

/**
 * Ceiling for the exported projected-MTTF series: before the first
 * nonzero-AVF interval the projection is +infinity, which the
 * fixed-format JSON writer cannot represent.
 */
constexpr double mttfSeriesCapHours = 1e12;

} // namespace

ThrottleController::ThrottleController(
    cpu::Pipeline &pipe, obs::ControlFeed &sourceFeed,
    ThrottleConfig config, reliability::BudgetArbiter *budgetArbiter)
    : pipeline(pipe), feed(sourceFeed), arbiter(budgetArbiter),
      conf(config), predictor(config.predictorAlpha)
{
    avf_assert(conf.releaseThreshold < conf.engageThreshold,
               "hysteresis band must be strictly positive "
               "(release < engage)");
    avf_assert(conf.throttledWidth > 0,
               "throttled width must be positive");
    avf_assert(feed.hasAvf(conf.structure),
               "control feed does not publish the driving structure");

    auto &m = feed.shard();
    engagementsId = m.registerCounter("control_engagements_total");
    releasesId = m.registerCounter("control_releases_total");
    actuationsId = m.registerCounter("control_actuations_total");
    throttledId =
        m.registerCounter("control_throttled_intervals_total");
    engagedSeriesId = m.registerSeries("control_engaged");
    latencyGaugeId = m.registerGauge("control_report_latency_cycles");
    m.set(latencyGaugeId, static_cast<double>(feed.reportLatency()));

    if (arbiter) {
        exceededId =
            m.registerCounter("budget_exceeded_intervals_total");
        protectId =
            m.registerCounter("control_protect_actions_total");
        fitSeriesId = m.registerSeries("budget_fit_total");
        mttfSeriesId =
            m.registerSeries("budget_projected_mttf_hours");
        targetSeriesId = m.registerSeries("budget_target_structure");
        budgetGaugeId = m.registerGauge("budget_mttf_hours");
        m.set(budgetGaugeId, arbiter->budgetHours());
        for (std::size_t s = 0; s < core::numStructures; ++s)
            coverageIds[s] = m.registerSeries(
                "control_coverage_" +
                std::string(core::structureName(
                    static_cast<core::Structure>(s))));
    }
}

void
ThrottleController::processRow(std::size_t row)
{
    auto &m = feed.shard();
    predictor.observe(feed.avfSeries(conf.structure)[row]);

    bool want = engaged;
    if (arbiter) {
        std::array<double, core::numStructures> avf{};
        for (std::size_t s = 0; s < core::numStructures; ++s) {
            auto structure = static_cast<core::Structure>(s);
            if (feed.hasAvf(structure))
                avf[s] = feed.avfSeries(structure)[row];
        }
        auto decision = arbiter->decide(avf);
        if (decision.exceeded) {
            m.inc(exceededId);
            if (firstTarget < 0)
                firstTarget = static_cast<int>(decision.target);
        }
        if (decision.action ==
            reliability::BudgetDecision::Action::Protect)
            m.inc(protectId);
        want = decision.exceeded &&
               decision.action ==
                   reliability::BudgetDecision::Action::Throttle;

        m.push(fitSeriesId, decision.intervalFit);
        m.push(mttfSeriesId, std::min(decision.projectedMttfHours,
                                      mttfSeriesCapHours));
        m.push(targetSeriesId,
               static_cast<double>(
                   static_cast<int>(decision.target)));
        for (std::size_t s = 0; s < core::numStructures; ++s)
            m.push(coverageIds[s],
                   arbiter->coverageOf(
                       static_cast<core::Structure>(s)));
    } else {
        double predicted = predictor.predict();
        if (!engaged && predicted >= conf.engageThreshold)
            want = true;
        else if (engaged && predicted < conf.releaseThreshold)
            want = false;
    }

    // Actuate only on transitions: a steady decision must not hammer
    // the pipeline with redundant setDispatchThrottle() calls.
    if (want != engaged) {
        engaged = want;
        pipeline.setDispatchThrottle(engaged ? conf.throttledWidth
                                             : 0);
        m.inc(actuationsId);
        m.inc(engaged ? engagementsId : releasesId);
    }
    // One bool per control interval, not per cycle.
    // avflint: allow(hot-path-alloc)
    decisionLog.push_back(engaged);
    m.push(engagedSeriesId, engaged ? 1.0 : 0.0);
    if (engaged)
        m.inc(throttledId);
}

void
ThrottleController::onCycle(Cycle)
{
    // Consume EVERY row published since the last call. Several rows
    // can land in one cycle (reporting latency releasing a backlog,
    // or a consumer attached late) and each one is a decision point.
    while (seenRows < feed.rows())
        processRow(seenRows++);
}

std::uint64_t
ThrottleController::throttledIntervals() const
{
    return feed.shard().counterValue(throttledId);
}

std::uint64_t
ThrottleController::engagements() const
{
    return feed.shard().counterValue(engagementsId);
}

std::uint64_t
ThrottleController::actuations() const
{
    return feed.shard().counterValue(actuationsId);
}

std::uint64_t
ThrottleController::budgetExceededIntervals() const
{
    return arbiter ? feed.shard().counterValue(exceededId) : 0;
}

std::uint64_t
ThrottleController::protectActions() const
{
    return arbiter ? feed.shard().counterValue(protectId) : 0;
}

} // namespace avf::control
