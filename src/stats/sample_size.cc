#include "stats/sample_size.hh"

#include <cmath>

#include "util/logging.hh"

namespace avf::stats
{

double
bernoulliSigma(double avf)
{
    avf_assert(avf >= 0.0 && avf <= 1.0, "AVF must lie in [0,1]");
    return std::sqrt(avf * (1.0 - avf));
}

double
samplesNeeded(double avf, double sigma_xbar)
{
    avf_assert(sigma_xbar > 0.0, "target sigma must be positive");
    double sigma = bernoulliSigma(avf);
    return (sigma * sigma) / (sigma_xbar * sigma_xbar);
}

double
samplesNeededConservative(double sigma_xbar)
{
    return samplesNeeded(0.5, sigma_xbar);
}

double
predictedSigma(double avf, double n)
{
    avf_assert(n > 0.0, "sample count must be positive");
    return bernoulliSigma(avf) / std::sqrt(n);
}

} // namespace avf::stats
