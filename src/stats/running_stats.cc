#include "stats/running_stats.hh"

#include <cmath>

namespace avf::stats
{

void
RunningStats::add(double x)
{
    ++n;
    double delta = x - meanAcc;
    meanAcc += delta / static_cast<double>(n);
    m2 += delta * (x - meanAcc);
    if (x < minVal)
        minVal = x;
    if (x > maxVal)
        maxVal = x;
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::populationVariance() const
{
    if (n == 0)
        return 0.0;
    return m2 / static_cast<double>(n);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    double delta = other.meanAcc - meanAcc;
    std::uint64_t total = n + other.n;
    double nA = static_cast<double>(n);
    double nB = static_cast<double>(other.n);
    double nT = static_cast<double>(total);
    m2 += other.m2 + delta * delta * nA * nB / nT;
    meanAcc += delta * nB / nT;
    n = total;
    if (other.minVal < minVal)
        minVal = other.minVal;
    if (other.maxVal > maxVal)
        maxVal = other.maxVal;
}

void
RunningStats::clear()
{
    *this = RunningStats();
}

} // namespace avf::stats
