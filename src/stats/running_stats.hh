/**
 * @file
 * Streaming first/second-moment accumulation (Welford) plus min/max,
 * used for every error metric reported by the benches.
 */

#ifndef AVF_STATS_RUNNING_STATS_HH
#define AVF_STATS_RUNNING_STATS_HH

#include <cstdint>
#include <limits>

namespace avf::stats
{

/** Numerically stable streaming mean / variance / extrema. */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples added. */
    std::uint64_t count() const { return n; }

    /** Sample mean (0 when empty). */
    double mean() const { return n ? meanAcc : 0.0; }

    /** Unbiased sample variance (0 when fewer than two samples). */
    double variance() const;

    /** sqrt(variance()). */
    double stddev() const;

    /** Population variance (divides by n). */
    double populationVariance() const;

    /** Smallest sample seen (+inf when empty). */
    double min() const { return minVal; }

    /** Largest sample seen (-inf when empty). */
    double max() const { return maxVal; }

    /** Sum of all samples. */
    double sum() const { return meanAcc * static_cast<double>(n); }

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void clear();

  private:
    std::uint64_t n = 0;
    double meanAcc = 0.0;
    double m2 = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

} // namespace avf::stats

#endif // AVF_STATS_RUNNING_STATS_HH
