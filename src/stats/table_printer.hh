/**
 * @file
 * Plain-text table and series printers shared by all bench binaries so
 * that reproduced tables and figures have a uniform, diffable format.
 */

#ifndef AVF_STATS_TABLE_PRINTER_HH
#define AVF_STATS_TABLE_PRINTER_HH

#include <cstdio>
#include <string>
#include <vector>

namespace avf::stats
{

/**
 * Column-aligned ASCII table. Add a header, then rows of the same
 * width, then print. Cells are free-form strings; numeric helpers are
 * provided for the common fixed-precision cases.
 */
class TablePrinter
{
  public:
    /** @param title caption printed above the table. */
    explicit TablePrinter(std::string title);

    /** Set the column headers (defines table width). */
    void setHeader(std::vector<std::string> cols);

    /** Append a row; must match header width. */
    void addRow(std::vector<std::string> cells);

    /** Render to @p out (defaults to stdout). */
    void print(std::FILE *out = stdout) const;

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 3);

    /** Format a double as a percentage with @p digits decimals. */
    static std::string pct(double v, int digits = 1);

    /** Format an integer. */
    static std::string intNum(long long v);

  private:
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Print an (x, series...) block suitable for feeding to gnuplot, used
 * for the time-series figures (2 and 4).
 *
 * @param title caption.
 * @param xLabel label of the x column.
 * @param xs x values.
 * @param names per-series names (same count as @p series).
 * @param series each a vector the same length as @p xs.
 * @param out destination stream.
 */
void printSeries(const std::string &title, const std::string &xLabel,
                 const std::vector<double> &xs,
                 const std::vector<std::string> &names,
                 const std::vector<std::vector<double>> &series,
                 std::FILE *out = stdout);

} // namespace avf::stats

#endif // AVF_STATS_TABLE_PRINTER_HH
