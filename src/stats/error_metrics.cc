#include "stats/error_metrics.hh"

#include <algorithm>
#include <cmath>

#include "stats/running_stats.hh"
#include "util/logging.hh"

namespace avf::stats
{

ErrorSummary
summarizeErrors(const std::vector<double> &errors, std::size_t excludeTop)
{
    ErrorSummary out;
    out.count = errors.size();
    if (errors.empty())
        return out;

    RunningStats acc;
    for (double e : errors)
        acc.add(e);
    out.mean = acc.mean();
    out.stddev = acc.stddev();
    out.maxAll = acc.max();

    std::vector<double> sorted(errors);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() > excludeTop)
        out.maxExcl = sorted[sorted.size() - excludeTop - 1];
    else
        out.maxExcl = sorted.front();
    return out;
}

std::vector<double>
absoluteErrors(const std::vector<double> &estimate,
               const std::vector<double> &reference)
{
    avf_assert(estimate.size() == reference.size(),
               "series length mismatch: %zu vs %zu",
               estimate.size(), reference.size());
    std::vector<double> out;
    out.reserve(estimate.size());
    for (std::size_t i = 0; i < estimate.size(); ++i)
        out.push_back(std::fabs(estimate[i] - reference[i]));
    return out;
}

std::vector<double>
relativeErrors(const std::vector<double> &estimate,
               const std::vector<double> &reference, double floor)
{
    avf_assert(estimate.size() == reference.size(),
               "series length mismatch: %zu vs %zu",
               estimate.size(), reference.size());
    std::vector<double> out;
    out.reserve(estimate.size());
    for (std::size_t i = 0; i < estimate.size(); ++i) {
        if (reference[i] < floor)
            continue;
        out.push_back(std::fabs(estimate[i] - reference[i]) /
                      reference[i] * 100.0);
    }
    return out;
}

} // namespace avf::stats
