/**
 * @file
 * Fixed-bin histogram and empirical CDF support, used to reproduce the
 * error-propagation-time distributions of Figure 2.
 */

#ifndef AVF_STATS_HISTOGRAM_HH
#define AVF_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace avf::stats
{

/**
 * Plain-data copy of a Histogram's state: default-constructible and
 * trivially serializable, for embedding histogram results in result
 * structs (e.g. the lifecycle observability summaries) without
 * carrying the live accumulator around.
 */
struct HistogramSnapshot
{
    /** Lower edge of the first bin. */
    double lo = 0.0;
    /** Upper edge of the last bin (exclusive). */
    double hi = 0.0;
    /** Per-bin counts (empty when never snapshotted). */
    std::vector<std::uint64_t> bins;
    /** Samples below lo. */
    std::uint64_t underflow = 0;
    /** Samples at or above hi. */
    std::uint64_t overflow = 0;
    /** Total samples folded in. */
    std::uint64_t total = 0;

    /** Lower edge of bin @p idx. */
    double binLo(std::size_t idx) const;
    /** Upper edge of bin @p idx. */
    double binHi(std::size_t idx) const;
};

/**
 * Histogram over [lo, hi) with uniform bins; samples outside the range
 * land in saturating under/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin.
     * @param hi upper edge of the last bin (exclusive).
     * @param bins number of uniform bins (> 0).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Fold a sample in. */
    void add(double x);

    /** Total samples (including under/overflow). */
    std::uint64_t count() const { return total; }

    /** Samples below the range. */
    std::uint64_t underflow() const { return under; }

    /** Samples at or above the upper edge. */
    std::uint64_t overflow() const { return over; }

    /** Count in bin @p idx. */
    std::uint64_t binCount(std::size_t idx) const { return counts[idx]; }

    /** Number of bins. */
    std::size_t numBins() const { return counts.size(); }

    /** Lower edge of bin @p idx. */
    double binLo(std::size_t idx) const;

    /** Upper edge of bin @p idx. */
    double binHi(std::size_t idx) const;

    /**
     * Empirical CDF evaluated at the upper edge of bin @p idx:
     * fraction of samples <= binHi(idx) (underflow included, overflow
     * excluded from the numerator).
     */
    double cdfAt(std::size_t idx) const;

    /**
     * Smallest value v among bin upper edges with CDF(v) >= @p q; +inf
     * when the quantile lies in the overflow region. @p q in [0, 1].
     */
    double quantile(double q) const;

    /** Copy the current state into a plain-data snapshot. */
    HistogramSnapshot snapshot() const;

  private:
    double lo;
    double hi;
    double binWidth;
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t total = 0;
};

/**
 * Exact empirical CDF built from retained samples; appropriate for the
 * moderate sample counts of the propagation-time experiments.
 */
class EmpiricalCdf
{
  public:
    /** Add one sample (per closed probe window, not per cycle).
     *  avflint: allow(hot-path-alloc) */
    void add(double x) { samples.push_back(x); sorted = false; }

    /** Number of samples held. */
    std::size_t count() const { return samples.size(); }

    /** Fraction of samples <= @p x. */
    double at(double x);

    /** q-quantile (q in [0,1]); 0 when empty. */
    double quantile(double q);

  private:
    void ensureSorted();

    std::vector<double> samples;
    bool sorted = true;
};

} // namespace avf::stats

#endif // AVF_STATS_HISTOGRAM_HH
