#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace avf::stats
{

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), binWidth((hi_ - lo_) / static_cast<double>(bins)),
      counts(bins, 0)
{
    avf_assert(bins > 0, "histogram needs at least one bin");
    avf_assert(hi_ > lo_, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    ++total;
    if (x < lo) {
        ++under;
        return;
    }
    if (x >= hi) {
        ++over;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lo) / binWidth);
    if (idx >= counts.size())
        idx = counts.size() - 1; // guard against FP edge rounding
    ++counts[idx];
}

double
Histogram::binLo(std::size_t idx) const
{
    return lo + binWidth * static_cast<double>(idx);
}

double
Histogram::binHi(std::size_t idx) const
{
    return lo + binWidth * static_cast<double>(idx + 1);
}

double
Histogram::cdfAt(std::size_t idx) const
{
    avf_assert(idx < counts.size(), "cdfAt bin out of range");
    if (total == 0)
        return 0.0;
    std::uint64_t acc = under;
    for (std::size_t i = 0; i <= idx; ++i)
        acc += counts[i];
    return static_cast<double>(acc) / static_cast<double>(total);
}

double
Histogram::quantile(double q) const
{
    if (total == 0)
        return 0.0;
    auto target = static_cast<double>(total) * q;
    double acc = static_cast<double>(under);
    if (acc >= target)
        return lo;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        acc += static_cast<double>(counts[i]);
        if (acc >= target)
            return binHi(i);
    }
    return std::numeric_limits<double>::infinity();
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.lo = lo;
    snap.hi = hi;
    snap.bins = counts;
    snap.underflow = under;
    snap.overflow = over;
    snap.total = total;
    return snap;
}

double
HistogramSnapshot::binLo(std::size_t idx) const
{
    double width = bins.empty()
        ? 0.0 : (hi - lo) / static_cast<double>(bins.size());
    return lo + width * static_cast<double>(idx);
}

double
HistogramSnapshot::binHi(std::size_t idx) const
{
    double width = bins.empty()
        ? 0.0 : (hi - lo) / static_cast<double>(bins.size());
    return lo + width * static_cast<double>(idx + 1);
}

void
EmpiricalCdf::ensureSorted()
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
EmpiricalCdf::at(double x)
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    auto it = std::upper_bound(samples.begin(), samples.end(), x);
    return static_cast<double>(it - samples.begin()) /
           static_cast<double>(samples.size());
}

double
EmpiricalCdf::quantile(double q)
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    if (q <= 0.0)
        return samples.front();
    if (q >= 1.0)
        return samples.back();
    auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())) - 1.0);
    if (idx >= samples.size())
        idx = samples.size() - 1;
    return samples[idx];
}

} // namespace avf::stats
