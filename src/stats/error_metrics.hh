/**
 * @file
 * The exact error metrics the paper reports in Figure 3 and Figure 5:
 * per-(application, structure) absolute and relative error of an
 * estimator against the SoftArch reference, summarized as mean,
 * standard deviation, and maximum with the top four outliers excluded.
 */

#ifndef AVF_STATS_ERROR_METRICS_HH
#define AVF_STATS_ERROR_METRICS_HH

#include <cstddef>
#include <vector>

namespace avf::stats
{

/** Summary of one error series, matching the stacks in Figure 3. */
struct ErrorSummary
{
    /** Mean of the per-interval errors. */
    double mean = 0.0;
    /** Sample standard deviation of the per-interval errors. */
    double stddev = 0.0;
    /**
     * Maximum error with the top @c excluded samples dropped ("Max" in
     * the paper, which ignores the top four errors as unrepresentative
     * outliers).
     */
    double maxExcl = 0.0;
    /** True maximum (no exclusion), for reference. */
    double maxAll = 0.0;
    /** Number of samples summarized. */
    std::size_t count = 0;
};

/**
 * Summarize a series of error values.
 *
 * @param errors per-interval error values (absolute or relative).
 * @param excludeTop how many of the largest values to exclude from
 *        maxExcl (the paper uses 4).
 */
ErrorSummary summarizeErrors(const std::vector<double> &errors,
                             std::size_t excludeTop = 4);

/**
 * Per-interval absolute errors |estimate - reference|.
 * Both series must be the same length.
 */
std::vector<double> absoluteErrors(const std::vector<double> &estimate,
                                   const std::vector<double> &reference);

/**
 * Per-interval relative errors |estimate - reference| / reference * 100
 * (in percent, matching the paper's definition). Intervals where the
 * reference AVF is below @p floor are skipped to avoid division blowup
 * (the paper notes tiny AVFs inflate relative error).
 */
std::vector<double> relativeErrors(const std::vector<double> &estimate,
                                   const std::vector<double> &reference,
                                   double floor = 1e-6);

} // namespace avf::stats

#endif // AVF_STATS_ERROR_METRICS_HH
