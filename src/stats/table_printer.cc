#include "stats/table_printer.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace avf::stats
{

TablePrinter::TablePrinter(std::string title_) : title(std::move(title_))
{}

void
TablePrinter::setHeader(std::vector<std::string> cols)
{
    header = std::move(cols);
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    avf_assert(cells.size() == header.size(),
               "row width %zu != header width %zu",
               cells.size(), header.size());
    rows.push_back(std::move(cells));
}

void
TablePrinter::print(std::FILE *out) const
{
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::fprintf(out, "\n== %s ==\n", title.c_str());
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]),
                         cells[c].c_str(),
                         c + 1 == cells.size() ? "" : "  ");
        std::fprintf(out, "\n");
    };
    print_row(header);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    for (std::size_t i = 0; i + 2 < total; ++i)
        std::fputc('-', out);
    std::fputc('\n', out);
    for (const auto &row : rows)
        print_row(row);
}

std::string
TablePrinter::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
TablePrinter::pct(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v);
    return buf;
}

std::string
TablePrinter::intNum(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

void
printSeries(const std::string &title, const std::string &xLabel,
            const std::vector<double> &xs,
            const std::vector<std::string> &names,
            const std::vector<std::vector<double>> &series, std::FILE *out)
{
    avf_assert(names.size() == series.size(),
               "series/name count mismatch");
    for (const auto &s : series)
        avf_assert(s.size() == xs.size(), "series length mismatch");

    std::fprintf(out, "\n== %s ==\n# %s", title.c_str(), xLabel.c_str());
    for (const auto &name : names)
        std::fprintf(out, "\t%s", name.c_str());
    std::fprintf(out, "\n");
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::fprintf(out, "%g", xs[i]);
        for (const auto &s : series)
            std::fprintf(out, "\t%.4f", s[i]);
        std::fprintf(out, "\n");
    }
}

} // namespace avf::stats
