/**
 * @file
 * The analytic sample-size model of Section 3.3: the online estimator
 * draws N Bernoulli(AVF) samples; its standard error is
 * sigma_X / sqrt(N) with sigma_X = sqrt(AVF * (1 - AVF)), so
 *
 *     N = AVF * (1 - AVF) / sigma_Xbar^2,
 *
 * with the conservative bound N = 0.25 / sigma_Xbar^2 at AVF = 0.5.
 * These functions generate Figure 1 and the 2500 / 625 sample numbers
 * quoted in the text.
 */

#ifndef AVF_STATS_SAMPLE_SIZE_HH
#define AVF_STATS_SAMPLE_SIZE_HH

namespace avf::stats
{

/** Standard deviation of a single Bernoulli(avf) injection outcome. */
double bernoulliSigma(double avf);

/**
 * Samples needed so the estimator's standard deviation is at most
 * @p sigma_xbar when the true AVF is @p avf (Equation 1).
 */
double samplesNeeded(double avf, double sigma_xbar);

/**
 * Conservative (workload-independent) sample count for a target
 * estimator standard deviation: assumes the worst case AVF = 0.5.
 */
double samplesNeededConservative(double sigma_xbar);

/**
 * Predicted estimator standard deviation for @p n samples at a given
 * true @p avf (the inverse relation, used by the N-sweep ablation).
 */
double predictedSigma(double avf, double n);

} // namespace avf::stats

#endif // AVF_STATS_SAMPLE_SIZE_HH
