#!/usr/bin/env bash
# Run clang-tidy (config in .clang-tidy) over the src/ and tools/
# trees using the compilation database CMake exports. avflint carries
# the domain checks; clang-tidy adds generic bugprone/performance
# hygiene on top. No-ops with a clear message when clang-tidy is not
# installed, so CI and dev machines without LLVM stay green.
#
#   scripts/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
shift $(( $# > 0 ? 1 : 0 )) || true

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy.sh: clang-tidy not found; skipping" \
         "(avflint still enforces the domain checks — this wrapper" \
         "only adds generic hygiene)"
    exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
    echo "run_clang_tidy.sh: $BUILD/compile_commands.json missing;" \
         "configure first: cmake -B $BUILD -S ." >&2
    exit 1
fi

# Lint our own sources only — never the GTest/benchmark headers the
# compile commands drag in (HeaderFilterRegex in .clang-tidy).
mapfile -t sources < <(find src tools -name '*.cc' | sort)
echo "run_clang_tidy.sh: linting ${#sources[@]} files against" \
     ".clang-tidy ($(clang-tidy --version | head -1))"
clang-tidy -p "$BUILD" --quiet "$@" "${sources[@]}"
