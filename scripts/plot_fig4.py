#!/usr/bin/env python3
"""Plot Figure 4-style AVF traces from bench/fig4_traces output.

Usage:
    build/bench/fig4_traces > fig4.txt
    scripts/plot_fig4.py fig4.txt [outdir]

Parses the `== Figure 4: <struct> AVF for <app> ==` series blocks and
writes one gnuplot-ready .dat file per block plus a plot.gp script.
Runs gnuplot automatically when it is installed; otherwise the data
and script are left for manual use.
"""

import os
import re
import shutil
import subprocess
import sys


def parse_blocks(path):
    """Yield (title, header_names, rows) per series block."""
    blocks = []
    title, names, rows = None, None, []
    with open(path) as handle:
        for line in handle:
            line = line.rstrip("\n")
            match = re.match(r"^== (.*) ==$", line)
            if match:
                if title and rows:
                    blocks.append((title, names, rows))
                title, names, rows = match.group(1), None, []
            elif line.startswith("#") and title:
                names = line.lstrip("# ").split("\t")
            elif title and line and line[0].isdigit():
                rows.append(line.split("\t"))
    if title and rows:
        blocks.append((title, names, rows))
    return blocks


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    src = sys.argv[1]
    outdir = sys.argv[2] if len(sys.argv) > 2 else "fig4_plots"
    os.makedirs(outdir, exist_ok=True)

    blocks = parse_blocks(src)
    if not blocks:
        sys.exit(f"no series blocks found in {src}")

    script_lines = [
        "set terminal pngcairo size 900,500",
        "set xlabel 'estimation interval (1M cycles)'",
        "set ylabel 'AVF'",
        "set yrange [0:0.6]",
        "set key top right",
    ]
    for title, names, rows in blocks:
        slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
        dat = os.path.join(outdir, f"{slug}.dat")
        with open(dat, "w") as handle:
            handle.write("# " + "\t".join(names) + "\n")
            for row in rows:
                handle.write("\t".join(row) + "\n")
        script_lines.append(f"set output '{outdir}/{slug}.png'")
        script_lines.append(f"set title '{title}'")
        plots = []
        for col, name in enumerate(names[1:], start=2):
            label = name.replace("_", " ")
            plots.append(f"'{dat}' using 1:{col} with lines "
                         f"title '{label}'")
        script_lines.append("plot " + ", \\\n     ".join(plots))

    script = os.path.join(outdir, "plot.gp")
    with open(script, "w") as handle:
        handle.write("\n".join(script_lines) + "\n")
    print(f"wrote {len(blocks)} data files and {script}")

    if shutil.which("gnuplot"):
        subprocess.run(["gnuplot", script], check=True)
        print(f"rendered PNGs in {outdir}/")
    else:
        print("gnuplot not found; run it manually on the script")


if __name__ == "__main__":
    main()
