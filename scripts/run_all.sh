#!/usr/bin/env bash
# Reproduce everything: build, test, and regenerate every table and
# figure of the paper plus the ablations and extensions.
#
#   scripts/run_all.sh [results-dir]
#
# Environment:
#   AVF_FAST=1        shrink everything to a smoke run (~2 min)
#   AVF_INTERVALS=N   intervals per app for fig3/fig4/fig5
set -euo pipefail

cd "$(dirname "$0")/.."
RESULTS="${1:-results}"
mkdir -p "$RESULTS"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for bench in build/bench/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    name="$(basename "$bench")"
    echo "=== $name ==="
    "$bench" | tee "$RESULTS/$name.txt"
done

echo "All outputs in $RESULTS/"
