#!/bin/sh
# CI gate, POSIX sh (runs identically under dash, bash, and busybox
# sh — GitHub's `sh` is dash, so no bashisms and no pipefail; stages
# avoid pipes so every nonzero exit propagates through `set -e`).
#
#   scripts/ci.sh [--stage <name>] [build-dir]
#
# Stages (default: all):
#   tier1        configure + build + full test suite
#   lint         avflint unit tests + repo scan vs the baseline
#                ratchet (ctest -L lint)
#   tidy         clang-tidy over src/ and tools/ (skips when absent)
#   ubsan        engine tests under -DAVF_SANITIZE=undefined
#   tsan         engine + obs tests under -DAVF_SANITIZE=thread (the
#                thread pool and the metrics collect/merge path)
#   bench-smoke  avf_micro --smoke in a Release build; writes
#                BENCH_micro.json next to the build dir, plus a
#                metrics-enabled fig3_accuracy smoke run that emits
#                and sanity-parses ci_METRICS.json / ci_TRACE.json,
#                a closed-loop scenario_budget_storm run whose
#                decision trail `avf-report budget` renders back,
#                and a scenario_root_cause run whose ci_ROOTCAUSE.json
#                every `avf-report root-cause` grouping renders back
#   serve-smoke  the kill-and-resume gate: start avf-serve, submit a
#                campaign over the socket, kill -9 the daemon
#                mid-campaign, restart with --resume, and diff the
#                final JSONL feed byte-for-byte against an
#                uninterrupted batch run — at 1 AND 4 worker
#                processes
#   lanes-equiv  lane-vs-serial equivalence suite (ctest -L lanes)
#                under the default lane count and AVF_LANES=1
#   all          tier1 + lint + tidy + ubsan + tsan (bench-smoke and
#                serve-smoke are opt-in: each has its own CI job)
#
# The avflint_repo test fails on any finding that is neither fixed,
# suppressed inline with a justification, nor already recorded in
# tools/avflint/baseline.txt — so new debt cannot land, and the
# baseline can only shrink.
set -eu

usage() {
    echo "usage: scripts/ci.sh [--stage tier1|lint|tidy|ubsan|tsan|bench-smoke|serve-smoke|lanes-equiv|all] [build-dir]"
}

STAGE=all
BUILD=build
while [ $# -gt 0 ]; do
    case "$1" in
      --stage)
        if [ $# -lt 2 ]; then
            echo "ci.sh: --stage needs an argument" >&2
            usage >&2
            exit 2
        fi
        STAGE=$2
        shift 2
        ;;
      --stage=*)
        STAGE=${1#--stage=}
        shift
        ;;
      -h|--help)
        usage
        exit 0
        ;;
      -*)
        echo "ci.sh: unknown option '$1'" >&2
        usage >&2
        exit 2
        ;;
      *)
        BUILD=$1
        shift
        ;;
    esac
done

cd "$(dirname "$0")/.."

# ccache when available: repeated CI configures of the same tree
# become near-free. Harmless (empty) otherwise.
LAUNCHER=
if command -v ccache >/dev/null 2>&1; then
    LAUNCHER=-DCMAKE_CXX_COMPILER_LAUNCHER=ccache
fi

configure_and_build() {
    # $1 = build dir, rest = extra cmake args. $LAUNCHER is expanded
    # unquoted on purpose: it is one word or nothing.
    dir=$1
    shift
    cmake -B "$dir" -S . $LAUNCHER "$@"
    cmake --build "$dir" -j
}

run_tier1() {
    echo "=== tier1: configure + build + full test suite ==="
    configure_and_build "$BUILD"
    ctest --test-dir "$BUILD" --output-on-failure -j
}

run_lint() {
    echo "=== lint: avflint (unit tests + repo scan vs baseline) ==="
    configure_and_build "$BUILD"
    # The repo scan runs twice: once as JSON for the CI annotations
    # and artifact, once human-readable via the avflint_repo ctest
    # gate below. The JSON pass goes first and tolerates findings
    # (exit 1) so the report file exists even on a red run — the
    # workflow uploads it with `if: always()`; any other exit is a
    # crash and fails right here.
    rc=0
    "$BUILD/tools/avflint/avflint" --root . \
        --baseline tools/avflint/baseline.txt --format=json \
        src tools bench tests > "$BUILD/LINT.json" || rc=$?
    if [ "$rc" -gt 1 ]; then
        echo "ci.sh: avflint --format=json failed (rc=$rc)" >&2
        exit "$rc"
    fi
    # Strict read side: rejects malformed JSON (exit 2) and gates on
    # the report's ok flag (exit 3 on fresh findings or stale
    # baseline entries), so the emitter cannot drift from the parser.
    "$BUILD/tools/avf-report/avf-report" lint "$BUILD/LINT.json"
    # Unit fixtures + the human-readable repo gate.
    ctest --test-dir "$BUILD" -L lint --output-on-failure
}

run_tidy() {
    echo "=== tidy: clang-tidy (skips when absent) ==="
    if [ ! -f "$BUILD/compile_commands.json" ]; then
        configure_and_build "$BUILD"
    fi
    scripts/run_clang_tidy.sh "$BUILD"
}

run_ubsan() {
    echo "=== ubsan: engine tests under -DAVF_SANITIZE=undefined ==="
    cmake -B "$BUILD-ubsan" -S . $LAUNCHER -DAVF_SANITIZE=undefined
    cmake --build "$BUILD-ubsan" -j --target avf_engine_tests
    ctest --test-dir "$BUILD-ubsan" -L engine --output-on-failure
}

run_tsan() {
    echo "=== tsan: engine + obs tests under -DAVF_SANITIZE=thread ==="
    cmake -B "$BUILD-tsan" -S . $LAUNCHER -DAVF_SANITIZE=thread
    cmake --build "$BUILD-tsan" -j \
        --target avf_engine_tests avf_metrics_tests
    ctest --test-dir "$BUILD-tsan" -L 'engine|obs' --output-on-failure
}

run_bench_smoke() {
    echo "=== bench-smoke: avf_micro --smoke (Release) ==="
    configure_and_build "$BUILD-bench" -DCMAKE_BUILD_TYPE=Release
    # Two passes over the same binary: serial injection (lanes=1,
    # the legacy baseline) and the full 64-lane plane, so the
    # engine_campaign_* speedup is visible by diffing the two
    # BENCH_micro.json variants side by side.
    AVF_LANES=1 "$BUILD-bench/bench/micro/avf_micro" --smoke \
        --out "$BUILD-bench/BENCH_micro_lanes1.json"
    AVF_LANES=64 "$BUILD-bench/bench/micro/avf_micro" --smoke \
        --out "$BUILD-bench/BENCH_micro.json"
    echo "=== bench-smoke: metrics-enabled fig3_accuracy run ==="
    AVF_FAST=1 AVF_METRICS="$BUILD-bench/ci" \
        "$BUILD-bench/bench/fig3_accuracy" > /dev/null
    # The exports must at minimum be valid JSON carrying the schema
    # tag; avf-report round-trips the metrics side properly.
    "$BUILD-bench/tools/avf-report/avf-report" summary \
        "$BUILD-bench/ci_METRICS.json" > /dev/null
    "$BUILD-bench/tools/avf-report/avf-report" phases \
        "$BUILD-bench/ci_TRACE.json" --top 3 > /dev/null
    echo "bench-smoke: ci_METRICS.json + ci_TRACE.json round-trip ok"
    echo "=== bench-smoke: control-loop scenario (budget storm) ==="
    # One closed-loop scenario run with the decision trail exported;
    # `avf-report budget` must be able to render it.
    AVF_FAST=1 AVF_METRICS="$BUILD-bench/ci_control" \
        "$BUILD-bench/bench/scenario_budget_storm" > /dev/null
    "$BUILD-bench/tools/avf-report/avf-report" budget \
        "$BUILD-bench/ci_control_METRICS.json" --task controlled \
        > /dev/null
    echo "bench-smoke: control-loop decision trail round-trip ok"
    echo "=== bench-smoke: root-cause attribution scenario ==="
    # The hot-loop scenario exports ci_ROOTCAUSE.json; every
    # `avf-report root-cause` grouping must render it back.
    AVF_FAST=1 AVF_METRICS="$BUILD-bench/ci" \
        "$BUILD-bench/bench/scenario_root_cause" > /dev/null
    "$BUILD-bench/tools/avf-report/avf-report" root-cause \
        "$BUILD-bench/ci_ROOTCAUSE.json" --top 5 > /dev/null
    for BY in structure opcode phase; do
        "$BUILD-bench/tools/avf-report/avf-report" root-cause \
            "$BUILD-bench/ci_ROOTCAUSE.json" --by "$BY" > /dev/null
    done
    "$BUILD-bench/tools/avf-report/avf-report" root-cause \
        "$BUILD-bench/ci_ROOTCAUSE.json" --json > /dev/null
    echo "bench-smoke: ci_ROOTCAUSE.json round-trip ok"
}

# Poll a status round-trip until the daemon in $1 answers (up to
# 60 s — a --resume restart finishes its campaigns before listening).
wait_for_daemon() {
    i=0
    while ! "$SERVE" status --dir "$1" > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 600 ]; then
            echo "ci.sh: daemon in $1 never answered" >&2
            exit 1
        fi
        sleep 0.1
    done
}

run_serve_smoke() {
    echo "=== serve-smoke: kill -9 + --resume vs uninterrupted batch ==="
    configure_and_build "$BUILD-serve" -DCMAKE_BUILD_TYPE=Release
    SERVE="$BUILD-serve/tools/avf-serve/avf-serve"
    REPORT="$BUILD-serve/tools/avf-report/avf-report"
    # The same campaign everywhere; m*n is sized so the 6 slices take
    # a few seconds — long enough that the SIGKILL below reliably
    # lands mid-campaign, short enough for a CI smoke stage.
    # --root-cause rides along so the byte-compares below also cover
    # the attribution rollup (feed row + checkpoint) across procs
    # and kill -9 + --resume.
    CAMPAIGN="--name smoke --benchmark bzip2 --intervals 12
              --slice-intervals 2 --m 20000 --n 400 --seed-salt 3
              --root-cause"
    for PROCS in 1 4; do
        echo "--- serve-smoke: $PROCS worker process(es) ---"
        STATE="$BUILD-serve/serve-state-$PROCS"
        REFDIR="$BUILD-serve/serve-ref-$PROCS"
        rm -rf "$STATE" "$REFDIR"
        mkdir -p "$STATE" "$REFDIR"
        # Uninterrupted reference run, no daemon involved.
        # $CAMPAIGN is expanded unquoted on purpose: it is a flag list.
        "$SERVE" batch --dir "$REFDIR" --procs "$PROCS" $CAMPAIGN
        # Daemon: submit over the socket, wait until at least one
        # slice is durable, then SIGKILL it mid-campaign.
        "$SERVE" serve --dir "$STATE" --procs "$PROCS" &
        DPID=$!
        wait_for_daemon "$STATE"
        "$SERVE" submit --dir "$STATE" $CAMPAIGN
        i=0
        while [ "$i" -lt 300 ]; do
            if grep -q '"slices_done":[1-9]' \
                "$STATE/smoke.ckpt.json" 2>/dev/null; then
                break
            fi
            i=$((i + 1)); sleep 0.1
        done
        kill -9 "$DPID" 2>/dev/null || true
        wait "$DPID" 2>/dev/null || true
        echo "serve-smoke: daemon killed; state at the kill instant:"
        "$REPORT" serve-status "$STATE"
        # Restart with --resume: the daemon finishes the campaign
        # before listening, so a status round-trip succeeding means
        # the resume is done. Drop the stale socket file first so
        # clients cannot connect to the corpse's address.
        rm -f "$STATE/serve.sock"
        "$SERVE" serve --dir "$STATE" --procs "$PROCS" --resume &
        DPID=$!
        wait_for_daemon "$STATE"
        "$SERVE" status --dir "$STATE"
        "$SERVE" shutdown --dir "$STATE"
        wait "$DPID"
        # The resumed feed must be byte-identical to the
        # uninterrupted reference, and still well-formed to the
        # reader.
        cmp "$STATE/smoke.feed.jsonl" "$REFDIR/smoke.feed.jsonl"
        "$REPORT" tail "$STATE/smoke.feed.jsonl" > /dev/null
        echo "serve-smoke: $PROCS-proc resumed feed byte-identical"
    done
    # Cross-shard identity: the 1- and 4-process reference runs must
    # agree byte-for-byte too.
    cmp "$BUILD-serve/serve-ref-1/smoke.feed.jsonl" \
        "$BUILD-serve/serve-ref-4/smoke.feed.jsonl"
    echo "serve-smoke: feeds byte-identical across shard counts"
}

run_lanes_equiv() {
    echo "=== lanes-equiv: lane-vs-serial equivalence suite ==="
    configure_and_build "$BUILD"
    # Once under the default lane plane, once forced serial: the
    # equivalence tests compare lane results against the serial
    # baseline internally, and the env knob must not perturb either.
    ctest --test-dir "$BUILD" -L lanes --output-on-failure
    AVF_LANES=1 ctest --test-dir "$BUILD" -L lanes --output-on-failure
}

case "$STAGE" in
  all)
    run_tier1
    run_lint
    run_tidy
    run_ubsan
    run_tsan
    ;;
  tier1|tier-1)
    run_tier1
    ;;
  lint)
    run_lint
    ;;
  tidy|clang-tidy)
    run_tidy
    ;;
  ubsan)
    run_ubsan
    ;;
  tsan)
    run_tsan
    ;;
  bench-smoke|bench)
    run_bench_smoke
    ;;
  serve-smoke|serve)
    run_serve_smoke
    ;;
  lanes-equiv|lanes)
    run_lanes_equiv
    ;;
  *)
    echo "ci.sh: unknown stage '$STAGE'" >&2
    usage >&2
    exit 2
    ;;
esac

echo "ci.sh: stage '$STAGE' green"
