#!/usr/bin/env bash
# CI gate: tier-1 build + full test suite, the lint gate (avflint
# repo scan against the committed baseline ratchet + avflint unit
# tests + clang-tidy when available), and an UndefinedBehaviorSanitizer
# smoke build of the engine tests.
#
#   scripts/ci.sh [build-dir]
#
# The avflint_repo test fails on any finding that is neither fixed,
# suppressed inline with a justification, nor already recorded in
# tools/avflint/baseline.txt — so new debt cannot land, and the
# baseline can only shrink.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "=== tier-1: configure + build + full test suite ==="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j

echo "=== lint gate: avflint (unit tests + repo scan vs baseline) ==="
ctest --test-dir "$BUILD" -L lint --output-on-failure

echo "=== lint gate: clang-tidy (skips when absent) ==="
scripts/run_clang_tidy.sh "$BUILD"

echo "=== UBSan smoke: engine tests under -DAVF_SANITIZE=undefined ==="
cmake -B "$BUILD-ubsan" -S . -DAVF_SANITIZE=undefined
cmake --build "$BUILD-ubsan" -j --target avf_engine_tests
ctest --test-dir "$BUILD-ubsan" -L engine --output-on-failure

echo "ci.sh: all gates green"
