#!/bin/sh
# CI gate, POSIX sh (runs identically under dash, bash, and busybox
# sh — GitHub's `sh` is dash, so no bashisms and no pipefail; stages
# avoid pipes so every nonzero exit propagates through `set -e`).
#
#   scripts/ci.sh [--stage <name>] [build-dir]
#
# Stages (default: all):
#   tier1        configure + build + full test suite
#   lint         avflint unit tests + repo scan vs the baseline
#                ratchet (ctest -L lint)
#   tidy         clang-tidy over src/ and tools/ (skips when absent)
#   ubsan        engine tests under -DAVF_SANITIZE=undefined
#   tsan         engine + obs tests under -DAVF_SANITIZE=thread (the
#                thread pool and the metrics collect/merge path)
#   bench-smoke  avf_micro --smoke in a Release build; writes
#                BENCH_micro.json next to the build dir, plus a
#                metrics-enabled fig3_accuracy smoke run that emits
#                and sanity-parses ci_METRICS.json / ci_TRACE.json,
#                and a closed-loop scenario_budget_storm run whose
#                decision trail `avf-report budget` renders back
#   all          tier1 + lint + tidy + ubsan + tsan (bench-smoke is
#                opt-in: its numbers are machine-dependent, so it has
#                its own CI job that never gates on them)
#
# The avflint_repo test fails on any finding that is neither fixed,
# suppressed inline with a justification, nor already recorded in
# tools/avflint/baseline.txt — so new debt cannot land, and the
# baseline can only shrink.
set -eu

usage() {
    echo "usage: scripts/ci.sh [--stage tier1|lint|tidy|ubsan|tsan|bench-smoke|all] [build-dir]"
}

STAGE=all
BUILD=build
while [ $# -gt 0 ]; do
    case "$1" in
      --stage)
        if [ $# -lt 2 ]; then
            echo "ci.sh: --stage needs an argument" >&2
            usage >&2
            exit 2
        fi
        STAGE=$2
        shift 2
        ;;
      --stage=*)
        STAGE=${1#--stage=}
        shift
        ;;
      -h|--help)
        usage
        exit 0
        ;;
      -*)
        echo "ci.sh: unknown option '$1'" >&2
        usage >&2
        exit 2
        ;;
      *)
        BUILD=$1
        shift
        ;;
    esac
done

cd "$(dirname "$0")/.."

# ccache when available: repeated CI configures of the same tree
# become near-free. Harmless (empty) otherwise.
LAUNCHER=
if command -v ccache >/dev/null 2>&1; then
    LAUNCHER=-DCMAKE_CXX_COMPILER_LAUNCHER=ccache
fi

configure_and_build() {
    # $1 = build dir, rest = extra cmake args. $LAUNCHER is expanded
    # unquoted on purpose: it is one word or nothing.
    dir=$1
    shift
    cmake -B "$dir" -S . $LAUNCHER "$@"
    cmake --build "$dir" -j
}

run_tier1() {
    echo "=== tier1: configure + build + full test suite ==="
    configure_and_build "$BUILD"
    ctest --test-dir "$BUILD" --output-on-failure -j
}

run_lint() {
    echo "=== lint: avflint (unit tests + repo scan vs baseline) ==="
    configure_and_build "$BUILD"
    # The repo scan runs twice: once as JSON for the CI annotations
    # and artifact, once human-readable via the avflint_repo ctest
    # gate below. The JSON pass goes first and tolerates findings
    # (exit 1) so the report file exists even on a red run — the
    # workflow uploads it with `if: always()`; any other exit is a
    # crash and fails right here.
    rc=0
    "$BUILD/tools/avflint/avflint" --root . \
        --baseline tools/avflint/baseline.txt --format=json \
        src tools bench tests > "$BUILD/LINT.json" || rc=$?
    if [ "$rc" -gt 1 ]; then
        echo "ci.sh: avflint --format=json failed (rc=$rc)" >&2
        exit "$rc"
    fi
    # Strict read side: rejects malformed JSON (exit 2) and gates on
    # the report's ok flag (exit 3 on fresh findings or stale
    # baseline entries), so the emitter cannot drift from the parser.
    "$BUILD/tools/avf-report/avf-report" lint "$BUILD/LINT.json"
    # Unit fixtures + the human-readable repo gate.
    ctest --test-dir "$BUILD" -L lint --output-on-failure
}

run_tidy() {
    echo "=== tidy: clang-tidy (skips when absent) ==="
    if [ ! -f "$BUILD/compile_commands.json" ]; then
        configure_and_build "$BUILD"
    fi
    scripts/run_clang_tidy.sh "$BUILD"
}

run_ubsan() {
    echo "=== ubsan: engine tests under -DAVF_SANITIZE=undefined ==="
    cmake -B "$BUILD-ubsan" -S . $LAUNCHER -DAVF_SANITIZE=undefined
    cmake --build "$BUILD-ubsan" -j --target avf_engine_tests
    ctest --test-dir "$BUILD-ubsan" -L engine --output-on-failure
}

run_tsan() {
    echo "=== tsan: engine + obs tests under -DAVF_SANITIZE=thread ==="
    cmake -B "$BUILD-tsan" -S . $LAUNCHER -DAVF_SANITIZE=thread
    cmake --build "$BUILD-tsan" -j \
        --target avf_engine_tests avf_metrics_tests
    ctest --test-dir "$BUILD-tsan" -L 'engine|obs' --output-on-failure
}

run_bench_smoke() {
    echo "=== bench-smoke: avf_micro --smoke (Release) ==="
    configure_and_build "$BUILD-bench" -DCMAKE_BUILD_TYPE=Release
    # Two passes over the same binary: serial injection (lanes=1,
    # the legacy baseline) and the full 64-lane plane, so the
    # engine_campaign_* speedup is visible by diffing the two
    # BENCH_micro.json variants side by side.
    AVF_LANES=1 "$BUILD-bench/bench/micro/avf_micro" --smoke \
        --out "$BUILD-bench/BENCH_micro_lanes1.json"
    AVF_LANES=64 "$BUILD-bench/bench/micro/avf_micro" --smoke \
        --out "$BUILD-bench/BENCH_micro.json"
    echo "=== bench-smoke: metrics-enabled fig3_accuracy run ==="
    AVF_FAST=1 AVF_METRICS="$BUILD-bench/ci" \
        "$BUILD-bench/bench/fig3_accuracy" > /dev/null
    # The exports must at minimum be valid JSON carrying the schema
    # tag; avf-report round-trips the metrics side properly.
    "$BUILD-bench/tools/avf-report/avf-report" summary \
        "$BUILD-bench/ci_METRICS.json" > /dev/null
    "$BUILD-bench/tools/avf-report/avf-report" phases \
        "$BUILD-bench/ci_TRACE.json" --top 3 > /dev/null
    echo "bench-smoke: ci_METRICS.json + ci_TRACE.json round-trip ok"
    echo "=== bench-smoke: control-loop scenario (budget storm) ==="
    # One closed-loop scenario run with the decision trail exported;
    # `avf-report budget` must be able to render it.
    AVF_FAST=1 AVF_METRICS="$BUILD-bench/ci_control" \
        "$BUILD-bench/bench/scenario_budget_storm" > /dev/null
    "$BUILD-bench/tools/avf-report/avf-report" budget \
        "$BUILD-bench/ci_control_METRICS.json" --task controlled \
        > /dev/null
    echo "bench-smoke: control-loop decision trail round-trip ok"
}

case "$STAGE" in
  all)
    run_tier1
    run_lint
    run_tidy
    run_ubsan
    run_tsan
    ;;
  tier1|tier-1)
    run_tier1
    ;;
  lint)
    run_lint
    ;;
  tidy|clang-tidy)
    run_tidy
    ;;
  ubsan)
    run_ubsan
    ;;
  tsan)
    run_tsan
    ;;
  bench-smoke|bench)
    run_bench_smoke
    ;;
  *)
    echo "ci.sh: unknown stage '$STAGE'" >&2
    usage >&2
    exit 2
    ;;
esac

echo "ci.sh: stage '$STAGE' green"
