/**
 * @file
 * avflint CLI: lint the repository's sources against the domain
 * checks in checks.cc, using the two-pass engine (pass 1: lex +
 * parse every file and build the cross-file RepoIndex; pass 2: run
 * the registry with that context).
 *
 *   avflint [--root DIR] [--baseline FILE] [--update-baseline]
 *           [--format=text|json] [--list-checks] [--quiet] <path>...
 *
 * Exit status: 0 when every finding is suppressed or baselined and
 * no baseline entry is stale, 1 when new findings exist OR the
 * baseline has stale entries (the ratchet turns both ways — debt
 * that is paid off must leave the ledger), 2 on usage errors.
 * `--update-baseline` rewrites the ledger from the current findings;
 * `--format=json` emits the machine-readable report (schema
 * "avflint-v1", see report.hh) on stdout for CI.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "avflint/checks.hh"
#include "avflint/lexer.hh"
#include "avflint/report.hh"

namespace
{

using avf::lint::Baseline;
using avf::lint::Finding;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--baseline FILE] [--update-baseline]\n"
        "          [--format=text|json] [--list-checks] [--quiet]\n"
        "          <path>...\n"
        "Paths are files or directories, relative to --root (default:\n"
        "current directory).\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string baselinePath;
    std::string format = "text";
    bool updateBaseline = false;
    bool quiet = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--update-baseline") {
            updateBaseline = true;
        } else if (arg.compare(0, 9, "--format=") == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "json") {
                std::fprintf(stderr,
                             "%s: unknown format '%s' (text|json)\n",
                             argv[0], format.c_str());
                return 2;
            }
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list-checks") {
            for (const auto &check : avf::lint::checkRegistry())
                std::printf(
                    "%-26s %-5s %s\n",
                    std::string(check.id).c_str(),
                    std::string(
                        avf::lint::severityName(check.severity))
                        .c_str(),
                    std::string(check.description).c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(std::move(arg));
        }
    }
    if (paths.empty())
        return usage(argv[0]);
    for (const std::string &p : paths) {
        std::error_code ec;
        if (!std::filesystem::exists(std::filesystem::path(root) / p,
                                     ec)) {
            std::fprintf(stderr, "%s: no such path under --root: %s\n",
                         argv[0], p.c_str());
            return 2;
        }
    }

    Baseline baseline;
    if (!baselinePath.empty() && !updateBaseline)
        baseline = Baseline::fromFile(baselinePath);

    const bool json = format == "json";

    // Pass 1: lex + parse everything. Wall time is recorded only
    // for the report's perf fields, never results.
    avf::lint::Linter linter;
    const auto passStart = std::chrono::steady_clock::now(); // avflint: allow(determinism)
    std::vector<std::string> files =
        avf::lint::collectFiles(root, paths);
    for (const std::string &rel : files) {
        std::ifstream in(std::filesystem::path(root) / rel,
                         std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "avflint: cannot read %s\n",
                         rel.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        linter.addFile(avf::lint::lex(rel, text.str()));
    }
    const auto passEnd = std::chrono::steady_clock::now(); // avflint: allow(determinism)

    // Pass 2: run the registry with cross-file context.
    avf::lint::Report report;
    report.root = root;
    report.filesScanned = files.size();
    report.lexParseMicros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            passEnd - passStart)
            .count();
    report.findings = linter.run();
    report.checkMicros = linter.checkMicros();

    std::vector<Finding> fresh;
    std::size_t baselined = 0;
    report.baselined.reserve(report.findings.size());
    for (const Finding &f : report.findings) {
        const bool absorbed = baseline.matches(f);
        report.baselined.push_back(absorbed);
        if (absorbed) {
            ++baselined;
            if (!quiet && !json)
                std::printf("%s (baselined)\n", f.format().c_str());
        } else {
            fresh.push_back(f);
        }
    }
    report.staleBaseline = baseline.unmatched();

    if (!json)
        for (const Finding &f : fresh)
            std::printf("%s\n", f.format().c_str());

    for (const std::string &stale : report.staleBaseline)
        std::fprintf(stderr,
                     "avflint: stale baseline entry (fixed? remove "
                     "it, or run --update-baseline): %s\n",
                     stale.c_str());

    if (updateBaseline) {
        if (baselinePath.empty()) {
            std::fprintf(stderr,
                         "avflint: --update-baseline needs "
                         "--baseline FILE\n");
            return 2;
        }
        std::ofstream outFile(baselinePath, std::ios::trunc);
        outFile << "# avflint baseline — committed debt ledger.\n"
                   "# One `file: [check-id] message` key per line; "
                   "regenerate with\n"
                   "#   avflint --root . --baseline "
                   "tools/avflint/baseline.txt --update-baseline "
                   "src tools bench tests\n"
                   "# This file may only ever shrink.\n";
        for (const Finding &f : fresh)
            outFile << f.key() << "\n";
        if (!outFile.flush()) {
            std::fprintf(stderr, "avflint: cannot write %s\n",
                         baselinePath.c_str());
            return 2;
        }
        std::fprintf(stderr, "avflint: wrote %zu entries to %s\n",
                     fresh.size(), baselinePath.c_str());
        return 0;
    }

    if (json)
        std::fputs(avf::lint::formatJsonReport(report).c_str(),
                   stdout);

    if (!quiet || !fresh.empty() || !report.staleBaseline.empty())
        std::fprintf(stderr,
                     "avflint: %zu new finding%s, %zu baselined, "
                     "%zu stale baseline entr%s (%zu files "
                     "scanned)\n",
                     fresh.size(), fresh.size() == 1 ? "" : "s",
                     baselined, report.staleBaseline.size(),
                     report.staleBaseline.size() == 1 ? "y" : "ies",
                     files.size());
    return report.ok() ? 0 : 1;
}
