/**
 * @file
 * avflint CLI: lint the repository's sources against the domain
 * checks in checks.cc.
 *
 *   avflint [--root DIR] [--baseline FILE] [--update-baseline]
 *           [--list-checks] [--quiet] <path>...
 *
 * Exit status: 0 when every finding is suppressed or baselined,
 * 1 when new findings exist, 2 on usage errors. The baseline is a
 * ratchet — running with --update-baseline rewrites it from the
 * current findings, which should only ever shrink it.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "avflint/checks.hh"
#include "avflint/lexer.hh"

namespace
{

using avf::lint::Baseline;
using avf::lint::Finding;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--baseline FILE] [--update-baseline]\n"
        "          [--list-checks] [--quiet] <path>...\n"
        "Paths are files or directories, relative to --root (default:\n"
        "current directory).\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string baselinePath;
    bool updateBaseline = false;
    bool quiet = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--update-baseline") {
            updateBaseline = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list-checks") {
            for (const auto &check : avf::lint::checkRegistry())
                std::printf("%-14s %s\n",
                            std::string(check.id).c_str(),
                            std::string(check.description).c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(std::move(arg));
        }
    }
    if (paths.empty())
        return usage(argv[0]);

    Baseline baseline;
    if (!baselinePath.empty() && !updateBaseline)
        baseline = Baseline::fromFile(baselinePath);

    std::vector<Finding> fresh;
    std::size_t baselined = 0;
    std::size_t filesScanned = 0;

    for (const std::string &rel :
         avf::lint::collectFiles(root, paths)) {
        std::ifstream in(std::filesystem::path(root) / rel,
                         std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "avflint: cannot read %s\n",
                         rel.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        ++filesScanned;
        for (Finding &f : avf::lint::lintText(rel, text.str())) {
            if (baseline.matches(f)) {
                ++baselined;
                if (!quiet)
                    std::printf("%s (baselined)\n",
                                f.format().c_str());
            } else {
                fresh.push_back(std::move(f));
            }
        }
    }

    for (const Finding &f : fresh)
        std::printf("%s\n", f.format().c_str());

    for (const std::string &stale : baseline.unmatched())
        std::fprintf(stderr,
                     "avflint: note: stale baseline entry (fixed? "
                     "remove it): %s\n",
                     stale.c_str());

    if (updateBaseline) {
        if (baselinePath.empty()) {
            std::fprintf(stderr,
                         "avflint: --update-baseline needs "
                         "--baseline FILE\n");
            return 2;
        }
        std::ofstream outFile(baselinePath, std::ios::trunc);
        outFile << "# avflint baseline — committed debt ledger.\n"
                   "# One `file: [check-id] message` key per line; "
                   "regenerate with\n"
                   "#   avflint --root . --baseline "
                   "tools/avflint/baseline.txt --update-baseline "
                   "src tools bench tests\n"
                   "# This file may only ever shrink.\n";
        for (const Finding &f : fresh)
            outFile << f.key() << "\n";
        if (!outFile.flush()) {
            std::fprintf(stderr, "avflint: cannot write %s\n",
                         baselinePath.c_str());
            return 2;
        }
        std::fprintf(stderr,
                     "avflint: wrote %zu entries to %s\n",
                     fresh.size(), baselinePath.c_str());
        return 0;
    }

    if (!quiet || !fresh.empty())
        std::fprintf(stderr,
                     "avflint: %zu new finding%s, %zu baselined "
                     "(%zu files scanned)\n",
                     fresh.size(), fresh.size() == 1 ? "" : "s",
                     baselined, filesScanned);
    return fresh.empty() ? 0 : 1;
}
