/**
 * @file
 * Repo-wide cross-file index: the other half of pass 1. After every
 * file has been lexed and parsed into a FileModel, RepoIndex::build()
 * merges them into the global views the cross-file checks consume:
 * where each function name is defined, the caller → callee edge set,
 * which functions wrap `getenv` directly, and — by breadth-first
 * search over those edges — the set of functions reachable from the
 * per-cycle hot-path roots (`onCycle`, `onRetire`, `onErrorHop`,
 * `step`).
 *
 * Resolution is by bare name, deliberately: avflint has no overload
 * or namespace resolution, so a name is "repo-defined" if any file
 * defines it. That over-approximates reachability (two unrelated
 * `step` methods merge), which is the right failure direction for a
 * warn-severity check — see DESIGN.md §8.
 */

#ifndef AVF_TOOLS_AVFLINT_INDEX_HH
#define AVF_TOOLS_AVFLINT_INDEX_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "avflint/parser.hh"

namespace avf::lint
{

/** Cross-file symbol index built from all FileModels in a run. */
struct RepoIndex
{
    /** Function name -> files that define a body for it. */
    std::map<std::string, std::set<std::string>> definitionFiles;
    /** Function name -> bare names it calls (merged over all defs). */
    std::map<std::string, std::set<std::string>> callees;
    /** Functions that call getenv directly -> their defining files. */
    std::map<std::string, std::set<std::string>> envWrappers;
    /** Hot-path roots plus everything reachable from them through
     *  repo-defined callees. */
    std::set<std::string> hotReachable;

    /** Merge @p models into the index and run the hot-path BFS. */
    static RepoIndex build(const std::vector<FileModel> &models);

    /** True when @p fn is a hot-path root. */
    static bool isHotRoot(const std::string &fn);

    /**
     * Human-readable reachability chain ending at @p fn, e.g.
     * "step -> drainQueue -> refill". Empty if @p fn is not hot.
     */
    std::string hotChain(const std::string &fn) const;

  private:
    /** child -> parent edge chosen by the BFS, for hotChain(). */
    std::map<std::string, std::string> hotParent;
};

} // namespace avf::lint

#endif // AVF_TOOLS_AVFLINT_INDEX_HH
