#include "avflint/checks.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace avf::lint
{

namespace
{

namespace fs = std::filesystem;

bool
startsWith(const std::string &text, std::string_view prefix)
{
    return text.compare(0, prefix.size(), prefix) == 0;
}

/** tokens[i] or an empty sentinel when out of range. */
const Token &
at(const SourceFile &src, std::size_t i)
{
    static const Token none{TokKind::Punct, "", 0};
    return i < src.tokens.size() ? src.tokens[i] : none;
}

bool
isMemberAccess(const Token &t)
{
    return t.is(".") || t.is("->");
}

/**
 * From the token after an lvalue identifier, skip one balanced
 * `[...]` subscript if present and return the index of the token
 * that follows.
 */
std::size_t
skipSubscript(const SourceFile &src, std::size_t i)
{
    if (!at(src, i).is("["))
        return i;
    int depth = 0;
    while (i < src.tokens.size()) {
        if (at(src, i).is("["))
            ++depth;
        else if (at(src, i).is("]") && --depth == 0)
            return i + 1;
        ++i;
    }
    return i;
}

bool
isAssignOp(const Token &t)
{
    return t.kind == TokKind::Punct &&
           (t.is("=") || t.is("|=") || t.is("&=") || t.is("^=") ||
            t.is("+=") || t.is("-=") || t.is("<<=") || t.is(">>="));
}

// ---------------------------------------------------------------- //
// error-bit: writes to error-bit state outside sanctioned helpers.  //
// ---------------------------------------------------------------- //

void
checkErrorBit(const SourceFile &src, const CheckContext &,
              std::vector<Finding> &out)
{
    // The kill/carry/merge discipline lives here; everything else
    // must go through the Pipeline / estimator APIs.
    if (src.path == "src/cpu/pipeline.cc" ||
        startsWith(src.path, "src/core/"))
        return;

    static const std::set<std::string_view> state = {
        "errorMask", "errorBits", "errorBit", "regError"};
    // `error` alone is flagged only as a member write (`x.error =`):
    // in this codebase `.error` members are per-entry error-bit
    // planes, and reusing the name for anything else defeats grep.
    static const std::set<std::string_view> memberState = {"error"};

    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        const Token &tok = src.tokens[i];
        if (tok.kind != TokKind::Identifier)
            continue;
        bool plain = state.count(tok.text) > 0;
        bool member = memberState.count(tok.text) > 0;
        if (!plain && !member)
            continue;
        const Token &prev = at(src, i - 1);
        if (member && !isMemberAccess(prev))
            continue;
        // `ErrorMask errorMask = 0;` is a declaration with default
        // initializer, not a stray write.
        if (plain && !isMemberAccess(prev) &&
            prev.kind == TokKind::Identifier)
            continue;
        std::size_t j = skipSubscript(src, i + 1);
        if (!isAssignOp(at(src, j)))
            continue;
        out.push_back(
            {src.path, tok.line, "error-bit",
             "direct write to error-bit state '" + tok.text +
                 "' outside the sanctioned kill/carry/merge helpers "
                 "(src/cpu/pipeline.cc, src/core/); use the Pipeline "
                 "injection/clear API"});
    }
}

// ---------------------------------------------------------------- //
// injection-port-discipline: raw injections bypass InjectionPort.   //
// ---------------------------------------------------------------- //

void
checkInjectionPort(const SourceFile &src, const CheckContext &,
                   std::vector<Finding> &out)
{
    // Sanctioned: the port itself, the plane owners that implement
    // the primitives, and the primitives' own unit tests. Everything
    // else must open a tagged lane window through core::InjectionPort
    // so the injection carries a lane and a window handle.
    if (src.path == "src/core/injection_port.cc" ||
        startsWith(src.path, "src/cpu/") ||
        startsWith(src.path, "src/mem/") ||
        startsWith(src.path, "src/util/") ||
        startsWith(src.path, "tests/"))
        return;

    static const std::set<std::string_view> rawInjectors = {
        "injectRegError", "injectIqEntryError", "injectIqFieldError",
        "injectFuError",  "injectDtlbError",    "injectError"};
    static const std::set<std::string_view> planeMutators = {
        "orMask", "setMask"};

    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        const Token &tok = src.tokens[i];
        if (tok.kind != TokKind::Identifier ||
            !at(src, i + 1).is("("))
            continue;
        bool injector = rawInjectors.count(tok.text) > 0;
        bool mutator = planeMutators.count(tok.text) > 0;
        if (!injector && !mutator)
            continue;
        // `InjectOutcome injectError(int slot, ...)` is a declaration
        // (return type precedes the name), not a call site.
        const Token &prev = at(src, i - 1);
        if (!isMemberAccess(prev) && prev.kind == TokKind::Identifier)
            continue;
        if (injector)
            out.push_back(
                {src.path, tok.line, "injection-port-discipline",
                 "raw injection primitive '" + tok.text +
                     "' called outside core::InjectionPort; open a "
                     "tagged lane window with InjectionPort::open so "
                     "the injection carries a lane (see DESIGN.md, "
                     "\"The InjectionPort contract\")"});
        else
            out.push_back(
                {src.path, tok.line, "injection-port-discipline",
                 "direct ErrorPlane write '" + tok.text +
                     "' outside the plane owners; campaign code must "
                     "inject through core::InjectionPort, not by "
                     "setting error-plane bits"});
    }
}

// ---------------------------------------------------------------- //
// determinism: hidden entropy and unordered iteration.              //
// ---------------------------------------------------------------- //

void
checkDeterminism(const SourceFile &src, const CheckContext &,
                 std::vector<Finding> &out)
{
    static const std::set<std::string_view> bannedCalls = {
        "rand",    "srand",   "rand_r",  "random_r", "drand48",
        "lrand48", "mrand48", "gettimeofday", "clock_gettime"};
    static const std::set<std::string_view> chronoClocks = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    static const std::set<std::string_view> unorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};

    // Pass 1: names declared with std::unordered_* types.
    std::set<std::string> unorderedVars;
    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        if (src.tokens[i].kind != TokKind::Identifier ||
            unorderedTypes.count(src.tokens[i].text) == 0)
            continue;
        std::size_t j = i + 1;
        if (at(src, j).is("<")) {
            int depth = 0;
            for (; j < src.tokens.size(); ++j) {
                if (at(src, j).is("<"))
                    ++depth;
                else if (at(src, j).is(">") && --depth == 0) {
                    ++j;
                    break;
                } else if (at(src, j).is(">>") && (depth -= 2) <= 0) {
                    ++j;
                    break;
                }
            }
        }
        while (at(src, j).is("&") || at(src, j).is("*"))
            ++j;
        if (at(src, j).kind == TokKind::Identifier)
            unorderedVars.insert(at(src, j).text);
    }

    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        const Token &tok = src.tokens[i];
        if (tok.kind != TokKind::Identifier)
            continue;
        const Token &prev = at(src, i - 1);

        if (tok.text == "random_device") {
            out.push_back(
                {src.path, tok.line, "determinism",
                 "std::random_device is nondeterministic; seed "
                 "avf::Rng (util/random.hh) from configuration"});
            continue;
        }

        if (isMemberAccess(prev))
            continue; // x.rand() is somebody else's method

        if (bannedCalls.count(tok.text) > 0 && at(src, i + 1).is("(")) {
            out.push_back(
                {src.path, tok.line, "determinism",
                 "'" + tok.text + "()' breaks bit-deterministic "
                 "campaigns; use avf::Rng (util/random.hh) or plumb "
                 "the value through RunOptions"});
            continue;
        }

        // Argless wall-clock reads: time(NULL|nullptr|0|), clock().
        if ((tok.text == "time" || tok.text == "clock") &&
            at(src, i + 1).is("(")) {
            const Token &arg = at(src, i + 2);
            bool argless =
                arg.is(")") || ((arg.isIdent("NULL") ||
                                 arg.isIdent("nullptr") ||
                                 (arg.kind == TokKind::Number &&
                                  arg.text == "0")) &&
                                at(src, i + 3).is(")"));
            if (argless)
                out.push_back(
                    {src.path, tok.line, "determinism",
                     "'" + tok.text + "()' reads the wall clock; "
                     "results must be a function of (trace, seed) "
                     "only"});
            continue;
        }

        if (chronoClocks.count(tok.text) > 0 &&
            at(src, i + 1).is("::") &&
            at(src, i + 2).isIdent("now")) {
            out.push_back(
                {src.path, tok.line, "determinism",
                 "'" + tok.text + "::now()' reads the wall clock; "
                 "keep it out of anything that feeds exported "
                 "results (suppress with a justification if it only "
                 "feeds a timing side-channel)"});
            continue;
        }

        // Range-for over an unordered container: iteration order is
        // implementation-defined and leaks into stdout/exports.
        if (tok.text == "for" && at(src, i + 1).is("(")) {
            int depth = 0;
            std::size_t colon = 0;
            for (std::size_t j = i + 1; j < src.tokens.size(); ++j) {
                if (at(src, j).is("("))
                    ++depth;
                else if (at(src, j).is(")") && --depth == 0) {
                    if (!colon)
                        break;
                    for (std::size_t k = colon + 1; k < j; ++k) {
                        if (at(src, k).kind == TokKind::Identifier &&
                            unorderedVars.count(at(src, k).text)) {
                            out.push_back(
                                {src.path, src.tokens[i].line,
                                 "determinism",
                                 "iteration over unordered "
                                 "container '" + at(src, k).text +
                                     "' has implementation-defined "
                                     "order; copy into a sorted "
                                     "container before emitting"});
                            break;
                        }
                    }
                    break;
                } else if (at(src, j).is(":") && depth == 1 && !colon) {
                    colon = j;
                }
            }
        }
    }
}

// ---------------------------------------------------------------- //
// checked-io: C stdio results silently discarded.                   //
// ---------------------------------------------------------------- //

void
checkCheckedIo(const SourceFile &src, const CheckContext &,
               std::vector<Finding> &out)
{
    static const std::set<std::string_view> ioCalls = {
        "fopen", "fclose", "fread", "fwrite", "fseek", "fflush"};

    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        const Token &tok = src.tokens[i];
        if (tok.kind != TokKind::Identifier ||
            ioCalls.count(tok.text) == 0 || !at(src, i + 1).is("("))
            continue;

        // First token of the call expression (absorb a std:: prefix).
        std::size_t first = i;
        if (at(src, i - 1).is("::") && at(src, i - 2).isIdent("std"))
            first = i - 2;

        const Token &ctx = at(src, first - 1);
        bool discarded =
            ctx.is(";") || ctx.is("{") || ctx.is("}") ||
            ctx.isIdent("else") || ctx.isIdent("do") ||
            ctx.line == 0; // file start
        if (ctx.is(")")) {
            // `if (...) fclose(f);` discards too — but a `(void)`
            // cast is the sanctioned explicit discard.
            bool voidCast = at(src, first - 2).isIdent("void") &&
                            at(src, first - 3).is("(");
            discarded = !voidCast;
        }
        if (!discarded)
            continue;
        out.push_back(
            {src.path, tok.line, "checked-io",
             "result of '" + tok.text + "' is discarded; check it "
             "(or cast to (void) with a comment when failure is "
             "genuinely ignorable)"});
    }
}

// ---------------------------------------------------------------- //
// exit-site: process exit outside the logging sanctioned site.      //
// ---------------------------------------------------------------- //

void
checkExitSite(const SourceFile &src, const CheckContext &,
              std::vector<Finding> &out)
{
    if (src.path == "src/util/logging.cc")
        return; // panic()/fatal() are the sanctioned exit paths

    static const std::set<std::string_view> exits = {
        "exit", "_exit", "_Exit", "quick_exit", "abort"};

    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        const Token &tok = src.tokens[i];
        if (tok.kind != TokKind::Identifier ||
            exits.count(tok.text) == 0 || !at(src, i + 1).is("("))
            continue;
        const Token &prev = at(src, i - 1);
        if (isMemberAccess(prev))
            continue; // someone's .exit() method
        if (prev.is("::") && !at(src, i - 2).isIdent("std"))
            continue; // Foo::exit(), not std::exit()
        out.push_back(
            {src.path, tok.line, "exit-site",
             "'" + tok.text + "()' outside src/util/logging.cc; use "
             "fatal() for user errors or panic() for internal bugs "
             "so every exit is logged and testable"});
    }
}

// ---------------------------------------------------------------- //
// fork-safety: process fan-out only in the serve sharder.           //
// ---------------------------------------------------------------- //

void
checkForkSafety(const SourceFile &src, const CheckContext &,
                std::vector<Finding> &out)
{
    if (src.path == "src/serve/sharder.cc")
        return; // the sanctioned process-sharding fan-out point

    static const std::set<std::string_view> forks = {"fork", "vfork"};

    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        const Token &tok = src.tokens[i];
        if (tok.kind != TokKind::Identifier ||
            forks.count(tok.text) == 0 || !at(src, i + 1).is("("))
            continue;
        const Token &prev = at(src, i - 1);
        if (isMemberAccess(prev))
            continue; // someone's .fork() method
        if (prev.is("::") &&
            at(src, i - 2).kind == TokKind::Identifier)
            continue; // Foo::fork(), not the syscall
        out.push_back(
            {src.path, tok.line, "fork-safety",
             "'" + tok.text + "()' outside src/serve/sharder.cc; "
             "process fan-out lives in the sharder so every child "
             "inherits known state (single-threaded parent, owned "
             "pipe, _exit on every path)"});
    }
}

// ---------------------------------------------------------------- //
// include-guard: headers must be re-include safe.                   //
// ---------------------------------------------------------------- //

void
checkIncludeGuard(const SourceFile &src, const CheckContext &,
                  std::vector<Finding> &out)
{
    auto len = src.path.size();
    bool header =
        (len > 3 && src.path.compare(len - 3, 3, ".hh") == 0) ||
        (len > 4 && src.path.compare(len - 4, 4, ".hpp") == 0);
    if (!header || src.tokens.empty())
        return;

    const Token &t0 = at(src, 0);
    bool guarded = false;
    if (t0.is("#")) {
        if (at(src, 1).isIdent("pragma") && at(src, 2).isIdent("once"))
            guarded = true;
        if (at(src, 1).isIdent("ifndef") &&
            at(src, 2).kind == TokKind::Identifier &&
            at(src, 3).is("#") && at(src, 4).isIdent("define") &&
            at(src, 5).text == at(src, 2).text)
            guarded = true;
    }
    if (!guarded)
        out.push_back(
            {src.path, t0.line, "include-guard",
             "header does not open with an #ifndef/#define include "
             "guard (or #pragma once)"});
}

// ---------------------------------------------------------------- //
// naked-assert: assert() compiles out of release builds.            //
// ---------------------------------------------------------------- //

void
checkNakedAssert(const SourceFile &src, const CheckContext &,
                 std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        const Token &tok = src.tokens[i];
        if (!tok.isIdent("assert") || !at(src, i + 1).is("("))
            continue;
        if (isMemberAccess(at(src, i - 1)) || at(src, i - 1).is("::"))
            continue;
        out.push_back(
            {src.path, tok.line, "naked-assert",
             "assert() is compiled out under NDEBUG; use avf_assert "
             "(util/logging.hh), which stays on in release builds"});
    }
}

// ---------------------------------------------------------------- //
// metric-name-discipline: registry names must be snake_case,        //
// registered once per file, and never from per-cycle hot paths.     //
// ---------------------------------------------------------------- //

/** The exported-name contract from obs/metrics: [a-z][a-z0-9_]*. */
bool
isSnakeCase(std::string_view name)
{
    if (name.empty() || name[0] < 'a' || name[0] > 'z')
        return false;
    for (char c : name)
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_'))
            return false;
    return true;
}

void
checkMetricNames(const SourceFile &src, const CheckContext &,
                 std::vector<Finding> &out)
{
    static const std::set<std::string_view> registrars = {
        "registerCounter", "registerGauge", "registerHistogram",
        "registerSeries", "registerBlameUnit"};
    // Per-cycle execution contexts: registration inside one of these
    // turns a one-time setup cost into a per-cycle string lookup.
    static const std::set<std::string_view> hotFuncs = {
        "onCycle", "onRetire", "onErrorHop", "step"};

    // Pass 1: token spans that execute per cycle — the argument list
    // of any call to a hot-named function (covers callbacks hooked
    // via lambdas) and, for a definition, its body braces.
    std::vector<std::pair<std::size_t, std::size_t>> hotSpans;
    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        if (src.tokens[i].kind != TokKind::Identifier ||
            hotFuncs.count(src.tokens[i].text) == 0 ||
            !at(src, i + 1).is("("))
            continue;
        int depth = 0;
        std::size_t close = i + 1;
        for (; close < src.tokens.size(); ++close) {
            if (at(src, close).is("("))
                ++depth;
            else if (at(src, close).is(")") && --depth == 0)
                break;
        }
        hotSpans.emplace_back(i + 1, close);
        // A definition: `)` then optional qualifiers, then `{`.
        std::size_t j = close + 1;
        while (at(src, j).isIdent("const") ||
               at(src, j).isIdent("noexcept") ||
               at(src, j).isIdent("override") ||
               at(src, j).isIdent("final"))
            ++j;
        if (!at(src, j).is("{"))
            continue;
        int braces = 0;
        std::size_t end = j;
        for (; end < src.tokens.size(); ++end) {
            if (at(src, end).is("{"))
                ++braces;
            else if (at(src, end).is("}") && --braces == 0)
                break;
        }
        hotSpans.emplace_back(j, end);
    }
    auto inHotSpan = [&](std::size_t i) {
        for (const auto &[lo, hi] : hotSpans)
            if (i > lo && i < hi)
                return true;
        return false;
    };

    // Pass 2: the register* call sites.
    std::map<std::string, int> firstSeen;
    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        const Token &tok = src.tokens[i];
        if (tok.kind != TokKind::Identifier ||
            registrars.count(tok.text) == 0 || !at(src, i + 1).is("("))
            continue;
        // The declarations/definitions in obs/metrics take
        // `std::string name`, not a literal — only call sites with
        // an argument list reach the checks below meaningfully.
        if (inHotSpan(i))
            out.push_back(
                {src.path, tok.line, "metric-name-discipline",
                 "'" + tok.text + "' called from a per-cycle hot "
                 "path (onCycle/onRetire/onErrorHop/step); register "
                 "metrics once at setup and record through the Id"});
        const Token &arg = at(src, i + 2);
        if (arg.kind != TokKind::String || arg.text.size() < 2 ||
            arg.text.front() != '"' || arg.text.back() != '"')
            continue; // dynamic or raw-string name: not checkable
        std::string name = arg.text.substr(1, arg.text.size() - 2);
        if (!isSnakeCase(name)) {
            out.push_back(
                {src.path, tok.line, "metric-name-discipline",
                 "metric name '" + name + "' is not snake_case; "
                 "exported names must match [a-z][a-z0-9_]*"});
            continue;
        }
        // Only a complete literal name (next token closes the call
        // or separates arguments) counts for the once-per-file rule;
        // `"prefix_" + var` registers a family, not one name.
        const Token &next = at(src, i + 3);
        if (!next.is(")") && !next.is(","))
            continue;
        auto [it, inserted] = firstSeen.emplace(name, tok.line);
        if (!inserted)
            out.push_back(
                {src.path, tok.line, "metric-name-discipline",
                 "metric '" + name + "' already registered in this "
                 "file (line " + std::to_string(it->second) +
                 "); a name maps to one instrument"});
    }
}

// ---------------------------------------------------------------- //
// shared-state-discipline: unsynchronized writes to static storage. //
// ---------------------------------------------------------------- //

/**
 * Files whose whole job is owning process-wide mutable state; their
 * statics are exempt. Keep this list short — prefer std::atomic or a
 * guarded_by annotation at the declaration.
 */
const std::set<std::string_view> stateOwners = {
    "src/harness/config_loader.cc"};

/** Token that can end a declarator's type: `int x`, `auto &x`. */
bool
declPrefix(const Token &prev)
{
    static const std::set<std::string_view> nonTypes = {
        "return", "else", "do", "throw", "case", "goto", "delete"};
    return (prev.kind == TokKind::Identifier &&
            nonTypes.count(prev.text) == 0) ||
           prev.is("&") || prev.is("*");
}

/**
 * True when @p name has a declaration-looking occurrence inside
 * @p fn's body before token @p before — a local shadowing the static,
 * e.g. `int count = 0;` ahead of `count += n;`.
 */
bool
shadowedInFunction(const SourceFile &src, const FunctionDef &fn,
                   const VarDecl &v, std::size_t before)
{
    const std::string &name = v.name;
    for (std::size_t k = fn.bodyBegin + 1;
         k < before && k < fn.bodyEnd; ++k) {
        if (!at(src, k).isIdent(name))
            continue;
        if (k >= v.stmtBegin && k <= v.stmtEnd)
            continue; // a function-local static's own declaration
        const Token &next = at(src, k + 1);
        if (declPrefix(at(src, k - 1)) &&
            (next.is("=") || next.is(";") || next.is("{") ||
             next.is("(") || next.is(",")))
            return true;
    }
    return false;
}

void
checkSharedState(const SourceFile &src, const CheckContext &ctx,
                 std::vector<Finding> &out)
{
    if (stateOwners.count(src.path) > 0)
        return;

    for (const VarDecl &v : ctx.model.statics) {
        if (v.isConst || v.isAtomic || v.threadLocal || v.isMutex ||
            v.isLock || v.isCondVar)
            continue;
        if (!v.guardedBy.empty()) {
            if (ctx.model.findMutex(v.guardedBy))
                continue;
            out.push_back(
                {src.path, v.line, "shared-state-discipline",
                 "guarded_by(" + v.guardedBy + ") on '" + v.name +
                     "' names no mutex declared in this file; the "
                     "annotation must point at a real lock"});
            continue;
        }
        // Writes outside the declaration's own initializer.
        for (std::size_t i = 0; i < src.tokens.size(); ++i) {
            const Token &tok = src.tokens[i];
            if (!tok.isIdent(v.name) ||
                (i >= v.stmtBegin && i <= v.stmtEnd))
                continue;
            if (isMemberAccess(at(src, i - 1)))
                continue; // x.name: some other object's member
            if (declPrefix(at(src, i - 1)))
                continue; // `auto name = ...`: declares a local copy
            bool write = at(src, i - 1).is("++") ||
                         at(src, i - 1).is("--");
            std::size_t j = skipSubscript(src, i + 1);
            if (isAssignOp(at(src, j)) || at(src, j).is("++") ||
                at(src, j).is("--"))
                write = true;
            if (!write)
                continue;
            const FunctionDef *fn = ctx.model.enclosingFunction(i);
            if (fn && shadowedInFunction(src, *fn, v, i))
                continue;
            out.push_back(
                {src.path, tok.line, "shared-state-discipline",
                 "write to shared static '" + v.name +
                     "' (declared line " + std::to_string(v.line) +
                     ") without synchronization; make it std::atomic, "
                     "annotate the declaration with `avflint: "
                     "guarded_by(<mutex>)` naming a mutex in this "
                     "file, or move it into a sanctioned owner file"});
        }
    }
}

// ---------------------------------------------------------------- //
// hot-path-alloc: allocation inside per-cycle code.                 //
// ---------------------------------------------------------------- //

void
checkHotPathAlloc(const SourceFile &src, const CheckContext &ctx,
                  std::vector<Finding> &out)
{
    static const std::set<std::string_view> allocCalls = {
        "malloc", "calloc", "realloc", "strdup"};
    static const std::set<std::string_view> allocTypes = {
        "string", "vector"};
    static const std::set<std::string_view> appenders = {
        "push_back", "emplace_back"};

    // Receivers that reserve capacity anywhere in this file may
    // append: the sanctioned pattern is reserve() at setup (ctor,
    // configure) and amortized growth after — that setup function is
    // rarely the hot body itself.
    std::set<std::string> reserved;
    for (const FunctionDef &fn : ctx.model.functions)
        for (const CallSite &c : fn.calls)
            if (c.name == "reserve" && !c.receiver.empty())
                reserved.insert(c.receiver);

    for (const FunctionDef &fn : ctx.model.functions) {
        if (ctx.index.hotReachable.count(fn.name) == 0)
            continue;
        const std::string chain = ctx.index.hotChain(fn.name);
        const std::string where =
            chain == fn.name
                ? "per-cycle hot path '" + fn.name + "'"
                : "the hot path (" + chain + ")";

        for (std::size_t i = fn.bodyBegin + 1; i < fn.bodyEnd; ++i) {
            const Token &tok = src.tokens[i];
            if (tok.kind != TokKind::Identifier)
                continue;

            if (tok.text == "new") {
                if (at(src, i - 1).isIdent("operator"))
                    continue;
                out.push_back(
                    {src.path, tok.line, "hot-path-alloc",
                     "'new' inside " + where + "; per-cycle code "
                     "must not hit the allocator — preallocate at "
                     "setup"});
                continue;
            }

            if (allocCalls.count(tok.text) > 0 &&
                at(src, i + 1).is("(") &&
                !isMemberAccess(at(src, i - 1))) {
                out.push_back(
                    {src.path, tok.line, "hot-path-alloc",
                     "'" + tok.text + "()' inside " + where +
                         "; per-cycle code must not hit the "
                         "allocator — preallocate at setup"});
                continue;
            }

            if (allocTypes.count(tok.text) > 0) {
                // `static std::vector<...>` is one-time setup even in
                // a hot body; walk back over std/:: / cv qualifiers.
                std::size_t b = i;
                while (at(src, b - 1).is("::") ||
                       at(src, b - 1).isIdent("std") ||
                       at(src, b - 1).isIdent("const"))
                    --b;
                if (at(src, b - 1).isIdent("static") ||
                    at(src, b - 1).isIdent("constexpr"))
                    continue;
                std::size_t j = i + 1;
                if (at(src, j).is("<")) {
                    int depth = 0;
                    for (; j < src.tokens.size(); ++j) {
                        if (at(src, j).is("<"))
                            ++depth;
                        else if (at(src, j).is(">") && --depth == 0) {
                            ++j;
                            break;
                        } else if (at(src, j).is(">>") &&
                                   (depth -= 2) <= 0) {
                            ++j;
                            break;
                        }
                    }
                }
                if (at(src, j).is("&") || at(src, j).is("*"))
                    continue; // reference/pointer: no construction
                if (at(src, j).kind == TokKind::Identifier ||
                    at(src, j).is("(") || at(src, j).is("{"))
                    out.push_back(
                        {src.path, tok.line, "hot-path-alloc",
                         "std::" + tok.text + " constructed inside " +
                             where + "; reuse a preallocated buffer "
                             "owned by the caller"});
                continue;
            }

            if (appenders.count(tok.text) > 0 &&
                at(src, i + 1).is("(") &&
                isMemberAccess(at(src, i - 1))) {
                std::string recv;
                if (at(src, i - 2).kind == TokKind::Identifier)
                    recv = at(src, i - 2).text;
                if (!recv.empty() && reserved.count(recv) > 0)
                    continue;
                out.push_back(
                    {src.path, tok.line, "hot-path-alloc",
                     "'" + tok.text + "' on '" +
                         (recv.empty() ? std::string("<expr>") : recv) +
                         "' inside " + where + " with no reserve() "
                         "anywhere in this file; growth reallocates "
                         "per-cycle — reserve at setup"});
            }
        }
    }
}

// ---------------------------------------------------------------- //
// env-knob-discipline: getenv only inside the config loader.        //
// ---------------------------------------------------------------- //

void
checkEnvKnob(const SourceFile &src, const CheckContext &ctx,
             std::vector<Finding> &out)
{
    static const std::string sanctioned =
        "src/harness/config_loader.cc";
    if (src.path == sanctioned)
        return;

    for (const FunctionDef &fn : ctx.model.functions) {
        for (const CallSite &c : fn.calls) {
            if (!c.receiver.empty())
                continue; // x.getenv(): somebody else's method
            if (c.name == "getenv") {
                out.push_back(
                    {src.path, c.line, "env-knob-discipline",
                     "getenv() outside " + sanctioned + "; every "
                     "knob goes through loadRunOptions so it is "
                     "validated and recorded once"});
                continue;
            }
            auto w = ctx.index.envWrappers.find(c.name);
            if (w == ctx.index.envWrappers.end())
                continue;
            if (w->second.count(src.path) > 0 ||
                w->second.count(sanctioned) > 0)
                continue; // its own file, or a sanctioned-loader API
            out.push_back(
                {src.path, c.line, "env-knob-discipline",
                 "'" + c.name + "' wraps getenv (defined in " +
                     *w->second.begin() + "), so this call reads the "
                     "environment outside " + sanctioned +
                     "; route the knob through loadRunOptions"});
        }
    }
}

// ---------------------------------------------------------------- //
// lock-discipline: no naked lock()/unlock() on mutexes.             //
// ---------------------------------------------------------------- //

void
checkLockDiscipline(const SourceFile &src, const CheckContext &ctx,
                    std::vector<Finding> &out)
{
    static const std::set<std::string_view> verbs = {
        "lock", "unlock", "try_lock"};

    for (std::size_t i = 0; i < src.tokens.size(); ++i) {
        const Token &tok = src.tokens[i];
        if (tok.kind != TokKind::Identifier ||
            verbs.count(tok.text) == 0 || !at(src, i + 1).is("("))
            continue;
        if (!isMemberAccess(at(src, i - 1)))
            continue; // std::lock(a, b) or a declaration
        std::string recv;
        if (at(src, i - 2).kind == TokKind::Identifier)
            recv = at(src, i - 2).text;
        if (!recv.empty()) {
            const VarDecl *d = ctx.model.findSync(recv);
            if (d && d->isLock)
                continue; // RAII guard object: relocking is its job
        }
        out.push_back(
            {src.path, tok.line, "lock-discipline",
             "naked '." + tok.text + "()' on '" +
                 (recv.empty() ? std::string("<expr>") : recv) +
                 "'; use std::lock_guard / std::unique_lock / "
                 "std::scoped_lock so the unlock survives early "
                 "returns and exceptions"});
    }
}

} // namespace

std::string_view
severityName(Severity s)
{
    return s == Severity::Warn ? "warn" : "error";
}

std::string
Finding::key() const
{
    return file + ": [" + id + "] " + message;
}

std::string
Finding::format() const
{
    return file + ":" + std::to_string(line) + ": [" + id + "] " +
           message;
}

const std::vector<CheckInfo> &
checkRegistry()
{
    static const std::vector<CheckInfo> registry = {
        {"error-bit",
         "error-bit state written outside kill/carry/merge helpers",
         Severity::Error, checkErrorBit},
        {"injection-port-discipline",
         "raw injections or error-plane writes bypassing "
         "core::InjectionPort",
         Severity::Error, checkInjectionPort},
        {"determinism",
         "hidden entropy, wall-clock reads, unordered iteration",
         Severity::Error, checkDeterminism},
        {"checked-io", "C stdio results silently discarded",
         Severity::Error, checkCheckedIo},
        {"exit-site", "process exit outside src/util/logging.cc",
         Severity::Error, checkExitSite},
        {"fork-safety",
         "fork()/vfork() outside the serve process sharder",
         Severity::Error, checkForkSafety},
        {"include-guard", "headers must carry an include guard",
         Severity::Error, checkIncludeGuard},
        {"naked-assert", "assert() where avf_assert is required",
         Severity::Error, checkNakedAssert},
        {"metric-name-discipline",
         "metric names snake_case, registered once, off hot paths",
         Severity::Error, checkMetricNames},
        {"shared-state-discipline",
         "static storage written without atomic/guarded_by/owner",
         Severity::Error, checkSharedState},
        {"hot-path-alloc",
         "allocation inside per-cycle hot paths (call-graph reach)",
         Severity::Warn, checkHotPathAlloc},
        {"env-knob-discipline",
         "getenv (direct or wrapped) outside the config loader",
         Severity::Error, checkEnvKnob},
        {"lock-discipline",
         "naked mutex lock/unlock instead of RAII guards",
         Severity::Error, checkLockDiscipline},
    };
    return registry;
}

void
Linter::addFile(SourceFile src)
{
    models.push_back(parseFile(src));
    sources.push_back(std::move(src));
}

std::vector<Finding>
Linter::run()
{
    const RepoIndex index = RepoIndex::build(models);
    std::vector<Finding> all;
    for (std::size_t k = 0; k < sources.size(); ++k) {
        const SourceFile &src = sources[k];
        const CheckContext ctx{models[k], index};
        std::vector<Finding> raw;
        for (const CheckInfo &check : checkRegistry()) {
            const std::size_t before = raw.size();
            // Wall time feeds only the report's perf counters, never
            // results — avflint: allow(determinism) on both reads.
            const auto t0 = std::chrono::steady_clock::now();
            check.run(src, ctx, raw);
            const auto t1 = std::chrono::steady_clock::now(); // avflint: allow(determinism)
            micros[std::string(check.id)] +=
                std::chrono::duration_cast<std::chrono::microseconds>(
                    t1 - t0)
                    .count();
            for (std::size_t f = before; f < raw.size(); ++f)
                raw[f].severity = check.severity;
        }
        for (Finding &f : raw)
            if (!src.suppressed(f.line, f.id))
                all.push_back(std::move(f));
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.file != b.file ? a.file < b.file
                                                 : a.line < b.line;
                     });
    return all;
}

std::vector<Finding>
lintText(const std::string &path, std::string_view text)
{
    Linter linter;
    linter.addFile(lex(path, text));
    return linter.run();
}

Baseline
Baseline::fromString(std::string_view text)
{
    Baseline out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        std::size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string_view::npos || line[b] == '#')
            continue;
        std::size_t e = line.find_last_not_of(" \t\r");
        ++out.entries[std::string(line.substr(b, e - b + 1))];
        ++out.total;
        if (pos > text.size())
            break;
    }
    return out;
}

Baseline
Baseline::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Baseline{};
    std::ostringstream text;
    text << in.rdbuf();
    return fromString(text.str());
}

bool
Baseline::matches(const Finding &f)
{
    auto it = entries.find(f.key());
    if (it == entries.end() || it->second == 0)
        return false;
    --it->second;
    return true;
}

std::vector<std::string>
Baseline::unmatched() const
{
    std::vector<std::string> out;
    for (const auto &[key, count] : entries)
        if (count > 0)
            out.push_back(key);
    return out;
}

std::vector<std::string>
collectFiles(const std::string &root,
             const std::vector<std::string> &paths)
{
    auto lintable = [](const fs::path &p) {
        std::string ext = p.extension().string();
        return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
               ext == ".hpp";
    };
    auto skipDir = [](const fs::path &p) {
        std::string name = p.filename().string();
        return name == ".git" || name == "results" ||
               startsWith(name, "build");
    };

    std::set<std::string> found;
    for (const std::string &arg : paths) {
        fs::path base = fs::path(root) / arg;
        std::error_code ec;
        if (fs::is_regular_file(base, ec)) {
            if (lintable(base))
                found.insert(arg);
            continue;
        }
        fs::recursive_directory_iterator it(base, ec), end;
        for (; !ec && it != end; it.increment(ec)) {
            if (it->is_directory() && skipDir(it->path())) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && lintable(it->path()))
                found.insert(
                    fs::relative(it->path(), root).generic_string());
        }
    }
    return {found.begin(), found.end()};
}

} // namespace avf::lint
