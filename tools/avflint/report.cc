#include "avflint/report.hh"

#include <sstream>

namespace avf::lint
{

namespace
{

/** RFC 8259 string escaping: quotes, backslash, control bytes. */
std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
quoted(std::string_view text)
{
    std::string out = "\"";
    out += jsonEscape(text);
    out += '"';
    return out;
}

} // namespace

std::size_t
Report::freshCount() const
{
    std::size_t fresh = 0;
    for (std::size_t i = 0; i < findings.size(); ++i)
        if (i >= baselined.size() || !baselined[i])
            ++fresh;
    return fresh;
}

bool
Report::ok() const
{
    return freshCount() == 0 && staleBaseline.empty();
}

std::string
formatJsonReport(const Report &report)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"avflint-v1\",\n";
    out << "  \"root\": " << quoted(report.root) << ",\n";
    out << "  \"filesScanned\": " << report.filesScanned << ",\n";
    out << "  \"lexParseMicros\": " << report.lexParseMicros << ",\n";

    // Per-check rollup, in registry order (stable for diffing).
    std::map<std::string, std::size_t> counts;
    for (const Finding &f : report.findings)
        ++counts[f.id];
    out << "  \"checks\": [";
    bool firstCheck = true;
    for (const CheckInfo &check : checkRegistry()) {
        const std::string id(check.id);
        auto micros = report.checkMicros.find(id);
        out << (firstCheck ? "\n" : ",\n");
        firstCheck = false;
        out << "    {\"id\": " << quoted(check.id)
            << ", \"severity\": " << quoted(severityName(check.severity))
            << ", \"description\": " << quoted(check.description)
            << ", \"findings\": " << counts[id] << ", \"micros\": "
            << (micros == report.checkMicros.end() ? 0
                                                   : micros->second)
            << "}";
    }
    out << "\n  ],\n";

    out << "  \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding &f = report.findings[i];
        const bool base = i < report.baselined.size() &&
                          report.baselined[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"file\": " << quoted(f.file)
            << ", \"line\": " << f.line
            << ", \"check\": " << quoted(f.id)
            << ", \"severity\": " << quoted(severityName(f.severity))
            << ", \"baselined\": " << (base ? "true" : "false")
            << ", \"message\": " << quoted(f.message) << "}";
    }
    out << "\n  ],\n";

    out << "  \"fresh\": " << report.freshCount() << ",\n";
    out << "  \"baselined\": "
        << (report.findings.size() - report.freshCount()) << ",\n";
    out << "  \"staleBaseline\": [";
    for (std::size_t i = 0; i < report.staleBaseline.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n");
        out << "    " << quoted(report.staleBaseline[i]);
    }
    out << "\n  ],\n";
    out << "  \"ok\": " << (report.ok() ? "true" : "false") << "\n";
    out << "}\n";
    return out.str();
}

} // namespace avf::lint
