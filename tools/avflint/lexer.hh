/**
 * @file
 * Lightweight C++ lexer for avflint. Not a parser: it strips comments
 * and string/character literals into dedicated token kinds, recognizes
 * identifiers, numbers, and (longest-match) punctuators, and records
 * line numbers so checks can report `file:line`. Multi-line literals
 * (raw strings, strings with embedded newlines) are anchored to their
 * *opening* line, so findings point at where the literal starts.
 * Comments are scanned for two `avflint:` directives before being
 * dropped: `allow(check-id, ...)` suppressions and
 * `guarded_by(mutex)` annotations (consumed by the
 * shared-state-discipline check). Each directive applies to the line
 * the comment ends on and to the following line, which covers both
 * trailing and stand-alone comment placement.
 */

#ifndef AVF_TOOLS_AVFLINT_LEXER_HH
#define AVF_TOOLS_AVFLINT_LEXER_HH

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace avf::lint
{

/** Lexical class of a token. */
enum class TokKind
{
    Identifier, ///< keywords included; checks match on spelling
    Number,     ///< integer / floating / user-suffixed literal
    String,     ///< "..." or R"delim(...)delim", prefix included
    CharLit,    ///< '...'
    Punct       ///< operator or punctuator, longest-match
};

/** One token with its source position. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;

    bool is(std::string_view t) const { return text == t; }
    bool isIdent(std::string_view t) const
    {
        return kind == TokKind::Identifier && text == t;
    }
};

/** A lexed translation unit plus its suppression map. */
struct SourceFile
{
    /** Repo-relative path with forward slashes. */
    std::string path;
    std::vector<Token> tokens;
    /** line -> check-ids allowed on that line ("all" = every check). */
    std::map<int, std::set<std::string>> allows;
    /** line -> mutex named by an `avflint: guarded_by(m)` annotation
     *  covering that line (the comment's line and the next). */
    std::map<int, std::string> guards;

    /** True when `avflint: allow(id)` covers @p line for @p id. */
    bool suppressed(int line, const std::string &id) const;

    /** Mutex named by a guarded_by annotation covering @p line, or "". */
    std::string guardFor(int line) const;
};

/**
 * Tokenize @p text. Never fails: bytes that fit no token class are
 * emitted as single-character punctuators so checks keep their line
 * sync even on malformed input.
 */
SourceFile lex(std::string path, std::string_view text);

} // namespace avf::lint

#endif // AVF_TOOLS_AVFLINT_LEXER_HH
