/**
 * @file
 * Lightweight C++ lexer for avflint. Not a parser: it strips comments
 * and string/character literals into dedicated token kinds, recognizes
 * identifiers, numbers, and (longest-match) punctuators, and records
 * line numbers so checks can report `file:line`. Comments are scanned
 * for `avflint: allow(check-id)` suppressions before being dropped;
 * a suppression applies to the line the comment ends on and to the
 * following line, which covers both trailing and stand-alone comment
 * placement.
 */

#ifndef AVF_TOOLS_AVFLINT_LEXER_HH
#define AVF_TOOLS_AVFLINT_LEXER_HH

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace avf::lint
{

/** Lexical class of a token. */
enum class TokKind
{
    Identifier, ///< keywords included; checks match on spelling
    Number,     ///< integer / floating / user-suffixed literal
    String,     ///< "..." or R"delim(...)delim", prefix included
    CharLit,    ///< '...'
    Punct       ///< operator or punctuator, longest-match
};

/** One token with its source position. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;

    bool is(std::string_view t) const { return text == t; }
    bool isIdent(std::string_view t) const
    {
        return kind == TokKind::Identifier && text == t;
    }
};

/** A lexed translation unit plus its suppression map. */
struct SourceFile
{
    /** Repo-relative path with forward slashes. */
    std::string path;
    std::vector<Token> tokens;
    /** line -> check-ids allowed on that line ("all" = every check). */
    std::map<int, std::set<std::string>> allows;

    /** True when `avflint: allow(id)` covers @p line for @p id. */
    bool suppressed(int line, const std::string &id) const;
};

/**
 * Tokenize @p text. Never fails: bytes that fit no token class are
 * emitted as single-character punctuators so checks keep their line
 * sync even on malformed input.
 */
SourceFile lex(std::string path, std::string_view text);

} // namespace avf::lint

#endif // AVF_TOOLS_AVFLINT_LEXER_HH
