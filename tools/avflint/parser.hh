/**
 * @file
 * Scope/flow-aware parse layer over the avflint lexer: pass 1 of the
 * two-pass analysis engine. One forward walk over a lexed file tracks
 * brace scopes (namespace / class / function / plain block), and from
 * that recognizes function definitions (free, qualified
 * `Class::method`, class-inline, constructors with member-init
 * lists), collects the call sites inside each body, and records the
 * declarations the checks care about: namespace-scope and
 * static-storage variables (with const / atomic / thread_local /
 * mutex flags and any `avflint: guarded_by(m)` annotation) and
 * sync-typed names (mutexes, RAII locks, condition variables) at any
 * scope.
 *
 * This is deliberately not a C++ parser — no templates, no overload
 * resolution, no types beyond spelling. It is the smallest model
 * that lets checks ask "is this token inside a function body, and
 * which one?", "what does this function call?", and "what storage
 * does this name have?". Anything it cannot classify degrades to a
 * plain block, never to a crash: like the lexer, it must survive
 * arbitrary malformed input.
 */

#ifndef AVF_TOOLS_AVFLINT_PARSER_HH
#define AVF_TOOLS_AVFLINT_PARSER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "avflint/lexer.hh"

namespace avf::lint
{

/** One call expression inside a function body. */
struct CallSite
{
    std::string name;     ///< bare callee name (last component)
    std::string receiver; ///< `x` in `x.name(...)` / `x->name(...)`
    std::size_t tok = 0;  ///< token index of the callee name
    int line = 0;
};

/** One function (or method) definition with a body in this file. */
struct FunctionDef
{
    std::string name;      ///< bare name, e.g. "step"
    std::string qualifier; ///< `Pipeline` for `Pipeline::step`; ""
    int line = 0;
    std::size_t bodyBegin = 0; ///< token index of the opening `{`
    std::size_t bodyEnd = 0;   ///< token index of the matching `}`
    std::vector<CallSite> calls;
};

/** A declaration with the properties the checks ask about. */
struct VarDecl
{
    std::string name;
    std::string type; ///< joined declaration-prefix spelling
    int line = 0;
    /** Token span of the whole declaration statement (incl. init). */
    std::size_t stmtBegin = 0, stmtEnd = 0;
    bool namespaceScope = false; ///< declared at namespace scope
    bool isStatic = false;       ///< carries the `static` keyword
    bool threadLocal = false;
    bool isConst = false;  ///< const / constexpr / constinit
    bool isAtomic = false; ///< std::atomic<...> or atomic_* alias
    bool isMutex = false;  ///< std::*mutex family
    bool isLock = false;   ///< lock_guard/unique_lock/scoped_lock/shared_lock
    bool isCondVar = false;
    std::string guardedBy; ///< mutex named by a guarded_by annotation

    /** Static storage duration: shared across the whole process. */
    bool sharedStorage() const { return namespaceScope || isStatic; }
};

/** Per-file symbol model produced by parseFile(). */
struct FileModel
{
    std::string path;
    std::vector<FunctionDef> functions;
    /** Namespace-scope variables plus `static` locals and members. */
    std::vector<VarDecl> statics;
    /** Mutex / lock / condvar declarations at any scope. */
    std::vector<VarDecl> syncDecls;

    /** Innermost function whose body covers @p tok, or nullptr. */
    const FunctionDef *enclosingFunction(std::size_t tok) const;
    /** First sync decl named @p name, or nullptr. */
    const VarDecl *findSync(const std::string &name) const;
    /** First *mutex* decl named @p name, or nullptr. */
    const VarDecl *findMutex(const std::string &name) const;
};

/** Build the symbol model for one lexed file. Never fails. */
FileModel parseFile(const SourceFile &src);

} // namespace avf::lint

#endif // AVF_TOOLS_AVFLINT_PARSER_HH
