#include "avflint/index.hh"

#include <array>
#include <deque>

namespace avf::lint
{

namespace
{

constexpr std::array<std::string_view, 4> hotRoots = {
    "onCycle", "onRetire", "onErrorHop", "step"};

} // namespace

bool
RepoIndex::isHotRoot(const std::string &fn)
{
    for (std::string_view r : hotRoots)
        if (fn == r)
            return true;
    return false;
}

RepoIndex
RepoIndex::build(const std::vector<FileModel> &models)
{
    RepoIndex idx;

    for (const FileModel &m : models) {
        for (const FunctionDef &fn : m.functions) {
            idx.definitionFiles[fn.name].insert(m.path);
            auto &edges = idx.callees[fn.name];
            for (const CallSite &c : fn.calls) {
                edges.insert(c.name);
                if (c.name == "getenv")
                    idx.envWrappers[fn.name].insert(m.path);
            }
        }
    }

    // Hot-path reachability: BFS from the per-cycle roots, following
    // call edges but only into names the repo itself defines — calls
    // into the standard library terminate the walk.
    std::deque<std::string> queue;
    for (std::string_view r : hotRoots) {
        std::string root(r);
        if (idx.definitionFiles.count(root) == 0)
            continue;
        idx.hotReachable.insert(root);
        queue.push_back(std::move(root));
    }
    while (!queue.empty()) {
        std::string cur = std::move(queue.front());
        queue.pop_front();
        auto it = idx.callees.find(cur);
        if (it == idx.callees.end())
            continue;
        for (const std::string &next : it->second) {
            if (idx.definitionFiles.count(next) == 0)
                continue;
            if (!idx.hotReachable.insert(next).second)
                continue;
            idx.hotParent[next] = cur;
            queue.push_back(next);
        }
    }

    return idx;
}

std::string
RepoIndex::hotChain(const std::string &fn) const
{
    if (hotReachable.count(fn) == 0)
        return {};
    std::string chain = fn;
    std::string cur = fn;
    // The parent map is acyclic by construction (BFS tree), but cap
    // the walk anyway so a future bug cannot spin forever.
    for (int hop = 0; hop < 64; ++hop) {
        auto it = hotParent.find(cur);
        if (it == hotParent.end())
            break;
        cur = it->second;
        chain.insert(0, cur + " -> ");
    }
    return chain;
}

} // namespace avf::lint
