#include "avflint/lexer.hh"

#include <array>
#include <cctype>

namespace avf::lint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first within a length tier. */
constexpr std::array<std::string_view, 36> multiPuncts = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=", "|=", "^=", "##", ".*", "<",  ">",  "=",  "!",
    "&",   "|",  "^",  "+",  "-",  "%",
};

/**
 * Scan a comment body for `avflint:` directives — `allow(a, b, ...)`
 * suppressions and `guarded_by(mutex)` annotations — and record each
 * on @p line and @p line + 1 of @p out.
 */
void
recordAllows(SourceFile &out, std::string_view comment, int line)
{
    const std::string_view marker = "avflint:";
    std::size_t pos = 0;
    while ((pos = comment.find(marker, pos)) != std::string_view::npos) {
        pos += marker.size();
        while (pos < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[pos])))
            ++pos;
        const std::string_view verb = "allow(";
        const std::string_view guardVerb = "guarded_by(";
        if (comment.compare(pos, guardVerb.size(), guardVerb) == 0) {
            pos += guardVerb.size();
            std::size_t close = comment.find(')', pos);
            if (close == std::string_view::npos)
                return;
            std::string_view id = comment.substr(pos, close - pos);
            pos = close + 1;
            std::size_t b = id.find_first_not_of(" \t");
            if (b == std::string_view::npos)
                continue;
            std::size_t e = id.find_last_not_of(" \t");
            std::string name(id.substr(b, e - b + 1));
            out.guards[line] = name;
            out.guards[line + 1] = name;
            continue;
        }
        if (comment.compare(pos, verb.size(), verb) != 0)
            continue;
        pos += verb.size();
        std::size_t close = comment.find(')', pos);
        if (close == std::string_view::npos)
            return;
        std::string_view list = comment.substr(pos, close - pos);
        pos = close + 1;
        while (!list.empty()) {
            std::size_t comma = list.find(',');
            std::string_view id = list.substr(0, comma);
            list = comma == std::string_view::npos
                       ? std::string_view{}
                       : list.substr(comma + 1);
            std::size_t b = id.find_first_not_of(" \t");
            if (b == std::string_view::npos)
                continue;
            std::size_t e = id.find_last_not_of(" \t");
            std::string name(id.substr(b, e - b + 1));
            out.allows[line].insert(name);
            out.allows[line + 1].insert(name);
        }
    }
}

} // namespace

bool
SourceFile::suppressed(int line, const std::string &id) const
{
    auto it = allows.find(line);
    if (it == allows.end())
        return false;
    return it->second.count(id) > 0 || it->second.count("all") > 0;
}

std::string
SourceFile::guardFor(int line) const
{
    auto it = guards.find(line);
    return it == guards.end() ? std::string{} : it->second;
}

SourceFile
lex(std::string path, std::string_view text)
{
    SourceFile out;
    out.path = std::move(path);

    std::size_t i = 0;
    int line = 1;
    const std::size_t n = text.size();

    auto push = [&](TokKind kind, std::size_t begin, std::size_t end,
                    int atLine) {
        out.tokens.push_back(
            {kind, std::string(text.substr(begin, end - begin)),
             atLine});
    };
    auto countLines = [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k)
            if (text[k] == '\n')
                ++line;
    };

    while (i < n) {
        char c = text[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            std::size_t end = text.find('\n', i);
            if (end == std::string_view::npos)
                end = n;
            recordAllows(out, text.substr(i, end - i), line);
            i = end;
            continue;
        }

        // Block comment (may span lines; allow applies to its end).
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            std::size_t end = text.find("*/", i + 2);
            if (end == std::string_view::npos)
                end = n;
            else
                end += 2;
            countLines(i, end);
            recordAllows(out, text.substr(i, end - i), line);
            i = end;
            continue;
        }

        // Raw string literal: (prefix)R"delim( ... )delim", where the
        // prefix is one of "", u8, u, U, L — all five standard
        // spellings, so no raw-string body is ever mis-lexed as code.
        std::size_t rawR = 0; // offset of 'R' within the prefix + 1
        if (c == 'R')
            rawR = 1;
        else if ((c == 'u' || c == 'U' || c == 'L') && i + 1 < n &&
                 text[i + 1] == 'R')
            rawR = 2;
        else if (c == 'u' && i + 2 < n && text[i + 1] == '8' &&
                 text[i + 2] == 'R')
            rawR = 3;
        if (rawR != 0 && i + rawR < n && text[i + rawR] == '"') {
            std::size_t quote = i + rawR;
            std::size_t open = text.find('(', quote);
            if (open != std::string_view::npos) {
                std::string close = ")";
                close.append(text.substr(quote + 1,
                                         open - quote - 1));
                close.push_back('"');
                std::size_t end = text.find(close, open + 1);
                end = end == std::string_view::npos
                          ? n
                          : end + close.size();
                int at = line;
                countLines(i, end);
                push(TokKind::String, i, end, at);
                i = end;
                continue;
            }
        }

        // Ordinary string / char literal, with optional prefix.
        if (c == '"' || c == '\'' ||
            ((c == 'u' || c == 'U' || c == 'L') && i + 1 < n &&
             (text[i + 1] == '"' || text[i + 1] == '\''))) {
            std::size_t begin = i;
            int at = line; // anchor to the opening line, like raw strings
            if (c != '"' && c != '\'') {
                ++i;
                c = text[i];
            }
            char quote = c;
            ++i;
            while (i < n && text[i] != quote) {
                if (text[i] == '\\' && i + 1 < n)
                    ++i;
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            if (i < n)
                ++i; // closing quote
            push(quote == '"' ? TokKind::String : TokKind::CharLit,
                 begin, i, at);
            continue;
        }

        // Identifier (or keyword; checks only care about spelling).
        if (identStart(c)) {
            std::size_t begin = i;
            while (i < n && identCont(text[i]))
                ++i;
            // u8"..." style prefixes already handled above for u/U/L;
            // u8 needs a second look here.
            if (i < n && (text[i] == '"' || text[i] == '\'') &&
                (text.substr(begin, i - begin) == "u8")) {
                char quote = text[i];
                int at = line;
                ++i;
                while (i < n && text[i] != quote) {
                    if (text[i] == '\\' && i + 1 < n)
                        ++i;
                    if (text[i] == '\n')
                        ++line;
                    ++i;
                }
                if (i < n)
                    ++i;
                push(quote == '"' ? TokKind::String : TokKind::CharLit,
                     begin, i, at);
                continue;
            }
            push(TokKind::Identifier, begin, i, line);
            continue;
        }

        // Number: digits, hex, floats, digit separators, exponents.
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
            std::size_t begin = i;
            ++i;
            while (i < n) {
                char d = text[i];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '.' || d == '\'') {
                    ++i;
                    continue;
                }
                if ((d == '+' || d == '-') && i > begin) {
                    char p = text[i - 1];
                    if (p == 'e' || p == 'E' || p == 'p' || p == 'P') {
                        ++i;
                        continue;
                    }
                }
                break;
            }
            push(TokKind::Number, begin, i, line);
            continue;
        }

        // Punctuator: longest match against the multi-char table.
        bool matched = false;
        for (std::string_view op : multiPuncts) {
            if (text.compare(i, op.size(), op) == 0) {
                push(TokKind::Punct, i, i + op.size(), line);
                i += op.size();
                matched = true;
                break;
            }
        }
        if (!matched) {
            push(TokKind::Punct, i, i + 1, line);
            ++i;
        }
    }

    return out;
}

} // namespace avf::lint
