#include "avflint/parser.hh"

#include <set>

namespace avf::lint
{

namespace
{

/** tokens[i] or an empty sentinel when out of range. */
const Token &
at(const SourceFile &src, std::size_t i)
{
    static const Token none{TokKind::Punct, "", 0};
    return i < src.tokens.size() ? src.tokens[i] : none;
}

const std::set<std::string_view> mutexTypes = {
    "mutex",        "timed_mutex",  "recursive_mutex",
    "shared_mutex", "shared_timed_mutex", "recursive_timed_mutex"};
const std::set<std::string_view> lockTypes = {
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
const std::set<std::string_view> condVarTypes = {
    "condition_variable", "condition_variable_any"};

/** Keywords that look like calls but are not. */
const std::set<std::string_view> notCalls = {
    "if",       "for",         "while",       "switch",
    "catch",    "sizeof",      "alignof",     "alignas",
    "decltype", "noexcept",    "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "new",  "delete",
    "throw",    "static_assert"};

/** Statement-leading keywords that rule out a declaration. */
const std::set<std::string_view> controlKeywords = {
    "if",   "for",  "while",    "switch", "do",   "else",
    "try",  "catch", "return",  "case",   "default", "goto",
    "break", "continue", "throw"};

/** Post-signature qualifiers that may precede a function body. */
const std::set<std::string_view> bodyQualifiers = {
    "const", "noexcept", "override", "final", "mutable", "try"};

struct BraceClass
{
    enum Kind
    {
        Namespace,
        Class,
        Function,
        BlockInit,  ///< brace initializer — statement continues
        Block       ///< control / lambda / unclassified
    } kind = Block;
    std::string name;
    std::string qualifier;
};

/** Index of the `(` matching the `)` at @p close, or npos. */
std::size_t
matchParenBack(const SourceFile &src, std::size_t close)
{
    int depth = 0;
    for (std::size_t k = close + 1; k-- > 0;) {
        if (at(src, k).is(")"))
            ++depth;
        else if (at(src, k).is("(") && --depth == 0)
            return k;
    }
    return std::string_view::npos;
}

/**
 * Classify the `{` at token @p i by looking back at the statement
 * head. @p stmtStart is the index of the first token after the last
 * statement boundary (`;`, `{`, `}`) the caller saw.
 */
BraceClass
classifyBrace(const SourceFile &src, std::size_t i,
              std::size_t stmtStart)
{
    BraceClass out;

    // Immediate look-back: qualifiers, then the shape of the token
    // before the brace.
    std::size_t j = i;
    while (j > 0 && at(src, j - 1).kind == TokKind::Identifier &&
           bodyQualifiers.count(at(src, j - 1).text) > 0)
        --j;
    const Token &before = at(src, j - 1);
    if (before.is("]"))
        return out; // parameterless lambda body
    if (before.is("=") || before.is(",") || before.is("(") ||
        before.is("{")) {
        out.kind = BraceClass::BlockInit;
        return out;
    }
    if (before.is(")")) {
        std::size_t open = matchParenBack(src, j - 1);
        if (open != std::string_view::npos) {
            const Token &head = at(src, open - 1);
            if (head.is("]"))
                return out; // lambda with parameter list
            if (head.kind == TokKind::Identifier &&
                controlKeywords.count(head.text) > 0)
                return out; // if/for/while/switch/catch
        }
    }

    // Statement-head scan.
    if (stmtStart >= i)
        return out;
    const Token &first = at(src, stmtStart);
    if (first.isIdent("namespace")) {
        for (std::size_t k = stmtStart + 1; k < i; ++k)
            out.name += at(src, k).text;
        out.kind = BraceClass::Namespace;
        return out;
    }
    if (first.isIdent("extern") &&
        at(src, stmtStart + 1).kind == TokKind::String) {
        out.kind = BraceClass::Namespace; // extern "C" { ... }
        return out;
    }
    if (first.kind == TokKind::Identifier &&
        controlKeywords.count(first.text) > 0)
        return out;

    // `class Foo : public Bar {` (also struct/union/enum) before any
    // parenthesis means a type body; the name is the identifier after
    // the last class-kind keyword.
    for (std::size_t k = stmtStart; k < i; ++k) {
        const Token &t = at(src, k);
        if (t.is("(") || t.is("="))
            break;
        if (t.isIdent("class") || t.isIdent("struct") ||
            t.isIdent("union") || t.isIdent("enum")) {
            std::size_t nameAt = k + 1;
            if (at(src, nameAt).isIdent("class") ||
                at(src, nameAt).isIdent("struct"))
                ++nameAt; // enum class
            // Skip alignas(..)/attributes conservatively.
            if (at(src, nameAt).kind == TokKind::Identifier)
                out.name = at(src, nameAt).text;
            out.kind = BraceClass::Class;
            return out;
        }
    }

    // A function definition: the first top-level `(` in the head,
    // preceded by the function's (possibly qualified) name. A `=`
    // before it means an initializer instead.
    int depth = 0;
    for (std::size_t k = stmtStart; k < i; ++k) {
        const Token &t = at(src, k);
        if (t.is("=") && depth == 0) {
            out.kind = BraceClass::BlockInit;
            return out;
        }
        if (t.is(")") && depth == 0)
            return out; // head starts mid-parenthesis (for-loop tail)
        if (t.is("(")) {
            if (depth++ > 0)
                continue;
            const Token &name = at(src, k - 1);
            if (name.kind == TokKind::Identifier &&
                controlKeywords.count(name.text) == 0 &&
                notCalls.count(name.text) == 0) {
                out.kind = BraceClass::Function;
                out.name = name.text;
                if (at(src, k - 2).is("::") &&
                    at(src, k - 3).kind == TokKind::Identifier)
                    out.qualifier = at(src, k - 3).text;
                return out;
            }
            if (name.kind == TokKind::Punct && !name.text.empty() &&
                at(src, k - 2).isIdent("operator")) {
                out.kind = BraceClass::Function;
                out.name = "operator" + name.text;
                return out;
            }
            return out;
        }
        if (t.is(")"))
            --depth;
    }
    return out;
}

/** True for std::atomic<...> and the atomic_* aliases. */
bool
isAtomicSpelling(std::string_view text)
{
    return text == "atomic" || text == "atomic_flag" ||
           text.compare(0, 7, "atomic_") == 0;
}

} // namespace

const FunctionDef *
FileModel::enclosingFunction(std::size_t tok) const
{
    const FunctionDef *best = nullptr;
    for (const FunctionDef &fn : functions)
        if (fn.bodyBegin < tok && tok < fn.bodyEnd &&
            (!best || fn.bodyBegin > best->bodyBegin))
            best = &fn;
    return best;
}

const VarDecl *
FileModel::findSync(const std::string &name) const
{
    for (const VarDecl &v : syncDecls)
        if (v.name == name)
            return &v;
    return nullptr;
}

const VarDecl *
FileModel::findMutex(const std::string &name) const
{
    for (const VarDecl &v : syncDecls)
        if (v.isMutex && v.name == name)
            return &v;
    return nullptr;
}

FileModel
parseFile(const SourceFile &src)
{
    FileModel out;
    out.path = src.path;
    const std::size_t n = src.tokens.size();

    // Preprocessor directives play by different rules (no semicolons,
    // free braces in macro bodies); mark their tokens — `#` to end of
    // line, following backslash continuations — and skip them.
    std::vector<char> directive(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (!at(src, i).is("#") || directive[i])
            continue;
        int curLine = at(src, i).line;
        std::size_t last = i;
        for (std::size_t k = i; k < n; ++k) {
            if (at(src, k).line == curLine) {
                directive[k] = 1;
                last = k;
            } else if (at(src, last).is("\\")) {
                curLine = at(src, k).line;
                directive[k] = 1;
                last = k;
            } else {
                break;
            }
        }
    }

    struct Scope
    {
        BraceClass::Kind kind;
        std::string name;
        std::size_t fnIndex; // valid when kind == Function
    };
    std::vector<Scope> stack{{BraceClass::Namespace, "", 0}};

    auto innermostFunction = [&]() -> std::size_t {
        for (std::size_t s = stack.size(); s-- > 0;)
            if (stack[s].kind == BraceClass::Function)
                return stack[s].fnIndex;
        return std::string_view::npos;
    };
    auto enclosingClass = [&]() -> std::string {
        for (std::size_t s = stack.size(); s-- > 0;)
            if (stack[s].kind == BraceClass::Class)
                return stack[s].name;
        return {};
    };

    // The current statement, as token indices, for declaration
    // analysis at the terminating `;`.
    std::vector<std::size_t> stmt;
    std::size_t stmtStart = 0;

    auto analyzeDecl = [&](const std::vector<std::size_t> &s) {
        if (s.empty())
            return;
        std::size_t p = 0;
        VarDecl v;
        bool skip = false;
        // Leading storage-class / cv keywords carry the flags.
        while (p < s.size()) {
            const Token &t = at(src, s[p]);
            if (t.kind != TokKind::Identifier)
                break;
            if (t.text == "static")
                v.isStatic = true;
            else if (t.text == "thread_local")
                v.threadLocal = true;
            else if (t.text == "const" || t.text == "constexpr" ||
                     t.text == "constinit")
                v.isConst = true;
            else if (t.text == "inline" || t.text == "volatile" ||
                     t.text == "mutable")
                ; // irrelevant here
            else
                break;
            ++p;
        }
        if (p >= s.size())
            return;
        const Token &head = at(src, s[p]);
        if (head.kind != TokKind::Identifier)
            return;
        static const std::set<std::string_view> notDecl = {
            "using",  "typedef", "extern",  "template", "friend",
            "class",  "struct",  "union",   "enum",     "namespace",
            "public", "private", "protected", "operator", "goto",
            "static_assert", "asm", "return"};
        if (notDecl.count(head.text) > 0 ||
            controlKeywords.count(head.text) > 0)
            return;
        const bool namespaceScope =
            stack.back().kind == BraceClass::Namespace;
        const bool classScope = stack.back().kind == BraceClass::Class;
        const bool localScope = !namespaceScope && !classScope;
        // Find the initializer marker; `(` at namespace/class scope
        // means a function declaration, not a variable.
        int depth = 0;
        std::size_t marker = s.size();
        for (std::size_t k = p; k < s.size(); ++k) {
            const Token &t = at(src, s[k]);
            if (depth == 0 &&
                (t.is("=") || t.is("{") || t.is("["))) {
                marker = k;
                break;
            }
            if (t.is("(")) {
                if (depth == 0) {
                    if (!localScope)
                        skip = true;
                    marker = k;
                    break;
                }
                ++depth;
            } else if (t.is(")")) {
                if (--depth < 0)
                    return;
            } else if (t.is("<")) {
                ++depth;
            } else if (t.is(">")) {
                if (--depth < 0)
                    return;
            } else if (t.is(">>")) {
                if ((depth -= 2) < 0)
                    return;
            }
        }
        if (skip)
            return;
        // The declared name: last identifier before the marker.
        std::size_t nameAt = std::string_view::npos;
        for (std::size_t k = marker; k-- > p;)
            if (at(src, s[k]).kind == TokKind::Identifier) {
                nameAt = k;
                break;
            }
        if (nameAt == std::string_view::npos || nameAt == p)
            return; // no name, or a bare expression with no type
        v.name = at(src, s[nameAt]).text;
        for (std::size_t k = p; k < nameAt; ++k) {
            const Token &t = at(src, s[k]);
            if (!v.type.empty() && t.kind == TokKind::Identifier)
                v.type += ' ';
            v.type += t.text;
            if (t.kind != TokKind::Identifier)
                continue;
            if (isAtomicSpelling(t.text))
                v.isAtomic = true;
            else if (mutexTypes.count(t.text) > 0)
                v.isMutex = true;
            else if (lockTypes.count(t.text) > 0)
                v.isLock = true;
            else if (condVarTypes.count(t.text) > 0)
                v.isCondVar = true;
        }
        v.line = at(src, s[0]).line;
        v.namespaceScope = namespaceScope;
        v.stmtBegin = s.front();
        v.stmtEnd = s.back();
        v.guardedBy = src.guardFor(v.line);
        if (v.sharedStorage())
            out.statics.push_back(v);
        if (v.isMutex || v.isLock || v.isCondVar)
            out.syncDecls.push_back(v);
    };

    for (std::size_t i = 0; i < n; ++i) {
        if (directive[i]) {
            stmtStart = i + 1;
            continue;
        }
        const Token &tok = src.tokens[i];

        if (tok.is("{")) {
            BraceClass bc = classifyBrace(src, i, stmtStart);
            if (bc.kind == BraceClass::BlockInit) {
                stmt.push_back(i);
                stack.push_back({bc.kind, "", 0});
                continue;
            }
            if (bc.kind == BraceClass::Function) {
                FunctionDef fn;
                fn.name = bc.name;
                fn.qualifier = bc.qualifier.empty()
                                   ? enclosingClass()
                                   : bc.qualifier;
                fn.line = tok.line;
                fn.bodyBegin = i;
                fn.bodyEnd = n ? n - 1 : 0;
                out.functions.push_back(std::move(fn));
                stack.push_back({bc.kind, bc.name,
                                 out.functions.size() - 1});
            } else {
                stack.push_back({bc.kind, bc.name, 0});
            }
            stmt.clear();
            stmtStart = i + 1;
            continue;
        }
        if (tok.is("}")) {
            if (stack.size() > 1) {
                Scope popped = stack.back();
                stack.pop_back();
                if (popped.kind == BraceClass::Function)
                    out.functions[popped.fnIndex].bodyEnd = i;
                if (popped.kind != BraceClass::BlockInit) {
                    stmt.clear();
                    stmtStart = i + 1;
                }
            }
            continue;
        }
        if (tok.is(";")) {
            // Declarations live at namespace/class scope; inside
            // functions only `static` locals are modelled.
            const BraceClass::Kind k = stack.back().kind;
            if (k == BraceClass::Namespace || k == BraceClass::Class ||
                (!stmt.empty() && at(src, stmt[0]).isIdent("static")))
                analyzeDecl(stmt);
            stmt.clear();
            stmtStart = i + 1;
            continue;
        }

        stmt.push_back(i);

        // Call sites, attributed to the innermost function body.
        if (tok.kind == TokKind::Identifier && at(src, i + 1).is("(") &&
            notCalls.count(tok.text) == 0 &&
            controlKeywords.count(tok.text) == 0) {
            std::size_t fnIdx = innermostFunction();
            if (fnIdx != std::string_view::npos) {
                const Token &prev = at(src, i - 1);
                CallSite call;
                bool isCall = true;
                if (prev.is(".") || prev.is("->")) {
                    if (at(src, i - 2).kind == TokKind::Identifier)
                        call.receiver = at(src, i - 2).text;
                } else if (prev.kind == TokKind::Identifier &&
                           prev.text != "return" &&
                           prev.text != "else" && prev.text != "do" &&
                           prev.text != "throw" &&
                           prev.text != "case") {
                    isCall = false; // `Type name(...)`: a declaration
                }
                if (isCall) {
                    call.name = tok.text;
                    call.tok = i;
                    call.line = tok.line;
                    out.functions[fnIdx].calls.push_back(
                        std::move(call));
                }
            }
        }
    }

    // Sync-typed declarations at any scope (locals included):
    // `type<...> name` with the usual ref/pointer decorations.
    for (std::size_t i = 0; i < n; ++i) {
        const Token &tok = src.tokens[i];
        if (tok.kind != TokKind::Identifier)
            continue;
        bool mutexT = mutexTypes.count(tok.text) > 0;
        bool lockT = lockTypes.count(tok.text) > 0;
        bool condT = condVarTypes.count(tok.text) > 0;
        if (!mutexT && !lockT && !condT)
            continue;
        std::size_t j = i + 1;
        if (at(src, j).is("<")) {
            int depth = 0;
            for (; j < n; ++j) {
                if (at(src, j).is("<"))
                    ++depth;
                else if (at(src, j).is(">") && --depth == 0) {
                    ++j;
                    break;
                } else if (at(src, j).is(">>") && (depth -= 2) <= 0) {
                    ++j;
                    break;
                }
            }
        }
        while (at(src, j).is("&") || at(src, j).is("*"))
            ++j;
        if (at(src, j).kind != TokKind::Identifier)
            continue;
        if (out.findSync(at(src, j).text))
            continue;
        VarDecl v;
        v.name = at(src, j).text;
        v.type = tok.text;
        v.line = at(src, j).line;
        v.stmtBegin = i;
        v.stmtEnd = j;
        v.isMutex = mutexT;
        v.isLock = lockT;
        v.isCondVar = condT;
        v.guardedBy = src.guardFor(at(src, i).line);
        out.syncDecls.push_back(std::move(v));
    }

    return out;
}

} // namespace avf::lint
