/**
 * @file
 * avflint's domain checks. Each check walks a lexed SourceFile and
 * appends findings; `lintSource` runs the whole registry and drops
 * findings covered by `avflint: allow(id)` suppressions. A Baseline
 * ratchets pre-existing debt: findings whose (file, check, message)
 * key appears in the baseline are reported as baselined and do not
 * fail the run, but new findings always do.
 *
 * Checks (ids):
 *   error-bit     direct writes to error-bit state (errorMask,
 *                 regError, `.error` members) outside the sanctioned
 *                 kill/carry/merge helpers (src/cpu/pipeline.cc and
 *                 src/core/).
 *   determinism   rand()/srand()/std::random_device, argless time
 *                 sources (time(NULL), clock(), *_clock::now), and
 *                 range-for iteration over std::unordered_*
 *                 containers (unordered order leaks into exports).
 *   checked-io    fopen/fclose/fread/fwrite/fseek/fflush calls whose
 *                 result is discarded (statement position); a
 *                 `(void)` cast is an accepted explicit discard.
 *   exit-site     exit()/abort() family outside src/util/logging.cc,
 *                 the only sanctioned process-exit site.
 *   include-guard .hh files must open with an #ifndef/#define guard
 *                 or #pragma once.
 *   naked-assert  assert() where avf_assert (on in release builds)
 *                 is required.
 *   injection-port-discipline
 *                 raw injection primitives (injectRegError,
 *                 injectIqEntryError, injectIqFieldError,
 *                 injectFuError, injectDtlbError, injectError) and
 *                 ErrorPlane mutators (orMask, setMask) called
 *                 outside the sanctioned implementations: the port
 *                 itself (src/core/injection_port.cc), the plane
 *                 owners (src/cpu/, src/mem/, src/util/), and the
 *                 primitives' own unit tests (tests/). Campaign code
 *                 must open tagged lane windows through
 *                 core::InjectionPort so every injection carries a
 *                 lane and a window (see DESIGN.md, "The
 *                 InjectionPort contract").
 *   metric-name-discipline
 *                 literal names passed to the obs/metrics register*
 *                 calls must be snake_case ([a-z][a-z0-9_]*) and
 *                 registered at most once per file, and no register*
 *                 call may appear inside a per-cycle hot path
 *                 (onCycle/onRetire/onErrorHop/step bodies or
 *                 callback arguments). Dynamic (non-literal) names
 *                 are exempt from the spelling and once-only rules —
 *                 the runtime registry validates those.
 */

#ifndef AVF_TOOLS_AVFLINT_CHECKS_HH
#define AVF_TOOLS_AVFLINT_CHECKS_HH

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "avflint/lexer.hh"

namespace avf::lint
{

/** One diagnostic produced by a check. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string id;       ///< check id, e.g. "determinism"
    std::string message;

    /** Baseline key: stable across line-number churn. */
    std::string key() const;
    /** Human/CI form: `file:line: [id] message`. */
    std::string format() const;
};

/** A registered check. */
struct CheckInfo
{
    std::string_view id;
    std::string_view description;
    void (*run)(const SourceFile &src, std::vector<Finding> &out);
};

/** All checks, in reporting order. */
const std::vector<CheckInfo> &checkRegistry();

/** Run every check on @p src and filter suppressed findings. */
std::vector<Finding> lintSource(const SourceFile &src);

/** Convenience: lex then lint. @p path is repo-relative. */
std::vector<Finding> lintText(const std::string &path,
                              std::string_view text);

/**
 * Committed debt ledger. Lines are Finding::key() strings; `#`
 * comments and blank lines are ignored. Matching consumes an entry,
 * so duplicate findings need duplicate lines and entries left over
 * after a run are reported as stale.
 */
class Baseline
{
  public:
    Baseline() = default;

    /** Parse from text (tests). */
    static Baseline fromString(std::string_view text);

    /** Load from disk; a missing file yields an empty baseline. */
    static Baseline fromFile(const std::string &path);

    /** True (and one entry consumed) if @p f is baselined. */
    bool matches(const Finding &f);

    /** Keys with unconsumed occurrences (stale debt). */
    std::vector<std::string> unmatched() const;

    /** Total entries loaded. */
    std::size_t size() const { return total; }

  private:
    std::map<std::string, int> entries;
    std::size_t total = 0;
};

/**
 * Recursively collect lintable sources (.cc/.hh/.cpp/.hpp) under each
 * of @p paths (files or directories, relative to @p root), skipping
 * build trees and VCS metadata. The result is sorted — avflint obeys
 * its own determinism rule.
 */
std::vector<std::string> collectFiles(
    const std::string &root, const std::vector<std::string> &paths);

} // namespace avf::lint

#endif // AVF_TOOLS_AVFLINT_CHECKS_HH
