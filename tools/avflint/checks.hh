/**
 * @file
 * avflint's domain checks and the two-pass analysis driver. Pass 1
 * lexes and parses every input into a FileModel and merges them into
 * a RepoIndex (cross-file symbol table + call graph); pass 2 runs the
 * registry over each file with that context and drops findings
 * covered by `avflint: allow(id)` suppressions. A Baseline ratchets
 * pre-existing debt: findings whose (file, check, message) key
 * appears in the baseline are reported as baselined and do not fail
 * the run, but new findings always do — and entries no longer matched
 * by any finding are stale and fail the run too.
 *
 * Severity: every check is `error` (a contract: fix or carry a
 * justified allow) except those marked `warn`, whose analysis is a
 * deliberate over-approximation (e.g. name-based call-graph
 * reachability). Warnings still gate the run; the severity only
 * changes the CI annotation level and how liberally a justified
 * suppression is accepted — see DESIGN.md §8.
 *
 * Checks (ids):
 *   error-bit     direct writes to error-bit state (errorMask,
 *                 regError, `.error` members) outside the sanctioned
 *                 kill/carry/merge helpers (src/cpu/pipeline.cc and
 *                 src/core/).
 *   determinism   rand()/srand()/std::random_device, argless time
 *                 sources (time(NULL), clock(), *_clock::now), and
 *                 range-for iteration over std::unordered_*
 *                 containers (unordered order leaks into exports).
 *   checked-io    fopen/fclose/fread/fwrite/fseek/fflush calls whose
 *                 result is discarded (statement position); a
 *                 `(void)` cast is an accepted explicit discard.
 *   exit-site     exit()/abort() family outside src/util/logging.cc,
 *                 the only sanctioned process-exit site.
 *   include-guard .hh files must open with an #ifndef/#define guard
 *                 or #pragma once.
 *   naked-assert  assert() where avf_assert (on in release builds)
 *                 is required.
 *   injection-port-discipline
 *                 raw injection primitives and ErrorPlane mutators
 *                 called outside the sanctioned implementations;
 *                 campaign code must open tagged lane windows through
 *                 core::InjectionPort (see DESIGN.md).
 *   metric-name-discipline
 *                 literal names passed to the obs/metrics register*
 *                 calls (and to the attribution tracker's
 *                 registerBlameUnit) must be snake_case, registered
 *                 at most once per file, and never from a per-cycle
 *                 hot path.
 *   shared-state-discipline
 *                 non-const static-storage variables written outside
 *                 their initializer must be std::atomic, carry an
 *                 `avflint: guarded_by(m)` annotation naming a mutex
 *                 declared in the same file, or live in a sanctioned
 *                 owner file. A race-detector lite: tsan covers the
 *                 schedules we happen to run, this covers the code.
 *   hot-path-alloc  [warn]
 *                 no new/malloc, no std::string/std::vector
 *                 construction, and no push_back without a reserve on
 *                 the same receiver, inside a per-cycle hot path:
 *                 onCycle/onRetire/onErrorHop/step bodies and every
 *                 function reachable from them through the intra-repo
 *                 call graph (name-based, hence warn).
 *   env-knob-discipline
 *                 getenv — direct, or through a wrapper function that
 *                 calls it — anywhere but src/harness/config_loader.cc,
 *                 so every knob goes through strict loadRunOptions
 *                 validation.
 *   lock-discipline
 *                 naked .lock()/.unlock()/.try_lock() on a mutex;
 *                 scoped RAII (lock_guard/unique_lock/scoped_lock)
 *                 only. Calls on a declared RAII lock object are the
 *                 sanctioned form (unique_lock relock is fine).
 */

#ifndef AVF_TOOLS_AVFLINT_CHECKS_HH
#define AVF_TOOLS_AVFLINT_CHECKS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "avflint/index.hh"
#include "avflint/lexer.hh"
#include "avflint/parser.hh"

namespace avf::lint
{

/** Finding weight; both gate the run, CI annotates differently. */
enum class Severity
{
    Error, ///< contract violation: fix it or justify an allow
    Warn   ///< over-approximate analysis: suppressions are expected
};

/** Lower-case name for output ("error" / "warn"). */
std::string_view severityName(Severity s);

/** One diagnostic produced by a check. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string id;       ///< check id, e.g. "determinism"
    std::string message;
    Severity severity = Severity::Error; ///< stamped from registry

    /** Baseline key: stable across line-number churn. */
    std::string key() const;
    /** Human/CI form: `file:line: [id] message`. */
    std::string format() const;
};

/** Pass-1 context handed to every check alongside the token stream. */
struct CheckContext
{
    const FileModel &model; ///< this file's symbol model
    const RepoIndex &index; ///< whole-run cross-file index
};

/** A registered check. */
struct CheckInfo
{
    std::string_view id;
    std::string_view description;
    Severity severity;
    void (*run)(const SourceFile &src, const CheckContext &ctx,
                std::vector<Finding> &out);
};

/** All checks, in reporting order. */
const std::vector<CheckInfo> &checkRegistry();

/**
 * The two-pass driver. addFile() lexes nothing — feed it lexed
 * SourceFiles — but parses each into a FileModel immediately; run()
 * builds the RepoIndex over everything added, executes the registry
 * per file, filters suppressed findings, stamps severities, and
 * returns all findings sorted by (file, line).
 */
class Linter
{
  public:
    /** Parse and take ownership of one lexed file. */
    void addFile(SourceFile src);

    /** Pass 2: run all checks over all added files. */
    std::vector<Finding> run();

    /** Number of files added. */
    std::size_t fileCount() const { return sources.size(); }

    /** check id -> accumulated wall micros across run() (for the
     *  JSON report; never feeds results). */
    const std::map<std::string, std::int64_t> &checkMicros() const
    {
        return micros;
    }

  private:
    std::vector<SourceFile> sources;
    std::vector<FileModel> models;
    std::map<std::string, std::int64_t> micros;
};

/** Convenience for tests: lex + single-file two-pass lint. */
std::vector<Finding> lintText(const std::string &path,
                              std::string_view text);

/**
 * Committed debt ledger. Lines are Finding::key() strings; `#`
 * comments and blank lines are ignored. Matching consumes an entry,
 * so duplicate findings need duplicate lines and entries left over
 * after a run are reported as stale — and fail the run, so the
 * ratchet turns both ways.
 */
class Baseline
{
  public:
    Baseline() = default;

    /** Parse from text (tests). */
    static Baseline fromString(std::string_view text);

    /** Load from disk; a missing file yields an empty baseline. */
    static Baseline fromFile(const std::string &path);

    /** True (and one entry consumed) if @p f is baselined. */
    bool matches(const Finding &f);

    /** Keys with unconsumed occurrences (stale debt). */
    std::vector<std::string> unmatched() const;

    /** Total entries loaded. */
    std::size_t size() const { return total; }

  private:
    std::map<std::string, int> entries;
    std::size_t total = 0;
};

/**
 * Recursively collect lintable sources (.cc/.hh/.cpp/.hpp) under each
 * of @p paths (files or directories, relative to @p root), skipping
 * build trees and VCS metadata. The result is sorted — avflint obeys
 * its own determinism rule.
 */
std::vector<std::string> collectFiles(
    const std::string &root, const std::vector<std::string> &paths);

} // namespace avf::lint

#endif // AVF_TOOLS_AVFLINT_CHECKS_HH
