/**
 * @file
 * Machine-readable lint report (`avflint --format=json`). The write
 * side is hand-rolled, like every exporter in this repo; the read
 * side (avf-report lint, CI annotation emission) goes through the
 * strict util/json parser, so the emitter must produce strictly
 * valid RFC 8259 output — tests round-trip it.
 *
 * Schema "avflint-v1":
 *   schema         "avflint-v1"
 *   root           scan root as given on the command line
 *   filesScanned   number of files lexed and parsed
 *   lexParseMicros wall micros spent in pass 1 (lex + parse + index)
 *   checks[]       per registry entry, in registry order:
 *                    id, severity ("error"/"warn"), description,
 *                    findings (count, baselined included), micros
 *   findings[]     every unsuppressed finding, sorted (file, line):
 *                    file, line, check, severity, baselined, message
 *   fresh          count of findings not covered by the baseline
 *   baselined      count of findings the baseline absorbed
 *   staleBaseline[] baseline keys no current finding matches
 *   ok             fresh == 0 and staleBaseline empty — the gate CI
 *                  (and avf-report lint) keys off
 */

#ifndef AVF_TOOLS_AVFLINT_REPORT_HH
#define AVF_TOOLS_AVFLINT_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "avflint/checks.hh"

namespace avf::lint
{

/** Everything the JSON report serializes, gathered by main(). */
struct Report
{
    std::string root;
    std::size_t filesScanned = 0;
    std::int64_t lexParseMicros = 0;
    /** check id -> accumulated micros (Linter::checkMicros). */
    std::map<std::string, std::int64_t> checkMicros;
    /** All findings, sorted; `baselined` marks absorbed ones. */
    std::vector<Finding> findings;
    std::vector<bool> baselined; ///< parallel to findings
    std::vector<std::string> staleBaseline;

    std::size_t freshCount() const;
    bool ok() const;
};

/** Serialize @p report as strict RFC 8259 JSON, trailing newline. */
std::string formatJsonReport(const Report &report);

} // namespace avf::lint

#endif // AVF_TOOLS_AVFLINT_REPORT_HH
