/**
 * @file
 * Report engine behind the avf-report CLI: loads the exporters'
 * output back in — `avf-metrics-v1` METRICS.json snapshots,
 * trace_event TRACE.json files, and injection-lifecycle JSONL — and
 * renders convergence tables, phase-cost summaries, and campaign
 * diffs. Library (not main.cc) so tests can drive the loaders and
 * malformed-input rejection directly.
 *
 * Error convention: loaders return false and fill an error string;
 * printers return false when the document lacks the data they need.
 * Nothing here calls fatal() — the CLI decides how to die.
 */

#ifndef AVF_REPORT_REPORT_HH
#define AVF_REPORT_REPORT_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.hh"

namespace avf::report
{

/**
 * Read a whole file into @p out.
 * @return false with @p error filled when unreadable.
 */
bool readFile(const std::string &path, std::string &out,
              std::string &error);

/**
 * Parse and validate one METRICS.json document: must be JSON, carry
 * `"schema": "avf-metrics-v1"`, a "tasks" array whose entries have
 * "name" and a "metrics" object with the four fixed sections, and a
 * "totals" object. Anything else is rejected with a message naming
 * the offending part — a malformed snapshot must never be summarized
 * as if it were data.
 */
bool loadMetricsDoc(const std::string &text, json::Value &doc,
                    std::string &error);

/**
 * Per-interval convergence table for one task/series: the interval's
 * failure-count AVF, the running mean, and the paper's statistical
 * bound 0.5/sqrt(N) on the estimate's standard deviation (N =
 * injections per interval, recovered from the task's
 * `<prefix>_injections_total` counter). Intervals where the estimate
 * sits outside running-mean ± bound are flagged.
 */
struct ConvergenceRow
{
    std::size_t interval = 0;
    double avf = 0.0;
    double runningMean = 0.0;
    double bound = 0.0;
    bool flagged = false;
};

/**
 * Compute the convergence rows for @p series (e.g. "online_iq_avf")
 * of task @p taskName ("" = first task). @return false with @p error
 * when the task or series is missing or N cannot be recovered.
 */
bool convergenceRows(const json::Value &doc,
                     const std::string &taskName,
                     const std::string &series,
                     std::vector<ConvergenceRow> &rows,
                     std::string &error);

/**
 * Print the full convergence table (one row per interval) plus a
 * closing summary line. @return false (after printing the reason to
 * @p out) when the data is missing.
 */
bool printConvergence(std::ostream &out, const json::Value &doc,
                      const std::string &taskName,
                      const std::string &series);

/**
 * One-line-per-(task, online series) campaign summary: final running
 * AVF, the ± bound, and how many intervals tripped it.
 */
void printSummary(std::ostream &out, const json::Value &doc);

/**
 * Top-N phase costs from a trace_event TRACE.json: every "X" event,
 * aggregated by name, sorted by total duration. @return false when
 * the document has no traceEvents array.
 */
bool printPhases(std::ostream &out, const json::Value &traceDoc,
                 std::size_t topN);

/**
 * Campaign diff: for every counter in either document's "totals",
 * print old, new, and delta (sorted by the first document's order,
 * new-only counters appended).
 */
void printDiff(std::ostream &out, const json::Value &before,
               const json::Value &after);

/**
 * Budget decision trail for one task ("" = first task): the
 * per-interval FIT, projected MTTF, arbitration target, throttle
 * state, and the target's protection coverage, from the budget_* /
 * control_* series the controller recorded, followed by the decision
 * counters. @return false (after printing the reason to @p out) when
 * the task has no budget trail (run with AVF_MTTF_BUDGET_HOURS and
 * AVF_METRICS to produce one).
 */
bool printBudget(std::ostream &out, const json::Value &doc,
                 const std::string &taskName);

/**
 * Summarize an injection-lifecycle JSONL stream (export.hh:
 * writeLifecycleJsonl): records and failure/outcome counts per
 * structure. The stream's leading legend line (the `"legend": true`
 * object naming the hop kinds and outcome strings) is rendered as a
 * "hop kinds:" line; legacy streams without one still parse. @return
 * false with @p error on the first malformed line.
 */
bool printLifecycle(std::ostream &out, const std::string &jsonl,
                    std::string &error);

/**
 * Parse and validate one ROOTCAUSE.json document (export.hh:
 * writeRootCauseJson): must be JSON carrying
 * `"schema": "avf-rootcause-v1"`, a "campaign" string, and an
 * "attribution" object with a "units" string array and a "rows"
 * array whose entries carry string unit/op plus integer
 * phase/pc/windows/live/failures. Anything else is rejected with a
 * message naming the offending part.
 */
bool loadRootCauseDoc(const std::string &text, json::Value &doc,
                      std::string &error);

/**
 * Render the root-cause blame table from a validated ROOTCAUSE.json.
 * @p by selects the grouping: "instruction" (the default — failure
 * rows ranked by blamed (pc, op, unit) identity), "structure" (per
 * blame unit, with windows/live/failure-rate), "opcode" (per blamed
 * opcode class), or "phase" (per campaign-global workload phase
 * bucket). Rows sort by failures descending, canonical key order on
 * ties; @p topN caps the table. With @p jsonOut the same ranking is
 * emitted as one deterministic JSON object (integer counts only, no
 * derived floats) instead of the human table. @return false (after
 * printing the reason to @p out) when @p by names no grouping.
 */
bool printRootCause(std::ostream &out, const json::Value &doc,
                    const std::string &by, std::size_t topN,
                    bool jsonOut);

/**
 * Parse and validate one `avflint --format=json` report: must be
 * strict JSON carrying `"schema": "avflint-v1"`, a "checks" array
 * whose entries have string "id"/"severity" and numeric
 * "findings"/"micros", a "findings" array whose entries carry
 * file/line/check/severity/baselined/message, a "staleBaseline"
 * string array, and a boolean "ok". Anything else is rejected with a
 * message naming the offending part.
 */
bool loadLintDoc(const std::string &text, json::Value &doc,
                 std::string &error);

/**
 * Render a validated lint report: the per-check summary with
 * timings, every fresh finding, and the stale-baseline list. With
 * @p github true, each finding is additionally emitted as a GitHub
 * workflow annotation command (`::error`/`::warning
 * file=F,line=N::...`), which the Actions runner turns into inline
 * PR annotations. @return the document's "ok" gate — callers exit
 * nonzero on false.
 */
bool printLintReport(std::ostream &out, const json::Value &doc,
                     bool github);

} // namespace avf::report

#endif // AVF_REPORT_REPORT_HH
